// Micro-benchmarks: end-to-end keyword search per algorithm on a fixed
// DBLP-like graph, across query shapes (rare+rare, rare+frequent).

#include <benchmark/benchmark.h>

#include "datasets/dblp_gen.h"
#include "prestige/pagerank.h"
#include "relational/graph_builder.h"
#include "search/searcher.h"
#include "text/tokenizer.h"

namespace banks {
namespace {

struct Fixture {
  Database db;
  DataGraph dg;
  std::vector<double> prestige;
  std::vector<NodeId> rare1, rare2, frequent;

  Fixture() {
    DblpConfig config;
    config.num_authors = 4000;
    config.num_papers = 8000;
    config.seed = 99;
    db = GenerateDblp(config);
    dg = BuildDataGraph(db);
    prestige = ComputePrestige(dg.graph);

    // Pick origin sets by scanning for dfs nearest targets.
    Tokenizer tok;
    size_t best_freq = 0;
    std::string freq_word;
    for (RowId r = 0; r < 50; ++r) {
      for (const auto& w : tok.Tokenize(db.FindTable("paper")->RowText(r))) {
        size_t df = dg.index.MatchCount(w);
        if (df > best_freq) {
          best_freq = df;
          freq_word = w;
        }
      }
    }
    frequent = dg.index.Match(freq_word);
    const Table& author = *db.FindTable("author");
    rare1 = dg.index.Match(tok.Tokenize(author.RowText(3)).back());
    rare2 = dg.index.Match(tok.Tokenize(author.RowText(8)).back());
  }
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void RunSearchBench(benchmark::State& state, Algorithm algorithm,
                    bool with_frequent) {
  Fixture& f = GetFixture();
  SearchOptions options;
  options.k = 10;
  options.max_nodes_explored = 2'000'000;
  std::vector<std::vector<NodeId>> origins = {f.rare1};
  origins.push_back(with_frequent ? f.frequent : f.rare2);
  for (auto _ : state) {
    SearchResult r =
        CreateSearcher(algorithm, f.dg.graph, f.prestige, options)
            ->Search(origins);
    benchmark::DoNotOptimize(r.answers.size());
  }
}

void BM_MIBackward_RareRare(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBackwardMI, false);
}
void BM_MIBackward_RareFrequent(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBackwardMI, true);
}
void BM_SIBackward_RareRare(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBackwardSI, false);
}
void BM_SIBackward_RareFrequent(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBackwardSI, true);
}
void BM_Bidirectional_RareRare(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBidirectional, false);
}
void BM_Bidirectional_RareFrequent(benchmark::State& state) {
  RunSearchBench(state, Algorithm::kBidirectional, true);
}

BENCHMARK(BM_MIBackward_RareRare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MIBackward_RareFrequent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SIBackward_RareRare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SIBackward_RareFrequent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bidirectional_RareRare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bidirectional_RareFrequent)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace banks
