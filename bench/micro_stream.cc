// Streaming-query latency microbenchmark: time-to-first-answer.
//
// The streaming API's reason to exist is that an interactive caller
// should pay only the time until the FIRST answer is released, not the
// whole search. This bench runs a §5.4 DBLP generator workload through
// each algorithm × release-bound mode two ways over one warm
// SearchContext per stream:
//
//   drained — classic Engine::QueryResolved (OpenQuery + Drain), the
//             run-to-completion latency;
//   stream  — Engine::OpenQueryResolved + Next() until exhausted,
//             recording when the first and the last (k-th) answer
//             arrive.
//
// Reported per cell: drained ms/q, stream time-to-first-answer and
// time-to-k-th-answer (ms/q means), the streaming overhead
// (stream-total / drained), and allocations per streamed query.
//
// Built-in prefix-equivalence check: every streamed answer sequence
// must be identical (SameAnswer) to the drained query's — the bench
// exits nonzero otherwise, so CI catches a streaming divergence even
// outside the unit suite.
//
// --json emits the measurements for the CI bench-smoke artifact
// (BENCH_stream.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "search/answer_stream.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 3;

struct BoundCase {
  BoundMode bound;
  const char* name;
};
const BoundCase kBounds[] = {{BoundMode::kLoose, "loose"},
                             {BoundMode::kTight, "tight"}};

/// Resolved origin sets of the benchmark stream (resolved once so every
/// configuration searches identical origins).
std::vector<std::vector<std::vector<NodeId>>> MakeQueries(
    BenchEnv* env, const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<std::vector<std::vector<NodeId>>> queries;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 23 + kw * 41;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
      bool all_matched = !origins.empty();
      for (const auto& s : origins) all_matched &= !s.empty();
      if (all_matched) queries.push_back(std::move(origins));
    }
  }
  return queries;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Streaming queries: time-to-first-answer ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<std::vector<std::vector<NodeId>>> queries =
      MakeQueries(&env, engine);
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries x %zu "
                "repetitions\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                queries.size(), kRepetitions);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_stream");
    w.Field("scale", scale);
    w.Field("alloc_counter_enabled", AllocCounterEnabled());
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("queries_per_rep", static_cast<uint64_t>(queries.size()));
    w.Field("repetitions", static_cast<uint64_t>(kRepetitions));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table({"Algorithm", "bound", "mode", "ms/q", "ttfa ms", "ttk ms",
                      "vs drained", "allocs/q"});
  const size_t runs = queries.size() * kRepetitions;
  bool all_identical = true;
  bool bidir_ttfa_wins = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    for (const BoundCase& bc : kBounds) {
      SearchOptions options;
      options.k = 10;
      options.bound = bc.bound;
      options.max_nodes_explored = 100'000;

      // ---- drained -----------------------------------------------------
      SearchContext drained_context;
      for (const auto& origins : queries) {  // untimed warm-up
        (void)engine.QueryResolved(origins, algorithm, options,
                                   &drained_context);
      }
      std::vector<SearchResult> reference;
      Timer drained_timer;
      for (size_t rep = 0; rep < kRepetitions; ++rep) {
        for (const auto& origins : queries) {
          SearchResult r = engine.QueryResolved(origins, algorithm, options,
                                                &drained_context);
          if (rep == 0) reference.push_back(std::move(r));
        }
      }
      const double drained_seconds = drained_timer.ElapsedSeconds();
      const double drained_ms = 1e3 * drained_seconds / runs;

      // ---- stream ------------------------------------------------------
      // One warm context serves every stream; the stream borrows it, so
      // abandoning/opening costs nothing. TTFA is measured from open to
      // the first Next() returning, TTK to stream exhaustion.
      SearchContext stream_context;
      {
        AnswerStream warm = engine.OpenQueryResolved(
            queries[0], algorithm, options, StreamOptions{}, &stream_context);
        (void)warm.Drain();
      }
      for (const auto& origins : queries) {  // untimed warm-up
        AnswerStream s = engine.OpenQueryResolved(
            origins, algorithm, options, StreamOptions{}, &stream_context);
        while (s.Next().has_value()) {
        }
      }
      const AllocCounts allocs0 = CurrentAllocCounts();
      double ttfa_sum = 0;
      double ttk_sum = 0;
      size_t streamed_answers = 0;
      Timer stream_total;
      for (size_t rep = 0; rep < kRepetitions; ++rep) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          Timer per_query;
          AnswerStream s =
              engine.OpenQueryResolved(queries[qi], algorithm, options,
                                       StreamOptions{}, &stream_context);
          size_t pulled = 0;
          while (auto answer = s.Next()) {
            if (pulled == 0) ttfa_sum += per_query.ElapsedSeconds();
            if (rep == 0) {
              // Prefix equivalence: streamed answer i == drained answer i.
              const SearchResult& ref = reference[qi];
              if (pulled >= ref.answers.size() ||
                  !SameAnswer(*answer, ref.answers[pulled])) {
                all_identical = false;
              }
            }
            ++pulled;
          }
          ttk_sum += per_query.ElapsedSeconds();
          if (rep == 0 && pulled != reference[qi].answers.size()) {
            all_identical = false;
          }
          streamed_answers += pulled;
        }
      }
      const double stream_seconds = stream_total.ElapsedSeconds();
      double allocs_per_query =
          static_cast<double>(CurrentAllocCounts().count - allocs0.count) /
          runs;
      if (!all_identical) {
        std::fprintf(stderr,
                     "ERROR: %s (%s bound) streamed answers differ from "
                     "the drained query\n",
                     AlgorithmName(algorithm), bc.name);
      }
      const double ttfa_ms = streamed_answers > 0 ? 1e3 * ttfa_sum / runs : 0;
      const double ttk_ms = 1e3 * ttk_sum / runs;
      const double overhead = SafeRatio(stream_seconds, drained_seconds);
      // The headline property: streaming pays only time-to-first-answer.
      // Judged on the loose bound — the paper's incremental-release mode
      // — because the tight NRA bound buffers answers until almost
      // nothing can beat them, so its TTFA approaches the total by
      // design and the comparison is drained-noise either way.
      if (algorithm == Algorithm::kBidirectional &&
          bc.bound == BoundMode::kLoose && streamed_answers > 0 &&
          ttfa_ms >= drained_ms) {
        bidir_ttfa_wins = false;
      }

      if (json) {
        w.BeginObject();
        w.Field("class", bc.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", "drained");
        w.Field("threads", static_cast<uint64_t>(1));
        w.Field("ms_per_query", drained_ms);
        w.Field("qps", runs / drained_seconds);
        w.EndObject();
        w.BeginObject();
        w.Field("class", bc.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", "stream");
        w.Field("threads", static_cast<uint64_t>(1));
        w.Field("ms_per_query", ttk_ms);
        w.Field("time_to_first_answer_ms", ttfa_ms);
        w.Field("time_to_kth_answer_ms", ttk_ms);
        w.Field("overhead_vs_drained", overhead);
        w.Field("allocs_per_query", allocs_per_query);
        w.EndObject();
      } else {
        table.AddRow({AlgorithmName(algorithm), bc.name, "drained",
                      TablePrinter::Fmt(drained_ms, 3),
                      "-", "-", "1.00", "-"});
        table.AddRow({AlgorithmName(algorithm), bc.name, "stream",
                      TablePrinter::Fmt(ttk_ms, 3),
                      TablePrinter::Fmt(ttfa_ms, 3),
                      TablePrinter::Fmt(ttk_ms, 3),
                      TablePrinter::Fmt(overhead, 2),
                      TablePrinter::Fmt(allocs_per_query, 0)});
      }
    }
  }

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.Field("bidirectional_ttfa_below_drained", bidir_ttfa_wins);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nttfa = time from opening the stream to the first released\n"
        "answer; ttk = time to stream exhaustion (the k-th answer). Every\n"
        "streamed sequence is verified identical, prefix by prefix, to the\n"
        "drained query (exit 1 on any divergence). Bidirectional "
        "time-to-first-answer below drained latency: %s\n",
        bidir_ttfa_wins ? "yes" : "NO");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
