// Serving-core microbenchmark: open-loop subscription latency.
//
// The async serving core (src/serve/) multiplexes many in-flight
// searches over a fixed worker pool, so its interesting number is not
// per-query service time but *latency under concurrent arrivals*:
// queries arrive on a clock that does not wait for the previous query
// to finish (open-loop), pile up inside the scheduler, and each pays
// queueing + interleaved execution. This bench measures exactly that,
// per algorithm, on a §5.4 DBLP generator workload:
//
//   closed — Engine::Subscribe + Wait, one at a time: pure serving-core
//            service time (the calibration run; its mean sets the
//            arrival rates below);
//   open-0.5 / open-0.9 — arrivals at 50% / 90% of the calibrated
//            capacity; reported are completion-latency percentiles
//            (p50/p95/p99), mean time-to-first-answer, and achieved
//            throughput.
//
// With --arrival=poisson two more waves run per algorithm
// (poisson-0.5 / poisson-0.9): same mean rates, but interarrival gaps
// drawn from a seeded exponential distribution — a Poisson arrival
// process whose bursts exercise queue depths the evenly spaced clock
// never builds. The draws are deterministic (fixed seed per wave), so
// the rows are comparable across runs.
//
// Built-in equivalence check: every subscription's pushed answer
// sequence must be identical (SameAnswer) to the drained
// Engine::QueryResolved reference — the bench exits nonzero otherwise,
// so CI catches a serving-path divergence even outside the unit suite.
//
// --json emits the measurements for the CI bench-smoke artifact
// (BENCH_serve.json); ms_per_query is the p95 completion latency (p50
// for the closed row), the field compare_baseline.py treats as a
// latency metric.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "serve/scheduler.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 3;

/// Resolved origin sets of the benchmark stream (resolved once so every
/// configuration searches identical origins).
std::vector<std::vector<std::vector<NodeId>>> MakeQueries(
    BenchEnv* env, const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<std::vector<std::vector<NodeId>>> queries;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 23 + kw * 41;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
      bool all_matched = !origins.empty();
      for (const auto& s : origins) all_matched &= !s.empty();
      if (all_matched) queries.push_back(std::move(origins));
    }
  }
  return queries;
}

/// Per-subscription probe: records the pushed sequence plus first-push
/// and terminal-push timestamps against a shared epoch timer. One sink
/// per subscription — the scheduler serializes its callbacks, and the
/// submitter reads only after Subscription::Wait.
struct RecordingSink : AnswerSink {
  const Timer* epoch = nullptr;
  double submitted_at = 0;
  double first_answer_at = -1;
  double completed_at = -1;
  SubscribeStatus status = SubscribeStatus::kPending;
  std::vector<AnswerTree> answers;

  void OnAnswer(const AnswerTree& answer) override {
    if (first_answer_at < 0) first_answer_at = epoch->ElapsedSeconds();
    answers.push_back(answer);
  }
  void OnComplete(SubscribeStatus s, const SearchMetrics&) override {
    status = s;
    completed_at = epoch->ElapsedSeconds();
  }
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

/// Arrival schedule of one open wave: instant `a` is when arrival `a`
/// is due on the epoch clock. Evenly spaced, or — for the Poisson
/// process — cumulative seeded exponential gaps with the same mean.
std::vector<double> MakeSchedule(size_t arrivals, double interarrival,
                                 bool poisson, uint64_t seed) {
  std::vector<double> due(arrivals, 0.0);
  if (poisson) {
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> gap(1.0 / interarrival);
    double clock = 0;
    for (size_t a = 0; a < arrivals; ++a) {
      due[a] = clock;
      clock += gap(rng);
    }
  } else {
    for (size_t a = 0; a < arrivals; ++a) {
      due[a] = interarrival * static_cast<double>(a);
    }
  }
  return due;
}

/// One measured wave of subscriptions: arrivals fire at
/// `arrival_times` on the epoch clock (empty = closed loop: wait out
/// each subscription before submitting the next). Returns false on any
/// divergence from the reference sequences.
struct WaveResult {
  std::vector<double> latency_seconds;  // submit → terminal push
  std::vector<double> ttfa_seconds;     // submit → first push
  double wall_seconds = 0;
  bool identical = true;
};

WaveResult RunWave(const Engine& engine, Scheduler* scheduler,
                   Algorithm algorithm, const SearchOptions& options,
                   const std::vector<std::vector<std::vector<NodeId>>>& queries,
                   const std::vector<SearchResult>& reference,
                   const std::vector<double>& arrival_times) {
  const size_t arrivals = queries.size() * kRepetitions;
  const bool open_loop = !arrival_times.empty();
  std::vector<std::unique_ptr<RecordingSink>> sinks;
  std::vector<Subscription> subs;
  sinks.reserve(arrivals);
  subs.reserve(arrivals);
  Timer epoch;
  for (size_t a = 0; a < arrivals; ++a) {
    if (open_loop) {
      // Open loop: the arrival clock does not care how the serving core
      // is doing. Sleep until this arrival's scheduled instant.
      double due = arrival_times[a];
      double now = epoch.ElapsedSeconds();
      if (due > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due - now));
      }
    }
    size_t qi = a % queries.size();
    auto sink = std::make_unique<RecordingSink>();
    sink->epoch = &epoch;
    sink->submitted_at = epoch.ElapsedSeconds();
    SubscribeOptions subscribe;
    subscribe.scheduler = scheduler;
    subs.push_back(engine.SubscribeResolved(queries[qi], algorithm,
                                            sink.get(), options, subscribe));
    sinks.push_back(std::move(sink));
    if (!open_loop) subs.back().Wait();
  }
  WaveResult out;
  for (size_t a = 0; a < arrivals; ++a) {
    subs[a].Wait();
    const RecordingSink& sink = *sinks[a];
    out.latency_seconds.push_back(sink.completed_at - sink.submitted_at);
    if (sink.first_answer_at >= 0) {
      out.ttfa_seconds.push_back(sink.first_answer_at - sink.submitted_at);
    }
    const SearchResult& ref = reference[a % queries.size()];
    bool same = sink.status == SubscribeStatus::kCompleted &&
                sink.answers.size() == ref.answers.size();
    for (size_t i = 0; same && i < ref.answers.size(); ++i) {
      same = SameAnswer(sink.answers[i], ref.answers[i]);
    }
    if (!same) out.identical = false;
  }
  out.wall_seconds = epoch.ElapsedSeconds();
  return out;
}

int Main(double scale, bool json, bool poisson) {
  if (!json) {
    std::printf("=== Serving core: open-loop subscription latency ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<std::vector<std::vector<NodeId>>> queries =
      MakeQueries(&env, engine);
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }
  const size_t arrivals = queries.size() * kRepetitions;
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries, %zu "
                "arrivals per wave\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                queries.size(), arrivals);
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_serve");
    w.Field("scale", scale);
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("queries_per_wave", static_cast<uint64_t>(arrivals));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table({"Algorithm", "wave", "p50 ms", "p95 ms", "p99 ms",
                      "ttfa ms", "qps"});
  bool all_identical = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    SearchOptions options;
    options.k = 10;
    options.max_nodes_explored = 100'000;

    // Drained reference + warm-up (also warms the engine-side caches).
    SearchContext reference_context;
    std::vector<SearchResult> reference;
    reference.reserve(queries.size());
    for (const auto& origins : queries) {
      reference.push_back(
          engine.QueryResolved(origins, algorithm, options,
                               &reference_context));
    }

    // A fresh scheduler per algorithm keeps tenants/counters separated;
    // worker count is the platform default (hardware concurrency).
    struct Wave {
      const char* name;
      double interarrival;  // filled for the open waves post-calibration
      bool poisson;
      uint64_t seed;  // exponential-draw seed (poisson waves only)
    };
    Scheduler scheduler{SchedulerOptions{}};
    {  // untimed warm-up through the serving path (cold contexts, pool)
      WaveResult warm = RunWave(engine, &scheduler, algorithm, options,
                                queries, reference, {});
      all_identical = all_identical && warm.identical;
    }

    // Calibration: closed-loop mean service time sets the open rates.
    WaveResult closed = RunWave(engine, &scheduler, algorithm, options,
                                queries, reference, {});
    all_identical = all_identical && closed.identical;
    double mean_service =
        closed.wall_seconds / static_cast<double>(arrivals);
    if (mean_service <= 0) mean_service = 1e-6;

    // Per-wave fixed seeds: the exponential draws are part of the
    // benchmark definition, not run-to-run noise.
    const uint64_t seed_base =
        0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(algorithm) * 131);
    std::vector<Wave> waves = {
        {"closed", 0, false, 0},
        {"open-0.5", mean_service / 0.5, false, 0},
        {"open-0.9", mean_service / 0.9, false, 0},
    };
    if (poisson) {
      waves.push_back({"poisson-0.5", mean_service / 0.5, true,
                       seed_base ^ 1});
      waves.push_back({"poisson-0.9", mean_service / 0.9, true,
                       seed_base ^ 2});
    }
    for (const Wave& wave : waves) {
      WaveResult r =
          wave.interarrival == 0
              ? std::move(closed)
              : RunWave(engine, &scheduler, algorithm, options, queries,
                        reference,
                        MakeSchedule(arrivals, wave.interarrival,
                                     wave.poisson, wave.seed));
      all_identical = all_identical && r.identical;
      const double p50 = 1e3 * Percentile(r.latency_seconds, 0.50);
      const double p95 = 1e3 * Percentile(r.latency_seconds, 0.95);
      const double p99 = 1e3 * Percentile(r.latency_seconds, 0.99);
      const double ttfa =
          r.ttfa_seconds.empty()
              ? 0
              : 1e3 *
                    (std::accumulate(r.ttfa_seconds.begin(),
                                     r.ttfa_seconds.end(), 0.0) /
                     static_cast<double>(r.ttfa_seconds.size()));
      const double qps = SafeRatio(static_cast<double>(arrivals),
                                   r.wall_seconds);
      if (json) {
        w.BeginObject();
        w.Field("class", wave.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", "subscribe");
        w.Field("arrival", wave.interarrival == 0
                               ? "closed"
                               : (wave.poisson ? "poisson" : "uniform"));
        w.Field("threads", static_cast<uint64_t>(
                               std::max<size_t>(1, scheduler.num_workers())));
        // The baseline-compared latency headline: tail latency for the
        // open waves, median for the closed calibration wave.
        w.Field("ms_per_query", wave.interarrival == 0 ? p50 : p95);
        w.Field("p50_ms", p50);
        w.Field("p95_ms", p95);
        w.Field("p99_ms", p99);
        w.Field("time_to_first_answer_ms", ttfa);
        w.Field("qps", qps);
        w.EndObject();
      } else {
        table.AddRow({AlgorithmName(algorithm), wave.name,
                      TablePrinter::Fmt(p50, 3), TablePrinter::Fmt(p95, 3),
                      TablePrinter::Fmt(p99, 3), TablePrinter::Fmt(ttfa, 3),
                      TablePrinter::Fmt(qps, 1)});
      }
    }
  }

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nclosed = one subscription at a time (calibration); open-R =\n"
        "arrivals at R x the calibrated closed-loop capacity, latency\n"
        "measured submit -> terminal push; poisson-R = same mean rate,\n"
        "seeded exponential interarrival gaps. ttfa = mean submit ->\n"
        "first pushed answer. Every pushed sequence is verified\n"
        "identical to the drained query (exit 1 on any divergence): %s\n",
        all_identical ? "ok" : "DIVERGED");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  bool poisson = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--arrival=poisson") == 0) {
      poisson = true;
    } else if (std::strcmp(argv[i], "--arrival=uniform") == 0) {
      poisson = false;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr,
                     "usage: %s [--json] [--arrival=poisson] [scale>0]  "
                     "(got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json, poisson);
}
