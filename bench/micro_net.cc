// Socket-level microbenchmark: over-the-wire query sojourn.
//
// micro_serve measures the serving core in-process; this bench stacks
// the network front door (src/net/) on top — a loopback banks::net
// Server over the same §5.4 DBLP generator workload, queried through
// the blocking banks::net::Client. Reported per algorithm:
//
//   wire-1 — one connection, closed loop: per-query sojourn
//            (Client::Query call → terminal frame) p50/p95;
//   wire-4 — four connections on four threads, each closed loop: the
//            same queries contending through admission, weighted fair
//            queueing across four tenants, and the socket path.
//
// Built-in differential: every over-the-wire answer sequence must be
// identical (SameAnswer) to the drained in-process Engine::Query — the
// bench exits nonzero otherwise, so CI catches a wire-path divergence
// even outside the unit suite.
//
// --json emits BENCH_net.json rows for the CI bench-smoke artifact;
// ms_per_query is the p95 sojourn (p50 for the wire-1 row), the field
// compare_baseline.py treats as a latency metric.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "net/client.h"
#include "net/server.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 3;

/// Keyword queries of the benchmark stream. The wire carries keywords
/// (the server resolves them), so unlike micro_serve this keeps the
/// keyword form; resolution is deterministic, so the in-process
/// reference still searches identical origins.
std::vector<std::vector<std::string>> MakeQueries(BenchEnv* env,
                                                  const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<std::vector<std::string>> queries;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 23 + kw * 41;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
      bool all_matched = !origins.empty();
      for (const auto& s : origins) all_matched &= !s.empty();
      if (all_matched) queries.push_back(q.keywords);
    }
  }
  return queries;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

/// One connection running the whole query list closed-loop
/// `kRepetitions` times. Latencies are per-query sojourn; `identical`
/// goes false on any divergence from the reference sequences.
struct ConnResult {
  std::vector<double> latency_seconds;
  bool identical = true;
};

ConnResult RunConnection(uint16_t port, Algorithm algorithm,
                         const SearchOptions& options,
                         const std::vector<std::vector<std::string>>& queries,
                         const std::vector<SearchResult>& reference) {
  ConnResult out;
  std::string error;
  auto client = net::Client::Connect("127.0.0.1", port, {}, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "bench connect failed: %s\n", error.c_str());
    out.identical = false;
    return out;
  }
  for (size_t a = 0; a < queries.size() * kRepetitions; ++a) {
    size_t qi = a % queries.size();
    Timer timer;
    net::NetResult result = client->Query(queries[qi], algorithm, options);
    out.latency_seconds.push_back(timer.ElapsedSeconds());
    const SearchResult& ref = reference[qi];
    bool same = result.status == SubscribeStatus::kCompleted &&
                result.answers.size() == ref.answers.size();
    for (size_t i = 0; same && i < ref.answers.size(); ++i) {
      same = SameAnswer(result.answers[i], ref.answers[i]);
    }
    if (!same) out.identical = false;
  }
  return out;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Network front door: over-the-wire sojourn ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<std::vector<std::string>> queries = MakeQueries(&env, engine);
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }
  const size_t per_conn = queries.size() * kRepetitions;

  net::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  net::Server server(&engine, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries, %zu "
                "per connection, loopback port %u\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                queries.size(), per_conn, server.port());
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_net");
    w.Field("scale", scale);
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("queries_per_connection", static_cast<uint64_t>(per_conn));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table(
      {"Algorithm", "wave", "conns", "p50 ms", "p95 ms", "qps"});
  bool all_identical = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    SearchOptions options;
    options.k = 10;
    options.max_nodes_explored = 100'000;

    // Drained in-process reference + warm-up of the engine-side caches.
    SearchContext reference_context;
    std::vector<SearchResult> reference;
    reference.reserve(queries.size());
    for (const auto& keywords : queries) {
      reference.push_back(
          engine.Query(keywords, algorithm, options, &reference_context));
    }

    struct Wave {
      const char* name;
      size_t connections;
    };
    // Untimed warm-up through the whole socket path (cold scheduler
    // contexts, buffer pool, TCP slow start on loopback).
    {
      ConnResult warm = RunConnection(server.port(), algorithm, options,
                                      queries, reference);
      all_identical = all_identical && warm.identical;
    }

    for (const Wave& wave : {Wave{"wire-1", 1}, Wave{"wire-4", 4}}) {
      std::vector<ConnResult> results(wave.connections);
      Timer wall;
      {
        std::vector<std::thread> threads;
        for (size_t c = 0; c < wave.connections; ++c) {
          threads.emplace_back([&, c] {
            results[c] = RunConnection(server.port(), algorithm, options,
                                       queries, reference);
          });
        }
        for (std::thread& t : threads) t.join();
      }
      double wall_seconds = wall.ElapsedSeconds();
      std::vector<double> latencies;
      for (const ConnResult& r : results) {
        all_identical = all_identical && r.identical;
        latencies.insert(latencies.end(), r.latency_seconds.begin(),
                         r.latency_seconds.end());
      }
      const double p50 = 1e3 * Percentile(latencies, 0.50);
      const double p95 = 1e3 * Percentile(latencies, 0.95);
      const double qps = SafeRatio(
          static_cast<double>(per_conn * wave.connections), wall_seconds);
      if (json) {
        w.BeginObject();
        w.Field("class", wave.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", "wire");
        w.Field("threads", static_cast<uint64_t>(wave.connections));
        w.Field("ms_per_query", wave.connections == 1 ? p50 : p95);
        w.Field("p50_ms", p50);
        w.Field("p95_ms", p95);
        w.Field("qps", qps);
        w.EndObject();
      } else {
        table.AddRow({AlgorithmName(algorithm), wave.name,
                      std::to_string(wave.connections),
                      TablePrinter::Fmt(p50, 3), TablePrinter::Fmt(p95, 3),
                      TablePrinter::Fmt(qps, 1)});
      }
    }
  }
  server.Shutdown();

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nwire-N = N connections (scheduler tenants), each closed-loop\n"
        "over the query list; sojourn measured Client::Query call ->\n"
        "terminal frame, over loopback TCP. Every wire answer sequence\n"
        "is verified identical to the drained in-process query (exit 1\n"
        "on any divergence): %s\n",
        all_identical ? "ok" : "DIVERGED");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
