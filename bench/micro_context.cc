// SearchContext cold-vs-warm microbenchmark.
//
// Runs the §5.4 DBLP generator workload through each algorithm twice:
// once with a fresh SearchContext per query (cold — the pre-context
// behaviour of allocating all per-query state from scratch) and once
// with a single context reused across the whole query stream (warm).
// Reports per-query latency, the warm speedup, and heap allocation
// counts measured by bench_common's counting global operator new
// (CMake option BANKS_BENCH_ALLOC_COUNT; zeros when compiled out).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

struct ModeStats {
  double seconds = 0;
  uint64_t allocs = 0;
  uint64_t bytes = 0;
  size_t answers = 0;  // checksum: must match across modes
};

constexpr size_t kRepetitions = 3;

/// Runs every query `kRepetitions` times. `warm` reuses *context for
/// the entire stream (pass the same context to the untimed warm-up call
/// so the timed pass measures the steady state, not the context's
/// first-query pool growth); cold constructs a fresh context per query.
ModeStats RunMode(const BenchEnv& env,
                  const std::vector<std::vector<std::vector<NodeId>>>& queries,
                  Algorithm algorithm, const SearchOptions& options,
                  bool warm, SearchContext* context) {
  auto searcher =
      CreateSearcher(algorithm, env.dg.graph, env.prestige, options);
  SearchContext& reused = *context;
  ModeStats stats;
  const AllocCounts allocs0 = CurrentAllocCounts();
  Timer timer;
  for (size_t rep = 0; rep < kRepetitions; ++rep) {
    for (const auto& origins : queries) {
      if (warm) {
        stats.answers += searcher->Search(origins, &reused).answers.size();
      } else {
        SearchContext fresh;
        stats.answers += searcher->Search(origins, &fresh).answers.size();
      }
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  const AllocCounts allocs1 = CurrentAllocCounts();
  stats.allocs = allocs1.count - allocs0.count;
  stats.bytes = allocs1.bytes - allocs0.bytes;
  return stats;
}

/// Resolves a workload's keyword queries to origin sets, dropping
/// queries with an unmatched keyword.
std::vector<std::vector<std::vector<NodeId>>> ResolveQueries(
    const BenchEnv& env, const std::vector<WorkloadQuery>& workload) {
  std::vector<std::vector<std::vector<NodeId>>> queries;
  for (const WorkloadQuery& q : workload) {
    std::vector<std::vector<NodeId>> origins;
    for (const auto& kw : q.keywords) origins.push_back(env.dg.index.Match(kw));
    bool all_matched = !origins.empty();
    for (const auto& s : origins) all_matched &= !s.empty();
    if (all_matched) queries.push_back(std::move(origins));
  }
  return queries;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== SearchContext reuse: cold vs warm query latency ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges());
  }
  WorkloadGenerator gen(&env.db, &env.dg);

  // Two §5.6-style query classes. Context reuse targets the first: on
  // interactive (small-origin) queries the per-query state setup is a
  // large fraction of total work, while large-origin queries are
  // traversal-bound and show the floor of the optimization.
  struct QueryClass {
    const char* name;
    std::vector<std::vector<std::vector<NodeId>>> queries;
  };
  std::vector<QueryClass> classes;
  for (int klass = 0; klass < 2; ++klass) {
    std::vector<std::vector<std::vector<NodeId>>> queries;
    for (size_t kw = 2; kw <= 3; ++kw) {
      WorkloadOptions wopt;
      wopt.num_queries = 6;
      wopt.answer_size = 4;
      wopt.thresholds = env.thresholds;
      wopt.categories.assign(kw, FreqCategory::kTiny);
      wopt.categories.back() =
          klass == 0 ? FreqCategory::kSmall : FreqCategory::kLarge;
      wopt.seed = 17 + kw * 31 + klass;
      auto resolved = ResolveQueries(env, gen.Generate(wopt));
      queries.insert(queries.end(), resolved.begin(), resolved.end());
    }
    classes.push_back(
        QueryClass{klass == 0 ? "small-origin" : "large-origin",
                   std::move(queries)});
  }

  SearchOptions options;
  options.k = 10;
  options.bound = BoundMode::kLoose;  // the paper's measured configuration
  options.max_nodes_explored = 100'000;

  TablePrinter table({"Class", "Algorithm", "n", "cold ms/q", "warm ms/q",
                      "speedup", "cold allocs/q", "warm allocs/q"});
  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_context");
    w.Field("scale", scale);
    w.Field("alloc_counter_enabled", AllocCounterEnabled());
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Key("rows");
    w.BeginArray();
  }
  for (const QueryClass& qc : classes) {
    if (!json) {
      std::printf("%s: %zu queries x %zu repetitions per mode\n", qc.name,
                  qc.queries.size(), kRepetitions);
    }
    if (qc.queries.empty()) continue;
    const size_t runs = qc.queries.size() * kRepetitions;
    for (Algorithm algorithm :
         {Algorithm::kBidirectional, Algorithm::kBackwardSI,
          Algorithm::kBackwardMI}) {
      // Untimed warm-up pass so both modes see hot caches and a settled
      // allocator; it shares `ctx` with the timed warm pass so that one
      // measures the steady state a long-lived query stream reaches.
      SearchContext ctx;
      (void)RunMode(env, qc.queries, algorithm, options, /*warm=*/true, &ctx);
      SearchContext cold_ctx;  // unused by cold mode beyond the signature
      ModeStats cold =
          RunMode(env, qc.queries, algorithm, options, /*warm=*/false,
                  &cold_ctx);
      ModeStats warm =
          RunMode(env, qc.queries, algorithm, options, /*warm=*/true, &ctx);
      if (cold.answers != warm.answers) {
        std::printf("ERROR: %s cold/warm answer mismatch (%zu vs %zu)\n",
                    AlgorithmName(algorithm), cold.answers, warm.answers);
        return 1;
      }
      if (json) {
        w.BeginObject();
        w.Field("class", qc.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("runs", static_cast<uint64_t>(runs));
        w.Field("cold_ms_per_query", 1e3 * cold.seconds / runs);
        w.Field("warm_ms_per_query", 1e3 * warm.seconds / runs);
        w.Field("warm_speedup", SafeRatio(cold.seconds, warm.seconds));
        w.Field("cold_allocs_per_query",
                static_cast<double>(cold.allocs) / runs);
        // Steady-state allocations a warm query pays (warm-mode count).
        w.Field("allocs_per_query", static_cast<double>(warm.allocs) / runs);
        w.EndObject();
      } else {
        table.AddRow(
            {qc.name, AlgorithmName(algorithm), std::to_string(runs),
             TablePrinter::Fmt(1e3 * cold.seconds / runs, 3),
             TablePrinter::Fmt(1e3 * warm.seconds / runs, 3),
             TablePrinter::Fmt(SafeRatio(cold.seconds, warm.seconds), 2),
             TablePrinter::Fmt(static_cast<double>(cold.allocs) / runs, 0),
             TablePrinter::Fmt(static_cast<double>(warm.allocs) / runs, 0)});
      }
    }
  }
  if (json) {
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "\nallocs/q counts every operator new during the mode's runs\n"
      "(answer materialization included); warm reuses one SearchContext\n"
      "across the stream, cold constructs one per query.\n");
  return 0;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
