// Figure 5 reproduction: sample queries on DBLP / IMDB / US-Patents-like
// datasets, comparing MI-Backward vs SI-Backward vs Bidirectional and the
// Sparse lower bound.
//
// The paper's hand-picked queries (DQ1 "David Fernandez parametric", UQ1
// "Microsoft recovery", ...) mix rare keywords (origin size 1-5) with
// frequent ones (origin size in the thousands). We reproduce each query's
// *shape* — its keyword-frequency signature and relevant-answer size —
// using the §5.4 workload generator with category constraints, which also
// gives exact ground-truth relevance (the paper used manual judgment and
// SQL probes).
//
// Columns mirror the paper's table: keyword origin sizes, #relevant,
// answer size, MI/SI time ratio, SI/Bidir ratios (nodes explored, nodes
// touched, generation time, output time), absolute times for SI, Bidir,
// and the Sparse lower bound with its candidate-network count.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

struct SampleSpec {
  const char* id;
  const char* env;  // DBLP / IMDB / PATENTS
  std::vector<FreqCategory> categories;
  size_t answer_size;
};

const FreqCategory T = FreqCategory::kTiny;
const FreqCategory S = FreqCategory::kSmall;
const FreqCategory M = FreqCategory::kMedium;
const FreqCategory L = FreqCategory::kLarge;

// Shapes taken from the paper's Figure 5 rows.
const SampleSpec kSpecs[] = {
    {"DQ1", "DBLP", {T, L}, 3},          // "David Fernandez" parametric
    {"DQ3", "DBLP", {T, S}, 5},          // Giora Fernandez
    {"DQ5", "DBLP", {T, S, L, L}, 3},    // Krishnamurthy parametric query opt
    {"DQ7", "DBLP", {T, T, L, L}, 5},    // Naughton Dewitt query processing
    {"DQ9", "DBLP", {T, T, T, S, M}, 5}, // Divesh Jignesh Jagadish Timber...
    {"IQ1", "IMDB", {T, S, L}, 3},       // Keanu Matrix Thomas
    {"IQ2", "IMDB", {T, S, M}, 5},       // Zellweger Jude Nicole
    {"UQ1", "PATENTS", {T, L}, 2},       // Microsoft recovery
    {"UQ3", "PATENTS", {T, S}, 3},       // Cindy Joshua
    {"UQ5", "PATENTS", {T, M}, 3},       // Chawathe Philip
};

std::string OriginSizes(const WorkloadQuery& q) {
  std::string out = "(";
  for (size_t i = 0; i < q.origin_sizes.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(q.origin_sizes[i]);
  }
  return out + ")";
}

std::string Ms(double seconds) { return TablePrinter::Fmt(seconds * 1e3, 1); }

}  // namespace

int Main() {
  std::printf("=== Figure 5: Bidirectional vs Backward on sample queries ===\n");
  BenchEnv dblp = MakeDblpEnv();
  BenchEnv imdb = MakeImdbEnv();
  BenchEnv patents = MakePatentsEnv();
  std::printf("DBLP: %zu nodes / %zu edges; IMDB: %zu / %zu; PATENTS: %zu / %zu\n\n",
              dblp.dg.graph.num_nodes(), dblp.dg.graph.num_edges(),
              imdb.dg.graph.num_nodes(), imdb.dg.graph.num_edges(),
              patents.dg.graph.num_nodes(), patents.dg.graph.num_edges());

  TablePrinter table({"Query", "#Kw nodes", "RelAns", "AnsSize",
                      "MI/SI time", "SI/Bi expl", "SI/Bi touch",
                      "SI/Bi gen", "SI/Bi out", "SI ms", "Bidir ms",
                      "Sparse-LB ms (#CN)"});

  // One workload generator per dataset (the tuple matcher inside is a
  // full-database text index; build it once).
  WorkloadGenerator dblp_gen(&dblp.db, &dblp.dg);
  WorkloadGenerator imdb_gen(&imdb.db, &imdb.dg);
  WorkloadGenerator patents_gen(&patents.db, &patents.dg);

  size_t row = 0;
  for (const SampleSpec& spec : kSpecs) {
    row++;
    BenchEnv* env = spec.env == std::string("DBLP")      ? &dblp
                    : spec.env == std::string("IMDB")    ? &imdb
                                                         : &patents;
    WorkloadGenerator& gen = spec.env == std::string("DBLP") ? dblp_gen
                             : spec.env == std::string("IMDB") ? imdb_gen
                                                               : patents_gen;
    // Retry seeds until the query has measurable targets (relevant
    // answers inside the examined output window) — the paper's sample
    // queries were hand-picked to have judged-relevant top results.
    WorkloadQuery q;
    std::vector<std::vector<NodeId>> measured;
    for (uint64_t attempt = 0; attempt < 8 && measured.empty(); ++attempt) {
      WorkloadOptions options;
      options.num_queries = 1;
      options.answer_size = spec.answer_size;
      options.categories = spec.categories;
      options.thresholds = env->thresholds;
      options.seed = 7700 + row * 131 + attempt * 7919;
      auto queries = gen.Generate(options);
      if (queries.empty()) continue;
      measured = MeasuredRelevantSubset(*env, queries[0]);
      if (!measured.empty()) q = std::move(queries[0]);
    }
    if (measured.empty()) {
      table.AddRow({spec.id, "no targets", "-", "-", "-", "-", "-", "-", "-",
                    "-", "-", "-"});
      continue;
    }

    SearchOptions so;
    so.k = 60;
    so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
    so.max_nodes_explored = 2'000'000;  // MI guard on large origins
    RunStats mi =
        RunWorkloadQuery(*env, q, Algorithm::kBackwardMI, so, &measured);
    RunStats si =
        RunWorkloadQuery(*env, q, Algorithm::kBackwardSI, so, &measured);
    RunStats bi =
        RunWorkloadQuery(*env, q, Algorithm::kBidirectional, so, &measured);

    auto [sparse_seconds, cn_count] =
        SparseLowerBound(env, q.keywords, q.answer_size);

    table.AddRow(
        {spec.id, OriginSizes(q), std::to_string(q.relevant.size()),
         std::to_string(spec.answer_size),
         TablePrinter::Fmt(SafeRatio(mi.out_time, si.out_time)),
         TablePrinter::Fmt(SafeRatio(static_cast<double>(si.explored),
                                     static_cast<double>(bi.explored))),
         TablePrinter::Fmt(SafeRatio(static_cast<double>(si.touched),
                                     static_cast<double>(bi.touched))),
         TablePrinter::Fmt(SafeRatio(si.gen_time, bi.gen_time)),
         TablePrinter::Fmt(SafeRatio(si.out_time, bi.out_time)),
         Ms(si.out_time), Ms(bi.out_time),
         Ms(sparse_seconds) + " (" + std::to_string(cn_count) + ")"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): MI/SI >> 1; SI/Bidir explored up to ~2\n"
      "orders of magnitude; Bidir absolute times lowest; Sparse-LB grows\n"
      "with #CN and trails Bidirectional.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
