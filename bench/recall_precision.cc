// §5.7 reproduction: recall and precision of each algorithm against the
// workload ground truth (the generating join network's full result set).
//
// Paper shape: recall close to 100% for all algorithms with equally high
// precision at full recall — "almost all relevant answers were found
// before any irrelevant answer" — and identical relevant sets across
// algorithms.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueries = 60;

}  // namespace

int Main() {
  std::printf("=== §5.7: recall / precision on the §5.4 workload ===\n");
  BenchEnv env = MakeDblpEnv();
  std::printf("DBLP-like graph: %zu nodes / %zu edges; %zu queries\n\n",
              env.dg.graph.num_nodes(), env.dg.graph.num_edges(), kQueries);
  WorkloadGenerator gen(&env.db, &env.dg);

  WorkloadOptions options;
  options.num_queries = kQueries;
  options.answer_size = 5;
  options.min_keywords = 2;
  options.max_keywords = 5;
  options.thresholds = env.thresholds;
  options.seed = 571;
  auto queries = gen.Generate(options);
  std::printf("generated %zu queries\n", queries.size());
  std::vector<std::vector<std::vector<NodeId>>> measured;
  for (const WorkloadQuery& q : queries) {
    measured.push_back(MeasuredRelevantSubset(env, q));
  }

  TablePrinter table({"Algorithm", "Recall", "Precision@full-recall",
                      "Queries full recall"});

  for (Algorithm algorithm :
       {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
        Algorithm::kBidirectional}) {
    std::vector<double> recalls, precisions;
    size_t full = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const WorkloadQuery& q = queries[qi];
      SearchOptions so;
      so.k = 60;
      so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
      so.max_nodes_explored = 1'500'000;
      if (measured[qi].empty()) continue;
      RunStats stats =
          RunWorkloadQuery(env, q, algorithm, so, &measured[qi]);
      if (stats.relevant_total == 0) continue;
      double recall = static_cast<double>(stats.relevant_found) /
                      static_cast<double>(stats.relevant_total);
      recalls.push_back(recall);
      if (stats.complete) {
        full++;
        precisions.push_back(static_cast<double>(stats.relevant_found) /
                             static_cast<double>(
                                 stats.outputs_at_last_relevant));
      }
    }
    table.AddRow({AlgorithmName(algorithm),
                  TablePrinter::Fmt(100 * Mean(recalls), 1) + "%",
                  precisions.empty()
                      ? "n/a"
                      : TablePrinter::Fmt(100 * Mean(precisions), 1) + "%",
                  std::to_string(full) + "/" + std::to_string(recalls.size())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): recall ~100%% for every algorithm with\n"
      "high precision at full recall.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
