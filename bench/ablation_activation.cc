// Ablation (DESIGN.md §6): spreading-activation design choices.
//  1. Combination Max (paper default) vs Sum ("near queries" semantics).
//  2. Attenuation μ ∈ {0.25, 0.5, 0.75}.
//  3. Prestige seeding on/off (uniform prestige ⇒ seeds only reflect
//     origin-set size).
// Measured: nodes explored at last relevant generation + output time,
// geometric means over a DBLP workload.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueries = 30;

struct Variant {
  const char* label;
  ActivationCombine combine;
  double mu;
};

const Variant kVariants[] = {
    {"max, mu=0.25", ActivationCombine::kMax, 0.25},
    {"max, mu=0.50 (paper)", ActivationCombine::kMax, 0.50},
    {"max, mu=0.75", ActivationCombine::kMax, 0.75},
    {"sum, mu=0.50 (near queries)", ActivationCombine::kSum, 0.50},
};

}  // namespace

int Main() {
  std::printf("=== Ablation: activation spreading variants (Bidirectional) ===\n");
  BenchEnv env = MakeDblpEnv();
  WorkloadGenerator gen(&env.db, &env.dg);

  WorkloadOptions options;
  options.num_queries = kQueries;
  options.answer_size = 4;
  options.min_keywords = 2;
  options.max_keywords = 4;
  options.thresholds = env.thresholds;
  options.seed = 8080;
  auto queries = gen.Generate(options);
  std::printf("DBLP-like graph: %zu nodes; %zu queries\n\n",
              env.dg.graph.num_nodes(), queries.size());
  std::vector<std::vector<std::vector<NodeId>>> measured;
  for (const WorkloadQuery& q : queries) {
    measured.push_back(MeasuredRelevantSubset(env, q));
  }

  TablePrinter table({"Variant", "GeoMean explored", "GeoMean out ms",
                      "Recall", "n"});

  for (const Variant& variant : kVariants) {
    std::vector<double> explored, times, recalls;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const WorkloadQuery& q = queries[qi];
      SearchOptions so;
      so.k = 60;
      so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
      so.combine = variant.combine;
      so.mu = variant.mu;
      if (measured[qi].empty()) continue;
      RunStats stats = RunWorkloadQuery(env, q, Algorithm::kBidirectional, so,
                                        &measured[qi]);
      if (stats.relevant_total == 0) continue;
      recalls.push_back(static_cast<double>(stats.relevant_found) /
                        static_cast<double>(stats.relevant_total));
      if (stats.relevant_found == 0) continue;
      explored.push_back(static_cast<double>(stats.explored) + 1);
      times.push_back(stats.out_time * 1e3 + 1e-3);
    }
    table.AddRow({variant.label,
                  explored.empty() ? "n/a"
                                   : TablePrinter::Fmt(GeoMean(explored), 0),
                  times.empty() ? "n/a" : TablePrinter::Fmt(GeoMean(times)),
                  TablePrinter::Fmt(100 * Mean(recalls), 1) + "%",
                  std::to_string(explored.size())});
  }

  // Prestige seeding off: uniform prestige.
  {
    std::vector<double> explored, times, recalls;
    std::vector<double> uniform = UniformPrestige(env.dg.graph.num_nodes());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const WorkloadQuery& q = queries[qi];
      const auto& targets = measured[qi];
      if (targets.empty()) continue;
      SearchOptions so;
      so.k = 60;
      so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
      std::vector<std::vector<NodeId>> origins;
      for (const std::string& kw : q.keywords) {
        origins.push_back(env.dg.index.Match(kw));
      }
      SearchResult r = CreateSearcher(Algorithm::kBidirectional,
                                      env.dg.graph, uniform, so)
                           ->Search(origins);
      size_t found = 0;
      double out_time = r.metrics.elapsed_seconds;
      uint64_t expl = r.metrics.nodes_explored;
      size_t want = targets.size();
      for (size_t i = 0; i < r.answers.size(); ++i) {
        auto nodes = r.answers[i].Nodes();
        if (std::find(targets.begin(), targets.end(), nodes) ==
            targets.end()) {
          continue;
        }
        found++;
        out_time = r.metrics.output_times[i];
        expl = r.answers[i].explored_at_generation;
        if (found >= want) break;
      }
      if (want == 0) continue;
      recalls.push_back(static_cast<double>(found) /
                        static_cast<double>(want));
      if (found == 0) continue;
      explored.push_back(static_cast<double>(expl) + 1);
      times.push_back(out_time * 1e3 + 1e-3);
    }
    table.AddRow({"max, mu=0.50, uniform prestige",
                  explored.empty() ? "n/a"
                                   : TablePrinter::Fmt(GeoMean(explored), 0),
                  times.empty() ? "n/a" : TablePrinter::Fmt(GeoMean(times)),
                  TablePrinter::Fmt(100 * Mean(recalls), 1) + "%",
                  std::to_string(explored.size())});
  }

  table.Print(std::cout);
  std::printf(
      "\nExpected: paper default competitive; extreme mu hurts (0.25\n"
      "under-propagates the scent, 0.75 over-propagates and floods the\n"
      "frontier); sum mode remains correct but reorders exploration.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
