// Live-graph microbenchmark: update throughput and query latency under
// concurrent writes (docs/UPDATES.md).
//
// Engine::ApplyUpdate publishes each append-only batch as a new epoch
// snapshot, so its two interesting numbers are (a) how fast the writer
// can turn batches into epochs and (b) what that write stream does to
// reader latency. Rows, on a §5.4 DBLP generator graph:
//
//   apply / structural         — batches adding nodes+edges, prestige
//                                recomputed per publish (the default
//                                engine configuration);
//   apply / structural-uniform — same batches with compute_prestige
//                                off: the overlay-only publish cost;
//   apply / posting-only       — text-append batches (no structure
//                                change, prestige carried forward);
//   query / baseline           — closed-loop Engine::Query latency on
//                                a quiescent engine;
//   query / under-writes       — the same closed loop while a writer
//                                thread applies structural+posting
//                                batches back-to-back. Also reports the
//                                achieved concurrent updates/sec and
//                                the epoch lag: how many epochs were
//                                published while each query ran (how
//                                stale its snapshot was by completion).
//
// Built-in checks (exit nonzero on violation): epochs advance exactly
// once per batch, posting-only batches leave the structure epoch alone,
// every measured query's scores are non-increasing, and on the final
// (heavily overlaid) graph a shard_count=4 run reproduces the
// shard_count=1 answers byte-identically.
//
// --json emits the measurements for the CI bench-smoke artifact
// (BENCH_update.json); ms_per_query is the mean ms per ApplyUpdate for
// apply rows and the p50 query latency for query rows — the field
// compare_baseline.py treats as a latency metric.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueryRepetitions = 4;

/// Keyword queries of the benchmark stream. Kept as keywords (not
/// pre-resolved origins) so every Query call runs the full per-snapshot
/// path — resolve rides on whatever epoch the query pins.
std::vector<std::vector<std::string>> MakeQueries(BenchEnv* env,
                                                  const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  WorkloadOptions wopt;
  wopt.num_queries = 8;
  wopt.answer_size = 4;
  wopt.thresholds = env->thresholds;
  wopt.categories = {FreqCategory::kTiny, FreqCategory::kSmall};
  wopt.seed = 97;
  std::vector<std::vector<std::string>> queries;
  for (const WorkloadQuery& q : gen.Generate(wopt)) {
    std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
    bool all_matched = !origins.empty();
    for (const auto& s : origins) all_matched &= !s.empty();
    if (all_matched) queries.push_back(q.keywords);
  }
  return queries;
}

/// Deterministic update-batch stream. Structural batches add two typed
/// nodes (with indexed text drawn from the query vocabulary, so posting
/// overlays grow on terms the readers actually search) and a handful of
/// edges stitching them into the existing graph; posting-only batches
/// append vocabulary text to existing nodes.
class BatchStream {
 public:
  BatchStream(uint64_t seed, size_t base_nodes,
              std::vector<std::string> vocab)
      : rng_(seed), base_nodes_(base_nodes), vocab_(std::move(vocab)) {
    if (vocab_.empty()) vocab_.push_back("live");
  }

  UpdateBatch Structural() {
    UpdateBatch b;
    NodeId first = static_cast<NodeId>(base_nodes_ + grown_);
    for (int i = 0; i < 2; ++i) {
      UpdateBatch::NewNode n;
      n.type = "paper";
      n.label = "live-" + std::to_string(first + static_cast<NodeId>(i));
      n.text = Word() + " live";
      b.nodes.push_back(std::move(n));
    }
    for (int i = 0; i < 6; ++i) {
      UpdateBatch::NewEdge e;
      e.u = (i < 2) ? first + static_cast<NodeId>(i) : ExistingNode();
      e.v = ExistingNode();
      if (e.v == e.u) e.v = (e.v + 1) % base_nodes_;
      e.weight = 1.0 + static_cast<double>(rng_() % 4);
      b.edges.push_back(e);
    }
    grown_ += 2;
    return b;
  }

  UpdateBatch PostingOnly() {
    UpdateBatch b;
    for (int i = 0; i < 2; ++i) {
      UpdateBatch::NewText t;
      t.node = ExistingNode();
      t.text = Word();
      b.texts.push_back(std::move(t));
    }
    return b;
  }

 private:
  NodeId ExistingNode() {
    return static_cast<NodeId>(rng_() % (base_nodes_ + grown_));
  }
  const std::string& Word() { return vocab_[rng_() % vocab_.size()]; }

  std::mt19937 rng_;
  size_t base_nodes_;
  size_t grown_ = 0;
  std::vector<std::string> vocab_;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

bool ScoresNonIncreasing(const SearchResult& r) {
  for (size_t i = 1; i < r.answers.size(); ++i) {
    if (r.answers[i].score > r.answers[i - 1].score + 1e-12) return false;
  }
  return true;
}

struct ApplyRow {
  double ms_per_update = 0;
  double updates_per_second = 0;
  size_t batches = 0;
  uint64_t epoch = 0;
  uint64_t structure_epoch = 0;
};

/// Applies `count` batches from a fresh stream to a fresh engine copy
/// and times the loop. `structural` selects the batch shape.
ApplyRow RunApplyLoop(const DataGraph& dg, const EngineOptions& options,
                      const std::vector<std::string>& vocab, bool structural,
                      size_t count, bool* ok) {
  Engine engine(dg, options);
  BatchStream stream(structural ? 11 : 13, dg.graph.num_nodes(), vocab);
  std::vector<UpdateBatch> batches;
  batches.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batches.push_back(structural ? stream.Structural()
                                 : stream.PostingOnly());
  }
  Timer timer;
  for (const UpdateBatch& b : batches) engine.ApplyUpdate(b);
  double wall = timer.ElapsedSeconds();

  ApplyRow row;
  row.batches = count;
  row.ms_per_update = 1e3 * wall / static_cast<double>(count);
  row.updates_per_second = SafeRatio(static_cast<double>(count), wall);
  row.epoch = engine.epoch();
  row.structure_epoch = engine.structure_epoch();
  // Epoch bookkeeping contract: one epoch per batch; the structure
  // epoch moves only with structural batches.
  if (row.epoch != count) *ok = false;
  if (row.structure_epoch != (structural ? count : 0)) *ok = false;
  return row;
}

struct QueryRow {
  double p50_ms = 0;
  double p95_ms = 0;
  double qps = 0;
  double updates_per_second = 0;  // writer-side, under-writes only
  double epoch_lag_mean = 0;
  uint64_t epoch_lag_max = 0;
};

/// One closed-loop pass over the query set (kQueryRepetitions times).
/// When `writes` is true a writer thread applies alternating structural
/// and posting-only batches back-to-back for the duration.
QueryRow RunQueryLoop(Engine* engine,
                      const std::vector<std::vector<std::string>>& queries,
                      const std::vector<std::string>& vocab, bool writes,
                      bool* ok) {
  SearchOptions options;
  options.k = 10;
  options.max_nodes_explored = 100'000;

  std::atomic<bool> stop{false};
  std::atomic<size_t> applied{0};
  double writer_wall = 0;
  std::thread writer;
  if (writes) {
    writer = std::thread([&] {
      BatchStream stream(29, engine->graph().num_nodes(), vocab);
      Timer timer;
      while (!stop.load(std::memory_order_relaxed)) {
        engine->ApplyUpdate(applied.load(std::memory_order_relaxed) % 2 == 0
                                ? stream.Structural()
                                : stream.PostingOnly());
        applied.fetch_add(1, std::memory_order_relaxed);
      }
      writer_wall = timer.ElapsedSeconds();
    });
  }

  QueryRow row;
  std::vector<double> latencies;
  std::vector<uint64_t> lags;
  SearchContext context;
  Timer wall;
  for (size_t rep = 0; rep < kQueryRepetitions; ++rep) {
    for (const auto& keywords : queries) {
      uint64_t before = engine->epoch();
      Timer t;
      SearchResult r = engine->Query(keywords, Algorithm::kBidirectional,
                                     options, &context);
      latencies.push_back(t.ElapsedMillis());
      lags.push_back(engine->epoch() - before);
      if (!ScoresNonIncreasing(r)) *ok = false;
    }
  }
  double wall_seconds = wall.ElapsedSeconds();

  if (writes) {
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    row.updates_per_second =
        SafeRatio(static_cast<double>(applied.load()), writer_wall);
  }
  row.p50_ms = Percentile(latencies, 0.50);
  row.p95_ms = Percentile(latencies, 0.95);
  row.qps = SafeRatio(static_cast<double>(latencies.size()), wall_seconds);
  uint64_t lag_sum = 0;
  for (uint64_t l : lags) {
    lag_sum += l;
    row.epoch_lag_max = std::max(row.epoch_lag_max, l);
  }
  row.epoch_lag_mean =
      SafeRatio(static_cast<double>(lag_sum), static_cast<double>(lags.size()));
  return row;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Live graph: update throughput & latency under writes "
                "===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<std::vector<std::string>> queries = MakeQueries(&env, engine);
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }
  std::vector<std::string> vocab;
  for (const auto& q : queries) {
    for (const auto& kw : q) vocab.push_back(kw);
  }
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries x %zu "
                "reps per loop\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                queries.size(), kQueryRepetitions);
  }

  bool ok = true;

  // --- Apply throughput (each loop gets its own engine copy) ---------
  EngineOptions with_prestige;
  EngineOptions uniform;
  uniform.compute_prestige = false;
  struct ApplyCase {
    const char* mode;
    ApplyRow row;
  };
  ApplyCase apply_cases[] = {
      {"structural",
       RunApplyLoop(env.dg, with_prestige, vocab, /*structural=*/true, 32,
                    &ok)},
      {"structural-uniform",
       RunApplyLoop(env.dg, uniform, vocab, /*structural=*/true, 64, &ok)},
      {"posting-only",
       RunApplyLoop(env.dg, with_prestige, vocab, /*structural=*/false, 64,
                    &ok)},
  };

  // --- Query latency: quiescent baseline, then under a writer -------
  struct QueryCase {
    const char* mode;
    QueryRow row;
  };
  QueryCase query_cases[] = {
      {"baseline",
       RunQueryLoop(&engine, queries, vocab, /*writes=*/false, &ok)},
      {"under-writes",
       RunQueryLoop(&engine, queries, vocab, /*writes=*/true, &ok)},
  };

  // Determinism on the overlaid graph: after the write storm the live
  // engine is a deep overlay chain; sharded execution must still
  // reproduce the sequential answers byte-identically.
  {
    SearchOptions one;
    one.k = 10;
    one.max_nodes_explored = 100'000;
    SearchOptions four = one;
    four.shard_count = 4;
    for (const auto& keywords : queries) {
      SearchResult a = engine.Query(keywords, Algorithm::kBidirectional, one);
      SearchResult b = engine.Query(keywords, Algorithm::kBidirectional, four);
      bool same = a.answers.size() == b.answers.size();
      for (size_t i = 0; same && i < a.answers.size(); ++i) {
        same = SameAnswer(a.answers[i], b.answers[i]);
      }
      if (!same) ok = false;
    }
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_update");
    w.Field("scale", scale);
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Key("rows");
    w.BeginArray();
    for (const ApplyCase& c : apply_cases) {
      w.BeginObject();
      w.Field("class", "apply");
      w.Field("mode", c.mode);
      w.Field("threads", static_cast<uint64_t>(1));
      // The baseline-compared latency headline: mean publish cost.
      w.Field("ms_per_query", c.row.ms_per_update);
      w.Field("updates_per_second", c.row.updates_per_second);
      w.Field("batches", static_cast<uint64_t>(c.row.batches));
      w.Field("final_epoch", c.row.epoch);
      w.Field("final_structure_epoch", c.row.structure_epoch);
      w.EndObject();
    }
    for (const QueryCase& c : query_cases) {
      w.BeginObject();
      w.Field("class", "query");
      w.Field("algorithm", "bidirectional");
      w.Field("mode", c.mode);
      w.Field("threads", static_cast<uint64_t>(1));
      w.Field("ms_per_query", c.row.p50_ms);
      w.Field("p50_ms", c.row.p50_ms);
      w.Field("p95_ms", c.row.p95_ms);
      w.Field("qps", c.row.qps);
      w.Field("updates_per_second", c.row.updates_per_second);
      w.Field("epoch_lag_mean", c.row.epoch_lag_mean);
      w.Field("epoch_lag_max", c.row.epoch_lag_max);
      w.EndObject();
    }
    w.EndArray();
    w.Field("checks_ok", ok);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    TablePrinter apply_table(
        {"class", "mode", "ms/update", "updates/s", "epoch", "struct"});
    for (const ApplyCase& c : apply_cases) {
      apply_table.AddRow({"apply", c.mode,
                          TablePrinter::Fmt(c.row.ms_per_update, 3),
                          TablePrinter::Fmt(c.row.updates_per_second, 1),
                          std::to_string(c.row.epoch),
                          std::to_string(c.row.structure_epoch)});
    }
    TablePrinter query_table({"class", "mode", "p50 ms", "p95 ms", "qps",
                              "updates/s", "lag mean", "lag max"});
    for (const QueryCase& c : query_cases) {
      query_table.AddRow({"query", c.mode, TablePrinter::Fmt(c.row.p50_ms, 3),
                          TablePrinter::Fmt(c.row.p95_ms, 3),
                          TablePrinter::Fmt(c.row.qps, 1),
                          TablePrinter::Fmt(c.row.updates_per_second, 1),
                          TablePrinter::Fmt(c.row.epoch_lag_mean, 2),
                          std::to_string(c.row.epoch_lag_max)});
    }
    std::printf("\n");
    apply_table.Print(std::cout);
    std::printf("\n");
    query_table.Print(std::cout);
    std::printf(
        "\nepoch lag = epochs published while a query ran (snapshot\n"
        "staleness at completion). Checks: epoch bookkeeping, score\n"
        "monotonicity, sharded == sequential on the overlaid graph: %s\n",
        ok ? "ok" : "FAILED");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
