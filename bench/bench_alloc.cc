#include "bench_alloc.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// [[maybe_unused]]: with the override compiled out nothing increments
// them, but the accessors below still read them (as zeros).
[[maybe_unused]] std::atomic<uint64_t> g_alloc_count{0};
[[maybe_unused]] std::atomic<uint64_t> g_alloc_bytes{0};

}  // namespace

#if BANKS_BENCH_ALLOC_COUNT

// Counting global allocator. Lives in bench_common so every bench that
// reports allocations shares one definition; pulled into the binary by
// any reference to CurrentAllocCounts().
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // BANKS_BENCH_ALLOC_COUNT

namespace banks::bench {

AllocCounts CurrentAllocCounts() {
  return AllocCounts{g_alloc_count.load(std::memory_order_relaxed),
                     g_alloc_bytes.load(std::memory_order_relaxed)};
}

bool AllocCounterEnabled() {
#if BANKS_BENCH_ALLOC_COUNT
  return true;
#else
  return false;
#endif
}

}  // namespace banks::bench
