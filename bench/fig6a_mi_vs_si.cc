// Figure 6(a) reproduction: MI-Backward / SI-Backward time ratio as a
// function of keyword count (2..7), for small-origin and large-origin
// query classes, on the §5.4 DBLP workload (relevant answer size 5).
//
// Paper shape: SI wins by ~an order of magnitude for most configurations;
// the win is marginal for 2 keywords with small origins (MI's iterator
// overhead is low there) and grows with keyword count and origin size.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueriesPerCell = 10;

}  // namespace

int Main() {
  std::printf("=== Figure 6(a): MI-Backward / SI-Backward time ratio ===\n");
  BenchEnv env = MakeDblpEnv();
  std::printf("DBLP-like graph: %zu nodes / %zu edges\n\n",
              env.dg.graph.num_nodes(), env.dg.graph.num_edges());
  WorkloadGenerator gen(&env.db, &env.dg);

  TablePrinter table({"#Keywords", "Origin<small ratio", "n", "Origin>large ratio",
                      "n"});

  for (size_t kw = 2; kw <= 7; ++kw) {
    std::vector<double> small_ratios, large_ratios;
    for (int klass = 0; klass < 2; ++klass) {
      WorkloadOptions options;
      options.num_queries = kQueriesPerCell;
      options.answer_size = 5;
      options.thresholds = env.thresholds;
      // Small-origin: all keywords tiny/small; large-origin: force one
      // large keyword (the paper classifies by whether >8000 records
      // matched at least one keyword).
      options.categories.assign(kw, FreqCategory::kAny);
      if (klass == 0) {
        for (auto& c : options.categories) c = FreqCategory::kTiny;
        options.categories.back() = FreqCategory::kSmall;
      } else {
        for (auto& c : options.categories) c = FreqCategory::kTiny;
        options.categories.back() = FreqCategory::kLarge;
      }
      options.seed = 660 + kw * 17 + klass;

      SearchOptions so;
      so.k = 60;
      so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
      so.max_nodes_explored = 1'500'000;

      for (const WorkloadQuery& q : gen.Generate(options)) {
        auto measured = MeasuredRelevantSubset(env, q);
      if (measured.empty()) continue;  // no measurable targets
        RunStats mi =
            RunWorkloadQuery(env, q, Algorithm::kBackwardMI, so, &measured);
        RunStats si =
            RunWorkloadQuery(env, q, Algorithm::kBackwardSI, so, &measured);
        if (mi.relevant_found == 0 || si.relevant_found == 0) continue;
        double ratio = SafeRatio(mi.out_time, si.out_time);
        (klass == 0 ? small_ratios : large_ratios).push_back(ratio);
      }
    }
    table.AddRow({std::to_string(kw),
                  small_ratios.empty() ? "n/a"
                                       : TablePrinter::Fmt(GeoMean(small_ratios)),
                  std::to_string(small_ratios.size()),
                  large_ratios.empty() ? "n/a"
                                       : TablePrinter::Fmt(GeoMean(large_ratios)),
                  std::to_string(large_ratios.size())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): ratios > 1 everywhere; marginal for 2\n"
      "small-origin keywords; roughly an order of magnitude elsewhere,\n"
      "larger for large origins.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
