#ifndef BANKS_BENCH_BENCH_COMMON_H_
#define BANKS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datasets/dblp_gen.h"
#include "datasets/imdb_gen.h"
#include "datasets/patents_gen.h"
#include "datasets/workload.h"
#include "prestige/pagerank.h"
#include "relational/graph_builder.h"
#include "relational/sparse.h"
#include "search/searcher.h"

namespace banks::bench {

/// One benchmark dataset: relational source, extracted data graph,
/// precomputed prestige. Sizes are laptop-scale stand-ins for the
/// paper's DBLP (2M nodes), IMDB and US-Patents (4M nodes) datasets;
/// the skew knobs reproduce the pathologies (frequent terms, hubs).
struct BenchEnv {
  std::string name;
  Database db;
  DataGraph dg;
  std::vector<double> prestige;

  /// Origin-size category thresholds scaled to this dataset (set by the
  /// factory from the paper's 2M-node thresholds by node-count ratio).
  FreqThresholds thresholds;
};

/// Scale factor 1.0 ≈ 60k-node DBLP graph. Benches default to 1.0;
/// pass --scale to stress bigger graphs.
BenchEnv MakeDblpEnv(double scale = 1.0);
BenchEnv MakeImdbEnv(double scale = 1.0);
BenchEnv MakePatentsEnv(double scale = 1.0);

/// Measurement of one (query, algorithm) run following §5.2: metrics
/// are taken at the last relevant result (or the 10th if more).
struct RunStats {
  size_t relevant_total = 0;
  size_t relevant_found = 0;     // among the top-k outputs
  bool complete = false;         // found the capped relevant set
  double out_time = 0;           // seconds to OUTPUT the last relevant
  double gen_time = 0;           // seconds to GENERATE the last relevant
  uint64_t explored = 0;         // nodes explored at that generation
  uint64_t touched = 0;          // nodes touched at that generation
  size_t outputs_at_last_relevant = 0;  // for precision@full recall
  SearchMetrics metrics;         // whole-search counters
};

/// The measured relevant subset (§5.2 methodology): the paper examined
/// the *top 20–30 outputs* for relevant answers and measured at the last
/// (or 10th). Our CN ground truth is score-blind, so we rank it by the
/// ranking model: an exhaustive-ish reference run scores the relevant
/// trees and the best ≤cap become the measured targets. Falls back to
/// the raw relevant set if the reference surfaces none.
/// Only relevant answers surfacing within the reference's first
/// `within_top` outputs qualify (the paper's "top 20 to 30 results ...
/// were examined"); an empty return means the query has no measurable
/// targets and should be skipped.
std::vector<std::vector<NodeId>> MeasuredRelevantSubset(
    const BenchEnv& env, const WorkloadQuery& query, size_t cap = 10,
    size_t within_top = 60);

/// Runs one algorithm over a workload query and measures against the
/// given relevant subset (pass MeasuredRelevantSubset output so all
/// algorithms chase identical targets); nullptr uses the query's full
/// ground-truth set.
RunStats RunWorkloadQuery(const BenchEnv& env, const WorkloadQuery& query,
                          Algorithm algorithm, const SearchOptions& options,
                          const std::vector<std::vector<NodeId>>* measured =
                              nullptr);

/// Runs an algorithm on raw keywords; "relevant" is taken to be the
/// top-min(10,k) answers of the reference algorithm (used by the
/// Figure-5 sample queries where the paper judged relevance manually).
RunStats RunSampleQuery(const BenchEnv& env,
                        const std::vector<std::string>& keywords,
                        Algorithm algorithm, const SearchOptions& options,
                        const std::vector<std::vector<NodeId>>& relevant);

/// Top-k answer node sets of one algorithm (reference relevance for the
/// sample queries).
std::vector<std::vector<NodeId>> ReferenceAnswers(
    const BenchEnv& env, const std::vector<std::string>& keywords,
    size_t k, const SearchOptions& options);

/// Sparse lower bound for a query (§5.2): evaluates all CNs up to
/// max_cn_size on warm indexes; returns (seconds, #CN evaluated).
std::pair<double, size_t> SparseLowerBound(
    BenchEnv* env, const std::vector<std::string>& keywords,
    size_t max_cn_size);

/// Ratio helper: a/b guarding zero denominators.
double SafeRatio(double a, double b);

/// Minimal JSON emitter for bench `--json` output (the CI bench-smoke
/// job uploads these as BENCH_*.json artifacts). No dependency, no
/// escaping beyond what bench strings need (quotes/backslashes).
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Field("bench", "micro_batch"); w.Field("qps", 123.4);
///   w.Key("rows"); w.BeginArray();
///   ... w.BeginObject(); w.Field(...); w.EndObject(); ...
///   w.EndArray(); w.EndObject();
///   std::cout << w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Emits the key of a nested object/array field; follow with Begin*.
  void Key(const std::string& key);
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, int value);
  void Field(const std::string& key, bool value);
  const std::string& str() const { return out_; }

 private:
  void Separate();
  void Escaped(const std::string& s);

  std::string out_;
  bool needs_comma_ = false;
};

}  // namespace banks::bench

#endif  // BANKS_BENCH_BENCH_COMMON_H_
