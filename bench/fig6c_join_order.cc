// Figure 6(c) reproduction: the "join order" experiment (§5.6). Queries
// have 4 keywords and relevant-answer size 3; keywords are drawn from
// frequency categories Tiny/Small/Medium/Large. For each query type we
// report the SI-Backward / Bidirectional time ratio and nodes-explored
// ratio.
//
// Paper shape: Bidirectional wins everywhere; the speedup grows with the
// spread between origin sizes — (T,T,T,L) is the big win, (M,M,M,M) and
// (M,L,L,L) are the small ones.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueriesPerType = 10;

const FreqCategory T = FreqCategory::kTiny;
const FreqCategory S = FreqCategory::kSmall;
const FreqCategory M = FreqCategory::kMedium;
const FreqCategory L = FreqCategory::kLarge;

struct QueryType {
  const char* label;
  std::vector<FreqCategory> categories;
};

// The paper shows eight selected combinations A..H; its figure caption
// lists (T,S,S,S)-style signatures. We sweep a spread-ordered selection.
const QueryType kTypes[] = {
    {"A=(T,T,T,T)", {T, T, T, T}}, {"B=(T,T,T,S)", {T, T, T, S}},
    {"C=(T,S,S,S)", {T, S, S, S}}, {"D=(T,T,T,L)", {T, T, T, L}},
    {"E=(T,S,M,L)", {T, S, M, L}}, {"F=(S,S,S,S)", {S, S, S, S}},
    {"G=(M,M,M,M)", {M, M, M, M}}, {"H=(M,L,L,L)", {M, L, L, L}},
};

}  // namespace

int Main() {
  std::printf("=== Figure 6(c): join-order experiment (4 kw, answer size 3) ===\n");
  BenchEnv env = MakeDblpEnv();
  std::printf("DBLP-like graph: %zu nodes / %zu edges\n",
              env.dg.graph.num_nodes(), env.dg.graph.num_edges());
  std::printf("Category thresholds: T<=%zu S=[%zu,%zu] M=[%zu,%zu] L>=%zu\n\n",
              env.thresholds.tiny_max, env.thresholds.small_min,
              env.thresholds.small_max, env.thresholds.medium_min,
              env.thresholds.medium_max, env.thresholds.large_min);
  WorkloadGenerator gen(&env.db, &env.dg);

  TablePrinter table(
      {"Type", "SI/Bi time", "SI/Bi explored", "queries"});

  for (const QueryType& type : kTypes) {
    WorkloadOptions options;
    options.num_queries = kQueriesPerType;
    options.answer_size = 3;
    options.categories = type.categories;
    options.thresholds = env.thresholds;
    options.seed = 4242 + (&type - kTypes) * 997;

    SearchOptions so;
    so.k = 60;
    so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
    so.max_nodes_explored = 1'500'000;

    std::vector<double> time_ratios, expl_ratios;
    for (const WorkloadQuery& q : gen.Generate(options)) {
      auto measured = MeasuredRelevantSubset(env, q);
      if (measured.empty()) continue;  // no measurable targets
      RunStats si =
          RunWorkloadQuery(env, q, Algorithm::kBackwardSI, so, &measured);
      RunStats bi = RunWorkloadQuery(env, q, Algorithm::kBidirectional, so,
                                     &measured);
      if (si.relevant_found == 0 || bi.relevant_found == 0) continue;
      time_ratios.push_back(SafeRatio(si.out_time, bi.out_time));
      expl_ratios.push_back(SafeRatio(static_cast<double>(si.explored),
                                      static_cast<double>(bi.explored)));
    }
    table.AddRow({type.label,
                  time_ratios.empty() ? "n/a"
                                      : TablePrinter::Fmt(GeoMean(time_ratios)),
                  expl_ratios.empty() ? "n/a"
                                      : TablePrinter::Fmt(GeoMean(expl_ratios)),
                  std::to_string(time_ratios.size())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): explored ratio largest for types mixing\n"
      "tiny keywords with one large keyword (dynamic per-tuple join order\n"
      "pays off); smallest for uniform mixes. Time ratios carry the C++\n"
      "constants caveat documented in EXPERIMENTS.md.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
