// Engine::QueryBatch throughput microbenchmark.
//
// Runs a §5.4 DBLP generator workload (with deliberate duplicate
// keyword sets, as a query stream from many users would have) through:
//   * sequential warm — the PR-1 best case: a loop of Engine::Query
//     calls sharing one SearchContext, and
//   * Engine::QueryBatch at 1/2/4/8 worker threads over a shared
//     SearchContextPool.
// Reports queries/sec and the speedup over sequential warm, and checks
// that every batch configuration returns answers identical to the
// sequential run (thread count must never change results).
//
// --json emits the measurements as a JSON document for the CI
// bench-smoke artifact (BENCH_batch.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 3;
const size_t kThreadCounts[] = {1, 2, 4, 8};

struct Measurement {
  std::string mode;  // "sequential" or "batch"
  size_t threads = 1;
  double seconds = 0;
  double qps = 0;
  double speedup = 1.0;
  size_t origin_cache_hits = 0;
  double allocs_per_query = 0;  // all threads, timed reps only
};

/// Builds the benchmark query stream: two §5.6-ish keyword classes, each
/// spec duplicated once (stream position shuffled by interleaving) so
/// the batch origin cache has real hits.
std::vector<BatchQuerySpec> MakeSpecs(BenchEnv* env, const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<BatchQuerySpec> specs;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 17 + kw * 31;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      // Keep only fully-matched queries so every spec does real work.
      bool all_matched = !q.keywords.empty();
      for (const auto& origins : engine.Resolve(q.keywords)) {
        all_matched &= !origins.empty();
      }
      if (all_matched) specs.push_back(BatchQuerySpec{q.keywords, {}});
    }
  }
  // Interleave a duplicate of every query: positions 2i / 2i+1 share a
  // keyword set, like repeated queries arriving in one service window.
  std::vector<BatchQuerySpec> doubled;
  doubled.reserve(specs.size() * 2);
  for (const BatchQuerySpec& s : specs) {
    doubled.push_back(s);
    doubled.push_back(s);
  }
  return doubled;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Engine::QueryBatch: threaded batch vs sequential ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<BatchQuerySpec> specs = MakeSpecs(&env, engine);
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries "
                "(50%% duplicate keyword sets) x %zu repetitions, "
                "%u hardware threads\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                specs.size(), kRepetitions,
                std::thread::hardware_concurrency());
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }

  SearchOptions options;
  options.k = 10;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 100'000;

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_batch");
    w.Field("scale", scale);
    w.Field("alloc_counter_enabled", AllocCounterEnabled());
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("queries_per_rep", static_cast<uint64_t>(specs.size()));
    w.Field("repetitions", static_cast<uint64_t>(kRepetitions));
    w.Field("hardware_concurrency",
            static_cast<uint64_t>(std::thread::hardware_concurrency()));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table({"Algorithm", "mode", "threads", "ms/q", "q/s",
                      "speedup", "cache hits", "allocs/q"});
  const size_t runs = specs.size() * kRepetitions;
  bool all_identical = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    // Sequential warm baseline: one context across the whole stream,
    // per-query resolve (what a pre-batch caller would write).
    std::vector<SearchResult> reference;
    SearchContext warm_context;
    for (const BatchQuerySpec& s : specs) {  // untimed warm-up
      (void)engine.Query(s.keywords, algorithm, options, &warm_context);
    }
    const AllocCounts seq_allocs0 = CurrentAllocCounts();
    Timer timer;
    for (size_t rep = 0; rep < kRepetitions; ++rep) {
      for (const BatchQuerySpec& s : specs) {
        SearchResult r =
            engine.Query(s.keywords, algorithm, options, &warm_context);
        if (rep == 0) reference.push_back(std::move(r));
      }
    }
    Measurement seq;
    seq.mode = "sequential";
    seq.seconds = timer.ElapsedSeconds();
    seq.qps = runs / seq.seconds;
    seq.allocs_per_query =
        static_cast<double>(CurrentAllocCounts().count - seq_allocs0.count) /
        runs;

    std::vector<Measurement> rows;
    rows.push_back(seq);
    SearchContextPool pool;
    for (size_t threads : kThreadCounts) {
      BatchOptions bopt;
      bopt.num_threads = threads;
      bopt.pool = &pool;
      (void)engine.QueryBatch(specs, algorithm, options, bopt);  // warm-up
      const AllocCounts batch_allocs0 = CurrentAllocCounts();
      Timer batch_timer;
      BatchResult last;
      for (size_t rep = 0; rep < kRepetitions; ++rep) {
        last = engine.QueryBatch(specs, algorithm, options, bopt);
      }
      Measurement m;
      m.mode = "batch";
      m.threads = threads;
      m.seconds = batch_timer.ElapsedSeconds();
      m.qps = runs / m.seconds;
      m.allocs_per_query =
          static_cast<double>(CurrentAllocCounts().count -
                              batch_allocs0.count) /
          runs;
      m.speedup = SafeRatio(seq.seconds, m.seconds);
      m.origin_cache_hits = last.origin_cache_hits;
      rows.push_back(m);

      // Thread count must never change results: every answer of every
      // query must match the sequential run field-for-field.
      bool identical = last.results.size() == reference.size();
      for (size_t i = 0; identical && i < reference.size(); ++i) {
        identical = last.results[i].answers.size() ==
                    reference[i].answers.size();
        for (size_t j = 0; identical && j < reference[i].answers.size();
             ++j) {
          identical =
              SameAnswer(last.results[i].answers[j], reference[i].answers[j]);
        }
      }
      if (!identical) {
        std::fprintf(stderr,
                     "ERROR: %s batch(%zu threads) answers differ from "
                     "sequential\n",
                     AlgorithmName(algorithm), threads);
        all_identical = false;
      }
    }

    for (const Measurement& m : rows) {
      if (json) {
        w.BeginObject();
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", m.mode);
        w.Field("threads", static_cast<uint64_t>(m.threads));
        w.Field("ms_per_query", 1e3 * m.seconds / runs);
        w.Field("qps", m.qps);
        w.Field("speedup_vs_sequential", m.speedup);
        w.Field("origin_cache_hits", static_cast<uint64_t>(m.origin_cache_hits));
        w.Field("allocs_per_query", m.allocs_per_query);
        w.EndObject();
      } else {
        table.AddRow({AlgorithmName(algorithm), m.mode,
                      std::to_string(m.threads),
                      TablePrinter::Fmt(1e3 * m.seconds / runs, 3),
                      TablePrinter::Fmt(m.qps, 1),
                      TablePrinter::Fmt(m.speedup, 2),
                      std::to_string(m.origin_cache_hits),
                      TablePrinter::Fmt(m.allocs_per_query, 0)});
      }
    }
  }

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nsequential = Engine::Query loop on one warm SearchContext;\n"
        "batch = Engine::QueryBatch over a shared SearchContextPool.\n"
        "cache hits = duplicate keyword sets that skipped index lookups\n"
        "(per batch call). Answers are verified identical across modes.\n");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
