// Sharded-frontier latency microbenchmark.
//
// Runs a §5.4 DBLP generator workload through each algorithm at
// shard_count 1 (the sequential path) and 2/4/8, sharing one warm
// SearchContext per stream and one SearchContextPool for shard-worker
// scratch. Reports per-query latency and the speedup over 1 shard, for
// both the loose and tight release bounds (the tight bound's NRA scans
// and the materialization batches are where shard workers engage).
//
// Built-in equivalence check: every sharded configuration must return
// answers identical (SameAnswer) to shard_count = 1 — the bench exits
// nonzero otherwise, so CI catches a divergence even outside the unit
// suite. On a 1-hardware-thread container the >1-shard rows can only
// show coordination overhead, not scaling; the CI bench-smoke job on
// multicore runners records the real curve.
//
// --json emits the measurements for the CI bench-smoke artifact
// (BENCH_shard.json). Each row carries, besides the latency, the BSP
// round counters of the run (rounds, cross-shard messages, mailbox
// high-water — all deterministic, so they double as regression canaries
// for the round structure itself) and ms_per_query_ratio_vs_1shard, the
// per-bound-mode scaling curve: compare_baseline.py diffs it like a
// latency (higher = worse), so a configuration whose multi-shard rows
// drift relative to its own 1-shard row is flagged even when absolute
// latency moved for machine reasons.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "search/context_pool.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 3;
const uint32_t kShardCounts[] = {1, 2, 4, 8};

struct BoundCase {
  BoundMode bound;
  const char* name;
};
const BoundCase kBounds[] = {{BoundMode::kLoose, "loose"},
                             {BoundMode::kTight, "tight"}};

/// Resolved origin sets of the benchmark stream (resolved once so every
/// configuration searches identical origins).
std::vector<std::vector<std::vector<NodeId>>> MakeQueries(
    BenchEnv* env, const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<std::vector<std::vector<NodeId>>> queries;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 8;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 23 + kw * 41;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
      bool all_matched = !origins.empty();
      for (const auto& s : origins) all_matched &= !s.empty();
      if (all_matched) queries.push_back(std::move(origins));
    }
  }
  return queries;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Sharded frontier: 1/2/4/8-shard query latency ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine engine(env.dg, EngineOptions{});
  std::vector<std::vector<std::vector<NodeId>>> queries =
      MakeQueries(&env, engine);
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu queries x %zu "
                "repetitions, %u hardware threads\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                queries.size(), kRepetitions,
                std::thread::hardware_concurrency());
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_shard");
    w.Field("scale", scale);
    w.Field("alloc_counter_enabled", AllocCounterEnabled());
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("queries_per_rep", static_cast<uint64_t>(queries.size()));
    w.Field("repetitions", static_cast<uint64_t>(kRepetitions));
    w.Field("hardware_concurrency",
            static_cast<uint64_t>(std::thread::hardware_concurrency()));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table({"Algorithm", "bound", "shards", "ms/q", "q/s", "speedup",
                      "rounds/q", "xmsg/q", "allocs/q"});
  const size_t runs = queries.size() * kRepetitions;
  bool all_identical = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    for (const BoundCase& bc : kBounds) {
      SearchOptions options;
      options.k = 10;
      options.bound = bc.bound;
      options.max_nodes_explored = 100'000;

      double one_shard_seconds = 0;
      std::vector<SearchResult> reference;
      SearchContextPool worker_pool;
      for (uint32_t shards : kShardCounts) {
        options.shard_count = shards;
        options.shard_pool = &worker_pool;
        SearchContext warm_context;
        for (const auto& origins : queries) {  // untimed warm-up
          (void)engine.QueryResolved(origins, algorithm, options,
                                     &warm_context);
        }
        const AllocCounts allocs0 = CurrentAllocCounts();
        Timer timer;
        std::vector<SearchResult> first_rep;
        for (size_t rep = 0; rep < kRepetitions; ++rep) {
          for (const auto& origins : queries) {
            SearchResult r = engine.QueryResolved(origins, algorithm,
                                                  options, &warm_context);
            if (rep == 0) first_rep.push_back(std::move(r));
          }
        }
        double seconds = timer.ElapsedSeconds();
        double allocs_per_query =
            static_cast<double>(CurrentAllocCounts().count - allocs0.count) /
            runs;
        // Deterministic round counters of the first repetition (identical
        // in every repetition by the BSP determinism contract).
        uint64_t rounds_total = 0, xmsgs_total = 0, max_box = 0;
        for (const SearchResult& r : first_rep) {
          rounds_total += r.metrics.bsp_rounds;
          xmsgs_total += r.metrics.cross_shard_messages;
          max_box = std::max<uint64_t>(max_box, r.metrics.max_mailbox_depth);
        }
        const double rounds_per_query =
            static_cast<double>(rounds_total) / queries.size();
        const double xmsgs_per_query =
            static_cast<double>(xmsgs_total) / queries.size();
        if (shards == 1) {
          one_shard_seconds = seconds;
          reference = std::move(first_rep);
        } else {
          // Shard count must never change results.
          bool identical = first_rep.size() == reference.size();
          for (size_t i = 0; identical && i < reference.size(); ++i) {
            identical =
                first_rep[i].answers.size() == reference[i].answers.size();
            for (size_t j = 0; identical && j < reference[i].answers.size();
                 ++j) {
              identical = SameAnswer(first_rep[i].answers[j],
                                     reference[i].answers[j]);
            }
          }
          if (!identical) {
            std::fprintf(stderr,
                         "ERROR: %s (%s bound) at %u shards differs from "
                         "1 shard\n",
                         AlgorithmName(algorithm), bc.name, shards);
            all_identical = false;
          }
        }

        double speedup = shards == 1
                             ? 1.0
                             : SafeRatio(one_shard_seconds, seconds);
        // Scaling curve in latency semantics (higher = worse) so the
        // baseline diff flags relative multi-shard drift.
        double ratio_vs_1shard =
            shards == 1 ? 1.0 : SafeRatio(seconds, one_shard_seconds);
        if (json) {
          w.BeginObject();
          w.Field("class", bc.name);
          w.Field("algorithm", AlgorithmName(algorithm));
          w.Field("mode", "sharded");
          w.Field("threads", static_cast<uint64_t>(shards));
          w.Field("ms_per_query", 1e3 * seconds / runs);
          w.Field("qps", runs / seconds);
          w.Field("speedup_vs_1shard", speedup);
          w.Field("ms_per_query_ratio_vs_1shard", ratio_vs_1shard);
          w.Field("bsp_rounds_per_query", rounds_per_query);
          w.Field("cross_shard_msgs_per_query", xmsgs_per_query);
          w.Field("max_mailbox_depth", max_box);
          w.Field("allocs_per_query", allocs_per_query);
          w.EndObject();
        } else {
          table.AddRow({AlgorithmName(algorithm), bc.name,
                        std::to_string(shards),
                        TablePrinter::Fmt(1e3 * seconds / runs, 3),
                        TablePrinter::Fmt(runs / seconds, 1),
                        TablePrinter::Fmt(speedup, 2),
                        TablePrinter::Fmt(rounds_per_query, 0),
                        TablePrinter::Fmt(xmsgs_per_query, 0),
                        TablePrinter::Fmt(allocs_per_query, 0)});
        }
      }
    }
  }

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nEvery row reuses one warm SearchContext across the stream; shard\n"
        "worker scratch comes from one shared SearchContextPool. Answers\n"
        "are verified identical across all shard counts (exit 1 on any\n"
        "difference). On a single hardware thread multi-shard rows measure\n"
        "coordination overhead only.\n");
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
