#ifndef BANKS_BENCH_BENCH_ALLOC_H_
#define BANKS_BENCH_BENCH_ALLOC_H_

#include <cstdint>

namespace banks::bench {

/// Process-wide heap allocation counters, fed by a counting global
/// `operator new` compiled into bench_common when the CMake option
/// BANKS_BENCH_ALLOC_COUNT is ON (the default). With the option OFF the
/// override is compiled out and the counters stay at zero — benches
/// should gate allocation reporting on AllocCounterEnabled().
///
/// Counting is a pair of relaxed atomic increments per allocation:
/// cheap enough to leave on for timing runs, and thread-safe so
/// micro_batch's worker threads are all counted.
struct AllocCounts {
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// Snapshot of the counters since process start. Subtract two snapshots
/// to charge a region: `auto a = CurrentAllocCounts(); ...;
/// auto delta = CurrentAllocCounts().count - a.count;`
AllocCounts CurrentAllocCounts();

/// True when the counting operator new override is compiled in.
bool AllocCounterEnabled();

}  // namespace banks::bench

#endif  // BANKS_BENCH_BENCH_ALLOC_H_
