#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/timer.h"

namespace banks::bench {
namespace {

/// Scales the paper's origin-size categories (defined on a ~2M-node
/// graph: T 1-500, S 1000-2000, M 2500-5000, L >7000) down by the node
/// ratio of our synthetic graph.
FreqThresholds ScaledThresholds(size_t num_nodes) {
  double f = static_cast<double>(num_nodes) / 2'000'000.0;
  auto scale = [&](double paper_value, size_t min_value) {
    return std::max<size_t>(min_value,
                            static_cast<size_t>(paper_value * f));
  };
  FreqThresholds t;
  t.tiny_max = scale(500, 8);
  t.small_min = scale(1000, t.tiny_max + 1);
  t.small_max = scale(2000, t.small_min + 8);
  t.medium_min = scale(2500, t.small_max + 1);
  t.medium_max = scale(5000, t.medium_min + 8);
  t.large_min = scale(7000, t.medium_max + 1);
  return t;
}

BenchEnv FinishEnv(std::string name, Database db) {
  BenchEnv env;
  env.name = std::move(name);
  env.db = std::move(db);
  env.dg = BuildDataGraph(env.db);
  env.prestige = ComputePrestige(env.dg.graph);
  env.thresholds = ScaledThresholds(env.dg.graph.num_nodes());
  return env;
}

}  // namespace

BenchEnv MakeDblpEnv(double scale) {
  DblpConfig config;
  config.num_authors = static_cast<size_t>(8000 * scale);
  config.num_papers = static_cast<size_t>(16000 * scale);
  config.num_conferences = static_cast<size_t>(150 * scale) + 10;
  config.vocab_size = static_cast<size_t>(12000 * scale) + 500;
  config.surname_pool = static_cast<size_t>(2500 * scale) + 100;
  config.seed = 20050830;  // VLDB'05 in Trondheim
  return FinishEnv("DBLP", GenerateDblp(config));
}

BenchEnv MakeImdbEnv(double scale) {
  ImdbConfig config;
  config.num_people = static_cast<size_t>(9000 * scale);
  config.num_movies = static_cast<size_t>(14000 * scale);
  config.vocab_size = static_cast<size_t>(8000 * scale) + 400;
  config.surname_pool = static_cast<size_t>(2200 * scale) + 100;
  config.seed = 1894;  // first motion picture studio
  return FinishEnv("IMDB", GenerateImdb(config));
}

BenchEnv MakePatentsEnv(double scale) {
  PatentsConfig config;
  config.num_inventors = static_cast<size_t>(10000 * scale);
  config.num_patents = static_cast<size_t>(18000 * scale);
  config.num_assignees = static_cast<size_t>(300 * scale) + 20;
  config.vocab_size = static_cast<size_t>(14000 * scale) + 500;
  config.surname_pool = static_cast<size_t>(2800 * scale) + 100;
  config.seed = 1790;  // first US patent act
  return FinishEnv("PATENTS", GeneratePatents(config));
}

namespace {

RunStats MeasureAgainstRelevant(
    const BenchEnv& env, const std::vector<std::vector<NodeId>>& origins,
    const std::vector<std::vector<NodeId>>& relevant, Algorithm algorithm,
    const SearchOptions& options) {
  RunStats stats;
  stats.relevant_total = std::min<size_t>(relevant.size(), 10);

  SearchResult r = CreateSearcher(algorithm, env.dg.graph, env.prestige,
                                  options)
                       ->Search(origins);
  stats.metrics = r.metrics;

  size_t found = 0;
  for (size_t i = 0; i < r.answers.size(); ++i) {
    std::vector<NodeId> nodes = r.answers[i].Nodes();
    if (std::find(relevant.begin(), relevant.end(), nodes) ==
        relevant.end()) {
      continue;
    }
    found++;
    stats.out_time = r.metrics.output_times[i];
    stats.gen_time = r.answers[i].generated_at;
    stats.explored = r.answers[i].explored_at_generation;
    stats.touched = r.answers[i].touched_at_generation;
    stats.outputs_at_last_relevant = i + 1;
    if (found >= stats.relevant_total) break;
  }
  stats.relevant_found = found;
  stats.complete = (found >= stats.relevant_total) && found > 0;
  if (found == 0) {
    // Nothing relevant surfaced: charge the whole search.
    stats.out_time = r.metrics.elapsed_seconds;
    stats.gen_time = r.metrics.elapsed_seconds;
    stats.explored = r.metrics.nodes_explored;
    stats.touched = r.metrics.nodes_touched;
    stats.outputs_at_last_relevant = r.answers.size();
  }
  return stats;
}

}  // namespace

std::vector<std::vector<NodeId>> MeasuredRelevantSubset(
    const BenchEnv& env, const WorkloadQuery& query, size_t cap,
    size_t within_top) {
  std::vector<std::vector<NodeId>> origins;
  for (const std::string& kw : query.keywords) {
    origins.push_back(env.dg.index.Match(kw));
  }
  SearchOptions options;
  options.k = within_top;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 2'000'000;
  SearchResult r = CreateSearcher(Algorithm::kBackwardSI, env.dg.graph,
                                  env.prestige, options)
                       ->Search(origins);
  // Outputs arrive roughly score-ordered; keep the first `cap` relevant
  // ones that surface within the examined window.
  std::vector<std::vector<NodeId>> subset;
  for (const AnswerTree& t : r.answers) {
    std::vector<NodeId> nodes = t.Nodes();
    if (std::find(query.relevant.begin(), query.relevant.end(), nodes) ==
        query.relevant.end()) {
      continue;
    }
    if (std::find(subset.begin(), subset.end(), nodes) != subset.end()) {
      continue;
    }
    subset.push_back(std::move(nodes));
    if (subset.size() >= cap) break;
  }
  return subset;
}

RunStats RunWorkloadQuery(const BenchEnv& env, const WorkloadQuery& query,
                          Algorithm algorithm, const SearchOptions& options,
                          const std::vector<std::vector<NodeId>>* measured) {
  std::vector<std::vector<NodeId>> origins;
  origins.reserve(query.keywords.size());
  for (const std::string& kw : query.keywords) {
    origins.push_back(env.dg.index.Match(kw));
  }
  return MeasureAgainstRelevant(env, origins,
                                measured ? *measured : query.relevant,
                                algorithm, options);
}

RunStats RunSampleQuery(const BenchEnv& env,
                        const std::vector<std::string>& keywords,
                        Algorithm algorithm, const SearchOptions& options,
                        const std::vector<std::vector<NodeId>>& relevant) {
  std::vector<std::vector<NodeId>> origins;
  for (const std::string& kw : keywords) {
    origins.push_back(env.dg.index.Match(kw));
  }
  return MeasureAgainstRelevant(env, origins, relevant, algorithm, options);
}

std::vector<std::vector<NodeId>> ReferenceAnswers(
    const BenchEnv& env, const std::vector<std::string>& keywords, size_t k,
    const SearchOptions& options) {
  std::vector<std::vector<NodeId>> origins;
  for (const std::string& kw : keywords) {
    origins.push_back(env.dg.index.Match(kw));
  }
  SearchOptions ref_options = options;
  ref_options.k = k;
  SearchResult r = CreateSearcher(Algorithm::kBidirectional, env.dg.graph,
                                  env.prestige, ref_options)
                       ->Search(origins);
  std::vector<std::vector<NodeId>> out;
  for (const AnswerTree& t : r.answers) out.push_back(t.Nodes());
  return out;
}

std::pair<double, size_t> SparseLowerBound(
    BenchEnv* env, const std::vector<std::string>& keywords,
    size_t max_cn_size) {
  SparseSearcher sparse(&env->db);
  SparseSearcher::Options options;
  options.max_cn_size = max_cn_size;
  options.k_per_network = 10;
  // Warm run (paper: "ran each query several times to get a warm cache").
  sparse.Search(keywords, options);
  Timer timer;
  auto result = sparse.Search(keywords, options);
  return {timer.ElapsedSeconds(), result.networks.size()};
}

double SafeRatio(double a, double b) {
  if (b <= 0) return a <= 0 ? 1.0 : std::numeric_limits<double>::infinity();
  return a / b;
}

void JsonWriter::Separate() {
  if (needs_comma_) out_ += ',';
}

void JsonWriter::Escaped(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  needs_comma_ = false;
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_ = true;
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  needs_comma_ = false;
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_ = true;
}

void JsonWriter::Key(const std::string& key) {
  Separate();
  Escaped(key);
  out_ += ':';
  needs_comma_ = false;
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  Escaped(value);
  needs_comma_ = true;
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Field(key, std::string(value));
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  needs_comma_ = true;
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Field(const std::string& key, int value) {
  Key(key);
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

}  // namespace banks::bench
