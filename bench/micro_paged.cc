// Out-of-core paged-graph microbenchmark (docs/STORAGE.md).
//
// Serializes the §5.4 DBLP generator graph into a PagedStore and runs
// the same resolved query stream through the paged engine at several
// buffer-pool budgets (fractions of the store's data bytes), for every
// algorithm × bound mode, against the in-RAM engine as the reference.
// Reported per cell: ms/q, the buffer-pool hit rate the searches saw
// (page_hits / (page_hits + page_misses) summed over the stream), and
// the latency ratio vs the in-RAM row of the same configuration.
//
// Layout comparison: the small-pool rows (2% and 5%) are run on both
// the prestige-clustered layout and the naive node-id-order layout. The
// clustered layout packs the hub-dense region every activation-directed
// expansion revisits into a few hot pages, so it should show fewer
// misses — the table makes the gap visible, and the JSON carries both
// rows for trend tracking. (At the 25% pool both layouts fit their
// whole working set, so the comparison would be all-ties.)
//
// Built-in equivalence check: every paged cell must return answers
// identical (SameAnswer) to the in-RAM engine — the bench exits nonzero
// otherwise, so CI catches a storage-layer divergence even outside the
// unit suite. Pool-size and layout rows differ only in timing and
// hit-rate columns, never in answers.
//
// --json emits the measurements for the CI bench-smoke artifact
// (BENCH_paged.json), diffed against bench/baseline/BENCH_paged.json by
// compare_baseline.py (ms_per_query is the tracked latency).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "banks/engine.h"
#include "bench_alloc.h"
#include "bench_common.h"
#include "datasets/workload.h"
#include "storage/paged_store.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace banks::bench {
namespace {

constexpr size_t kRepetitions = 2;

struct BoundCase {
  BoundMode bound;
  const char* name;
};
const BoundCase kBounds[] = {{BoundMode::kLoose, "loose"},
                             {BoundMode::kTight, "tight"},
                             {BoundMode::kImmediate, "immediate"}};

/// Pool budgets are fractions of the *in-RAM graph footprint*
/// (Graph::ComputeMemoryUsage().total_bytes()) — the RAM an operator is
/// trying not to spend, and the denominator the acceptance criterion
/// ("a pool ≥25% of graph size") is stated in. Short-run inlining plus
/// the clustered layout keep the pageable working set well under that,
/// which is exactly the point: a quarter-of-the-graph pool serves at
/// in-RAM speed. The smaller fractions chart the miss curve.
struct PoolCase {
  double fraction;  // of the in-RAM graph's total bytes
  const char* name;
  bool compare_layouts;  // also run the node-order file at this pool
};
const PoolCase kPools[] = {{0.02, "pool2pct", true},
                           {0.05, "pool5pct", true},
                           {0.25, "pool25pct", false}};

/// Resolved origin sets of the benchmark stream (resolved once on the
/// in-RAM engine so every configuration searches identical origins).
std::vector<std::vector<std::vector<NodeId>>> MakeQueries(
    BenchEnv* env, const Engine& engine) {
  WorkloadGenerator gen(&env->db, &env->dg);
  std::vector<std::vector<std::vector<NodeId>>> queries;
  for (size_t kw = 2; kw <= 3; ++kw) {
    WorkloadOptions wopt;
    wopt.num_queries = 6;
    wopt.answer_size = 4;
    wopt.thresholds = env->thresholds;
    wopt.categories.assign(kw, FreqCategory::kTiny);
    wopt.categories.back() = FreqCategory::kSmall;
    wopt.seed = 61 + kw * 17;
    for (const WorkloadQuery& q : gen.Generate(wopt)) {
      std::vector<std::vector<NodeId>> origins = engine.Resolve(q.keywords);
      bool all_matched = !origins.empty();
      for (const auto& s : origins) all_matched &= !s.empty();
      if (all_matched) queries.push_back(std::move(origins));
    }
  }
  return queries;
}

struct CellStats {
  double seconds = 0;
  double hit_rate = 0;
  double misses_per_query = 0;
  std::vector<SearchResult> first_rep;
};

/// Runs the stream `kRepetitions` times on one engine (paged or in-RAM)
/// with a warm context; hit rate comes from the searches' own
/// page_hits/page_misses counters, so concurrent pool users could never
/// pollute it.
CellStats RunCell(const Engine& engine, Algorithm algorithm,
                  const SearchOptions& options,
                  const std::vector<std::vector<std::vector<NodeId>>>& queries) {
  CellStats out;
  SearchContext warm_context;
  for (const auto& origins : queries) {  // untimed warm-up (also warms pool)
    (void)engine.QueryResolved(origins, algorithm, options, &warm_context);
  }
  Timer timer;
  uint64_t hits = 0, misses = 0;
  for (size_t rep = 0; rep < kRepetitions; ++rep) {
    for (const auto& origins : queries) {
      SearchResult r =
          engine.QueryResolved(origins, algorithm, options, &warm_context);
      hits += r.metrics.page_hits;
      misses += r.metrics.page_misses;
      if (rep == 0) out.first_rep.push_back(std::move(r));
    }
  }
  out.seconds = timer.ElapsedSeconds();
  out.hit_rate = hits + misses == 0
                     ? 1.0
                     : static_cast<double>(hits) /
                           static_cast<double>(hits + misses);
  out.misses_per_query = static_cast<double>(misses) /
                         static_cast<double>(queries.size() * kRepetitions);
  return out;
}

bool SameAnswers(const std::vector<SearchResult>& a,
                 const std::vector<SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].answers.size() != b[i].answers.size()) return false;
    for (size_t j = 0; j < a[i].answers.size(); ++j) {
      if (!SameAnswer(a[i].answers[j], b[i].answers[j])) return false;
    }
  }
  return true;
}

int Main(double scale, bool json) {
  if (!json) {
    std::printf("=== Paged graph: buffer-pool hit rate and latency ===\n");
  }
  BenchEnv env = MakeDblpEnv(scale);
  Engine ram(env.dg, EngineOptions{});
  std::vector<std::vector<std::vector<NodeId>>> queries =
      MakeQueries(&env, ram);
  if (queries.empty()) {
    std::fprintf(stderr, "no runnable queries generated\n");
    return 1;
  }

  const std::string clustered_path = "/tmp/banks_micro_paged_clustered.banks";
  const std::string node_order_path = "/tmp/banks_micro_paged_nodeorder.banks";
  PagedStoreOptions save;
  // 96-byte inline cap: keeps the pageable adjacency (hub runs) at about
  // a quarter of the in-RAM graph footprint, so the pool25pct row runs
  // at in-RAM speed while the smaller pools still expose the layouts'
  // miss behaviour. Replayed traces put the sweet spot here: larger caps
  // shrink the paged set (and the layout signal) toward nothing, smaller
  // ones push one-touch tail runs into the pool and thrash the 25% row.
  save.inline_run_bytes = 96;
  save.layout = PageLayout::kClustered;
  if (!PagedStore::Save(ram.data(), ram.prestige(), clustered_path, save)) {
    std::fprintf(stderr, "failed to write %s\n", clustered_path.c_str());
    return 1;
  }
  save.layout = PageLayout::kNodeOrder;
  if (!PagedStore::Save(ram.data(), ram.prestige(), node_order_path, save)) {
    std::fprintf(stderr, "failed to write %s\n", node_order_path.c_str());
    return 1;
  }
  size_t data_bytes = 0;
  {
    std::optional<PagedData> probe = PagedStore::Open(clustered_path);
    if (!probe) {
      std::fprintf(stderr, "failed to reopen %s\n", clustered_path.c_str());
      return 1;
    }
    data_bytes = probe->store->DataBytes();
  }
  const size_t graph_bytes = env.dg.graph.ComputeMemoryUsage().total_bytes();
  if (!json) {
    std::printf("DBLP-like graph: %zu nodes / %zu edges, %zu KB in RAM, "
                "%zu KB pageable (heavy runs + postings), "
                "%zu queries x %zu repetitions\n",
                env.dg.graph.num_nodes(), env.dg.graph.num_edges(),
                graph_bytes >> 10, data_bytes >> 10, queries.size(),
                kRepetitions);
  }

  JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Field("bench", "micro_paged");
    w.Field("scale", scale);
    w.Field("graph_nodes", static_cast<uint64_t>(env.dg.graph.num_nodes()));
    w.Field("graph_edges", static_cast<uint64_t>(env.dg.graph.num_edges()));
    w.Field("data_bytes", static_cast<uint64_t>(data_bytes));
    w.Field("graph_bytes", static_cast<uint64_t>(graph_bytes));
    w.Field("queries_per_rep", static_cast<uint64_t>(queries.size()));
    w.Field("repetitions", static_cast<uint64_t>(kRepetitions));
    w.Key("rows");
    w.BeginArray();
  }
  TablePrinter table({"Algorithm", "bound", "storage", "pool", "ms/q",
                      "hit_rate", "miss/q", "vs in-RAM"});
  const size_t runs = queries.size() * kRepetitions;
  bool all_identical = true;

  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    for (const BoundCase& bc : kBounds) {
      SearchOptions options;
      options.k = 10;
      options.bound = bc.bound;
      // Activation-bounded regime: the budget caps exploration to a
      // fraction of the graph, so expansion stays on the high-activation
      // (high-prestige) nodes — the working set the clustered layout
      // packs into few pages. An unbounded budget would sweep the whole
      // graph every query and reduce every layout to the capacity bound.
      options.max_nodes_explored = env.dg.graph.num_nodes() / 8;

      // In-RAM reference row: the differential target and the
      // denominator of every paged row's latency ratio.
      CellStats ram_cell = RunCell(ram, algorithm, options, queries);
      if (json) {
        w.BeginObject();
        w.Field("class", bc.name);
        w.Field("algorithm", AlgorithmName(algorithm));
        w.Field("mode", "in-ram");
        w.Field("threads", static_cast<uint64_t>(1));
        w.Field("ms_per_query", 1e3 * ram_cell.seconds / runs);
        w.Field("qps", runs / ram_cell.seconds);
        w.EndObject();
      } else {
        table.AddRow({AlgorithmName(algorithm), bc.name, "in-ram", "-",
                      TablePrinter::Fmt(1e3 * ram_cell.seconds / runs, 3),
                      "-", "-", "1.00"});
      }

      auto paged_row = [&](const std::string& path, const char* mode,
                           const PoolCase& pc) {
        PagedOpenOptions open;
        open.pool_bytes =
            static_cast<size_t>(pc.fraction * static_cast<double>(graph_bytes));
        std::optional<PagedData> pd = PagedStore::Open(path, open);
        if (!pd) {
          std::fprintf(stderr, "failed to open %s\n", path.c_str());
          all_identical = false;
          return;
        }
        Engine paged(std::move(pd->data));
        CellStats cell = RunCell(paged, algorithm, options, queries);
        if (!SameAnswers(cell.first_rep, ram_cell.first_rep)) {
          std::fprintf(stderr,
                       "ERROR: %s (%s bound, %s, %s) differs from in-RAM\n",
                       AlgorithmName(algorithm), bc.name, mode, pc.name);
          all_identical = false;
        }
        const double ratio = SafeRatio(cell.seconds, ram_cell.seconds);
        if (json) {
          w.BeginObject();
          w.Field("class", bc.name);
          w.Field("algorithm", AlgorithmName(algorithm));
          w.Field("mode", mode);
          w.Field("threads", static_cast<uint64_t>(1));
          w.Field("pool", pc.name);
          w.Field("pool_bytes", static_cast<uint64_t>(open.pool_bytes));
          w.Field("ms_per_query", 1e3 * cell.seconds / runs);
          w.Field("qps", runs / cell.seconds);
          w.Field("page_hit_rate", cell.hit_rate);
          w.Field("page_misses_per_query", cell.misses_per_query);
          w.Field("ms_per_query_ratio_vs_inram", ratio);
          w.EndObject();
        } else {
          table.AddRow({AlgorithmName(algorithm), bc.name, mode, pc.name,
                        TablePrinter::Fmt(1e3 * cell.seconds / runs, 3),
                        TablePrinter::Fmt(cell.hit_rate, 4),
                        TablePrinter::Fmt(cell.misses_per_query, 1),
                        TablePrinter::Fmt(ratio, 2)});
        }
      };

      for (const PoolCase& pc : kPools) {
        paged_row(clustered_path, "paged-clustered", pc);
        if (pc.compare_layouts) {
          // Layout comparison at the pools small enough to miss:
          // clustered should show fewer misses than node-id order.
          paged_row(node_order_path, "paged-node-order", pc);
        }
      }
    }
  }

  if (json) {
    w.EndArray();
    w.Field("answers_identical", all_identical);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\n");
    table.Print(std::cout);
    std::printf(
        "\nEvery paged row is answer-identical to in-RAM (exit 1 otherwise).\n"
        "hit_rate counts the searches' own page_hits/(hits+misses);\n"
        "paged-node-order rows show the naive layout's miss rate at the\n"
        "same small pools for comparison with the prestige-clustered one.\n");
  }
  std::remove(clustered_path.c_str());
  std::remove(node_order_path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace banks::bench

int main(int argc, char** argv) {
  double scale = 1.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "usage: %s [--json] [scale>0]  (got %s)\n",
                     argv[0], argv[i]);
        return 2;
      }
    }
  }
  return banks::bench::Main(scale, json);
}
