// Micro-benchmarks for the graph substrate (E7 in DESIGN.md): build
// cost, CSR scan throughput, backward-edge derivation, prestige, and the
// §5.1 memory-footprint accounting.

#include <benchmark/benchmark.h>

#include "graph/graph.h"
#include "prestige/pagerank.h"
#include "util/rng.h"

namespace banks {
namespace {

GraphBuilder RandomBuilder(size_t nodes, size_t edges, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(nodes);
  for (size_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.Below(nodes));
    NodeId v = static_cast<NodeId>(rng.Below(nodes));
    if (u != v) b.AddEdge(u, v);
  }
  return b;
}

void BM_GraphBuild(benchmark::State& state) {
  const size_t nodes = state.range(0);
  const size_t edges = nodes * 4;
  for (auto _ : state) {
    state.PauseTiming();
    GraphBuilder b = RandomBuilder(nodes, edges, 42);
    state.ResumeTiming();
    Graph g = b.Build();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GraphBuild)->Arg(10'000)->Arg(100'000);

void BM_GraphBuildNoBackward(benchmark::State& state) {
  const size_t nodes = state.range(0);
  const size_t edges = nodes * 4;
  GraphBuildOptions options;
  options.add_backward_edges = false;
  for (auto _ : state) {
    state.PauseTiming();
    GraphBuilder b = RandomBuilder(nodes, edges, 42);
    state.ResumeTiming();
    Graph g = b.Build(options);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GraphBuildNoBackward)->Arg(10'000)->Arg(100'000);

void BM_CsrScan(benchmark::State& state) {
  GraphBuilder b = RandomBuilder(100'000, 400'000, 7);
  Graph g = b.Build();
  for (auto _ : state) {
    double total = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const Edge& e : g.OutEdges(v)) total += e.weight;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CsrScan);

void BM_Prestige(benchmark::State& state) {
  GraphBuilder b = RandomBuilder(state.range(0), state.range(0) * 4, 7);
  Graph g = b.Build();
  PrestigeOptions options;
  options.max_iterations = 20;
  for (auto _ : state) {
    auto p = ComputePrestige(g, options);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Prestige)->Arg(10'000)->Arg(50'000);

// §5.1 accounting: report bytes per node+edge so the compactness claim
// (paper: 16·V + 8·E for the skeleton) can be compared directly, plus
// the per-component breakdown that sizes out-of-core buffer pools
// (docs/STORAGE.md): how much is adjacency (pageable) vs skeleton
// (always resident).
void BM_MemoryFootprint(benchmark::State& state) {
  GraphBuilder b = RandomBuilder(100'000, 400'000, 7);
  Graph g = b.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.MemoryBytes());
  }
  const Graph::MemoryUsage u = g.ComputeMemoryUsage();
  state.counters["bytes_per_node"] =
      static_cast<double>(g.MemoryBytes()) / g.num_nodes();
  state.counters["paper_budget_bytes"] =
      16.0 * g.num_nodes() + 8.0 * g.num_edges();
  state.counters["actual_bytes"] = static_cast<double>(g.MemoryBytes());
  state.counters["adjacency_target_bytes"] =
      static_cast<double>(u.adjacency_target_bytes);
  state.counters["adjacency_weight_bytes"] =
      static_cast<double>(u.adjacency_weight_bytes);
  state.counters["offset_bytes"] = static_cast<double>(u.offset_bytes);
  state.counters["node_pool_bytes"] = static_cast<double>(u.node_scalar_bytes);
  state.counters["type_bytes"] = static_cast<double>(u.type_bytes);
  state.counters["total_bytes"] = static_cast<double>(u.total_bytes());
  state.counters["resident_bytes"] = static_cast<double>(u.resident_bytes);
}
BENCHMARK(BM_MemoryFootprint);

}  // namespace
}  // namespace banks
