#!/usr/bin/env python3
"""Diffs a bench --json output against a committed baseline snapshot.

Usage: compare_baseline.py BASELINE.json CURRENT.json [--threshold 0.15]
       compare_baseline.py --self-test

Matches rows by their identity fields (algorithm / mode / threads /
class) and warns — never fails — when a latency metric (ms/q) regresses
by more than the threshold, or when a row or metric disappears. A
comparison that cannot see any data (a file without rows, a schema
rename, two different benches diffed against each other, a baseline row
carrying none of the latency metrics) also warns instead of silently
passing as "0 rows compared". Output uses GitHub Actions "::warning::"
annotations so regressions surface on the workflow summary while keeping
the perf trajectory advisory: the baselines are machine-dependent
snapshots, and CI runners are noisy, so a hard gate would flake. Always
exits 0 (the --self-test mode exits nonzero on failure).
"""

import argparse
import json
import os
import sys
import tempfile

# Fields that identify a row within a bench report. Absent fields are
# skipped, so benches only pay for the dimensions they report (pool is
# micro_paged's buffer-pool size; without it that bench's per-pool rows
# would collide on one key and silently shadow each other).
KEY_FIELDS = ("class", "algorithm", "mode", "threads", "pool")
# Latency metrics to diff (higher = worse). Throughput/alloc metrics are
# reported for information only. ms_per_query_ratio_vs_1shard is a
# latency *ratio* (multi-shard row vs the same configuration's 1-shard
# row), so diffing it catches scaling regressions even when absolute
# latency shifted for machine reasons.
LATENCY_FIELDS = ("ms_per_query", "warm_ms_per_query", "cold_ms_per_query",
                  "ms_per_query_ratio_vs_1shard")


def row_key(row):
    return tuple((f, row[f]) for f in KEY_FIELDS if f in row)


def fmt_key(key):
    return " ".join(f"{f}={v}" for f, v in key)


def compare(base, cur, threshold, warn):
    """Diffs two parsed bench documents; calls warn(message) per finding.

    Returns the number of baseline rows that matched a current row.
    """
    name = cur.get("bench", "?")
    if base.get("bench") not in (None, name):
        warn(f"{name}: baseline is from a different bench "
             f"({base.get('bench')!r}); refresh bench/baseline/")
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    cur_rows = {row_key(r): r for r in cur.get("rows", [])}
    if not base_rows:
        warn(f"{name}: baseline has no rows — nothing was compared; "
             f"refresh bench/baseline/")
    if not cur_rows:
        warn(f"{name}: current run produced no rows")

    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        if crow is None:
            warn(f"{name}: baseline row missing from current run: "
                 f"{fmt_key(key)}")
            continue
        compared = 0
        for field in LATENCY_FIELDS:
            if field not in brow:
                continue
            if field not in crow:
                warn(f"{name}: metric {field} missing for {fmt_key(key)}")
                continue
            compared += 1
            b, c = brow[field], crow[field]
            if b < 0 or c < 0:
                warn(f"{name}: {field} has a negative value "
                     f"({b} -> {c}) for {fmt_key(key)}")
                continue
            if b == 0:
                # Zero is a legitimate metric value (e.g. a ratio of an
                # unmeasured mode), not "metric absent" — absence is
                # decided by key presence above. A growth from exactly 0
                # has no finite ratio, so it gets its own warning.
                if c > 0:
                    warn(f"{name}: {field} grew from a 0 baseline to "
                         f"{c:.3f} for {fmt_key(key)}")
                continue
            ratio = c / b
            if ratio > 1.0 + threshold:
                warn(f"{name}: {field} regressed {ratio:.2f}x "
                     f"({b:.3f} -> {c:.3f} ms/q) for {fmt_key(key)}")
        if compared == 0 and not any(f in brow for f in LATENCY_FIELDS):
            warn(f"{name}: baseline row carries no latency metric "
                 f"({', '.join(LATENCY_FIELDS)}): {fmt_key(key)}")

    new_rows = sum(1 for k in cur_rows if k not in base_rows)
    if new_rows:
        print(f"{name}: {new_rows} current row(s) have no baseline yet "
              f"(refresh bench/baseline/ to start tracking them)")
    return sum(1 for k in base_rows if k in cur_rows)


def self_test():
    """Asserts every warning class fires on synthetic inputs."""
    def run(base, cur, threshold=0.15):
        warnings = []
        compare(base, cur, threshold, warnings.append)
        return warnings

    row = {"algorithm": "A", "mode": "m", "threads": 1, "ms_per_query": 10.0}
    failures = []

    def check(label, warnings, expect_substr):
        if not any(expect_substr in w for w in warnings):
            failures.append(f"{label}: expected a warning containing "
                            f"{expect_substr!r}, got {warnings}")

    # Regression beyond threshold warns; within threshold does not.
    slow = dict(row, ms_per_query=20.0)
    check("regression", run({"rows": [row]}, {"rows": [slow]}), "regressed")
    ok = run({"rows": [row]}, {"rows": [dict(row, ms_per_query=10.5)]})
    if ok:
        failures.append(f"within-threshold: expected no warnings, got {ok}")

    # Baseline row missing from the current report.
    other = dict(row, algorithm="B")
    check("missing row", run({"rows": [row]}, {"rows": [other]}),
          "missing from current")

    # Metric present in baseline but dropped from the current report.
    dropped = {k: v for k, v in row.items() if k != "ms_per_query"}
    check("missing metric", run({"rows": [row]}, {"rows": [dropped]}),
          "metric ms_per_query missing")

    # Baseline without rows (schema rename / wrong file) must not pass
    # silently.
    check("empty baseline", run({}, {"rows": [row]}), "no rows")
    check("empty current", run({"rows": [row]}, {"rows": []}),
          "produced no rows")

    # Two different benches diffed against each other.
    check("bench mismatch",
          run({"bench": "micro_a", "rows": [row]},
              {"bench": "micro_b", "rows": [row]}),
          "different bench")

    # A baseline row with no latency metric at all cannot gate anything.
    bare = {"algorithm": "A", "mode": "m", "threads": 1, "qps": 5.0}
    check("no latency fields", run({"rows": [bare]}, {"rows": [bare]}),
          "no latency metric")

    # Rows differing only in an optional key dimension (pool) must not
    # shadow each other: a regression in one of them has to surface.
    pool_a = dict(row, pool="pool2pct")
    pool_b = dict(row, pool="pool25pct")
    check("pool rows distinct",
          run({"rows": [pool_a, pool_b]},
              {"rows": [pool_a, dict(pool_b, ms_per_query=20.0)]}),
          "regressed")

    # A legitimately zero-valued metric is still a present metric: it
    # must neither warn when unchanged nor count the row as metric-free.
    zero = dict(row, ms_per_query=0.0)
    stayed = run({"rows": [zero]}, {"rows": [zero]})
    if stayed:
        failures.append(f"zero metric unchanged: expected no warnings, "
                        f"got {stayed}")
    check("zero baseline growth",
          run({"rows": [zero]}, {"rows": [dict(row, ms_per_query=3.0)]}),
          "grew from a 0 baseline")
    check("negative metric",
          run({"rows": [dict(row, ms_per_query=-1.0)]}, {"rows": [row]}),
          "negative value")

    # End-to-end through main() and real files: exercises the argument
    # and file-loading path.
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fb,\
         tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fc:
        json.dump({"bench": "t", "rows": [row]}, fb)
        json.dump({"bench": "t", "rows": [slow]}, fc)
    try:
        if main([fb.name, fc.name]) != 0:
            failures.append("main() must always exit 0 on comparisons")
    finally:
        os.unlink(fb.name)
        os.unlink(fc.name)

    if failures:
        for f in failures:
            print(f"SELF-TEST FAILURE: {f}")
        return 1
    print("compare_baseline.py self-test: all warning classes fire")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="warn when ms/q grows by more than this "
                             "fraction (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required unless --self-test")

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::warning::bench baseline diff skipped: {e}")
        return 0

    warnings = []

    def warn(message):
        warnings.append(message)
        print(f"::warning::{message}")

    matched = compare(base, cur, args.threshold, warn)
    name = cur.get("bench", "?")
    print(f"{name}: compared {matched}/{len(base.get('rows', []))} baseline "
          f"rows, {len(warnings)} warning(s), "
          f"threshold +{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
