#!/usr/bin/env python3
"""Diffs a bench --json output against a committed baseline snapshot.

Usage: compare_baseline.py BASELINE.json CURRENT.json [--threshold 0.15]

Matches rows by their identity fields (algorithm / mode / threads /
class) and warns — never fails — when a latency metric (ms/q) regresses
by more than the threshold, or when a row or metric disappears. Output
uses GitHub Actions "::warning::" annotations so regressions surface on
the workflow summary while keeping the perf trajectory advisory: the
baselines are machine-dependent snapshots, and CI runners are noisy, so
a hard gate would flake. Always exits 0.
"""

import argparse
import json
import sys

# Fields that identify a row within a bench report.
KEY_FIELDS = ("class", "algorithm", "mode", "threads")
# Latency metrics to diff (higher = worse). Throughput/alloc metrics are
# reported for information only.
LATENCY_FIELDS = ("ms_per_query", "warm_ms_per_query", "cold_ms_per_query")


def row_key(row):
    return tuple((f, row[f]) for f in KEY_FIELDS if f in row)


def fmt_key(key):
    return " ".join(f"{f}={v}" for f, v in key)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="warn when ms/q grows by more than this "
                             "fraction (default 0.15)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::warning::bench baseline diff skipped: {e}")
        return 0

    name = cur.get("bench", "?")
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    cur_rows = {row_key(r): r for r in cur.get("rows", [])}

    warnings = 0
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        if crow is None:
            print(f"::warning::{name}: baseline row missing from current "
                  f"run: {fmt_key(key)}")
            warnings += 1
            continue
        for field in LATENCY_FIELDS:
            if field not in brow:
                continue
            if field not in crow:
                print(f"::warning::{name}: metric {field} missing for "
                      f"{fmt_key(key)}")
                warnings += 1
                continue
            b, c = brow[field], crow[field]
            if b <= 0:
                continue
            ratio = c / b
            if ratio > 1.0 + args.threshold:
                print(f"::warning::{name}: {field} regressed "
                      f"{ratio:.2f}x ({b:.3f} -> {c:.3f} ms/q) for "
                      f"{fmt_key(key)}")
                warnings += 1

    matched = sum(1 for k in base_rows if k in cur_rows)
    print(f"{name}: compared {matched}/{len(base_rows)} baseline rows, "
          f"{warnings} warning(s), threshold +{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
