// Ablation (§4.5 / DESIGN.md §6): answer-release policies.
//  kTight     — NRA-style upper bound (default; correct order)
//  kLoose     — the paper's cheap edge-score heuristic (may misorder)
//  kImmediate — release at generation (no buffering at all)
// Measured: output time of the last relevant answer, generation time, and
// the fraction of adjacent output pairs that are score-inverted.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueries = 30;

double InversionFraction(const SearchResult& r) {
  if (r.answers.size() < 2) return 0;
  size_t inversions = 0;
  for (size_t i = 1; i < r.answers.size(); ++i) {
    if (r.answers[i].score > r.answers[i - 1].score + 1e-9) inversions++;
  }
  return static_cast<double>(inversions) /
         static_cast<double>(r.answers.size() - 1);
}

}  // namespace

int Main() {
  std::printf("=== Ablation: §4.5 release policies (Bidirectional) ===\n");
  BenchEnv env = MakeDblpEnv();
  WorkloadGenerator gen(&env.db, &env.dg);

  WorkloadOptions options;
  options.num_queries = kQueries;
  options.answer_size = 4;
  options.min_keywords = 2;
  options.max_keywords = 4;
  options.thresholds = env.thresholds;
  options.seed = 9091;
  auto queries = gen.Generate(options);
  std::vector<std::vector<std::vector<NodeId>>> measured;
  for (const WorkloadQuery& q : queries) {
    measured.push_back(MeasuredRelevantSubset(env, q));
  }
  std::printf("DBLP-like graph: %zu nodes; %zu queries\n\n",
              env.dg.graph.num_nodes(), queries.size());

  TablePrinter table({"Policy", "GeoMean out ms", "GeoMean gen ms",
                      "Order inversions", "Recall"});

  struct Policy {
    const char* label;
    BoundMode mode;
  };
  const Policy kPolicies[] = {{"tight (NRA-style)", BoundMode::kTight},
                              {"loose (edge-score)", BoundMode::kLoose},
                              {"immediate", BoundMode::kImmediate}};

  for (const Policy& policy : kPolicies) {
    std::vector<double> out_ms, gen_ms, inversions, recalls;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const WorkloadQuery& q = queries[qi];
      const auto& targets = measured[qi];
      if (targets.empty()) continue;
      SearchOptions so;
      so.k = 20;
      so.bound = policy.mode;
      std::vector<std::vector<NodeId>> origins;
      for (const std::string& kw : q.keywords) {
        origins.push_back(env.dg.index.Match(kw));
      }
      SearchResult r = CreateSearcher(Algorithm::kBidirectional,
                                      env.dg.graph, env.prestige, so)
                           ->Search(origins);
      inversions.push_back(InversionFraction(r));
      size_t want = targets.size();
      size_t found = 0;
      for (size_t i = 0; i < r.answers.size(); ++i) {
        auto nodes = r.answers[i].Nodes();
        if (std::find(targets.begin(), targets.end(), nodes) ==
            targets.end()) {
          continue;
        }
        found++;
        if (found >= want) {
          out_ms.push_back(r.metrics.output_times[i] * 1e3 + 1e-3);
          gen_ms.push_back(r.answers[i].generated_at * 1e3 + 1e-3);
          break;
        }
      }
      if (want > 0) {
        recalls.push_back(static_cast<double>(found) /
                          static_cast<double>(want));
      }
    }
    table.AddRow({policy.label,
                  out_ms.empty() ? "n/a" : TablePrinter::Fmt(GeoMean(out_ms)),
                  gen_ms.empty() ? "n/a" : TablePrinter::Fmt(GeoMean(gen_ms)),
                  TablePrinter::Fmt(100 * Mean(inversions), 1) + "%",
                  TablePrinter::Fmt(100 * Mean(recalls), 1) + "%"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: gen times identical across policies (same search);\n"
      "loose/immediate output earlier but admit score inversions; tight\n"
      "has (near-)zero inversions — the paper observed correct order on\n"
      "almost all queries even with the loose heuristic.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
