// Micro-benchmarks for the text substrate: tokenizer throughput,
// inverted-index build, and keyword resolution (token + relation-name).

#include <benchmark/benchmark.h>

#include "datasets/vocab.h"
#include "text/inverted_index.h"
#include "util/rng.h"

namespace banks {
namespace {

std::vector<std::string> MakeTitles(size_t count) {
  Vocabulary vocab(10'000, 0.9);
  Rng rng(17);
  std::vector<std::string> titles;
  titles.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    titles.push_back(vocab.SampleTitle(&rng, 7));
  }
  return titles;
}

void BM_Tokenize(benchmark::State& state) {
  auto titles = MakeTitles(10'000);
  Tokenizer tokenizer;
  size_t i = 0;
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(titles[i++ % titles.size()]);
    benchmark::DoNotOptimize(tokens.size());
  }
}
BENCHMARK(BM_Tokenize);

void BM_IndexBuild(benchmark::State& state) {
  auto titles = MakeTitles(state.range(0));
  for (auto _ : state) {
    InvertedIndex index;
    for (size_t i = 0; i < titles.size(); ++i) {
      index.AddDocument(static_cast<NodeId>(i), titles[i]);
    }
    index.Freeze();
    benchmark::DoNotOptimize(index.num_terms());
  }
  state.SetItemsProcessed(state.iterations() * titles.size());
}
BENCHMARK(BM_IndexBuild)->Arg(10'000)->Arg(50'000);

// Byte breakdown of a frozen index (postings vs terms vs relation
// ranges) — the postings side of the buffer-pool sizing report that
// micro_graph's BM_MemoryFootprint gives for adjacency.
void BM_IndexFootprint(benchmark::State& state) {
  auto titles = MakeTitles(50'000);
  InvertedIndex index;
  for (size_t i = 0; i < titles.size(); ++i) {
    index.AddDocument(static_cast<NodeId>(i), titles[i]);
  }
  index.Freeze();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.ComputeMemoryUsage().total_bytes());
  }
  const InvertedIndex::MemoryUsage u = index.ComputeMemoryUsage();
  state.counters["postings_bytes"] = static_cast<double>(u.postings_bytes);
  state.counters["term_bytes"] = static_cast<double>(u.term_bytes);
  state.counters["relation_bytes"] = static_cast<double>(u.relation_bytes);
  state.counters["total_bytes"] = static_cast<double>(u.total_bytes());
  state.counters["resident_bytes"] = static_cast<double>(u.resident_bytes);
}
BENCHMARK(BM_IndexFootprint);

void BM_KeywordMatch(benchmark::State& state) {
  auto titles = MakeTitles(50'000);
  InvertedIndex index;
  for (size_t i = 0; i < titles.size(); ++i) {
    index.AddDocument(static_cast<NodeId>(i), titles[i]);
  }
  index.RegisterRelation("paper", 0, titles.size());
  index.Freeze();
  Vocabulary vocab(10'000, 0.9);
  Rng rng(3);
  for (auto _ : state) {
    auto m = index.Match(vocab.Word(vocab.SampleRank(&rng)));
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_KeywordMatch);

void BM_RelationNameMatch(benchmark::State& state) {
  InvertedIndex index;
  index.RegisterRelation("paper", 0, 100'000);
  index.Freeze();
  for (auto _ : state) {
    auto m = index.Match("paper");
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_RelationNameMatch);

}  // namespace
}  // namespace banks
