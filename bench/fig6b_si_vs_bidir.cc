// Figure 6(b) reproduction: SI-Backward / Bidirectional time ratio vs
// keyword count (2..7) for small- and large-origin classes on the §5.4
// DBLP workload, plus the nodes-explored ratio the paper reports as
// "roughly the same pattern ... higher by a factor of about 2".

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace banks::bench {
namespace {

constexpr size_t kQueriesPerCell = 10;

}  // namespace

int Main() {
  std::printf("=== Figure 6(b): SI-Backward / Bidirectional time ratio ===\n");
  BenchEnv env = MakeDblpEnv();
  std::printf("DBLP-like graph: %zu nodes / %zu edges\n\n",
              env.dg.graph.num_nodes(), env.dg.graph.num_edges());
  WorkloadGenerator gen(&env.db, &env.dg);

  TablePrinter table({"#Keywords", "small: time", "expl", "n",
                      "large: time", "expl", "n"});

  for (size_t kw = 2; kw <= 7; ++kw) {
    std::vector<double> time_ratios[2], expl_ratios[2];
    for (int klass = 0; klass < 2; ++klass) {
      WorkloadOptions options;
      options.num_queries = kQueriesPerCell;
      options.answer_size = 5;
      options.thresholds = env.thresholds;
      options.categories.assign(kw, FreqCategory::kTiny);
      options.categories.back() =
          klass == 0 ? FreqCategory::kSmall : FreqCategory::kLarge;
      options.seed = 990 + kw * 29 + klass;

      SearchOptions so;
      so.k = 60;
      so.bound = BoundMode::kLoose;  // the paper's measured configuration (§4.5)
      so.max_nodes_explored = 1'500'000;

      for (const WorkloadQuery& q : gen.Generate(options)) {
        auto measured = MeasuredRelevantSubset(env, q);
      if (measured.empty()) continue;  // no measurable targets
        RunStats si =
            RunWorkloadQuery(env, q, Algorithm::kBackwardSI, so, &measured);
        RunStats bi = RunWorkloadQuery(env, q, Algorithm::kBidirectional, so,
                                       &measured);
        if (si.relevant_found == 0 || bi.relevant_found == 0) continue;
        time_ratios[klass].push_back(SafeRatio(si.out_time, bi.out_time));
        expl_ratios[klass].push_back(
            SafeRatio(static_cast<double>(si.explored),
                      static_cast<double>(bi.explored)));
      }
    }
    auto fmt = [](const std::vector<double>& v) {
      return v.empty() ? std::string("n/a")
                       : TablePrinter::Fmt(GeoMean(v));
    };
    table.AddRow({std::to_string(kw), fmt(time_ratios[0]),
                  fmt(expl_ratios[0]), std::to_string(time_ratios[0].size()),
                  fmt(time_ratios[1]), fmt(expl_ratios[1]),
                  std::to_string(time_ratios[1].size())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): Bidirectional wins by a large margin,\n"
      "more for large origins. The nodes-explored ratio is the shape-\n"
      "bearing metric here (see EXPERIMENTS.md): our C++ SI baseline has\n"
      "~20x lower per-expansion constants than Bidirectional, which the\n"
      "paper's uniformly-heavy Java prototype did not, so wall-clock\n"
      "ratios understate the algorithmic win.\n");
  return 0;
}

}  // namespace banks::bench

int main() { return banks::bench::Main(); }
