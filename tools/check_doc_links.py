#!/usr/bin/env python3
"""Fails when a relative markdown link in the repo docs points nowhere.

Checks README.md, src/README.md and docs/*.md. External (scheme://),
mailto: and intra-page #anchor links are skipped; a relative link's
optional #fragment is ignored. Registered as the `docs_link_check`
ctest so dead links fail CI, not readers.
"""
import glob
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def main(root):
    files = [p for p in ["README.md", "src/README.md"]
             if os.path.exists(os.path.join(root, p))]
    files += sorted(os.path.relpath(p, root)
                    for p in glob.glob(os.path.join(root, "docs", "*.md")))
    dead = []
    for rel in files:
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        for target in LINK.findall(text):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(root, os.path.dirname(rel), path))
            if not os.path.exists(resolved):
                dead.append(f"{rel}: dead link -> {target}")
    for line in dead:
        print(line)
    print(f"checked {len(files)} files: "
          f"{'FAIL' if dead else 'ok'} ({len(dead)} dead links)")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else os.getcwd()))
