#include "relational/candidate_network.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace banks {
namespace {

/// AHU encoding of the CN as a tree rooted at `root`. Node labels fold
/// in the table and keyword mask; edge labels fold in the FK identity so
/// that two joins through different FK columns are distinct networks.
std::string EncodeRooted(const CandidateNetwork& cn, uint32_t root) {
  const size_t n = cn.nodes.size();
  std::vector<std::vector<std::pair<uint32_t, std::string>>> adj(n);
  for (const CNEdge& e : cn.edges) {
    std::string base =
        std::to_string(e.fk_table) + ":" + std::to_string(e.fk_col);
    // Orientation marker: '>' when the traversed-to child holds the FK.
    adj[e.a].emplace_back(e.b, base + (e.referencing == e.b ? ">" : "<"));
    adj[e.b].emplace_back(e.a, base + (e.referencing == e.a ? ">" : "<"));
  }
  // Iterative DFS with explicit post-order assembly (CNs are tiny; a
  // recursive lambda is fine).
  std::vector<bool> visited(n, false);
  auto encode = [&](auto&& self, uint32_t v) -> std::string {
    visited[v] = true;
    std::vector<std::string> parts;
    for (const auto& [u, label] : adj[v]) {
      if (visited[u]) continue;
      // Appends, not operator+ chains: GCC 12's -Wrestrict misfires on
      // inlined string concatenation temporaries at -O3 (GCC PR105651).
      std::string part = "(";
      part += label;
      part += self(self, u);
      part += ')';
      parts.push_back(std::move(part));
    }
    std::sort(parts.begin(), parts.end());
    std::string out = "[";
    out += std::to_string(cn.nodes[v].table);
    out += ',';
    out += std::to_string(cn.nodes[v].keyword_mask);
    out += ']';
    for (const std::string& p : parts) out += p;
    return out;
  };
  return encode(encode, root);
}

}  // namespace

uint32_t CandidateNetwork::CoveredMask() const {
  uint32_t mask = 0;
  for (const CNNode& node : nodes) mask |= node.keyword_mask;
  return mask;
}

bool CandidateNetwork::LeavesAreKeywordBearing() const {
  if (nodes.size() == 1) return nodes[0].keyword_mask != 0;
  std::vector<uint32_t> degree(nodes.size(), 0);
  for (const CNEdge& e : edges) {
    degree[e.a]++;
    degree[e.b]++;
  }
  for (size_t v = 0; v < nodes.size(); ++v) {
    if (degree[v] <= 1 && nodes[v].keyword_mask == 0) return false;
  }
  return true;
}

std::string CandidateNetwork::CanonicalKey() const {
  std::string best;
  for (uint32_t root = 0; root < nodes.size(); ++root) {
    std::string enc = EncodeRooted(*this, root);
    if (best.empty() || enc < best) best = std::move(enc);
  }
  return best;
}

std::vector<CandidateNetwork> GenerateCandidateNetworks(
    const Database& db, uint32_t num_keywords,
    const std::vector<std::vector<bool>>& table_has_keyword,
    const CNGenerationOptions& options) {
  std::vector<CandidateNetwork> accepted;
  if (num_keywords == 0 || num_keywords > 31) return accepted;
  const uint32_t full_mask = (1u << num_keywords) - 1;

  // Schema adjacency: edges incident to each table.
  std::vector<SchemaEdge> schema_edges = db.SchemaEdges();
  std::vector<std::vector<SchemaEdge>> by_table(db.num_tables());
  for (const SchemaEdge& e : schema_edges) {
    by_table[e.from_table].push_back(e);
    if (e.to_table != e.from_table) by_table[e.to_table].push_back(e);
  }

  std::deque<CandidateNetwork> queue;
  std::unordered_set<std::string> seen;

  auto enqueue = [&](CandidateNetwork cn) {
    std::string key = cn.CanonicalKey();
    if (!seen.insert(std::move(key)).second) return;
    queue.push_back(std::move(cn));
  };

  // Seeds: single keyword-bearing tuple sets.
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    for (uint32_t i = 0; i < num_keywords; ++i) {
      if (!table_has_keyword[t][i]) continue;
      CandidateNetwork cn;
      cn.nodes.push_back(CNNode{t, 1u << i});
      enqueue(std::move(cn));
    }
  }

  size_t explored = 0;
  const size_t kExplorationCap = options.max_networks * 50;
  while (!queue.empty() && accepted.size() < options.max_networks &&
         explored < kExplorationCap) {
    CandidateNetwork cn = std::move(queue.front());
    queue.pop_front();
    explored++;

    if (cn.CoveredMask() == full_mask && cn.LeavesAreKeywordBearing()) {
      accepted.push_back(cn);
      // A complete CN can still be extended into a larger distinct one;
      // Sparse evaluates small CNs first, so we keep expanding too.
    }

    if (cn.size() >= options.max_size) continue;

    // Expansion 1: attach a new tuple set via a schema edge incident to
    // an existing node. The new node is free or carries one missing
    // keyword.
    for (uint32_t v = 0; v < cn.nodes.size(); ++v) {
      uint32_t vt = cn.nodes[v].table;
      for (const SchemaEdge& e : by_table[vt]) {
        // Orientations: new node may sit on either endpoint of e.
        for (int new_on_from = 0; new_on_from < 2; ++new_on_from) {
          uint32_t new_table;
          if (new_on_from) {
            if (e.to_table != vt) continue;
            new_table = e.from_table;
          } else {
            if (e.from_table != vt) continue;
            new_table = e.to_table;
          }
          std::vector<uint32_t> masks = {0};
          for (uint32_t i = 0; i < num_keywords; ++i) {
            if ((cn.CoveredMask() >> i) & 1u) continue;
            if (!table_has_keyword[new_table][i]) continue;
            masks.push_back(1u << i);
          }
          for (uint32_t mask : masks) {
            CandidateNetwork next = cn;
            uint32_t new_idx = static_cast<uint32_t>(next.nodes.size());
            next.nodes.push_back(CNNode{new_table, mask});
            uint32_t referencing = new_on_from ? new_idx : v;
            next.edges.push_back(
                CNEdge{v, new_idx, e.from_table, e.column, referencing});
            enqueue(std::move(next));
          }
        }
      }
    }

    // Expansion 2: add a missing keyword to an existing node's mask
    // (one tuple may contain several query keywords, e.g. a 4-keyword
    // query answered by a 3-tuple tree).
    for (uint32_t v = 0; v < cn.nodes.size(); ++v) {
      uint32_t vt = cn.nodes[v].table;
      for (uint32_t i = 0; i < num_keywords; ++i) {
        if ((cn.CoveredMask() >> i) & 1u) continue;
        if (!table_has_keyword[vt][i]) continue;
        CandidateNetwork next = cn;
        next.nodes[v].keyword_mask |= 1u << i;
        enqueue(std::move(next));
      }
    }
  }

  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const CandidateNetwork& a, const CandidateNetwork& b) {
                     return a.size() < b.size();
                   });
  return accepted;
}

}  // namespace banks
