#include "relational/tuple_matcher.h"

namespace banks {

TupleMatcher::TupleMatcher(const Database& db) {
  Tokenizer tokenizer;
  index_.resize(db.num_tables());
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    auto& per_table = index_[t];
    for (RowId r = 0; r < static_cast<RowId>(table.num_rows()); ++r) {
      for (const std::string& token : tokenizer.Tokenize(table.RowText(r))) {
        PerKeyword& pk = per_table[token];
        if (pk.row_set.insert(r).second) pk.rows.push_back(r);
      }
    }
  }
}

const std::vector<RowId>& TupleMatcher::Rows(uint32_t table,
                                             const std::string& keyword) const {
  static const std::vector<RowId> kEmpty;
  auto it = index_[table].find(Tokenizer::FoldKeyword(keyword));
  return it == index_[table].end() ? kEmpty : it->second.rows;
}

bool TupleMatcher::Contains(uint32_t table, const std::string& keyword,
                            RowId row) const {
  auto it = index_[table].find(Tokenizer::FoldKeyword(keyword));
  return it != index_[table].end() && it->second.row_set.count(row) > 0;
}

}  // namespace banks
