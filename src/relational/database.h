#ifndef BANKS_RELATIONAL_DATABASE_H_
#define BANKS_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/schema.h"

namespace banks {

/// Row reference within a table; kNullRow for absent FK values.
using RowId = int64_t;
inline constexpr RowId kNullRow = -1;

/// Column-major storage for one table: text columns hold strings, FK
/// columns hold RowIds into the referenced table.
class Table {
 public:
  Table(TableSpec spec, uint32_t table_index);

  const std::string& name() const { return spec_.name; }
  const TableSpec& spec() const { return spec_; }
  const std::vector<ColumnSpec>& columns() const { return spec_.columns; }
  uint32_t index() const { return table_index_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends a row. `texts` supplies values for text columns in order;
  /// `fks` for FK columns in order. Sizes must match the spec.
  RowId AddRow(const std::vector<std::string>& texts,
               const std::vector<RowId>& fks);

  /// Text value of row `r` in the c-th *text* column.
  const std::string& TextAt(RowId r, size_t text_column) const {
    return text_columns_[text_column][static_cast<size_t>(r)];
  }

  /// FK value of row `r` in the c-th *FK* column.
  RowId FkAt(RowId r, size_t fk_column) const {
    return fk_columns_[fk_column][static_cast<size_t>(r)];
  }

  size_t num_text_columns() const { return text_columns_.size(); }
  size_t num_fk_columns() const { return fk_columns_.size(); }

  /// Spec of the c-th FK column (ref table, weight).
  const ColumnSpec& FkSpec(size_t fk_column) const {
    return spec_.columns[fk_column_spec_idx_[fk_column]];
  }

  /// Concatenated text of a row (used to build the node index).
  std::string RowText(RowId r) const;

 private:
  TableSpec spec_;
  uint32_t table_index_;
  size_t num_rows_ = 0;
  std::vector<std::vector<std::string>> text_columns_;
  std::vector<std::vector<RowId>> fk_columns_;
  std::vector<size_t> fk_column_spec_idx_;  // FK slot → spec column index
};

/// In-memory relational database: the substrate the paper's data graphs
/// are extracted from (DBXplorer/Discover operate on this "implicit"
/// graph; BANKS materializes it, §1).
class Database {
 public:
  /// Declares a table; referenced tables may be declared later, but all
  /// must exist before BuildIndexes()/graph extraction.
  Table& AddTable(TableSpec spec);

  Table& table(uint32_t idx) { return tables_[idx]; }
  const Table& table(uint32_t idx) const { return tables_[idx]; }
  const Table* FindTable(std::string_view name) const;
  uint32_t TableIndex(std::string_view name) const;
  size_t num_tables() const { return tables_.size(); }

  size_t TotalRows() const;

  /// Schema edges (FK column relationships) for candidate networks.
  std::vector<SchemaEdge> SchemaEdges() const;

  /// Builds per-FK-column reverse indexes (referenced row → referencing
  /// rows) used by the indexed nested-loop joins of the Sparse baseline.
  void BuildIndexes();
  bool indexes_built() const { return indexes_built_; }

  /// Rows of table `t` whose FK column `fk_col` references row `target`.
  const std::vector<RowId>& ReferencingRows(uint32_t t, size_t fk_col,
                                            RowId target) const;

 private:
  // Deque: AddTable must not invalidate references handed to callers.
  std::deque<Table> tables_;
  std::unordered_map<std::string, uint32_t> table_index_;
  // reverse_index_[t][fk_col][target_row] = referencing rows.
  std::vector<std::vector<std::unordered_map<RowId, std::vector<RowId>>>>
      reverse_index_;
  bool indexes_built_ = false;
};

}  // namespace banks

#endif  // BANKS_RELATIONAL_DATABASE_H_
