#include "relational/database.h"

#include <cassert>

namespace banks {

Table::Table(TableSpec spec, uint32_t table_index)
    : spec_(std::move(spec)), table_index_(table_index) {
  for (size_t c = 0; c < spec_.columns.size(); ++c) {
    if (spec_.columns[c].kind == ColumnKind::kText) {
      text_columns_.emplace_back();
    } else {
      fk_columns_.emplace_back();
      fk_column_spec_idx_.push_back(c);
    }
  }
}

RowId Table::AddRow(const std::vector<std::string>& texts,
                    const std::vector<RowId>& fks) {
  assert(texts.size() == text_columns_.size());
  assert(fks.size() == fk_columns_.size());
  for (size_t c = 0; c < texts.size(); ++c) {
    text_columns_[c].push_back(texts[c]);
  }
  for (size_t c = 0; c < fks.size(); ++c) {
    fk_columns_[c].push_back(fks[c]);
  }
  return static_cast<RowId>(num_rows_++);
}

std::string Table::RowText(RowId r) const {
  std::string out;
  for (size_t c = 0; c < text_columns_.size(); ++c) {
    if (c > 0) out.push_back(' ');
    out += text_columns_[c][static_cast<size_t>(r)];
  }
  return out;
}

Table& Database::AddTable(TableSpec spec) {
  assert(table_index_.find(spec.name) == table_index_.end());
  uint32_t idx = static_cast<uint32_t>(tables_.size());
  table_index_.emplace(spec.name, idx);
  tables_.emplace_back(std::move(spec), idx);
  indexes_built_ = false;
  return tables_.back();
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = table_index_.find(std::string(name));
  return it == table_index_.end() ? nullptr : &tables_[it->second];
}

uint32_t Database::TableIndex(std::string_view name) const {
  auto it = table_index_.find(std::string(name));
  assert(it != table_index_.end());
  return it->second;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const Table& t : tables_) total += t.num_rows();
  return total;
}

std::vector<SchemaEdge> Database::SchemaEdges() const {
  std::vector<SchemaEdge> edges;
  for (const Table& t : tables_) {
    for (size_t c = 0; c < t.num_fk_columns(); ++c) {
      const ColumnSpec& col = t.FkSpec(c);
      auto it = table_index_.find(col.ref_table);
      assert(it != table_index_.end() && "FK references unknown table");
      edges.push_back(
          SchemaEdge{t.index(), it->second, static_cast<uint32_t>(c)});
    }
  }
  return edges;
}

void Database::BuildIndexes() {
  reverse_index_.assign(tables_.size(), {});
  for (const Table& t : tables_) {
    auto& per_table = reverse_index_[t.index()];
    per_table.resize(t.num_fk_columns());
    for (size_t c = 0; c < t.num_fk_columns(); ++c) {
      for (RowId r = 0; r < static_cast<RowId>(t.num_rows()); ++r) {
        RowId target = t.FkAt(r, c);
        if (target != kNullRow) per_table[c][target].push_back(r);
      }
    }
  }
  indexes_built_ = true;
}

const std::vector<RowId>& Database::ReferencingRows(uint32_t t, size_t fk_col,
                                                    RowId target) const {
  static const std::vector<RowId> kEmpty;
  assert(indexes_built_);
  const auto& index = reverse_index_[t][fk_col];
  auto it = index.find(target);
  return it == index.end() ? kEmpty : it->second;
}

}  // namespace banks
