#ifndef BANKS_RELATIONAL_TUPLE_MATCHER_H_
#define BANKS_RELATIONAL_TUPLE_MATCHER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/database.h"
#include "text/tokenizer.h"

namespace banks {

/// Per-table keyword → row index over a relational database. This is the
/// "index on all join columns / warm cache" setup the paper grants the
/// Sparse baseline (§5.2): keyword containment tests and row lists are
/// precomputed, so measured time is join work only.
class TupleMatcher {
 public:
  explicit TupleMatcher(const Database& db);

  /// Rows of `table` whose text contains `keyword` (empty if none).
  const std::vector<RowId>& Rows(uint32_t table,
                                 const std::string& keyword) const;

  /// O(1) membership test.
  bool Contains(uint32_t table, const std::string& keyword, RowId row) const;

  /// True if any row of `table` contains `keyword`.
  bool TableHasKeyword(uint32_t table, const std::string& keyword) const {
    return !Rows(table, keyword).empty();
  }

 private:
  struct PerKeyword {
    std::vector<RowId> rows;
    std::unordered_set<RowId> row_set;
  };
  // per table: folded keyword → rows.
  std::vector<std::unordered_map<std::string, PerKeyword>> index_;
};

}  // namespace banks

#endif  // BANKS_RELATIONAL_TUPLE_MATCHER_H_
