#ifndef BANKS_RELATIONAL_SPARSE_H_
#define BANKS_RELATIONAL_SPARSE_H_

#include <string>
#include <vector>

#include "relational/candidate_network.h"
#include "relational/database.h"
#include "relational/tuple_matcher.h"

namespace banks {

/// The Sparse algorithm of Hristidis, Gravano, Papakonstantinou (VLDB
/// 2003), as used for the paper's baseline column (§5.2): enumerate
/// candidate networks, evaluate each with indexed nested-loop joins
/// under AND semantics, emit the top-k results per network, merge.
///
/// Per the paper's methodology this is a *lower bound* setup: only CNs
/// up to `max_cn_size` are evaluated (the paper generated "all candidate
/// networks smaller than the relevant ones"), indexes are prebuilt and
/// caches warm.
class SparseSearcher {
 public:
  struct Options {
    size_t max_cn_size = 5;
    size_t k_per_network = 10;
    size_t max_networks = 20000;
    /// Join-result cap per CN; prevents cartesian blowups on free sets.
    size_t max_results_per_network = 100000;
  };

  /// One joined tuple tree: (table, row) per CN node.
  struct JoinResult {
    std::vector<std::pair<uint32_t, RowId>> tuples;
    size_t network_index;  // into Result::networks
    /// Ranking: fewer joins is better (Discover-style size measure).
    size_t size() const { return tuples.size(); }
  };

  struct Result {
    std::vector<CandidateNetwork> networks;
    std::vector<JoinResult> results;  // ordered by network size (small first)
    double enumeration_seconds = 0;
    double evaluation_seconds = 0;
  };

  /// Database must outlive the searcher; BuildIndexes() is invoked if
  /// the caller has not done so.
  explicit SparseSearcher(Database* db);

  Result Search(const std::vector<std::string>& keywords,
                const Options& options) const;

 private:
  void Evaluate(const CandidateNetwork& cn, size_t network_index,
                const std::vector<std::string>& keywords,
                const Options& options, std::vector<JoinResult>* out) const;

  Database* db_;
  TupleMatcher matcher_;
};

/// Evaluates one candidate network with indexed nested-loop joins,
/// appending up to options.k_per_network results. Exposed separately so
/// the workload generator can compute ground truth by evaluating the
/// generating join network exhaustively (§5.4's "we executed SQL
/// queries ... to find relevant answers").
void EvaluateCandidateNetwork(const Database& db, const TupleMatcher& matcher,
                              const CandidateNetwork& cn, size_t network_index,
                              const std::vector<std::string>& keywords,
                              const SparseSearcher::Options& options,
                              std::vector<SparseSearcher::JoinResult>* out);

}  // namespace banks

#endif  // BANKS_RELATIONAL_SPARSE_H_
