#ifndef BANKS_RELATIONAL_SCHEMA_H_
#define BANKS_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace banks {

/// Column kinds in the in-memory relational engine. Text columns carry
/// the searchable strings; foreign-key columns carry row references and
/// induce the data-graph edges (§2.1).
enum class ColumnKind : uint8_t { kText, kForeignKey };

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kText;
  /// For kForeignKey: referenced table name.
  std::string ref_table;
  /// For kForeignKey: forward edge weight in the data graph ("the
  /// weights of forward edges are defined by the schema, and default to
  /// 1", §2.3).
  double edge_weight = 1.0;
};

/// Table definition: a name plus ordered columns.
struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
};

/// A schema-graph edge (for candidate-network generation): table `from`
/// has a FK column into table `to`.
struct SchemaEdge {
  uint32_t from_table;
  uint32_t to_table;
  uint32_t column;  // FK *slot* index within `from` (see Table::FkAt)
};

}  // namespace banks

#endif  // BANKS_RELATIONAL_SCHEMA_H_
