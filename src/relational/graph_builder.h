#ifndef BANKS_RELATIONAL_GRAPH_BUILDER_H_
#define BANKS_RELATIONAL_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "relational/database.h"
#include "text/inverted_index.h"

namespace banks {

/// The data graph extracted from a relational database plus everything
/// needed to query it: "for each row r ... the data graph has a
/// corresponding node u_r; for each pair of tuples r1, r2 such that
/// there is a foreign key from r1 to r2, the graph contains an edge
/// from u_r1 to u_r2" (§2.1). Node ids are dense and contiguous per
/// table, which lets the inverted index register relation-name matches
/// as ranges.
struct DataGraph {
  Graph graph;
  InvertedIndex index;
  /// First node id of each table (parallel to Database::table order);
  /// back() is the total node count.
  std::vector<NodeId> table_first_node;
  /// Human-readable text per node (table name + row text), for display.
  std::vector<std::string> node_labels;

  NodeId NodeFor(uint32_t table, RowId row) const {
    return table_first_node[table] + static_cast<NodeId>(row);
  }
  /// Inverse of NodeFor.
  std::pair<uint32_t, RowId> TupleFor(NodeId node) const;
};

/// Extracts the data graph; `options` controls backward-edge derivation.
DataGraph BuildDataGraph(const Database& db,
                         const GraphBuildOptions& options = {});

}  // namespace banks

#endif  // BANKS_RELATIONAL_GRAPH_BUILDER_H_
