#ifndef BANKS_RELATIONAL_CANDIDATE_NETWORK_H_
#define BANKS_RELATIONAL_CANDIDATE_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"

namespace banks {

/// One node of a candidate network: a tuple set of `table` constrained
/// to contain the query keywords in `keyword_mask` (0 ⇒ free tuple set).
struct CNNode {
  uint32_t table;
  uint32_t keyword_mask;
};

/// Join edge between CN nodes a and b, realized by FK column `fk_col`
/// (slot index) of table `fk_table`. `referencing` names the CN node (a
/// or b) that holds the FK — required to disambiguate self-referencing
/// tables and join direction during evaluation.
struct CNEdge {
  uint32_t a;
  uint32_t b;
  uint32_t fk_table;
  uint32_t fk_col;
  uint32_t referencing;
};

/// A candidate network (Discover [9] / Sparse [8]): a joining tree of
/// tuple sets whose union of keyword masks covers the query and whose
/// leaves are all keyword-bearing.
struct CandidateNetwork {
  std::vector<CNNode> nodes;
  std::vector<CNEdge> edges;

  size_t size() const { return nodes.size(); }
  uint32_t CoveredMask() const;
  bool LeavesAreKeywordBearing() const;

  /// Isomorphism-invariant encoding (AHU canonical form minimized over
  /// root choices); used to deduplicate networks during generation.
  std::string CanonicalKey() const;
};

struct CNGenerationOptions {
  /// Maximum CN size (number of tuple sets = joins + 1).
  size_t max_size = 5;
  /// Hard cap on emitted networks (generation is exponential in dense
  /// schemas; the paper evaluates only CNs up to the relevant size).
  size_t max_networks = 20000;
};

/// Breadth-first enumeration of candidate networks, smallest first.
/// `table_has_keyword[t][i]` says table t has at least one tuple
/// containing keyword i (networks demanding an empty tuple set are
/// pruned at the source).
std::vector<CandidateNetwork> GenerateCandidateNetworks(
    const Database& db, uint32_t num_keywords,
    const std::vector<std::vector<bool>>& table_has_keyword,
    const CNGenerationOptions& options);

}  // namespace banks

#endif  // BANKS_RELATIONAL_CANDIDATE_NETWORK_H_
