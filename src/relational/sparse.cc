#include "relational/sparse.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/timer.h"

namespace banks {

SparseSearcher::SparseSearcher(Database* db) : db_(db), matcher_(*db) {
  if (!db_->indexes_built()) db_->BuildIndexes();
}

SparseSearcher::Result SparseSearcher::Search(
    const std::vector<std::string>& keywords, const Options& options) const {
  Result result;
  const uint32_t n = static_cast<uint32_t>(keywords.size());
  if (n == 0) return result;

  Timer timer;
  std::vector<std::vector<bool>> table_has_keyword(db_->num_tables());
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    table_has_keyword[t].resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      table_has_keyword[t][i] = matcher_.TableHasKeyword(t, keywords[i]);
    }
  }
  CNGenerationOptions gen;
  gen.max_size = options.max_cn_size;
  gen.max_networks = options.max_networks;
  result.networks =
      GenerateCandidateNetworks(*db_, n, table_has_keyword, gen);
  result.enumeration_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (size_t c = 0; c < result.networks.size(); ++c) {
    Evaluate(result.networks[c], c, keywords, options, &result.results);
  }
  result.evaluation_seconds = timer.ElapsedSeconds();
  return result;
}

void SparseSearcher::Evaluate(const CandidateNetwork& cn, size_t network_index,
                              const std::vector<std::string>& keywords,
                              const Options& options,
                              std::vector<JoinResult>* out) const {
  EvaluateCandidateNetwork(*db_, matcher_, cn, network_index, keywords,
                           options, out);
}

void EvaluateCandidateNetwork(const Database& db, const TupleMatcher& matcher,
                              const CandidateNetwork& cn, size_t network_index,
                              const std::vector<std::string>& keywords,
                              const SparseSearcher::Options& options,
                              std::vector<SparseSearcher::JoinResult>* out) {
  using JoinResult = SparseSearcher::JoinResult;
  const size_t m = cn.nodes.size();

  // Rows satisfying a node's keyword mask (smallest keyword list first,
  // then filter) — or "whole table" for free nodes (signalled by nullptr).
  auto mask_rows = [&](const CNNode& node) -> std::vector<RowId> {
    std::vector<RowId> rows;
    bool first = true;
    for (uint32_t i = 0; i < keywords.size(); ++i) {
      if (!((node.keyword_mask >> i) & 1u)) continue;
      if (first) {
        rows = matcher.Rows(node.table, keywords[i]);
        first = false;
      } else {
        std::vector<RowId> filtered;
        for (RowId r : rows) {
          if (matcher.Contains(node.table, keywords[i], r)) {
            filtered.push_back(r);
          }
        }
        rows = std::move(filtered);
      }
    }
    return rows;
  };

  auto satisfies_mask = [&](const CNNode& node, RowId r) {
    for (uint32_t i = 0; i < keywords.size(); ++i) {
      if (!((node.keyword_mask >> i) & 1u)) continue;
      if (!matcher.Contains(node.table, keywords[i], r)) return false;
    }
    return true;
  };

  // Choose the start node: keyword-bearing node with the fewest rows —
  // the IR rule of intersecting from the rarest list (§1, [15]).
  size_t start = m;
  size_t best_count = std::numeric_limits<size_t>::max();
  std::vector<std::vector<RowId>> start_rows(m);
  for (size_t v = 0; v < m; ++v) {
    if (cn.nodes[v].keyword_mask == 0) continue;
    start_rows[v] = mask_rows(cn.nodes[v]);
    if (start_rows[v].size() < best_count) {
      best_count = start_rows[v].size();
      start = v;
    }
  }
  if (start == m || best_count == 0) return;  // unsatisfiable network

  // BFS order from the start node; each later node knows the tree edge
  // connecting it to an earlier node.
  std::vector<std::vector<std::pair<size_t, const CNEdge*>>> adj(m);
  for (const CNEdge& e : cn.edges) {
    adj[e.a].emplace_back(e.b, &e);
    adj[e.b].emplace_back(e.a, &e);
  }
  struct Step {
    size_t node;
    size_t joined_to;        // index into `order` of the known neighbour
    const CNEdge* edge;      // realizing FK
  };
  std::vector<Step> order;
  std::vector<bool> placed(m, false);
  order.push_back(Step{start, 0, nullptr});
  placed[start] = true;
  for (size_t head = 0; head < order.size(); ++head) {
    size_t v = order[head].node;
    for (auto [u, e] : adj[v]) {
      if (placed[u]) continue;
      placed[u] = true;
      order.push_back(Step{u, head, e});
    }
  }
  if (order.size() != m) return;  // disconnected CN (cannot happen)

  // Indexed nested-loop join, depth-first over `order`.
  std::vector<RowId> assignment(m, kNullRow);
  size_t produced = 0;

  auto emit = [&] {
    JoinResult jr;
    jr.network_index = network_index;
    jr.tuples.reserve(m);
    for (size_t v = 0; v < m; ++v) {
      jr.tuples.emplace_back(cn.nodes[v].table, assignment[v]);
    }
    out->push_back(std::move(jr));
    produced++;
  };

  auto recurse = [&](auto&& self, size_t depth) -> bool {
    if (produced >= options.max_results_per_network ||
        produced >= options.k_per_network) {
      return false;  // per-CN top-k reached
    }
    if (depth == m) {
      emit();
      return true;
    }
    const Step& step = order[depth];
    const CNNode& node = cn.nodes[step.node];
    size_t known = order[step.joined_to].node;
    RowId known_row = assignment[known];
    const CNEdge& e = *step.edge;

    auto try_row = [&](RowId r) -> bool {
      if (r == kNullRow) return true;
      if (!satisfies_mask(node, r)) return true;
      // Reject repeated use of one tuple in two CN slots of the same
      // table (a joining tree of tuples has distinct tuples).
      for (size_t v2 = 0; v2 < depth; ++v2) {
        size_t prev = order[v2].node;
        if (cn.nodes[prev].table == node.table &&
            assignment[prev] == r) {
          return true;
        }
      }
      assignment[step.node] = r;
      bool keep_going = self(self, depth + 1);
      assignment[step.node] = kNullRow;
      return keep_going;
    };

    if (e.referencing == step.node) {
      // New node references the known node: use the reverse index.
      for (RowId r : db.ReferencingRows(e.fk_table, e.fk_col, known_row)) {
        if (!try_row(r)) return false;
      }
    } else {
      // Known node references the new node: direct FK access.
      assert(e.fk_table == cn.nodes[known].table);
      RowId r = db.table(e.fk_table).FkAt(known_row, e.fk_col);
      if (!try_row(r)) return false;
    }
    return true;
  };

  for (RowId r : start_rows[start]) {
    assignment[start] = r;
    if (!recurse(recurse, 1)) break;
    assignment[start] = kNullRow;
  }
}

}  // namespace banks
