#include "relational/graph_builder.h"

#include <algorithm>
#include <cassert>

namespace banks {

std::pair<uint32_t, RowId> DataGraph::TupleFor(NodeId node) const {
  auto it = std::upper_bound(table_first_node.begin(),
                             table_first_node.end(), node);
  assert(it != table_first_node.begin());
  uint32_t table = static_cast<uint32_t>(it - table_first_node.begin() - 1);
  return {table, static_cast<RowId>(node - table_first_node[table])};
}

DataGraph BuildDataGraph(const Database& db, const GraphBuildOptions& options) {
  DataGraph out;
  GraphBuilder builder;

  // Nodes: one per tuple, contiguous per table.
  out.table_first_node.reserve(db.num_tables() + 1);
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    NodeType type = builder.InternType(table.name());
    out.table_first_node.push_back(
        builder.AddNodes(table.num_rows(), type));
  }
  out.table_first_node.push_back(static_cast<NodeId>(builder.num_nodes()));

  // Edges: one forward edge per non-null FK value.
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    for (size_t c = 0; c < table.num_fk_columns(); ++c) {
      const ColumnSpec& spec = table.FkSpec(c);
      uint32_t target_table = db.TableIndex(spec.ref_table);
      for (RowId r = 0; r < static_cast<RowId>(table.num_rows()); ++r) {
        RowId target = table.FkAt(r, c);
        if (target == kNullRow) continue;
        builder.AddEdge(out.NodeFor(t, r), out.NodeFor(target_table, target),
                        spec.edge_weight);
      }
    }
  }

  // Text index + display labels.
  out.node_labels.reserve(builder.num_nodes());
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    out.index.RegisterRelation(table.name(), out.table_first_node[t],
                               table.num_rows());
    for (RowId r = 0; r < static_cast<RowId>(table.num_rows()); ++r) {
      NodeId node = out.NodeFor(t, r);
      std::string text = table.RowText(r);
      out.index.AddDocument(node, text);
      out.node_labels.push_back(table.name() + "#" + std::to_string(r) +
                                (text.empty() ? "" : " [" + text + "]"));
    }
  }
  out.index.Freeze();
  out.graph = builder.Build(options);
  return out;
}

}  // namespace banks
