#ifndef BANKS_TEXT_TOKENIZER_H_
#define BANKS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace banks {

/// Options for text tokenization. The index and the query parser must use
/// the same tokenizer so that query terms hit the postings they were
/// indexed under.
struct TokenizerOptions {
  /// Drop common English function words ("the", "of", ...). The paper's
  /// keyword queries never contain these, but real node text does.
  bool remove_stopwords = true;
  /// Minimum token length after folding; single characters are noise in
  /// bibliographic text (middle initials).
  size_t min_token_length = 2;
};

/// Lower-cases, splits on non-alphanumeric characters, applies the
/// options. Deterministic and locale-independent (ASCII).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Folds one query keyword the same way indexed tokens are folded
  /// (lower-case only; stopword/min-length filters do not apply to
  /// explicit user keywords).
  static std::string FoldKeyword(std::string_view keyword);

  bool IsStopword(const std::string& token) const;

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace banks

#endif  // BANKS_TEXT_TOKENIZER_H_
