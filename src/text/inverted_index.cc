#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>

namespace banks {

InvertedIndex::InvertedIndex(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

void InvertedIndex::AddDocument(NodeId node, std::string_view text) {
  assert(!frozen_);
  for (const std::string& token : tokenizer_.Tokenize(text)) {
    auto [it, inserted] =
        term_ids_.emplace(token, static_cast<uint32_t>(postings_.size()));
    if (inserted) postings_.emplace_back();
    std::vector<NodeId>& list = postings_[it->second];
    // Cheap adjacent-duplicate guard: repeated tokens in one document
    // arrive consecutively.
    if (list.empty() || list.back() != node) list.push_back(node);
  }
}

void InvertedIndex::RegisterRelation(std::string_view relation_name,
                                     NodeId first, size_t count) {
  assert(!frozen_);
  relations_[Tokenizer::FoldKeyword(relation_name)] =
      RelationRange{first, count};
}

void InvertedIndex::Freeze() {
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
  }
  frozen_ = true;
}

std::span<const NodeId> InvertedIndex::Postings(std::string_view token) const {
  assert(frozen_);
  auto it = term_ids_.find(Tokenizer::FoldKeyword(token));
  if (it == term_ids_.end()) return {};
  return postings_[it->second];
}

size_t InvertedIndex::MatchCount(std::string_view keyword) const {
  return Match(keyword).size();
}

std::vector<NodeId> InvertedIndex::Match(std::string_view keyword) const {
  assert(frozen_);
  std::string folded = Tokenizer::FoldKeyword(keyword);
  std::vector<NodeId> out;
  auto it = term_ids_.find(folded);
  if (it != term_ids_.end()) {
    auto& list = postings_[it->second];
    out.assign(list.begin(), list.end());
  }
  auto rel = relations_.find(folded);
  if (rel != relations_.end()) {
    out.reserve(out.size() + rel->second.count);
    for (size_t i = 0; i < rel->second.count; ++i) {
      out.push_back(rel->second.first + static_cast<NodeId>(i));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace banks
