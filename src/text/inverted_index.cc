#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "storage/paged_store.h"

namespace banks {

InvertedIndex::InvertedIndex(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

void InvertedIndex::AddDocument(NodeId node, std::string_view text) {
  assert(!frozen_);
  for (const std::string& token : tokenizer_.Tokenize(text)) {
    auto [it, inserted] =
        term_ids_.emplace(token, static_cast<uint32_t>(postings_.size()));
    if (inserted) postings_.emplace_back();
    std::vector<NodeId>& list = postings_[it->second];
    // Cheap adjacent-duplicate guard: repeated tokens in one document
    // arrive consecutively.
    if (list.empty() || list.back() != node) list.push_back(node);
  }
}

void InvertedIndex::RegisterRelation(std::string_view relation_name,
                                     NodeId first, size_t count) {
  assert(!frozen_);
  relations_[Tokenizer::FoldKeyword(relation_name)] =
      RelationRange{first, count};
}

void InvertedIndex::Freeze() {
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
  }
  frozen_ = true;
}

std::span<const NodeId> InvertedIndex::Postings(std::string_view token) const {
  assert(frozen_ && !paged());
  auto it = term_ids_.find(Tokenizer::FoldKeyword(token));
  if (it == term_ids_.end()) return {};
  return postings_[it->second];
}

std::span<const NodeId> InvertedIndex::Postings(std::string_view token,
                                                PagePin* pin) const {
  assert(frozen_);
  auto it = term_ids_.find(Tokenizer::FoldKeyword(token));
  if (it == term_ids_.end()) return {};
  if (!paged()) return postings_[it->second];
  const PostingRun& run = posting_runs_[it->second];
  if (run.count == 0) return {};
  const std::byte* base = store_->pool().Pin(run.ref.page, pin);
  return {reinterpret_cast<const NodeId*>(base + run.ref.offset),
          static_cast<size_t>(run.count)};
}

std::vector<std::pair<std::string, uint32_t>> InvertedIndex::SortedTerms()
    const {
  std::vector<std::pair<std::string, uint32_t>> terms(term_ids_.begin(),
                                                      term_ids_.end());
  std::sort(terms.begin(), terms.end());
  return terms;
}

std::span<const NodeId> InvertedIndex::PostingsById(uint32_t id) const {
  assert(!paged());
  return postings_[id];
}

InvertedIndex::MemoryUsage InvertedIndex::ComputeMemoryUsage() const {
  MemoryUsage u;
  if (paged()) {
    for (const PostingRun& run : posting_runs_) {
      u.postings_bytes += run.count * sizeof(NodeId);
    }
  } else {
    for (const auto& list : postings_) {
      u.postings_bytes += list.size() * sizeof(NodeId);
    }
  }
  for (const auto& [term, id] : term_ids_) {
    u.term_bytes += term.size() + sizeof(uint32_t);
  }
  for (const auto& [name, range] : relations_) {
    u.relation_bytes += name.size() + sizeof(RelationRange);
  }
  u.run_table_bytes = posting_runs_.size() * sizeof(PostingRun);
  u.resident_bytes = u.total_bytes();
  if (paged()) u.resident_bytes -= u.postings_bytes;
  return u;
}

size_t InvertedIndex::MatchCount(std::string_view keyword) const {
  return Match(keyword).size();
}

std::vector<NodeId> InvertedIndex::Match(std::string_view keyword) const {
  assert(frozen_);
  std::string folded = Tokenizer::FoldKeyword(keyword);
  std::vector<NodeId> out;
  auto it = term_ids_.find(folded);
  if (it != term_ids_.end()) {
    // Paged postings pin their page just long enough to copy the list
    // out; callers keep the same owned-vector contract in both modes.
    PagePin pin;
    std::span<const NodeId> list =
        paged() ? Postings(folded, &pin) : std::span<const NodeId>(
                                               postings_[it->second]);
    out.assign(list.begin(), list.end());
  }
  auto rel = relations_.find(folded);
  if (rel != relations_.end()) {
    out.reserve(out.size() + rel->second.count);
    for (size_t i = 0; i < rel->second.count; ++i) {
      out.push_back(rel->second.first + static_cast<NodeId>(i));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace banks
