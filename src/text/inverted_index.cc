#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "storage/paged_store.h"

namespace banks {

InvertedIndex::InvertedIndex(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

void InvertedIndex::AddDocument(NodeId node, std::string_view text) {
  assert(!frozen_);
  for (const std::string& token : tokenizer_.Tokenize(text)) {
    auto [it, inserted] =
        term_ids_.emplace(token, static_cast<uint32_t>(postings_.size()));
    if (inserted) postings_.emplace_back();
    std::vector<NodeId>& list = postings_[it->second];
    // Cheap adjacent-duplicate guard: repeated tokens in one document
    // arrive consecutively.
    if (list.empty() || list.back() != node) list.push_back(node);
  }
}

void InvertedIndex::RegisterRelation(std::string_view relation_name,
                                     NodeId first, size_t count) {
  assert(!frozen_);
  relations_[Tokenizer::FoldKeyword(relation_name)] =
      RelationRange{first, count};
}

void InvertedIndex::Freeze() {
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
  }
  frozen_ = true;
}

std::span<const NodeId> InvertedIndex::Postings(std::string_view token) const {
  assert(frozen_ && !paged());
  if (base_ != nullptr) {
    auto it = delta_postings_.find(Tokenizer::FoldKeyword(token));
    if (it != delta_postings_.end()) return it->second;
    return base_->Postings(token);
  }
  auto it = term_ids_.find(Tokenizer::FoldKeyword(token));
  if (it == term_ids_.end()) return {};
  return postings_[it->second];
}

std::span<const NodeId> InvertedIndex::Postings(std::string_view token,
                                                PagePin* pin) const {
  assert(frozen_);
  if (base_ != nullptr) {
    auto delta = delta_postings_.find(Tokenizer::FoldKeyword(token));
    if (delta != delta_postings_.end()) return delta->second;  // pin empty
    return base_->Postings(token, pin);
  }
  auto it = term_ids_.find(Tokenizer::FoldKeyword(token));
  if (it == term_ids_.end()) return {};
  if (!paged()) return postings_[it->second];
  const PostingRun& run = posting_runs_[it->second];
  if (run.count == 0) return {};
  const std::byte* base = store_->pool().Pin(run.ref.page, pin);
  if (base == nullptr) return {};  // failed read: pin->failed() is set
  return {reinterpret_cast<const NodeId*>(base + run.ref.offset),
          static_cast<size_t>(run.count)};
}

size_t InvertedIndex::num_terms() const {
  if (base_ != nullptr) {
    size_t fresh = 0;
    for (const auto& [term, list] : delta_postings_) {
      if (!base_->HasTerm(term)) ++fresh;
    }
    return base_->num_terms() + fresh;
  }
  return paged() ? posting_runs_.size() : postings_.size();
}

std::vector<NodeId> InvertedIndex::TokenPostingsCopy(
    const std::string& folded) const {
  if (base_ != nullptr) {
    auto it = delta_postings_.find(folded);
    if (it != delta_postings_.end()) return it->second;
    return base_->TokenPostingsCopy(folded);
  }
  auto it = term_ids_.find(folded);
  if (it == term_ids_.end()) return {};
  if (!paged()) return postings_[it->second];
  PagePin pin;
  std::span<const NodeId> list = Postings(folded, &pin);
  return {list.begin(), list.end()};
}

std::vector<std::pair<std::string, uint32_t>> InvertedIndex::SortedTerms()
    const {
  assert(base_ == nullptr);  // overlays are not serializable in v1
  std::vector<std::pair<std::string, uint32_t>> terms(term_ids_.begin(),
                                                      term_ids_.end());
  std::sort(terms.begin(), terms.end());
  return terms;
}

std::span<const NodeId> InvertedIndex::PostingsById(uint32_t id) const {
  assert(!paged());
  return postings_[id];
}

InvertedIndex::MemoryUsage InvertedIndex::ComputeMemoryUsage() const {
  MemoryUsage u;
  if (base_ != nullptr) {
    u = base_->ComputeMemoryUsage();
    size_t delta_bytes = 0;
    for (const auto& [term, list] : delta_postings_) {
      delta_bytes += term.size() + list.size() * sizeof(NodeId);
    }
    u.postings_bytes += delta_bytes;
    u.resident_bytes += delta_bytes;
    return u;
  }
  if (paged()) {
    for (const PostingRun& run : posting_runs_) {
      u.postings_bytes += run.count * sizeof(NodeId);
    }
  } else {
    for (const auto& list : postings_) {
      u.postings_bytes += list.size() * sizeof(NodeId);
    }
  }
  for (const auto& [term, id] : term_ids_) {
    u.term_bytes += term.size() + sizeof(uint32_t);
  }
  for (const auto& [name, range] : relations_) {
    u.relation_bytes += name.size() + sizeof(RelationRange);
  }
  u.run_table_bytes = posting_runs_.size() * sizeof(PostingRun);
  u.resident_bytes = u.total_bytes();
  if (paged()) u.resident_bytes -= u.postings_bytes;
  return u;
}

size_t InvertedIndex::MatchCount(std::string_view keyword) const {
  return Match(keyword).size();
}

std::vector<NodeId> InvertedIndex::Match(std::string_view keyword) const {
  assert(frozen_);
  std::string folded = Tokenizer::FoldKeyword(keyword);
  // Owned copy in every mode (resident, paged, overlay) — paged
  // postings pin their page just long enough to copy the list out.
  std::vector<NodeId> out = TokenPostingsCopy(folded);
  auto rel = relations_.find(folded);
  if (rel != relations_.end()) {
    out.reserve(out.size() + rel->second.count);
    for (size_t i = 0; i < rel->second.count; ++i) {
      out.push_back(rel->second.first + static_cast<NodeId>(i));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

InvertedIndex ApplyIndexDelta(
    std::shared_ptr<const InvertedIndex> base,
    const std::vector<std::pair<NodeId, std::string>>& docs,
    std::vector<std::string>* touched_terms) {
  assert(base != nullptr && base->frozen());
  const InvertedIndex& prev = *base;

  InvertedIndex next(TokenizerOptions{});
  next.tokenizer_ = prev.tokenizer_;
  next.relations_ = prev.relations_;
  next.frozen_ = true;
  // Flatten: point at the ultimate non-overlay index and carry the
  // predecessor's delta lists forward, so lookups never chain.
  if (prev.base_ != nullptr) {
    next.base_ = prev.base_;
    next.delta_postings_ = prev.delta_postings_;
  } else {
    next.base_ = base;
  }

  // Group this batch's node ids per folded term. std::map keeps the
  // touched-term output deterministic.
  std::map<std::string, std::vector<NodeId>> additions;
  for (const auto& [node, text] : docs) {
    for (const std::string& token : next.tokenizer_.Tokenize(text)) {
      additions[token].push_back(node);
    }
  }

  for (auto& [term, nodes] : additions) {
    // Effective list before this batch: this overlay's (copied) delta
    // if an earlier epoch touched the term, else the root's.
    std::vector<NodeId> merged;
    auto it = next.delta_postings_.find(term);
    if (it != next.delta_postings_.end()) {
      merged = std::move(it->second);
    } else {
      merged = next.base_->TokenPostingsCopy(term);
    }
    merged.insert(merged.end(), nodes.begin(), nodes.end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    next.delta_postings_[term] = std::move(merged);
    if (touched_terms != nullptr) touched_terms->push_back(term);
  }
  return next;
}

}  // namespace banks
