#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace banks {
namespace {

const char* const kStopwords[] = {
    "a",   "an",  "and", "are", "as",   "at",   "be",   "by",  "for",
    "from", "in",  "is",  "it",  "of",   "on",   "or",   "the", "to",
    "with", "we",  "our", "this", "that", "these", "using"};

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  for (const char* w : kStopwords) stopwords_.insert(w);
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= options_.min_token_length &&
        (!options_.remove_stopwords || !IsStopword(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::string Tokenizer::FoldKeyword(std::string_view keyword) {
  return ToLowerAscii(keyword);
}

bool Tokenizer::IsStopword(const std::string& token) const {
  return stopwords_.count(token) > 0;
}

}  // namespace banks
