#ifndef BANKS_TEXT_INVERTED_INDEX_H_
#define BANKS_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "storage/buffer_pool.h"
#include "text/tokenizer.h"

namespace banks {

class PagedStore;

/// Keyword → node-id index over the data graph (§3: "a single index is
/// built on values from selected string-valued attributes from multiple
/// tables; the index maps from keywords to (table-name, tuple-id)
/// pairs"). Node ids already encode the table through the engine's
/// node-range registration, so postings are plain NodeId lists.
///
/// Two match channels per §2.2:
///  * token postings — nodes whose text contains the term;
///  * relation-name match — "if a term matches a relation name, all
///    tuples in the relation are assumed to match the term".
class InvertedIndex {
 public:
  explicit InvertedIndex(TokenizerOptions tokenizer_options = {});

  /// True when this index is an update overlay over a shared base
  /// (ApplyIndexDelta): touched terms resolve from delta posting lists,
  /// untouched terms read through to the base (resident or paged).
  /// Overlays are flattened — base() never itself has a base.
  bool overlay() const { return base_ != nullptr; }
  const std::shared_ptr<const InvertedIndex>& base() const { return base_; }

  /// Indexes the text of one node. Call before Freeze().
  void AddDocument(NodeId node, std::string_view text);

  /// Declares that nodes [first, first+count) are the tuples of
  /// `relation_name`; a query term equal to the folded relation name
  /// matches them all.
  void RegisterRelation(std::string_view relation_name, NodeId first,
                        size_t count);

  /// Sorts and deduplicates postings. Must be called once after loading;
  /// Match()/Postings() require a frozen index.
  void Freeze();

  /// Postings for a single token (empty span if unknown). Frozen only.
  /// Resident indexes only — paged postings need a pin (below).
  std::span<const NodeId> Postings(std::string_view token) const;

  /// Mode-agnostic postings: paged indexes pin the page holding the
  /// list (blocking on a pool miss); the span stays valid while `pin`
  /// lives. Resident indexes leave `pin` empty.
  std::span<const NodeId> Postings(std::string_view token,
                                   PagePin* pin) const;

  /// Number of nodes matching a term through either channel — the |S_i|
  /// that seeds activation in §4.3.
  size_t MatchCount(std::string_view keyword) const;

  /// Full origin set S_i for a keyword: token postings plus, if the term
  /// names a relation, that relation's node range. Sorted, deduplicated.
  std::vector<NodeId> Match(std::string_view keyword) const;

  size_t num_terms() const;
  bool frozen() const { return frozen_; }

  /// True when posting lists (of this index or its overlay base) live in
  /// a paged store's pages instead of in-memory vectors
  /// (storage/paged_store.h).
  bool paged() const {
    return store_ != nullptr || (base_ != nullptr && base_->paged());
  }

  const Tokenizer& tokenizer() const { return tokenizer_; }

  struct RelationRange {
    NodeId first;
    size_t count;
  };

  /// (term, term id) pairs sorted by term — the deterministic
  /// enumeration order the paged-store writer serializes in.
  std::vector<std::pair<std::string, uint32_t>> SortedTerms() const;
  /// Resident-only postings by dense term id (writer-side access).
  std::span<const NodeId> PostingsById(uint32_t id) const;
  const std::unordered_map<std::string, RelationRange>& relations() const {
    return relations_;
  }

  /// Byte breakdown mirroring Graph::MemoryUsage; `postings_bytes` is
  /// on-disk page bytes when paged, and resident_bytes excludes it.
  struct MemoryUsage {
    size_t postings_bytes = 0;   // NodeId posting lists
    size_t term_bytes = 0;       // term strings + hash entries
    size_t relation_bytes = 0;   // relation ranges
    size_t run_table_bytes = 0;  // paged-mode posting locators
    size_t total_bytes() const {
      return postings_bytes + term_bytes + relation_bytes + run_table_bytes;
    }
    size_t resident_bytes = 0;
  };
  MemoryUsage ComputeMemoryUsage() const;

 private:
  friend class PagedStore;
  friend InvertedIndex ApplyIndexDelta(
      std::shared_ptr<const InvertedIndex> base,
      const std::vector<std::pair<NodeId, std::string>>& docs,
      std::vector<std::string>* touched_terms);

  struct PostingRun {
    PageRunRef ref;
    uint64_t count = 0;
  };

  /// Owned, sorted-unique copy of one token's effective posting list
  /// (empty when the token is unknown). Resolves overlay deltas, then
  /// the base; paged postings pin their page just long enough to copy.
  /// `folded` must already be keyword-folded.
  std::vector<NodeId> TokenPostingsCopy(const std::string& folded) const;
  bool HasTerm(const std::string& folded) const {
    if (base_ != nullptr) {
      return delta_postings_.count(folded) > 0 || base_->HasTerm(folded);
    }
    return term_ids_.count(folded) > 0;
  }

  Tokenizer tokenizer_;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<std::vector<NodeId>> postings_;
  std::unordered_map<std::string, RelationRange> relations_;
  bool frozen_ = false;

  // Paged mode: posting list i lives at posting_runs_[i] in the store's
  // pages; postings_ stays empty.
  std::shared_ptr<PagedStore> store_;
  std::vector<PostingRun> posting_runs_;

  // Overlay mode (ApplyIndexDelta): full merged posting lists for
  // exactly the terms an update touched; every other term reads through
  // to base_. term_ids_/postings_/posting_runs_ stay empty.
  std::shared_ptr<const InvertedIndex> base_;
  std::unordered_map<std::string, std::vector<NodeId>> delta_postings_;
};

/// Applies append-only text additions over `base`, returning an
/// immutable overlay index value-identical to rebuilding the index over
/// the combined documents: each touched term's effective posting list is
/// re-materialized as the sorted-unique merge of the base list and the
/// new node ids. `docs` holds (node, text) pairs — text for brand-new
/// nodes and appended text for existing ones. Relation ranges carry over
/// unchanged (v1 has no relation growth; register all relations before
/// the first update).
///
/// Every touched folded term is appended to `touched_terms` (sorted,
/// unique) — the AnswerCache invalidation set for this update.
///
/// The caller keeps `base` alive through the overlay's lifetime; Engine
/// does this by holding epoch snapshots in shared_ptrs.
InvertedIndex ApplyIndexDelta(
    std::shared_ptr<const InvertedIndex> base,
    const std::vector<std::pair<NodeId, std::string>>& docs,
    std::vector<std::string>* touched_terms);

}  // namespace banks

#endif  // BANKS_TEXT_INVERTED_INDEX_H_
