#ifndef BANKS_TEXT_INVERTED_INDEX_H_
#define BANKS_TEXT_INVERTED_INDEX_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "text/tokenizer.h"

namespace banks {

/// Keyword → node-id index over the data graph (§3: "a single index is
/// built on values from selected string-valued attributes from multiple
/// tables; the index maps from keywords to (table-name, tuple-id)
/// pairs"). Node ids already encode the table through the engine's
/// node-range registration, so postings are plain NodeId lists.
///
/// Two match channels per §2.2:
///  * token postings — nodes whose text contains the term;
///  * relation-name match — "if a term matches a relation name, all
///    tuples in the relation are assumed to match the term".
class InvertedIndex {
 public:
  explicit InvertedIndex(TokenizerOptions tokenizer_options = {});

  /// Indexes the text of one node. Call before Freeze().
  void AddDocument(NodeId node, std::string_view text);

  /// Declares that nodes [first, first+count) are the tuples of
  /// `relation_name`; a query term equal to the folded relation name
  /// matches them all.
  void RegisterRelation(std::string_view relation_name, NodeId first,
                        size_t count);

  /// Sorts and deduplicates postings. Must be called once after loading;
  /// Match()/Postings() require a frozen index.
  void Freeze();

  /// Postings for a single token (empty span if unknown). Frozen only.
  std::span<const NodeId> Postings(std::string_view token) const;

  /// Number of nodes matching a term through either channel — the |S_i|
  /// that seeds activation in §4.3.
  size_t MatchCount(std::string_view keyword) const;

  /// Full origin set S_i for a keyword: token postings plus, if the term
  /// names a relation, that relation's node range. Sorted, deduplicated.
  std::vector<NodeId> Match(std::string_view keyword) const;

  size_t num_terms() const { return postings_.size(); }
  bool frozen() const { return frozen_; }

  const Tokenizer& tokenizer() const { return tokenizer_; }

 private:
  struct RelationRange {
    NodeId first;
    size_t count;
  };

  Tokenizer tokenizer_;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<std::vector<NodeId>> postings_;
  std::unordered_map<std::string, RelationRange> relations_;
  bool frozen_ = false;
};

}  // namespace banks

#endif  // BANKS_TEXT_INVERTED_INDEX_H_
