#ifndef BANKS_BANKS_ENGINE_H_
#define BANKS_BANKS_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "prestige/pagerank.h"
#include "relational/graph_builder.h"
#include "search/answer_cache.h"
#include "search/answer_stream.h"
#include "search/context_pool.h"
#include "search/searcher.h"
#include "serve/scheduler.h"

namespace banks {

/// Engine construction knobs.
struct EngineOptions {
  GraphBuildOptions graph;
  PrestigeOptions prestige;
  /// When false, uniform prestige is used (pure edge-score ranking);
  /// saves the PageRank pass for tests and ablations.
  bool compute_prestige = true;
};

/// One append-only live-graph update (docs/UPDATES.md): new nodes, new
/// forward edges, new text postings. No deletes or mutations in v1.
/// Applied atomically by Engine::ApplyUpdate — queries opened before
/// the apply keep reading the snapshot they started on; queries opened
/// after see the whole batch.
struct UpdateBatch {
  struct NewNode {
    /// Node type name ("" = untyped). Interned against the graph's
    /// existing type names; unseen names are appended.
    std::string type;
    /// Display label (Engine::NodeLabel).
    std::string label;
    /// Text indexed for keyword matching (may be empty).
    std::string text;
  };
  struct NewEdge {
    /// Endpoints: existing node ids or ids of nodes in this batch
    /// (the i-th NewNode gets id num_nodes-before-update + i).
    NodeId u = 0;
    NodeId v = 0;
    double weight = 1.0;
  };
  struct NewText {
    /// Additional keyword text for an EXISTING node (append-only
    /// posting growth; the node's stored label/text is not rewritten).
    NodeId node = 0;
    std::string text;
  };

  std::vector<NewNode> nodes;
  std::vector<NewEdge> edges;
  std::vector<NewText> texts;

  bool empty() const { return nodes.empty() && edges.empty() && texts.empty(); }
};

/// One query of a batch: keywords to resolve through the engine's index,
/// or pre-resolved origin sets (benchmarks resolve once up front). When
/// `origins` is non-empty it wins and `keywords` is ignored.
struct BatchQuerySpec {
  std::vector<std::string> keywords;
  std::vector<std::vector<NodeId>> origins;
};

/// Execution knobs for Engine::QueryBatch.
struct BatchOptions {
  /// Worker threads executing queries. 1 runs the batch inline on the
  /// calling thread; 0 means std::thread::hardware_concurrency().
  /// Thread count never changes results: queries are independent and
  /// results are returned in input order.
  size_t num_threads = 1;

  /// Drop answers that duplicate (same tree Signature()) an answer of an
  /// *earlier* query in the batch. Off by default — with it off, each
  /// query's results are byte-identical to a standalone Query call.
  bool dedup_answers = false;

  /// Context pool to draw scratch space from; batches sharing a pool
  /// across calls reuse warm contexts. nullptr uses a batch-local pool
  /// (first batch pays the cold-context cost).
  SearchContextPool* pool = nullptr;

  /// Streaming delivery: when set, invoked for every answer of every
  /// query *in release order* while its search is still running
  /// (query_index is the spec's input position; the reference is only
  /// valid during the call). Runs on the worker thread executing that
  /// query, so it must be thread-safe when num_threads > 1; answers of
  /// one query arrive in order, answers of different queries interleave.
  /// Answers still land in BatchResult::results, and the sequence per
  /// query is identical to the non-streaming run's. Cache-served
  /// queries (answer_cache) replay their answers through the callback
  /// on the calling thread before workers start.
  std::function<void(size_t query_index, const AnswerTree& answer)> on_answer;

  /// Opt-in result cache shared across batches: keyword-spec queries
  /// whose signature (normalized keywords, algorithm, options
  /// fingerprint) has a live entry skip resolution and the whole
  /// search, and every executed keyword query stores its result for
  /// later batches. Pre-resolved origin specs bypass the cache. Serving
  /// from the cache is stale-tolerant by definition (up to the cache's
  /// TTL) — leave null for always-fresh results. The cache may be
  /// shared by concurrent batches.
  AnswerCache* answer_cache = nullptr;
};

/// Result of Engine::QueryBatch.
struct BatchResult {
  /// Per-query results, in input order.
  std::vector<SearchResult> results;

  /// Work counters summed over the batch. elapsed_seconds is the sum of
  /// per-query times (≈ CPU time across workers, not wall clock); the
  /// per-answer time vectors are left empty.
  SearchMetrics total;

  /// Queries whose keyword set was already resolved earlier in this
  /// batch and skipped the index lookups.
  size_t origin_cache_hits = 0;

  /// Answers removed by BatchOptions::dedup_answers.
  size_t answers_deduplicated = 0;

  /// Queries served from BatchOptions::answer_cache without searching.
  /// (Served results keep the metrics of the run that produced them.)
  size_t answer_cache_hits = 0;
};

/// The top-level BANKS engine: data graph + inverted keyword index +
/// precomputed node prestige, answering keyword queries with any of the
/// three algorithms. This is the facade a downstream user works with:
///
///   Database db = ...;                       // or GenerateDblp(cfg)
///   Engine engine = Engine::FromDatabase(db);
///   SearchResult r = engine.Query({"gray", "transaction"},
///                                 Algorithm::kBidirectional);
///
/// BANKS is an *incremental* top-k system: §4.5's output buffer exists
/// so answers can be emitted one at a time while the search is still
/// running. OpenQuery is the streaming front door that exposes exactly
/// that — an AnswerStream whose Next() runs the search just far enough
/// to release the next in-order answer:
///
///   AnswerStream s = engine.OpenQuery({"gray", "transaction"},
///                                     Algorithm::kBidirectional);
///   while (auto answer = s.Next()) display(*answer);
///
/// Query is OpenQuery(...).Drain() — same state machine, run in one
/// slice — so streamed and drained results are identical prefix by
/// prefix.
///
/// Node prestige is computed once at construction (§2.3: "node prestige
/// scores can be assumed to be precomputed").
///
/// Live updates (docs/UPDATES.md): ApplyUpdate applies an append-only
/// UpdateBatch and publishes it as a new immutable epoch snapshot.
/// Queries, streams and subscriptions pin the epoch current when they
/// were opened and keep reading it — snapshot isolation — while new
/// queries see the updated state; search on any snapshot is
/// byte-identical to a fresh-built engine of the same logical state
/// (ARCHITECTURE.md, contract 5). Writers serialize against each other;
/// readers never block.
class Engine {
 public:
  /// Extracts the data graph from a relational database (§2.1).
  static Engine FromDatabase(const Database& db,
                             const EngineOptions& options = {});

  /// Wraps a pre-built data graph (e.g. loaded from disk).
  explicit Engine(DataGraph data, const EngineOptions& options = {});

  /// Resolves keywords to origin sets S_i (token postings plus
  /// relation-name matches).
  std::vector<std::vector<NodeId>> Resolve(
      const std::vector<std::string>& keywords) const;

  /// End-to-end query: resolve + search. Pass a SearchContext to reuse
  /// per-query scratch space across a query stream (the second query on
  /// a warm context performs no large allocations); nullptr runs the
  /// query on a fresh context.
  ///
  /// Intra-query parallelism rides in on the options:
  /// SearchOptions::shard_count > 1 splits this one query's frontier
  /// across worker threads (answers stay byte-identical to
  /// shard_count = 1), with worker scratch leased from
  /// SearchOptions::shard_pool. Composes with QueryBatch — batch
  /// workers parallelize across queries, shard workers within one —
  /// but on a saturated batch prefer shard_count = 1: cross-query
  /// parallelism has no coordination overhead.
  SearchResult Query(const std::vector<std::string>& keywords,
                     Algorithm algorithm, const SearchOptions& options = {},
                     SearchContext* context = nullptr) const;

  /// Search over pre-resolved origin sets (benchmarks resolve once and
  /// run several algorithms on identical origins).
  SearchResult QueryResolved(const std::vector<std::vector<NodeId>>& origins,
                             Algorithm algorithm,
                             const SearchOptions& options = {},
                             SearchContext* context = nullptr) const;

  /// Opens a resumable search and returns its pull cursor: resolve +
  /// begin, but no expansion work happens until the first Next()/
  /// Drain(). Context precedence: explicit `context` (borrowed; must
  /// outlive the stream) > StreamOptions::pool (leased, returned by the
  /// stream's RAII cleanup) > a stream-private context. Pass a warm
  /// context or a shared pool when opening streams in a loop — streaming
  /// adds no steady-state allocations beyond the per-answer handoff.
  ///
  /// The answer sequence pulled from the stream is identical, prefix by
  /// prefix, to the drained Query result for the same arguments, at
  /// every algorithm × bound mode × shard count.
  AnswerStream OpenQuery(const std::vector<std::string>& keywords,
                         Algorithm algorithm,
                         const SearchOptions& options = {},
                         const StreamOptions& stream = {},
                         SearchContext* context = nullptr) const;

  /// OpenQuery over pre-resolved origin sets. The stream owns the moved
  /// origins, so the caller's copy may go away.
  AnswerStream OpenQueryResolved(std::vector<std::vector<NodeId>> origins,
                                 Algorithm algorithm,
                                 const SearchOptions& options = {},
                                 const StreamOptions& stream = {},
                                 SearchContext* context = nullptr) const;

  /// Registers a query as a task on the serving core (docs/SERVING.md):
  /// the search runs as cooperative quanta on the scheduler's workers —
  /// interleaved fairly with every other in-flight subscription — and
  /// each released answer is *pushed* to `sink` in release order,
  /// exactly the sequence the drained Query returns. Keywords are
  /// resolved on the calling thread; admission control also runs before
  /// this returns (Subscription::admission() says how it went; a
  /// kRejected submission has already received its terminal
  /// OnComplete). The sink must outlive the subscription — i.e. stay
  /// valid until OnComplete fires; Subscription::Wait() is the fence.
  ///
  /// SubscribeOptions carries the serving knobs: target scheduler
  /// (default: the process-wide Scheduler::Default()), fair-queueing
  /// tenant + weight, a scheduler-enforced deadline covering queueing
  /// through delivery, and delivery credits for sink flow control.
  ///
  /// This is also the network front door's entry point: banks::net's
  /// Server (docs/NETWORK.md) subscribes each wire request with a
  /// per-connection tenant and a socket-backed sink whose credits are
  /// granted by socket writability, so everything documented here —
  /// admission, deadlines, credit parking — is the remote contract too.
  Subscription Subscribe(const std::vector<std::string>& keywords,
                         Algorithm algorithm, AnswerSink* sink,
                         const SearchOptions& options = {},
                         const SubscribeOptions& subscribe = {}) const;

  /// Subscribe over pre-resolved origin sets (the task owns the moved
  /// origins, so the caller's copy may go away).
  Subscription SubscribeResolved(std::vector<std::vector<NodeId>> origins,
                                 Algorithm algorithm, AnswerSink* sink,
                                 const SearchOptions& options = {},
                                 const SubscribeOptions& subscribe = {}) const;

  /// Executes a batch of independent queries, optionally across worker
  /// threads, returning results in input order.
  ///
  /// The batch path amortizes what a loop of Query calls cannot:
  ///  * one searcher is constructed per batch and shared by all workers
  ///    (Searcher::Search is const — scratch lives in the context);
  ///  * contexts come from a SearchContextPool, so N threads reuse the
  ///    pool's warm contexts instead of allocating fresh state;
  ///  * keyword resolution is cached batch-wide — duplicate keyword
  ///    sets skip the inverted-index lookups entirely.
  ///
  /// With BatchOptions::dedup_answers off (default), results[i] is
  /// byte-identical to Query(specs[i].keywords, ...) modulo timing
  /// fields, at any thread count.
  BatchResult QueryBatch(const std::vector<BatchQuerySpec>& specs,
                         Algorithm algorithm,
                         const SearchOptions& options = {},
                         const BatchOptions& batch = {}) const;

  /// Applies one append-only update batch and publishes it as a new
  /// epoch; returns the new epoch number. Atomic for readers: a query
  /// opened before this returns reads the prior snapshot in full, one
  /// opened after sees the whole batch. Concurrent ApplyUpdate calls
  /// serialize (one writer at a time); readers never block the writer
  /// or each other.
  ///
  /// When `cache` is non-null, entries whose keywords the batch touched
  /// are invalidated after the publish — the cross-epoch half of cache
  /// correctness (the structure epoch folded into cache keys is the
  /// other half; see AnswerCacheKey).
  uint64_t ApplyUpdate(const UpdateBatch& batch,
                       AnswerCache* cache = nullptr);

  /// Epoch of the current snapshot: total ApplyUpdate publishes.
  uint64_t epoch() const { return SnapshotNow()->epoch; }
  /// Structure epoch: bumped only by batches that add nodes or edges
  /// (not by posting-only updates). This is what cache keys fold in.
  uint64_t structure_epoch() const { return SnapshotNow()->structure_epoch; }

  /// Direct views of the CURRENT snapshot's state, for quiescent use
  /// (setup, tests, benchmarks): the references stay valid until the
  /// next ApplyUpdate replaces the snapshot. Code racing with updates
  /// must go through Query/OpenQuery/Subscribe, which pin the snapshot
  /// they run on.
  const Graph& graph() const { return SnapshotNow()->data.graph; }
  const InvertedIndex& index() const { return SnapshotNow()->data.index; }
  const DataGraph& data() const { return SnapshotNow()->data; }
  const std::vector<double>& prestige() const {
    return SnapshotNow()->prestige;
  }

  /// Display label for a node ("paper#17 [bidirectional expansion ...]").
  const std::string& NodeLabel(NodeId node) const;

  /// Multi-line human-readable rendering of an answer tree.
  std::string DescribeAnswer(const AnswerTree& tree) const;

 private:
  /// One immutable epoch: the data graph (possibly an update overlay
  /// sharing its base's adjacency), its prestige vector, and the epoch
  /// counters. Published atomically by ApplyUpdate; freed when the last
  /// reader pin (EpochPin) and the engine's own reference drop.
  struct Snapshot {
    DataGraph data;
    std::vector<double> prestige;
    uint64_t epoch = 0;
    uint64_t structure_epoch = 0;
  };

  /// Shared mutable cell holding the current snapshot. Heap-allocated so
  /// the Engine stays movable while queries pin snapshots through it.
  struct Live {
    mutable std::mutex mu;  // guards `snap` swap/copy (readers + publish)
    std::mutex write_mu;    // serializes ApplyUpdate end to end
    std::shared_ptr<const Snapshot> snap;
  };

  std::shared_ptr<const Snapshot> SnapshotNow() const {
    std::lock_guard<std::mutex> lock(live_->mu);
    return live_->snap;
  }

  /// Query/OpenQuery/Subscribe internals against ONE snapshot, so a
  /// keyword query resolves and searches the same epoch.
  static std::vector<std::vector<NodeId>> ResolveOn(
      const Snapshot& snap, const std::vector<std::string>& keywords);
  Subscription SubscribeOn(std::shared_ptr<const Snapshot> snap,
                           std::vector<std::vector<NodeId>> origins,
                           Algorithm algorithm, AnswerSink* sink,
                           const SearchOptions& options,
                           const SubscribeOptions& subscribe) const;

  std::shared_ptr<Live> live_;
  EngineOptions options_;
};

}  // namespace banks

#endif  // BANKS_BANKS_ENGINE_H_
