#ifndef BANKS_BANKS_ENGINE_H_
#define BANKS_BANKS_ENGINE_H_

#include <string>
#include <vector>

#include "prestige/pagerank.h"
#include "relational/graph_builder.h"
#include "search/searcher.h"

namespace banks {

/// Engine construction knobs.
struct EngineOptions {
  GraphBuildOptions graph;
  PrestigeOptions prestige;
  /// When false, uniform prestige is used (pure edge-score ranking);
  /// saves the PageRank pass for tests and ablations.
  bool compute_prestige = true;
};

/// The top-level BANKS engine: data graph + inverted keyword index +
/// precomputed node prestige, answering keyword queries with any of the
/// three algorithms. This is the facade a downstream user works with:
///
///   Database db = ...;                       // or GenerateDblp(cfg)
///   Engine engine = Engine::FromDatabase(db);
///   SearchResult r = engine.Query({"gray", "transaction"},
///                                 Algorithm::kBidirectional);
///
/// Node prestige is computed once at construction (§2.3: "node prestige
/// scores can be assumed to be precomputed").
class Engine {
 public:
  /// Extracts the data graph from a relational database (§2.1).
  static Engine FromDatabase(const Database& db,
                             const EngineOptions& options = {});

  /// Wraps a pre-built data graph (e.g. loaded from disk).
  explicit Engine(DataGraph data, const EngineOptions& options = {});

  /// Resolves keywords to origin sets S_i (token postings plus
  /// relation-name matches).
  std::vector<std::vector<NodeId>> Resolve(
      const std::vector<std::string>& keywords) const;

  /// End-to-end query: resolve + search. Pass a SearchContext to reuse
  /// per-query scratch space across a query stream (the second query on
  /// a warm context performs no large allocations); nullptr runs the
  /// query on a fresh context.
  SearchResult Query(const std::vector<std::string>& keywords,
                     Algorithm algorithm, const SearchOptions& options = {},
                     SearchContext* context = nullptr) const;

  /// Search over pre-resolved origin sets (benchmarks resolve once and
  /// run several algorithms on identical origins).
  SearchResult QueryResolved(const std::vector<std::vector<NodeId>>& origins,
                             Algorithm algorithm,
                             const SearchOptions& options = {},
                             SearchContext* context = nullptr) const;

  const Graph& graph() const { return data_.graph; }
  const InvertedIndex& index() const { return data_.index; }
  const DataGraph& data() const { return data_; }
  const std::vector<double>& prestige() const { return prestige_; }

  /// Display label for a node ("paper#17 [bidirectional expansion ...]").
  const std::string& NodeLabel(NodeId node) const;

  /// Multi-line human-readable rendering of an answer tree.
  std::string DescribeAnswer(const AnswerTree& tree) const;

 private:
  DataGraph data_;
  std::vector<double> prestige_;
};

}  // namespace banks

#endif  // BANKS_BANKS_ENGINE_H_
