#include "banks/engine.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/graph_delta.h"
#include "storage/paged_store.h"
#include "text/tokenizer.h"

namespace banks {

Engine Engine::FromDatabase(const Database& db, const EngineOptions& options) {
  return Engine(BuildDataGraph(db, options.graph), options);
}

Engine::Engine(DataGraph data, const EngineOptions& options)
    : live_(std::make_shared<Live>()), options_(options) {
  auto snap = std::make_shared<Snapshot>();
  snap->data = std::move(data);
  if (!options.compute_prestige) {
    snap->prestige = UniformPrestige(snap->data.graph.num_nodes());
  } else {
    // A paged graph carries the prestige it was saved with, so opening
    // an out-of-core engine never runs a PageRank pass over paged
    // adjacency (which would drag every page through the buffer pool at
    // startup).
    const std::shared_ptr<PagedStore>& store = snap->data.graph.paged_store();
    if (store != nullptr &&
        store->prestige().size() == snap->data.graph.num_nodes()) {
      snap->prestige = store->prestige();
    } else {
      snap->prestige = ComputePrestige(snap->data.graph, options.prestige);
    }
  }
  live_->snap = std::move(snap);
}

std::vector<std::vector<NodeId>> Engine::ResolveOn(
    const Snapshot& snap, const std::vector<std::string>& keywords) {
  std::vector<std::vector<NodeId>> origins;
  origins.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    origins.push_back(snap.data.index.Match(kw));
  }
  return origins;
}

std::vector<std::vector<NodeId>> Engine::Resolve(
    const std::vector<std::string>& keywords) const {
  return ResolveOn(*SnapshotNow(), keywords);
}

SearchResult Engine::Query(const std::vector<std::string>& keywords,
                           Algorithm algorithm, const SearchOptions& options,
                           SearchContext* context) const {
  // One snapshot for resolve AND search: an update landing between the
  // two would otherwise search origins from a different epoch.
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  std::vector<std::vector<NodeId>> origins = ResolveOn(*snap, keywords);
  auto searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  const Searcher* raw = searcher.get();
  return AnswerStream(raw, {}, &origins, StreamOptions{}, context,
                      std::move(searcher))
      .Drain();
}

SearchResult Engine::QueryResolved(
    const std::vector<std::vector<NodeId>>& origins, Algorithm algorithm,
    const SearchOptions& options, SearchContext* context) const {
  // A drained query is a stream pulled in one slice. The borrowed-origins
  // stream form avoids copying the caller's origin sets: the stream dies
  // inside this statement, well within `origins`' lifetime — and the
  // snapshot outlives it on this stack frame, no pin needed.
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  auto searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  const Searcher* raw = searcher.get();
  return AnswerStream(raw, {}, &origins, StreamOptions{}, context,
                      std::move(searcher))
      .Drain();
}

AnswerStream Engine::OpenQuery(const std::vector<std::string>& keywords,
                               Algorithm algorithm,
                               const SearchOptions& options,
                               const StreamOptions& stream,
                               SearchContext* context) const {
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  std::vector<std::vector<NodeId>> origins = ResolveOn(*snap, keywords);
  auto searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  const Searcher* raw = searcher.get();
  EpochPin pin{snap, snap->epoch};
  return AnswerStream(raw, std::move(origins), nullptr, stream, context,
                      std::move(searcher), std::move(pin));
}

AnswerStream Engine::OpenQueryResolved(std::vector<std::vector<NodeId>> origins,
                                       Algorithm algorithm,
                                       const SearchOptions& options,
                                       const StreamOptions& stream,
                                       SearchContext* context) const {
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  auto searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  const Searcher* raw = searcher.get();
  // The stream pins the snapshot it was opened on: updates published
  // while the stream is live replace the engine's current snapshot but
  // never reclaim this one (snapshot isolation, docs/UPDATES.md).
  EpochPin pin{snap, snap->epoch};
  return AnswerStream(raw, std::move(origins), nullptr, stream, context,
                      std::move(searcher), std::move(pin));
}

Subscription Engine::Subscribe(const std::vector<std::string>& keywords,
                               Algorithm algorithm, AnswerSink* sink,
                               const SearchOptions& options,
                               const SubscribeOptions& subscribe) const {
  // One snapshot for resolve AND the task's whole search life.
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  std::vector<std::vector<NodeId>> origins = ResolveOn(*snap, keywords);
  return SubscribeOn(std::move(snap), std::move(origins), algorithm, sink,
                     options, subscribe);
}

Subscription Engine::SubscribeResolved(
    std::vector<std::vector<NodeId>> origins, Algorithm algorithm,
    AnswerSink* sink, const SearchOptions& options,
    const SubscribeOptions& subscribe) const {
  return SubscribeOn(SnapshotNow(), std::move(origins), algorithm, sink,
                     options, subscribe);
}

Subscription Engine::SubscribeOn(std::shared_ptr<const Snapshot> snap,
                                 std::vector<std::vector<NodeId>> origins,
                                 Algorithm algorithm, AnswerSink* sink,
                                 const SearchOptions& options,
                                 const SubscribeOptions& subscribe) const {
  Scheduler& scheduler = subscribe.scheduler != nullptr
                             ? *subscribe.scheduler
                             : Scheduler::Default();
  TaskSpec spec;
  spec.searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  spec.origins = std::move(origins);
  spec.sink = sink;
  spec.tenant = subscribe.tenant;
  spec.weight = subscribe.weight;
  spec.deadline_seconds = subscribe.deadline_seconds;
  spec.answer_credits = subscribe.answer_credits;
  // The task holds the epoch pin for its whole life — admission queue,
  // page-wait parks and credit waits included — released by the
  // scheduler's terminal transition.
  spec.epoch_pin = EpochPin{snap, snap->epoch};
  return scheduler.Submit(std::move(spec));
}

namespace {

/// Cache key for a spec's keyword list. Keywords are raw caller strings
/// (they may contain any byte), so each is length-prefixed to keep the
/// join injective.
std::string KeywordCacheKey(const std::vector<std::string>& keywords) {
  std::string key;
  for (const std::string& kw : keywords) {
    key += std::to_string(kw.size());
    key += ':';
    key += kw;
  }
  return key;
}

/// Folds one query's counters into the batch total. Timing vectors stay
/// empty: per-answer timestamps are relative to their own query's start
/// and do not aggregate meaningfully.
void AccumulateMetrics(const SearchMetrics& m, SearchMetrics* total) {
  total->nodes_explored += m.nodes_explored;
  total->nodes_touched += m.nodes_touched;
  total->edges_relaxed += m.edges_relaxed;
  total->propagation_steps += m.propagation_steps;
  total->answers_generated += m.answers_generated;
  total->answers_output += m.answers_output;
  total->page_hits += m.page_hits;
  total->page_misses += m.page_misses;
  total->page_waits += m.page_waits;
  total->elapsed_seconds += m.elapsed_seconds;
  total->budget_exhausted |= m.budget_exhausted;
}

}  // namespace

BatchResult Engine::QueryBatch(const std::vector<BatchQuerySpec>& specs,
                               Algorithm algorithm,
                               const SearchOptions& options,
                               const BatchOptions& batch) const {
  BatchResult out;
  out.results.resize(specs.size());
  if (specs.empty()) return out;

  // The whole batch runs on one snapshot: resolution, cache keys and
  // searches all see the same epoch, whatever updates land meanwhile.
  std::shared_ptr<const Snapshot> snap = SnapshotNow();

  // ---- Resolve phase (calling thread) ----------------------------------
  // Each distinct keyword set hits the inverted index once; duplicates
  // within the batch share the resolved origins. Owned resolutions live
  // in `resolved_storage` (unique_ptr for pointer stability); specs with
  // pre-resolved origins are referenced in place.
  // ---- Answer-cache phase (calling thread) -----------------------------
  // Keyword specs whose full query signature has a live cache entry are
  // served before any resolution or search work; their on_answer replay
  // happens here, sequentially, in stored release order.
  std::vector<uint8_t> served(specs.size(), 0);
  std::vector<std::string> cache_keys(specs.size());
  std::vector<std::vector<std::string>> folded_keywords(specs.size());
  if (batch.answer_cache != nullptr) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (!specs[i].origins.empty()) continue;  // keyword specs only
      std::vector<std::string>& folded = folded_keywords[i];
      folded.reserve(specs[i].keywords.size());
      for (const std::string& kw : specs[i].keywords) {
        folded.push_back(Tokenizer::FoldKeyword(kw));
      }
      // The structure epoch in the key makes entries cached against an
      // older graph structure unreachable; posting-only updates keep
      // the epoch and invalidate by touched keyword instead.
      cache_keys[i] =
          AnswerCacheKey(algorithm, options, folded, snap->structure_epoch);
      if (batch.answer_cache->Lookup(cache_keys[i], &out.results[i])) {
        served[i] = 1;
        ++out.answer_cache_hits;
        if (batch.on_answer) {
          for (const AnswerTree& answer : out.results[i].answers) {
            batch.on_answer(i, answer);
          }
        }
      }
    }
  }

  std::vector<const std::vector<std::vector<NodeId>>*> origins(specs.size());
  std::vector<std::unique_ptr<std::vector<std::vector<NodeId>>>>
      resolved_storage;
  std::unordered_map<std::string, const std::vector<std::vector<NodeId>>*>
      cache;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (served[i]) continue;
    if (!specs[i].origins.empty()) {
      origins[i] = &specs[i].origins;
      continue;
    }
    std::string key = KeywordCacheKey(specs[i].keywords);
    auto [it, inserted] = cache.try_emplace(key, nullptr);
    if (inserted) {
      resolved_storage.push_back(
          std::make_unique<std::vector<std::vector<NodeId>>>(
              ResolveOn(*snap, specs[i].keywords)));
      it->second = resolved_storage.back().get();
    } else {
      ++out.origin_cache_hits;
    }
    origins[i] = it->second;
  }

  // ---- Execute phase ---------------------------------------------------
  // One shared searcher (Search is const), one context per worker from
  // the pool. Workers pull query indices off an atomic counter; results
  // land in their input slot, so scheduling order never shows.
  auto searcher =
      CreateSearcher(algorithm, snap->data.graph, snap->prestige, options);
  SearchContextPool local_pool;
  SearchContextPool* pool = batch.pool != nullptr ? batch.pool : &local_pool;

  size_t num_threads =
      batch.num_threads != 0
          ? batch.num_threads
          : static_cast<size_t>(std::thread::hardware_concurrency());
  if (num_threads == 0) num_threads = 1;
  if (num_threads > specs.size()) num_threads = specs.size();

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    // Claim work before taking a lease: a worker that arrives after the
    // batch is drained (or finds only cache-served queries) must not
    // grow a caller-shared pool with a context that would never run a
    // query.
    size_t i = next.fetch_add(1, std::memory_order_relaxed);
    while (i < specs.size() && served[i]) {
      i = next.fetch_add(1, std::memory_order_relaxed);
    }
    if (i >= specs.size()) return;
    SearchContextPool::Lease lease = pool->Acquire();
    for (; i < specs.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (served[i]) continue;
      if (!batch.on_answer) {
        out.results[i] = searcher->Search(*origins[i], lease.get());
        continue;
      }
      // Streaming delivery: pull the search one released answer at a
      // time and fire the callback in release order. Pausing is
      // behavior-neutral, so the final result is identical to the
      // non-streaming run's.
      SearchContext* context = lease.get();
      context->stream.Reset();
      size_t reported = 0;
      for (;;) {
        StepLimits limits;
        limits.release_target = reported + 1;
        SearchStatus status = searcher->Resume(*origins[i], context, limits);
        const std::vector<AnswerTree>& released =
            context->stream.result.answers;
        for (; reported < released.size(); ++reported) {
          batch.on_answer(i, released[reported]);
        }
        if (status == SearchStatus::kDone) break;
      }
      out.results[i] = std::move(context->stream.result);
      context->stream.Reset();
    }
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    std::exception_ptr failure;
    std::mutex failure_mu;
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&]() {
        try {
          worker();
        } catch (...) {
          std::lock_guard<std::mutex> lock(failure_mu);
          if (!failure) failure = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (failure) std::rethrow_exception(failure);
  }

  // ---- Cache store ------------------------------------------------------
  // Executed keyword queries feed the shared cache before the dedup hook
  // below can filter their answers: the cache holds each query's own
  // full result, exactly what a later standalone hit should serve.
  if (batch.answer_cache != nullptr) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (served[i] || cache_keys[i].empty()) continue;
      batch.answer_cache->Store(cache_keys[i], std::move(folded_keywords[i]),
                                out.results[i]);
    }
  }

  // ---- Aggregate + dedup hook ------------------------------------------
  std::unordered_set<uint64_t> seen_signatures;
  for (SearchResult& r : out.results) {
    AccumulateMetrics(r.metrics, &out.total);
    if (!batch.dedup_answers) continue;
    std::vector<AnswerTree> kept;
    std::vector<uint64_t> kept_signatures;
    kept.reserve(r.answers.size());
    kept_signatures.reserve(r.answers.size());
    for (AnswerTree& tree : r.answers) {
      uint64_t signature = tree.Signature();
      if (seen_signatures.count(signature) > 0) {
        ++out.answers_deduplicated;
      } else {
        kept.push_back(std::move(tree));
        kept_signatures.push_back(signature);
      }
    }
    // Answers of one query join the seen set only after the whole query
    // is filtered: within-query duplicate suppression is the searcher's
    // job (§4.6 Signature collisions), not the batch's.
    seen_signatures.insert(kept_signatures.begin(), kept_signatures.end());
    r.answers = std::move(kept);
  }
  return out;
}

uint64_t Engine::ApplyUpdate(const UpdateBatch& batch, AnswerCache* cache) {
  // One writer at a time: the whole read-overlay-publish sequence is
  // serialized, so each epoch's delta is built against a settled base.
  std::lock_guard<std::mutex> write_lock(live_->write_mu);
  std::shared_ptr<const Snapshot> prev = SnapshotNow();
  const NodeId n_old = prev->data.graph.num_nodes();

  // Intern batch node types against the graph's existing names, then
  // against names this batch already appended ("" = untyped).
  GraphDelta gd;
  gd.new_node_types.reserve(batch.nodes.size());
  const std::vector<std::string>& type_names = prev->data.graph.type_names();
  for (const UpdateBatch::NewNode& node : batch.nodes) {
    NodeType type = kUntypedNode;
    if (!node.type.empty()) {
      for (size_t i = 0; i < type_names.size(); ++i) {
        if (type_names[i] == node.type) {
          type = static_cast<NodeType>(i);
          break;
        }
      }
      for (size_t i = 0; type == kUntypedNode && i < gd.new_type_names.size();
           ++i) {
        if (gd.new_type_names[i] == node.type) {
          type = static_cast<NodeType>(type_names.size() + i);
        }
      }
      if (type == kUntypedNode) {
        type = static_cast<NodeType>(type_names.size() +
                                     gd.new_type_names.size());
        gd.new_type_names.push_back(node.type);
      }
    }
    gd.new_node_types.push_back(type);
  }
  gd.new_edges.reserve(batch.edges.size());
  for (const UpdateBatch::NewEdge& e : batch.edges) {
    gd.new_edges.push_back({e.u, e.v, e.weight});
  }

  const bool structural = !batch.nodes.empty() || !batch.edges.empty();

  // Aliasing pointers: the overlays share (never copy) the previous
  // epoch's storage, so the new snapshot keeps the whole previous
  // snapshot alive through them.
  std::shared_ptr<const Graph> prev_graph(prev, &prev->data.graph);
  std::shared_ptr<const InvertedIndex> prev_index(prev, &prev->data.index);

  auto next = std::make_shared<Snapshot>();
  next->data.graph = ApplyGraphDelta(prev_graph, gd, options_.graph);

  std::vector<std::pair<NodeId, std::string>> docs;
  docs.reserve(batch.nodes.size() + batch.texts.size());
  for (size_t i = 0; i < batch.nodes.size(); ++i) {
    if (batch.nodes[i].text.empty()) continue;
    docs.emplace_back(n_old + static_cast<NodeId>(i), batch.nodes[i].text);
  }
  for (const UpdateBatch::NewText& t : batch.texts) {
    if (t.text.empty()) continue;
    docs.emplace_back(t.node, t.text);
  }
  std::vector<std::string> touched;
  next->data.index = ApplyIndexDelta(std::move(prev_index), docs, &touched);

  // Table ranges are fixed at build time; batch nodes belong to no
  // table. Labels extend verbatim (NodeLabel shows them as given).
  next->data.table_first_node = prev->data.table_first_node;
  next->data.node_labels = prev->data.node_labels;
  next->data.node_labels.reserve(n_old + batch.nodes.size());
  for (const UpdateBatch::NewNode& node : batch.nodes) {
    next->data.node_labels.push_back(node.label);
  }

  if (!structural) {
    // Posting-only batch: the graph is untouched, scores carry over.
    next->prestige = prev->prestige;
  } else if (options_.compute_prestige) {
    next->prestige = ComputePrestige(next->data.graph, options_.prestige);
  } else {
    next->prestige = UniformPrestige(next->data.graph.num_nodes());
  }

  next->epoch = prev->epoch + 1;
  next->structure_epoch = prev->structure_epoch + (structural ? 1 : 0);
  const uint64_t published = next->epoch;

  {
    std::lock_guard<std::mutex> lock(live_->mu);
    live_->snap = std::move(next);
  }

  // Invalidate AFTER the publish: entries stored by batches racing on
  // the old snapshot before this point are swept here; ones stored
  // after carry the old structure epoch in their key (structural
  // updates) or age out within the TTL (posting-only — the documented
  // staleness bound of opting into the cache).
  if (cache != nullptr && !touched.empty()) {
    cache->InvalidateKeywords(touched);
  }
  return published;
}

const std::string& Engine::NodeLabel(NodeId node) const {
  static const std::string kUnknown = "<node>";
  // Reads the current snapshot; like the graph()/index() accessors, the
  // returned reference is for quiescent use — it stays valid until the
  // next ApplyUpdate retires the snapshot.
  std::shared_ptr<const Snapshot> snap = SnapshotNow();
  if (node >= snap->data.node_labels.size()) return kUnknown;
  return snap->data.node_labels[node];
}

std::string Engine::DescribeAnswer(const AnswerTree& tree) const {
  std::ostringstream os;
  os << "root: " << NodeLabel(tree.root) << "  (score " << tree.score
     << ", Eraw " << tree.edge_score_raw << ", N " << tree.node_prestige
     << ")\n";
  for (const AnswerEdge& e : tree.edges) {
    os << "  " << NodeLabel(e.parent) << " -> " << NodeLabel(e.child)
       << "  (w " << e.weight << ")\n";
  }
  for (size_t i = 0; i < tree.keyword_nodes.size(); ++i) {
    os << "  keyword " << i << " @ " << NodeLabel(tree.keyword_nodes[i])
       << "  (dist " << tree.keyword_distances[i] << ")\n";
  }
  return os.str();
}

}  // namespace banks
