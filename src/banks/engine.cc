#include "banks/engine.h"

#include <sstream>

namespace banks {

Engine Engine::FromDatabase(const Database& db, const EngineOptions& options) {
  return Engine(BuildDataGraph(db, options.graph), options);
}

Engine::Engine(DataGraph data, const EngineOptions& options)
    : data_(std::move(data)) {
  prestige_ = options.compute_prestige
                  ? ComputePrestige(data_.graph, options.prestige)
                  : UniformPrestige(data_.graph.num_nodes());
}

std::vector<std::vector<NodeId>> Engine::Resolve(
    const std::vector<std::string>& keywords) const {
  std::vector<std::vector<NodeId>> origins;
  origins.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    origins.push_back(data_.index.Match(kw));
  }
  return origins;
}

SearchResult Engine::Query(const std::vector<std::string>& keywords,
                           Algorithm algorithm, const SearchOptions& options,
                           SearchContext* context) const {
  return QueryResolved(Resolve(keywords), algorithm, options, context);
}

SearchResult Engine::QueryResolved(
    const std::vector<std::vector<NodeId>>& origins, Algorithm algorithm,
    const SearchOptions& options, SearchContext* context) const {
  auto searcher = CreateSearcher(algorithm, data_.graph, prestige_, options);
  return context ? searcher->Search(origins, context)
                 : searcher->Search(origins);
}

const std::string& Engine::NodeLabel(NodeId node) const {
  static const std::string kUnknown = "<node>";
  if (node >= data_.node_labels.size()) return kUnknown;
  return data_.node_labels[node];
}

std::string Engine::DescribeAnswer(const AnswerTree& tree) const {
  std::ostringstream os;
  os << "root: " << NodeLabel(tree.root) << "  (score " << tree.score
     << ", Eraw " << tree.edge_score_raw << ", N " << tree.node_prestige
     << ")\n";
  for (const AnswerEdge& e : tree.edges) {
    os << "  " << NodeLabel(e.parent) << " -> " << NodeLabel(e.child)
       << "  (w " << e.weight << ")\n";
  }
  for (size_t i = 0; i < tree.keyword_nodes.size(); ++i) {
    os << "  keyword " << i << " @ " << NodeLabel(tree.keyword_nodes[i])
       << "  (dist " << tree.keyword_distances[i] << ")\n";
  }
  return os.str();
}

}  // namespace banks
