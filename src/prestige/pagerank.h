#ifndef BANKS_PRESTIGE_PAGERANK_H_
#define BANKS_PRESTIGE_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace banks {

/// Options for the biased random walk of §2.3.
struct PrestigeOptions {
  /// Probability of following an out-edge rather than teleporting.
  double damping = 0.85;
  /// Power-iteration stopping criteria.
  int max_iterations = 100;
  double tolerance = 1e-10;
  /// Normalize the returned scores so the maximum is 1. Activation
  /// seeding (a_{u,i} = prestige(u)/|S_i|, Eq. 1) and the tree prestige
  /// N both want a bounded scale.
  bool normalize_max_to_one = true;
};

/// Computes node prestige with a biased PageRank: the probability of
/// following edge (u,v) is inversely proportional to its weight in the
/// *data graph* (combined forward+backward, as built), i.e.
/// P(u→v) = (1/w_uv) / Σ_x (1/w_ux). Backward edges through hubs carry
/// large weights and therefore small transition probability, so hubs do
/// not leak prestige through meaningless shortcuts.
///
/// Dangling nodes teleport uniformly. Deterministic for a given graph.
std::vector<double> ComputePrestige(const Graph& g,
                                    const PrestigeOptions& options = {});

/// All-ones prestige, for configurations that ignore node weight (the
/// paper's λ = 0 ablation) and for unit tests wanting pure edge scores.
std::vector<double> UniformPrestige(size_t num_nodes);

}  // namespace banks

#endif  // BANKS_PRESTIGE_PAGERANK_H_
