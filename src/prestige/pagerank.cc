#include "prestige/pagerank.h"

#include <algorithm>
#include <cmath>

namespace banks {

std::vector<double> ComputePrestige(const Graph& g,
                                    const PrestigeOptions& options) {
  const size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double inv_sum = g.OutInverseWeightSum(u);
      if (inv_sum <= 0.0) {
        dangling_mass += rank[u];
        continue;
      }
      const double scale = rank[u] / inv_sum;
      // Mode-agnostic adjacency: paged graphs pin the page (engines
      // normally load stored prestige instead, so this path is a
      // fallback for paged graphs saved without prestige).
      PagePin pin;
      for (const Edge& e : g.OutEdges(u, &pin)) {
        next[e.other] += scale / e.weight;
      }
    }
    const double teleport =
        (1.0 - options.damping + options.damping * dangling_mass) /
        static_cast<double>(n);
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double nv = options.damping * next[v] + teleport;
      delta += std::fabs(nv - rank[v]);
      rank[v] = nv;
    }
    if (delta < options.tolerance) break;
  }

  if (options.normalize_max_to_one) {
    double mx = *std::max_element(rank.begin(), rank.end());
    if (mx > 0) {
      for (double& r : rank) r /= mx;
    }
  }
  return rank;
}

std::vector<double> UniformPrestige(size_t num_nodes) {
  return std::vector<double>(num_nodes, 1.0);
}

}  // namespace banks
