#ifndef BANKS_UTIL_TABLE_PRINTER_H_
#define BANKS_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace banks {

/// Minimal aligned-column console table, used by the experiment harnesses
/// to print the same rows the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 2);

  /// Renders the table with a header underline.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace banks

#endif  // BANKS_UTIL_TABLE_PRINTER_H_
