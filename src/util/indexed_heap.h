#ifndef BANKS_UTIL_INDEXED_HEAP_H_
#define BANKS_UTIL_INDEXED_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace banks {

/// Addressable binary heap keyed by a dense integer id.
///
/// Supports Push, Pop, IncreaseTo/DecreaseTo (priority updates in place),
/// and O(1) Contains — exactly the operations the search frontiers Q_in and
/// Q_out of the Bidirectional algorithm need: spreading activation updates
/// the priority of nodes already on the frontier (Activate/Attach in
/// Figure 3 of the paper).
///
/// Compare follows std::priority_queue convention: Compare(a, b) == true
/// means a has *lower* priority than b. With std::less<Priority> this is a
/// max-heap (highest activation pops first); with std::greater a min-heap
/// (shortest distance pops first).
template <typename Priority, typename Compare = std::less<Priority>>
class IndexedHeap {
 public:
  using Id = uint32_t;
  static constexpr uint32_t kAbsent = UINT32_MAX;

  IndexedHeap() = default;
  explicit IndexedHeap(size_t id_capacity) { Reserve(id_capacity); }

  /// Grows the id→slot map so ids in [0, id_capacity) are addressable.
  void Reserve(size_t id_capacity) {
    if (pos_.size() < id_capacity) pos_.resize(id_capacity, kAbsent);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  bool Contains(Id id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  /// Priority of an id currently in the heap.
  const Priority& PriorityOf(Id id) const {
    assert(Contains(id));
    return heap_[pos_[id]].priority;
  }

  /// Inserts id with the given priority. id must not already be present.
  void Push(Id id, Priority priority) {
    assert(!Contains(id));
    Reserve(static_cast<size_t>(id) + 1);
    pos_[id] = static_cast<uint32_t>(heap_.size());
    heap_.push_back(Entry{priority, id});
    SiftUp(heap_.size() - 1);
  }

  /// Inserts, or raises the priority if the new one pops earlier.
  /// Returns true if the heap changed.
  void Update(Id id, Priority priority) {
    if (!Contains(id)) {
      Push(id, priority);
      return;
    }
    size_t i = pos_[id];
    if (cmp_(heap_[i].priority, priority)) {  // new priority pops earlier
      heap_[i].priority = priority;
      SiftUp(i);
    } else {
      heap_[i].priority = priority;
      SiftDown(i);
    }
  }

  /// Highest-priority id without removing it.
  Id Top() const {
    assert(!heap_.empty());
    return heap_[0].id;
  }

  const Priority& TopPriority() const {
    assert(!heap_.empty());
    return heap_[0].priority;
  }

  /// Removes and returns the highest-priority id.
  Id Pop() {
    assert(!heap_.empty());
    Id id = heap_[0].id;
    RemoveAt(0);
    return id;
  }

  /// Removes an arbitrary id from the heap.
  void Erase(Id id) {
    assert(Contains(id));
    RemoveAt(pos_[id]);
  }

  void Clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    Priority priority;
    Id id;
  };

  void RemoveAt(size_t i) {
    pos_[heap_[i].id] = kAbsent;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      heap_.pop_back();
      pos_[heap_[i].id] = static_cast<uint32_t>(i);
      if (!SiftUp(i)) SiftDown(i);
    } else {
      heap_.pop_back();
    }
  }

  bool SiftUp(size_t i) {
    bool moved = false;
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!cmp_(heap_[parent].priority, heap_[i].priority)) break;
      SwapSlots(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      size_t best = i;
      size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && cmp_(heap_[best].priority, heap_[l].priority)) best = l;
      if (r < n && cmp_(heap_[best].priority, heap_[r].priority)) best = r;
      if (best == i) break;
      SwapSlots(i, best);
      i = best;
    }
  }

  void SwapSlots(size_t a, size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = static_cast<uint32_t>(a);
    pos_[heap_[b].id] = static_cast<uint32_t>(b);
  }

  Compare cmp_;
  std::vector<Entry> heap_;
  std::vector<uint32_t> pos_;
};

}  // namespace banks

#endif  // BANKS_UTIL_INDEXED_HEAP_H_
