#ifndef BANKS_UTIL_STRING_UTIL_H_
#define BANKS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace banks {

/// ASCII lower-casing (datasets are synthetic ASCII; no locale handling).
std::string ToLowerAscii(std::string_view s);

/// Splits on any of the separator characters, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view separators);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace banks

#endif  // BANKS_UTIL_STRING_UTIL_H_
