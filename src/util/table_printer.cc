#include "util/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace banks {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace banks
