#ifndef BANKS_UTIL_RNG_H_
#define BANKS_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace banks {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library (dataset generators, workload
/// sampling, property tests) takes an explicit Rng so that runs are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container* c) {
    for (size_t i = c->size(); i > 1; --i) {
      size_t j = Below(i);
      using std::swap;
      swap((*c)[i - 1], (*c)[j]);
    }
  }

  /// Picks a uniformly random element; container must be non-empty.
  template <typename Container>
  const auto& Pick(const Container& c) {
    return c[Below(c.size())];
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace banks

#endif  // BANKS_UTIL_RNG_H_
