#include "util/string_util.h"

#include <cctype>

namespace banks {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view separators) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (separators.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace banks
