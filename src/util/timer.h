#ifndef BANKS_UTIL_TIMER_H_
#define BANKS_UTIL_TIMER_H_

#include <chrono>

namespace banks {

/// Monotonic wall-clock stopwatch used by the search metrics and benches.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace banks

#endif  // BANKS_UTIL_TIMER_H_
