#ifndef BANKS_UTIL_SERIALIZE_H_
#define BANKS_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>

namespace banks {

/// Little hand-rolled POD (de)serialization shared by the graph and
/// paged-store file formats. Values are written in host byte order; the
/// formats are interchange formats between runs on one machine, not
/// cross-platform archives.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  if (len > (1u << 20)) return false;  // sanity cap on string length
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

}  // namespace banks

#endif  // BANKS_UTIL_SERIALIZE_H_
