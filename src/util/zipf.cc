#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace banks {

ZipfSampler::ZipfSampler(size_t n, double theta) : theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace banks
