#ifndef BANKS_UTIL_STATS_H_
#define BANKS_UTIL_STATS_H_

#include <vector>

namespace banks {

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& xs);

/// Geometric mean; 0 for an empty sample. Values must be positive.
/// Ratio experiments (Figures 6(a)-(c)) aggregate per-query time ratios
/// with the geometric mean, the standard choice for ratios.
double GeoMean(const std::vector<double>& xs);

/// Median (average of middle two for even sizes); 0 for an empty sample.
double Median(std::vector<double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

}  // namespace banks

#endif  // BANKS_UTIL_STATS_H_
