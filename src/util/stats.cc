#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace banks {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace banks
