#ifndef BANKS_UTIL_ZIPF_H_
#define BANKS_UTIL_ZIPF_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace banks {

/// Zipf-distributed sampler over ranks {0, 1, ..., n-1}.
///
/// P(rank = r) proportional to 1 / (r + 1)^theta. Used by the dataset
/// generators to produce the skewed keyword frequencies that motivate
/// Bidirectional search (a few terms match thousands of nodes, most match
/// a handful). Sampling is O(log n) by binary search over the precomputed
/// CDF; construction is O(n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a rank (exact, from the normalized CDF).
  double Probability(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1.
};

}  // namespace banks

#endif  // BANKS_UTIL_ZIPF_H_
