#include "serve/queue_sink.h"

#include <chrono>
#include <utility>

namespace banks {

void QueueSink::OnAnswer(const AnswerTree& answer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(answer);  // copy: the reference dies with the call
  }
  cv_.notify_all();
}

void QueueSink::OnComplete(SubscribeStatus status,
                           const SearchMetrics& metrics) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = status;
    final_metrics_ = metrics;
  }
  cv_.notify_all();
}

std::optional<AnswerTree> QueueSink::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return !queue_.empty() || status_ != SubscribeStatus::kPending;
  });
  if (queue_.empty()) return std::nullopt;
  AnswerTree out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::optional<AnswerTree> QueueSink::PopFor(double timeout_seconds,
                                            bool* timed_out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto ready = [&] {
    return !queue_.empty() || status_ != SubscribeStatus::kPending;
  };
  bool woke = true;
  if (timeout_seconds > 0) {
    woke = cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                        ready);
  } else {
    cv_.wait(lock, ready);
  }
  if (timed_out != nullptr) *timed_out = !woke;
  if (!woke || queue_.empty()) return std::nullopt;
  AnswerTree out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

bool QueueSink::TryPop(AnswerTree* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

SubscribeStatus QueueSink::WaitTerminal() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return status_ != SubscribeStatus::kPending; });
  return status_;
}

SubscribeStatus QueueSink::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

bool QueueSink::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_ != SubscribeStatus::kPending && queue_.empty();
}

size_t QueueSink::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SearchMetrics QueueSink::final_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return final_metrics_;
}

}  // namespace banks
