#ifndef BANKS_SERVE_QUEUE_SINK_H_
#define BANKS_SERVE_QUEUE_SINK_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/answer_sink.h"

namespace banks {

/// The bridge from push back to pull: an AnswerSink that buffers
/// answers behind a mutex + condition variable so a consumer thread can
/// Pop() them at its own pace. This is how the pull AnswerStream is
/// re-expressed on the serving core — a scheduler-backed stream is just
/// a Subscription delivering into a QueueSink, with Next() waiting on
/// the condition variable (see answer_stream.h, scheduled mode).
///
/// Producer side (scheduler worker): OnAnswer copies the tree into the
/// queue; OnComplete records the terminal status + final metrics. Both
/// notify the condition variable. Consumer side: Pop/WaitTerminal from
/// any one or many threads. Fully thread-safe.
class QueueSink : public AnswerSink {
 public:
  void OnAnswer(const AnswerTree& answer) override;
  void OnComplete(SubscribeStatus status,
                  const SearchMetrics& metrics) override;

  /// Takes the next buffered answer, blocking until one arrives or the
  /// subscription reaches its terminal status (then nullopt). A
  /// positive timeout bounds the wait in seconds — nullopt with
  /// timed_out() observable via the return of PopFor below. timeout 0
  /// blocks indefinitely.
  std::optional<AnswerTree> Pop();

  /// Pop with a wall-clock bound. Returns the answer, or nullopt with
  /// *timed_out = true when the bound expired first (the subscription
  /// is still live) and *timed_out = false when the terminal status
  /// arrived with the queue empty.
  std::optional<AnswerTree> PopFor(double timeout_seconds, bool* timed_out);

  /// Non-blocking take; false when the queue is currently empty.
  bool TryPop(AnswerTree* out);

  /// Blocks until OnComplete, returns the terminal status. Answers may
  /// still be buffered after this returns — drain with TryPop.
  SubscribeStatus WaitTerminal();

  /// kPending until OnComplete has run.
  SubscribeStatus status() const;

  /// True once the terminal status arrived AND every buffered answer
  /// was popped — nothing more will ever come out.
  bool exhausted() const;

  /// Answers currently buffered (diagnostics / backpressure decisions).
  size_t buffered() const;

  /// Final metrics recorded by OnComplete (default-constructed before).
  SearchMetrics final_metrics() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AnswerTree> queue_;
  SubscribeStatus status_ = SubscribeStatus::kPending;
  SearchMetrics final_metrics_;
};

}  // namespace banks

#endif  // BANKS_SERVE_QUEUE_SINK_H_
