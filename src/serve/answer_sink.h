#ifndef BANKS_SERVE_ANSWER_SINK_H_
#define BANKS_SERVE_ANSWER_SINK_H_

#include <cstdint>

#include "search/answer.h"
#include "search/metrics.h"

namespace banks {

/// How Scheduler admission control classified a Subscribe call (see
/// docs/SERVING.md, "Admission control").
enum class AdmissionState : uint8_t {
  kAdmitted,  // got a run slot immediately; first quantum can run now
  kQueued,    // waiting for a slot; holds NO SearchContext while queued
  kRejected,  // queue depth exceeded; terminal kRejected already fired
};

/// Terminal outcome of a subscription. Exactly one of these is passed
/// to AnswerSink::OnComplete, always as the last call on the sink.
enum class SubscribeStatus : uint8_t {
  kPending,          // not terminal yet (Subscription::status() only)
  kCompleted,        // search finished; every answer was delivered
  kDeadlineExpired,  // scheduler cancelled the task at its deadline
  kCancelled,        // Subscription::Cancel() (or stream destruction)
  kRejected,         // admission control refused the task
  kShutdown,         // the scheduler was destroyed with the task open
  kIoError,          // a graph page read failed; answers delivered before
                     // the failure are valid, the result is partial
};

const char* SubscribeStatusName(SubscribeStatus status);

/// Push-side consumer of one subscribed search — the serving core's
/// counterpart of the pull AnswerStream. The scheduler drives the
/// search as Resume quanta and pushes each released answer here, in
/// release order, exactly the sequence a drained Engine::Query returns.
///
/// Threading rules (see docs/SERVING.md, "Sink threading rules"):
///  * OnAnswer / OnComplete run on a scheduler worker thread (or, in
///    manual-drive mode, on the thread calling Scheduler::DriveOne; for
///    a kRejected submission, on the thread calling Subscribe).
///  * Calls for ONE subscription are serialized and in order; calls for
///    different subscriptions may run concurrently on different
///    workers, so a sink shared across subscriptions must be
///    thread-safe.
///  * OnComplete is called exactly once and is the last call; the sink
///    must stay alive until then (Subscription::Wait() is the fence).
///  * The AnswerTree reference is valid only during the call — copy it
///    to keep it.
///  * Reentrancy: a sink callback may call Subscription::Cancel or
///    AddCredits (no scheduler lock is held during callbacks), but must
///    not block on scheduler progress (e.g. Subscription::Wait) — the
///    worker delivering the callback is the one that would make that
///    progress.
class AnswerSink {
 public:
  virtual ~AnswerSink() = default;

  /// One released answer, in release order.
  virtual void OnAnswer(const AnswerTree& answer) = 0;

  /// Terminal notification: the final status and the metrics of the
  /// search so far (complete metrics for kCompleted; partial for a
  /// deadline/cancel mid-search; default-constructed when the search
  /// never started). Always the last call for this subscription.
  virtual void OnComplete(SubscribeStatus status,
                          const SearchMetrics& metrics) = 0;
};

}  // namespace banks

#endif  // BANKS_SERVE_ANSWER_SINK_H_
