#ifndef BANKS_SERVE_SCHEDULER_H_
#define BANKS_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "search/context_pool.h"
#include "search/epoch.h"
#include "search/searcher.h"
#include "serve/answer_sink.h"
#include "serve/timer_wheel.h"
#include "util/timer.h"

namespace banks {

struct FaultWaiter;  // page-fault listener bridging BufferPool → Scheduler

/// "No delivery credit limit": answers are pushed as soon as released.
inline constexpr uint64_t kUnlimitedCredits =
    std::numeric_limits<uint64_t>::max();

/// Construction knobs of a Scheduler (fixed for its lifetime).
struct SchedulerOptions {
  /// Worker threads executing quanta. kAutoWorkers picks
  /// hardware_concurrency; 0 spawns NO threads — manual-drive mode,
  /// where the embedder pumps quanta with Scheduler::DriveOne (tests
  /// and single-threaded embeddings; everything else behaves
  /// identically).
  static constexpr size_t kAutoWorkers = std::numeric_limits<size_t>::max();
  size_t num_workers = kAutoWorkers;

  /// Run slots: tasks allowed to hold a SearchContext concurrently.
  /// Admission beyond this queues; queued tasks hold NO context.
  size_t max_running = 64;

  /// Admission queue depth: submissions beyond max_running + this many
  /// queued tasks are rejected (kRejected, terminal immediately).
  size_t max_queued = 1024;

  /// Node-expansion budget of one quantum (StepLimits::max_steps).
  /// Sharded Bidirectional searches honor it at BSP-round granularity.
  uint64_t quantum_steps = 256;

  /// Wall-clock bound of one quantum in seconds (0 = steps-only). Also
  /// clamped by the task's remaining deadline, so a quantum never
  /// overshoots a deadline by more than one bound check.
  double quantum_seconds = 0.002;

  /// Context pool run slots draw from; null makes the scheduler own a
  /// private pool. Sharing the engine-wide pool keeps contexts warm
  /// across the subscribe and batch paths.
  SearchContextPool* context_pool = nullptr;
};

/// Per-Subscribe knobs (see docs/SERVING.md).
struct SubscribeOptions {
  /// Scheduler to run on; null uses the process-wide Scheduler::Default().
  class Scheduler* scheduler = nullptr;

  /// Fair-queueing tenant this subscription bills to ("" is the default
  /// tenant). Runnable tasks are served per-tenant by stride scheduling:
  /// a tenant with weight w receives quanta in proportion w : w' against
  /// any other backlogged tenant.
  std::string tenant;

  /// Fair-queueing weight of the tenant (last Subscribe wins; must be
  /// > 0). Weights are a tenant property, not a task property.
  double weight = 1.0;

  /// Whole-subscription deadline in seconds from Subscribe (0 = none),
  /// covering queueing, search AND delivery. Enforced by the scheduler:
  /// an expired task is cancelled — its context released warm, its sink
  /// told OnComplete(kDeadlineExpired, partial metrics) — without any
  /// caller involvement.
  double deadline_seconds = 0;

  /// Delivery credits: how many answers may be pushed to the sink
  /// before the subscription must be topped up with
  /// Subscription::AddCredits. The search itself keeps running (its
  /// output is bounded by k); once it finishes with undelivered
  /// answers, the task detaches into compact StreamState and holds no
  /// context while it waits. kUnlimitedCredits = push everything.
  uint64_t answer_credits = kUnlimitedCredits;
};

/// Everything the scheduler needs to run one search as a task.
/// Engine::Subscribe fills this; embedders with their own searchers can
/// submit directly.
struct TaskSpec {
  std::unique_ptr<Searcher> searcher;           // owns options/algorithm
  std::vector<std::vector<NodeId>> origins;     // resolved origin sets
  AnswerSink* sink = nullptr;                   // outlives the task
  std::string tenant;
  double weight = 1.0;
  double deadline_seconds = 0;
  uint64_t answer_credits = kUnlimitedCredits;
  /// Engine-epoch hold (docs/UPDATES.md): keeps the snapshot the
  /// searcher was built against alive for the task's whole life —
  /// through admission queueing, credit waits and page-wait parks —
  /// released in the terminal transition alongside the context detach.
  EpochPin epoch_pin;
};

class Scheduler;

/// Caller-side handle to one submitted search. Movable and copyable
/// (shared state); an empty handle (default-constructed) is inert.
/// Destroying the handle does NOT cancel the task — the sink still
/// receives every answer and the terminal OnComplete.
class Subscription {
 public:
  Subscription() = default;

  /// How admission control classified the Submit.
  AdmissionState admission() const;

  /// kPending until the terminal OnComplete fired.
  SubscribeStatus status() const;

  /// True once the terminal status is set (OnComplete delivered).
  bool finished() const;

  /// Requests cancellation; the scheduler finishes the task with
  /// kCancelled at its next scheduling decision (a quantum in flight
  /// completes first). Idempotent; no-op after a terminal status.
  void Cancel();

  /// Adds delivery credits (no-op on unlimited-credit subscriptions and
  /// after a terminal status). Wakes the scheduler if delivery stalled.
  void AddCredits(uint64_t n);

  /// Blocks until the terminal status; returns it. The terminal
  /// OnComplete has run by the time this returns, so the sink may be
  /// destroyed afterwards. Requires scheduler workers (or another
  /// thread pumping DriveOne) to make progress.
  SubscribeStatus Wait();

  /// Answers delivered to the sink so far.
  size_t answers_delivered() const;

  uint64_t id() const;
  explicit operator bool() const { return task_ != nullptr; }

 private:
  friend class Scheduler;
  friend struct FaultWaiter;
  struct Task;
  Subscription(Scheduler* scheduler, std::shared_ptr<Task> task)
      : scheduler_(scheduler), task_(std::move(task)) {}

  Scheduler* scheduler_ = nullptr;
  std::shared_ptr<Task> task_;
};

/// Cooperative scheduler multiplexing many in-flight searches over a
/// fixed worker pool — the serving core (docs/SERVING.md has the user
/// contract, docs/ARCHITECTURE.md the layer map).
///
/// PR 5 made every search a resumable state machine; a search is
/// therefore already a coroutine, and one scheduling quantum is just
/// `Searcher::Resume` under a small StepLimits budget. The scheduler
/// owns the loop around that: per-tenant weighted fair queueing (stride
/// scheduling over runnable tasks), admission control with queue-depth
/// backpressure, scheduler-enforced deadlines, and context
/// detach/re-attach so idle tasks hold compact StreamState instead of a
/// leased SearchContext:
///
///  * a task WAITING FOR ADMISSION holds nothing but its spec;
///  * a task acquires its pooled SearchContext at its first quantum
///    (attach) and keeps it between quanta while the search runs;
///  * a quantum that faults on a non-resident graph page is a quantum
///    boundary: the task parks (page-wait) releasing only its WORKER —
///    the context lease and run slot stay put, so max_running keeps
///    meaning "contexts" — and requeues when the BufferPool fetch
///    thread reports the missing pages resident;
///  * at search completion — or cancel/deadline — the StreamState is
///    moved out and the context released warm (detach), so a task
///    waiting for sink credit with undelivered answers holds only that
///    compact buffer.
///
/// Delivery: after each quantum the executing worker pushes newly
/// released answers to the task's sink, in release order, up to the
/// available credits. A task's callbacks never run concurrently.
///
/// Determinism: the scheduler never changes what a search computes —
/// quanta only decide when Resume returns — so the delivered answer
/// sequence is byte-identical to the drained Engine::Query, per the
/// streaming prefix-equivalence contract (src/README.md).
class Scheduler {
 public:
  /// Scheduler::Stats snapshot (see Snapshot()).
  struct TenantStats {
    std::string tenant;
    double weight = 1.0;
    uint64_t quanta = 0;     // service received (quanta executed)
    uint64_t answers = 0;    // answers delivered
    size_t open_tasks = 0;   // live subscriptions billed to this tenant
  };
  struct Stats {
    // Depths (instantaneous).
    size_t runnable = 0;         // in a tenant run queue
    size_t executing = 0;        // a worker is running their quantum
    size_t admission_queued = 0; // waiting for a run slot; no context
    size_t credit_waiting = 0;   // search done, delivery stalled; no context
    size_t page_waiting = 0;     // parked on an async page fetch; keeps
                                 // its context lease and run slot
    size_t contexts_attached = 0;  // tasks currently holding a pool lease
    // Epoch-pin gauges (instantaneous): how many distinct engine epochs
    // open tasks hold pins on, and the oldest such epoch (0 when none).
    // Parked tasks — admission-queued, credit-waiting, page-waiting —
    // count here even though they hold zero context leases: the pin
    // lives exactly as long as the task, so oldest_live_epoch bounds
    // which snapshots update reclamation can free.
    size_t pinned_epochs = 0;
    uint64_t oldest_live_epoch = 0;
    // Cumulative counters.
    uint64_t quanta = 0;
    uint64_t answers_delivered = 0;
    uint64_t submitted = 0;
    uint64_t admitted = 0;   // got a slot at Submit time
    uint64_t queued = 0;     // entered the admission queue
    uint64_t rejected = 0;   // refused by queue-depth backpressure
    uint64_t completed = 0;
    uint64_t deadline_expired = 0;
    uint64_t cancelled = 0;
    uint64_t page_waits = 0;  // quanta that ended parked on a page fetch
    uint64_t io_errors = 0;   // tasks finished kIoError (failed page read)
    std::vector<TenantStats> tenants;  // sorted by tenant name
  };

  explicit Scheduler(const SchedulerOptions& options = {});

  /// Stops the workers, then finishes every still-open task with
  /// kShutdown (each sink gets its terminal OnComplete, on this
  /// thread). Outstanding Subscription handles stay valid afterwards
  /// (they only read shared task state) but the scheduler itself must
  /// outlive any Wait/Cancel/AddCredits call.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Process-wide default scheduler (auto worker count), used when
  /// SubscribeOptions::scheduler is null. Never destroyed.
  static Scheduler& Default();

  /// Registers a search as a schedulable task. Admission control runs
  /// here: kAdmitted tasks own a run slot immediately, kQueued tasks
  /// wait (holding no context), kRejected tasks are terminal before
  /// Submit returns (OnComplete(kRejected) fires on this thread).
  Subscription Submit(TaskSpec spec);

  /// Runs one scheduling step on the calling thread: sweep expired and
  /// cancelled tasks, promote from the admission queue, execute one
  /// quantum (or one delivery slice) of the fairest runnable task.
  /// Returns false when there was nothing to do. This is the whole
  /// scheduler loop — worker threads just call it repeatedly — so
  /// manual-drive embedders (num_workers = 0) get identical behavior,
  /// deterministically, one call at a time.
  bool DriveOne();

  /// Consistent snapshot of queue depths, quanta and per-tenant service
  /// counters.
  Stats Snapshot() const;

  size_t num_workers() const { return workers_.size(); }

  /// The pool run slots lease contexts from (the configured one, or the
  /// scheduler-private pool).
  SearchContextPool& context_pool() { return *pool_; }

 private:
  friend class Subscription;
  friend struct FaultWaiter;
  using Task = Subscription::Task;

  struct Tenant {
    double weight = 1.0;
    double pass = 0;  // stride virtual time; min pass runs next
    uint64_t quanta = 0;
    uint64_t answers = 0;
    size_t open = 0;  // live (non-terminal) tasks
    std::deque<std::shared_ptr<Task>> runnable;
  };

  void WorkerLoop();
  /// One scheduling step with mu_ held (unlocks around callbacks).
  bool RunOneLocked(std::unique_lock<std::mutex>& lock);
  /// Drains the cancel queue and fires due deadline timers (via the
  /// timer wheel — O(1) amortized, not a scan of open tasks). Finishes
  /// every cancelled/expired non-executing task. True if any finished.
  bool SweepLocked(std::unique_lock<std::mutex>& lock);
  /// Moves admission-queue tasks into run slots while slots are free.
  void PromoteLocked();
  /// Pops the fairest runnable task (min tenant pass), charges the
  /// tenant's stride, marks it executing. Null when none runnable.
  std::shared_ptr<Task> PickLocked();
  /// Executes one quantum + delivery for a picked task.
  void ExecuteLocked(std::unique_lock<std::mutex>& lock,
                     const std::shared_ptr<Task>& task);
  /// Delivers released answers up to the available credits; toggles the
  /// lock around sink calls. Returns with the lock held.
  void DeliverLocked(std::unique_lock<std::mutex>& lock,
                     const std::shared_ptr<Task>& task);
  /// Terminal transition: detaches the context (kept warm), updates
  /// counters, removes the task from every structure. The caller must
  /// fire OnComplete after unlocking (CompleteOutside).
  void FinishLocked(const std::shared_ptr<Task>& task,
                    SubscribeStatus status);
  /// Fires the terminal OnComplete + finish notification (lock NOT held).
  void CompleteOutside(const std::shared_ptr<Task>& task);
  void EnqueueLocked(const std::shared_ptr<Task>& task);
  /// Moves the search state out of the task's leased context and
  /// releases the lease (warm) + its run slot.
  void DetachLocked(const std::shared_ptr<Task>& task);
  double NowSeconds() const { return epoch_.ElapsedSeconds(); }
  /// Earliest pending deadline fire time, from the wheel (0 = none).
  double NextDeadlineLocked() const;

  const SchedulerOptions options_;
  std::unique_ptr<SearchContextPool> owned_pool_;
  SearchContextPool* pool_ = nullptr;
  Timer epoch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // workers: new work / cancel / credit
  std::condition_variable finish_cv_;  // Subscription::Wait
  bool stop_ = false;
  uint64_t next_id_ = 1;
  // OnPageReady callbacks still owed by BufferPool fetch threads. Fault
  // waiters hold a raw Scheduler*, so the destructor waits this out
  // before the mutex/cvs they use die with the scheduler.
  size_t inflight_fetches_ = 0;
  size_t slots_used_ = 0;  // tasks holding (or promised) a context lease
  double global_pass_ = 0; // virtual time: pass of the last picked tenant
  std::deque<std::shared_ptr<Task>> admission_queue_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::shared_ptr<Task>> open_;  // all non-terminal tasks
  // Cancellation is push-based: Subscription::Cancel enqueues the task
  // here, so the sweep never scans open_ looking for cancel flags.
  std::deque<std::shared_ptr<Task>> cancel_queue_;
  // Deadline expiry is timer-wheel-based: Submit arms a timer per
  // deadlined task; by_id_ maps fired timer ids back to tasks.
  TimerWheel wheel_;
  std::unordered_map<uint64_t, std::shared_ptr<Task>> by_id_;
  Stats counters_;  // cumulative fields only; depths computed on demand
  std::vector<std::thread> workers_;
};

}  // namespace banks

#endif  // BANKS_SERVE_SCHEDULER_H_
