#include "serve/timer_wheel.h"

#include <algorithm>
#include <cmath>

namespace banks {

TimerWheel::TimerWheel(double tick_seconds, size_t num_slots)
    : tick_(tick_seconds > 0 ? tick_seconds : 1e-3),
      slots_(std::max<size_t>(num_slots, 1)) {}

uint64_t TimerWheel::FireTickOf(double deadline) const {
  if (deadline <= 0) return cur_tick_;
  // Ceil placement: the fire boundary is the first tick >= deadline, so
  // a timer never fires early and waits < one tick past its deadline.
  // The epsilon keeps a deadline sitting exactly on a boundary from
  // being pushed a full tick later by floating-point round-up.
  const double ticks = std::ceil(deadline / tick_ - 1e-9);
  uint64_t t = ticks <= 0 ? 0 : static_cast<uint64_t>(ticks);
  return std::max(t, cur_tick_);
}

void TimerWheel::Place(const Entry& e) {
  if (e.tick >= cur_tick_ + slots_.size()) {
    overflow_.push_back(e);
  } else {
    slots_[e.tick % slots_.size()].push_back(e);
  }
}

void TimerWheel::Schedule(uint64_t id, double deadline) {
  const uint64_t tick = FireTickOf(deadline);
  // Re-arming just overwrites the authoritative map; the entry a prior
  // arming left in some slot turns stale and is skipped at fire time.
  active_[id] = tick;
  Place(Entry{id, tick, next_seq_++});
}

void TimerWheel::Cancel(uint64_t id) { active_.erase(id); }

void TimerWheel::AdvanceTo(double now, std::vector<uint64_t>* expired) {
  const uint64_t target =
      now <= 0 ? 0 : static_cast<uint64_t>(std::floor(now / tick_ + 1e-9));
  if (target < cur_tick_) return;
  if (active_.empty()) {
    // Nothing armed: jump the cursor without touching slots. Slots may
    // still hold stale entries; they are dropped lazily below whenever
    // a slot is next processed, and the active_ check keeps them from
    // ever firing.
    cur_tick_ = target + 1;
    return;
  }

  std::vector<Entry> fired;
  const uint64_t last =
      std::min(target, cur_tick_ + static_cast<uint64_t>(slots_.size()) - 1);
  for (uint64_t t = cur_tick_; t <= last; ++t) {
    std::vector<Entry>& slot = slots_[t % slots_.size()];
    size_t keep = 0;
    for (const Entry& e : slot) {
      auto it = active_.find(e.id);
      if (it == active_.end() || it->second != e.tick) continue;  // stale
      if (e.tick <= target) {
        fired.push_back(e);
        active_.erase(it);
      } else {
        // Wrapped entry from a later lap of the ring; keep it armed.
        slot[keep++] = e;
      }
    }
    slot.resize(keep);
  }
  cur_tick_ = target + 1;

  // Overflow: fire what's due, re-home what now fits in the horizon.
  size_t keep = 0;
  for (const Entry& e : overflow_) {
    auto it = active_.find(e.id);
    if (it == active_.end() || it->second != e.tick) continue;  // stale
    if (e.tick <= target) {
      fired.push_back(e);
      active_.erase(it);
    } else if (e.tick < cur_tick_ + slots_.size()) {
      slots_[e.tick % slots_.size()].push_back(e);
    } else {
      overflow_[keep++] = e;
    }
  }
  overflow_.resize(keep);

  std::sort(fired.begin(), fired.end(), [](const Entry& a, const Entry& b) {
    return a.tick != b.tick ? a.tick < b.tick : a.seq < b.seq;
  });
  for (const Entry& e : fired) expired->push_back(e.id);
}

double TimerWheel::NextFireTime() const {
  if (active_.empty()) return 0;
  uint64_t best = UINT64_MAX;
  for (const auto& [id, tick] : active_) best = std::min(best, tick);
  return static_cast<double>(best) * tick_;
}

}  // namespace banks
