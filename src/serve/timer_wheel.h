#ifndef BANKS_SERVE_TIMER_WHEEL_H_
#define BANKS_SERVE_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace banks {

/// Fixed-tick hashed timer wheel — the scheduler's deadline machinery.
///
/// The scheduler used to find expired deadlines by scanning every open
/// task at every scheduling decision (sweep-on-decision): O(open tasks)
/// per quantum, almost always finding nothing. The wheel makes arming,
/// cancelling and expiry O(1) amortized: time is quantized into fixed
/// ticks, an armed timer lives in the slot of its *fire tick* — the
/// first tick boundary at or after its deadline (ceil placement) — and
/// AdvanceTo(now) walks only the tick range [cursor, now], firing the
/// due slots in tick order.
///
/// Timing contract: a timer with deadline d fires at the first
/// AdvanceTo(now) with now >= F, where F = ceil(d / tick) * tick is its
/// fire time. It never fires before d, and F - d < tick — the expiry
/// latency added by the wheel is strictly less than one tick (the
/// driver adds whatever lag its own AdvanceTo cadence has on top;
/// serve/timer_wheel_test.cc pins this bound).
///
/// Timers whose fire tick lies beyond the wheel's horizon (num_slots
/// ticks ahead of the cursor) wait in an overflow list and are re-homed
/// into slots as the cursor advances. Cancel/re-Schedule are lazy: the
/// authoritative arming lives in an id → fire-tick map, and stale slot
/// entries are dropped when their slot is next processed.
///
/// Not thread-safe; the scheduler drives it under its own mutex.
class TimerWheel {
 public:
  explicit TimerWheel(double tick_seconds = 1e-3, size_t num_slots = 512);

  /// Arms (or re-arms) timer `id` for `deadline` (seconds on the
  /// driver's clock). A deadline already in the past fires at the next
  /// AdvanceTo.
  void Schedule(uint64_t id, double deadline);

  /// Disarms `id` (no-op when not armed).
  void Cancel(uint64_t id);

  /// Fires every timer whose fire time is <= now: appends their ids to
  /// *expired in (fire tick, arming order) order and disarms them.
  void AdvanceTo(double now, std::vector<uint64_t>* expired);

  /// Earliest pending fire time in seconds, or 0 when nothing is armed.
  /// This is what the driver should sleep until — sleeping to the raw
  /// deadline instead would wake one tick early and spin.
  double NextFireTime() const;

  size_t armed() const { return active_.size(); }
  double tick_seconds() const { return tick_; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t tick = 0;  // absolute fire tick
    uint64_t seq = 0;   // arming order, for deterministic same-tick fires
  };

  uint64_t FireTickOf(double deadline) const;
  void Place(const Entry& e);

  double tick_;
  std::vector<std::vector<Entry>> slots_;
  std::vector<Entry> overflow_;  // fire tick beyond the current horizon
  std::unordered_map<uint64_t, uint64_t> active_;  // id -> fire tick
  uint64_t cur_tick_ = 0;  // first tick boundary not yet processed
  uint64_t next_seq_ = 0;
};

}  // namespace banks

#endif  // BANKS_SERVE_TIMER_WHEEL_H_
