#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "storage/buffer_pool.h"

namespace banks {

const char* SubscribeStatusName(SubscribeStatus status) {
  switch (status) {
    case SubscribeStatus::kPending:
      return "pending";
    case SubscribeStatus::kCompleted:
      return "completed";
    case SubscribeStatus::kDeadlineExpired:
      return "deadline_expired";
    case SubscribeStatus::kCancelled:
      return "cancelled";
    case SubscribeStatus::kRejected:
      return "rejected";
    case SubscribeStatus::kShutdown:
      return "shutdown";
    case SubscribeStatus::kIoError:
      return "io_error";
  }
  return "unknown";
}

/// One submitted search inside the scheduler. The spec fields are set
/// once at Submit; everything below the marker is guarded by
/// Scheduler::mu_, except during kExecuting, when the executing worker
/// owns lease/state/search_done exclusively (cancel_requested and
/// credits stay lock-guarded so other threads can touch them).
struct Subscription::Task {
  enum class Phase : uint8_t {
    kAdmission,   // in the admission queue: no run slot, no context
    kRunnable,    // in its tenant's run queue
    kExecuting,   // a worker is running its quantum / delivery slice
    kCreditWait,  // search done, answers undelivered, no credits;
                  // detached — holds StreamState only, no context
    kPageWait,    // quantum faulted on a non-resident page; parked until
                  // the BufferPool fetch thread delivers it. Keeps its
                  // context lease AND run slot (only the worker is
                  // released), so resumption is attach-free.
    kFinished,    // terminal status set
  };

  // ---- Spec (immutable after Submit) ----
  uint64_t id = 0;
  std::string tenant;
  std::unique_ptr<Searcher> searcher;
  std::vector<std::vector<NodeId>> origins;
  AnswerSink* sink = nullptr;
  double deadline_at = 0;  // scheduler-epoch seconds; 0 = no deadline
  // Engine-epoch hold: lives as long as the task — parked phases
  // included — and is released by FinishLocked with the context detach.
  EpochPin epoch_pin;

  // ---- Guarded by Scheduler::mu_ ----
  AdmissionState admission = AdmissionState::kQueued;
  Phase phase = Phase::kAdmission;
  SubscribeStatus terminal = SubscribeStatus::kPending;
  bool complete_fired = false;  // terminal OnComplete has returned
  bool cancel_requested = false;
  bool holds_slot = false;   // counted in Scheduler::slots_used_
  bool detached = false;     // `state` owns the search; no context held
  bool search_done = false;  // Resume returned kDone
  uint64_t credits = kUnlimitedCredits;
  size_t delivered = 0;   // answers pushed to the sink so far
  uint64_t quanta = 0;    // quanta this task received
  size_t pending_pages = 0;  // page fetches queued but not yet resident
  std::shared_ptr<FaultWaiter> waiter;   // created at first attach
  SearchContextPool::Lease lease;        // attached between quanta
  SearchContext::StreamState state;      // live once detached
};

/// The listener a task's search carries into its quanta
/// (SearchContext::page_listener). The searcher's probe calls
/// OnFetchQueued once per missing page before returning kPageWait; the
/// BufferPool fires exactly one OnPageReady per OnFetchQueued (from its
/// fetch thread, or inline when the page turned resident meanwhile —
/// never with the pool lock held, so taking mu_ here cannot deadlock).
/// The last OnPageReady of a parked task requeues it.
struct FaultWaiter : PageFetchListener {
  FaultWaiter(Scheduler* scheduler, std::weak_ptr<Subscription::Task> task)
      : scheduler(scheduler), task(std::move(task)) {}

  void OnFetchQueued(PageId) override {
    std::shared_ptr<Subscription::Task> t = task.lock();
    std::lock_guard<std::mutex> lock(scheduler->mu_);
    ++scheduler->inflight_fetches_;
    if (t != nullptr) ++t->pending_pages;
  }

  void OnPageReady(PageId) override {
    std::shared_ptr<Subscription::Task> t = task.lock();
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(scheduler->mu_);
      if (scheduler->inflight_fetches_ > 0 &&
          --scheduler->inflight_fetches_ == 0) {
        // Notify WHILE HOLDING mu_: a destructor waiting for the drain
        // may otherwise free the cv between our unlock and the notify.
        scheduler->finish_cv_.notify_all();
      }
      if (t == nullptr) return;
      if (t->pending_pages > 0) --t->pending_pages;
      // Only a PARKED task transitions here. A ready fired while the
      // task was still kExecuting is caught by the worker's
      // post-quantum pending_pages == 0 check; a finished task ignores
      // stragglers.
      if (t->pending_pages == 0 &&
          t->phase == Subscription::Task::Phase::kPageWait) {
        t->phase = Subscription::Task::Phase::kRunnable;
        scheduler->EnqueueLocked(t);
        wake = true;
      }
    }
    // Past shutdown every task is finished, so wake is false and the
    // scheduler is not touched after the unlock above.
    if (wake) scheduler->work_cv_.notify_one();
  }

  Scheduler* scheduler;
  std::weak_ptr<Subscription::Task> task;
};

namespace {

SchedulerOptions Sanitize(SchedulerOptions options) {
  if (options.max_running == 0) options.max_running = 1;
  return options;
}

}  // namespace

// ---- Subscription ----------------------------------------------------------

AdmissionState Subscription::admission() const {
  if (task_ == nullptr) return AdmissionState::kRejected;
  std::lock_guard<std::mutex> lock(scheduler_->mu_);
  return task_->admission;
}

SubscribeStatus Subscription::status() const {
  if (task_ == nullptr) return SubscribeStatus::kPending;
  std::lock_guard<std::mutex> lock(scheduler_->mu_);
  return task_->complete_fired ? task_->terminal : SubscribeStatus::kPending;
}

bool Subscription::finished() const {
  return status() != SubscribeStatus::kPending;
}

void Subscription::Cancel() {
  if (task_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    if (task_->terminal != SubscribeStatus::kPending ||
        task_->cancel_requested) {
      return;
    }
    task_->cancel_requested = true;
    // Push-based: the sweep drains this queue instead of scanning every
    // open task for the flag.
    scheduler_->cancel_queue_.push_back(task_);
  }
  scheduler_->work_cv_.notify_all();
}

void Subscription::AddCredits(uint64_t n) {
  if (task_ == nullptr || n == 0) return;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    Task& task = *task_;
    if (task.terminal != SubscribeStatus::kPending ||
        task.credits == kUnlimitedCredits) {
      return;
    }
    task.credits = (task.credits > kUnlimitedCredits - n)
                       ? kUnlimitedCredits
                       : task.credits + n;
    if (task.phase == Task::Phase::kCreditWait) {
      task.phase = Task::Phase::kRunnable;
      scheduler_->EnqueueLocked(task_);
      wake = true;
    }
  }
  if (wake) scheduler_->work_cv_.notify_all();
}

SubscribeStatus Subscription::Wait() {
  if (task_ == nullptr) return SubscribeStatus::kPending;
  std::unique_lock<std::mutex> lock(scheduler_->mu_);
  scheduler_->finish_cv_.wait(lock, [&] { return task_->complete_fired; });
  return task_->terminal;
}

size_t Subscription::answers_delivered() const {
  if (task_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(scheduler_->mu_);
  return task_->delivered;
}

uint64_t Subscription::id() const { return task_ != nullptr ? task_->id : 0; }

// ---- Scheduler -------------------------------------------------------------

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(Sanitize(options)) {
  if (options_.context_pool != nullptr) {
    pool_ = options_.context_pool;
  } else {
    owned_pool_ = std::make_unique<SearchContextPool>();
    pool_ = owned_pool_.get();
  }
  size_t workers = options_.num_workers;
  if (workers == SchedulerOptions::kAutoWorkers) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Every still-open task gets its terminal OnComplete, on this thread.
  // Workers are joined, so no task is kExecuting anymore.
  std::vector<std::shared_ptr<Task>> leftovers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (!open_.empty()) {
      std::shared_ptr<Task> task = open_.back();
      FinishLocked(task, SubscribeStatus::kShutdown);
      leftovers.push_back(std::move(task));
    }
    // Fault waiters hold a raw Scheduler*: wait out any page fetches
    // still in flight so their OnPageReady runs against a live object.
    // (Every task is finished by now, so those callbacks do nothing but
    // decrement this counter.)
    finish_cv_.wait(lock, [&] { return inflight_fetches_ == 0; });
  }
  for (const auto& task : leftovers) CompleteOutside(task);
}

Scheduler& Scheduler::Default() {
  // Leaked intentionally: serving tasks may outlive every static-dtor
  // ordering; the process exit reclaims it.
  static Scheduler* instance = new Scheduler(SchedulerOptions{});
  return *instance;
}

Subscription Scheduler::Submit(TaskSpec spec) {
  auto task = std::make_shared<Task>();
  task->tenant = std::move(spec.tenant);
  task->searcher = std::move(spec.searcher);
  task->origins = std::move(spec.origins);
  task->sink = spec.sink;
  task->credits = spec.answer_credits;
  task->epoch_pin = std::move(spec.epoch_pin);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task->id = next_id_++;
    ++counters_.submitted;
    if (spec.deadline_seconds > 0) {
      task->deadline_at = NowSeconds() + spec.deadline_seconds;
    }
    auto bill_tenant = [&] {
      Tenant& tenant = tenants_[task->tenant];
      if (spec.weight > 0) tenant.weight = spec.weight;
      // Stride fairness: a tenant going idle→active joins at the
      // current virtual time instead of catching up on service it
      // never asked for.
      if (tenant.open == 0) tenant.pass = std::max(tenant.pass, global_pass_);
      ++tenant.open;
    };
    if (stop_) {
      rejected = true;
    } else if (slots_used_ < options_.max_running && admission_queue_.empty()) {
      task->admission = AdmissionState::kAdmitted;
      ++counters_.admitted;
      task->holds_slot = true;
      ++slots_used_;
      task->phase = Task::Phase::kRunnable;
      bill_tenant();
      EnqueueLocked(task);
      open_.push_back(task);
    } else if (admission_queue_.size() < options_.max_queued) {
      task->admission = AdmissionState::kQueued;
      ++counters_.queued;
      task->phase = Task::Phase::kAdmission;
      bill_tenant();
      admission_queue_.push_back(task);
      open_.push_back(task);
    } else {
      rejected = true;
    }
    if (rejected) {
      task->admission = AdmissionState::kRejected;
      ++counters_.rejected;
      task->terminal = SubscribeStatus::kRejected;
      task->phase = Task::Phase::kFinished;
      task->epoch_pin.Release();  // never ran: no reason to hold the epoch
    } else if (task->deadline_at > 0) {
      wheel_.Schedule(task->id, task->deadline_at);
      by_id_[task->id] = task;
    }
  }
  if (rejected) {
    CompleteOutside(task);  // fires OnComplete(kRejected) on this thread
  } else {
    work_cv_.notify_one();
  }
  return Subscription(this, std::move(task));
}

bool Scheduler::DriveOne() {
  std::unique_lock<std::mutex> lock(mu_);
  return RunOneLocked(lock);
}

Scheduler::Stats Scheduler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = counters_;  // cumulative fields; depths below
  stats.admission_queued = admission_queue_.size();
  for (const auto& task : open_) {
    switch (task->phase) {
      case Task::Phase::kRunnable:
        ++stats.runnable;
        break;
      case Task::Phase::kExecuting:
        ++stats.executing;
        break;
      case Task::Phase::kCreditWait:
        ++stats.credit_waiting;
        break;
      case Task::Phase::kPageWait:
        ++stats.page_waiting;
        break;
      default:
        break;
    }
    if (task->lease) ++stats.contexts_attached;
  }
  // Epoch-pin gauges: every open task's pin counts, parked phases
  // included — a queued or credit-waiting task holds its epoch with
  // zero context leases.
  {
    std::vector<uint64_t> epochs;
    for (const auto& task : open_) {
      if (task->epoch_pin) epochs.push_back(task->epoch_pin.epoch);
    }
    std::sort(epochs.begin(), epochs.end());
    epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
    stats.pinned_epochs = epochs.size();
    stats.oldest_live_epoch = epochs.empty() ? 0 : epochs.front();
  }
  for (const auto& [name, tenant] : tenants_) {
    stats.tenants.push_back(
        {name, tenant.weight, tenant.quanta, tenant.answers, tenant.open});
  }
  return stats;
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (RunOneLocked(lock)) continue;
    double next = NextDeadlineLocked();
    if (next > 0) {
      double delay = next - NowSeconds();
      if (delay <= 0) continue;  // due already: loop back to the sweep
      work_cv_.wait_for(lock, std::chrono::duration<double>(delay));
    } else {
      work_cv_.wait(lock);
    }
  }
}

bool Scheduler::RunOneLocked(std::unique_lock<std::mutex>& lock) {
  bool swept = SweepLocked(lock);
  PromoteLocked();
  std::shared_ptr<Task> task = PickLocked();
  if (task == nullptr) return swept;
  ExecuteLocked(lock, task);
  return true;
}

bool Scheduler::SweepLocked(std::unique_lock<std::mutex>& lock) {
  bool any = false;
  auto finish = [&](const std::shared_ptr<Task>& victim,
                    SubscribeStatus status) {
    FinishLocked(victim, status);
    lock.unlock();
    CompleteOutside(victim);
    lock.lock();
    any = true;
  };
  // Cancellations arrive through the cancel queue (pushed by
  // Subscription::Cancel), so this is O(pending cancels) not O(open).
  while (!cancel_queue_.empty()) {
    std::shared_ptr<Task> task = std::move(cancel_queue_.front());
    cancel_queue_.pop_front();
    if (task->terminal != SubscribeStatus::kPending) continue;
    // A kExecuting task belongs to its worker, which re-checks the
    // cancel flag right after the quantum and finishes it there.
    if (task->phase == Task::Phase::kExecuting) continue;
    finish(task, SubscribeStatus::kCancelled);
  }
  // Deadlines fire from the timer wheel: only the tick range since the
  // last sweep is walked, and each expiry is O(1) amortized.
  std::vector<uint64_t> expired;
  wheel_.AdvanceTo(NowSeconds(), &expired);
  for (uint64_t id : expired) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;
    std::shared_ptr<Task> task = it->second;
    if (task->terminal != SubscribeStatus::kPending) continue;
    if (task->cancel_requested) continue;  // worker/queue already owns it
    // kExecuting: the worker's post-quantum check runs at a time >= the
    // fire time >= the deadline, so it is guaranteed to expire the task
    // itself — dropping the fired timer here loses nothing.
    if (task->phase == Task::Phase::kExecuting) continue;
    finish(task, SubscribeStatus::kDeadlineExpired);
  }
  return any;
}

void Scheduler::PromoteLocked() {
  while (slots_used_ < options_.max_running && !admission_queue_.empty()) {
    std::shared_ptr<Task> task = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    task->holds_slot = true;
    ++slots_used_;
    task->phase = Task::Phase::kRunnable;
    EnqueueLocked(task);
  }
}

auto Scheduler::PickLocked() -> std::shared_ptr<Task> {
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {  // name order: deterministic ties
    if (tenant.runnable.empty()) continue;
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  if (best == nullptr) return nullptr;
  std::shared_ptr<Task> task = std::move(best->runnable.front());
  best->runnable.pop_front();
  global_pass_ = best->pass;
  best->pass += 1.0 / std::max(best->weight, 1e-9);
  ++best->quanta;
  ++counters_.quanta;
  ++task->quanta;
  task->phase = Task::Phase::kExecuting;
  return task;
}

void Scheduler::ExecuteLocked(std::unique_lock<std::mutex>& lock,
                              const std::shared_ptr<Task>& task) {
  Task& t = *task;
  double now = NowSeconds();
  bool due = (t.deadline_at > 0 && now >= t.deadline_at) || t.cancel_requested;
  bool page_faulted = false;
  bool io_failed = false;
  if (!due && !t.detached) {
    if (!t.lease) {
      // Attach: first quantum of this task. The slot was reserved at
      // admission, so this never exceeds max_running leases.
      t.lease = pool_->Acquire();
      t.lease->stream.Reset();
      // Arm the page-fault listener unconditionally: a resident graph
      // never probes it, a paged graph turns page misses into quantum
      // boundaries instead of blocking this worker on disk.
      if (t.waiter == nullptr) {
        t.waiter = std::make_shared<FaultWaiter>(this, task);
      }
      t.lease->page_listener = t.waiter;
    }
    StepLimits limits;
    limits.max_steps = options_.quantum_steps;
    limits.deadline_seconds = options_.quantum_seconds;
    if (t.deadline_at > 0) {
      double remaining = t.deadline_at - now;
      if (limits.deadline_seconds <= 0 ||
          remaining < limits.deadline_seconds) {
        limits.deadline_seconds = remaining;
      }
    }
    const Searcher* searcher = t.searcher.get();
    SearchContext* context = t.lease.get();
    const auto& origins = t.origins;
    lock.unlock();  // the quantum itself runs without the lock
    SearchStatus status = searcher->Resume(origins, context, limits);
    lock.lock();
    t.search_done = status == SearchStatus::kDone;
    page_faulted = status == SearchStatus::kPageWait;
    io_failed = status == SearchStatus::kIoError;
  }
  DeliverLocked(lock, task);
  // Post-quantum decision. Deadline/cancel win over completion so the
  // terminal status reflects why the task stopped being served.
  now = NowSeconds();
  auto finish = [&](SubscribeStatus status) {
    FinishLocked(task, status);
    lock.unlock();
    CompleteOutside(task);
    lock.lock();
  };
  if (t.cancel_requested) {
    finish(SubscribeStatus::kCancelled);
  } else if (t.deadline_at > 0 && now >= t.deadline_at) {
    finish(SubscribeStatus::kDeadlineExpired);
  } else if (io_failed) {
    // The searcher hit a failed page read and ended the stream at a
    // consistent boundary (SearchStatus::kIoError is terminal). Answers
    // already delivered stand; anything undelivered rides out with the
    // terminal metrics. The retry that could make this transient
    // already happened inside the quantum (kMaxPageFaultRetries).
    finish(SubscribeStatus::kIoError);
  } else if (page_faulted) {
    // The searcher queued async fetches (OnFetchQueued bumped
    // pending_pages) and returned at a consistent quantum boundary.
    if (t.pending_pages == 0) {
      // Every OnPageReady already landed — the fetch raced ahead of
      // this decision — so there is nothing to park on.
      t.phase = Task::Phase::kRunnable;
      EnqueueLocked(task);
    } else {
      // Park: keep the context lease and run slot, release only this
      // worker. FaultWaiter::OnPageReady requeues the task when the
      // last pending page lands.
      t.phase = Task::Phase::kPageWait;
      ++counters_.page_waits;
    }
  } else if (t.search_done) {
    size_t total = (t.detached ? t.state : t.lease->stream).result.answers.size();
    if (t.delivered >= total) {
      finish(SubscribeStatus::kCompleted);
    } else {
      // Credit-starved with the search complete: detach so the wait
      // holds compact StreamState, not a pooled context.
      if (!t.detached) DetachLocked(task);
      t.phase = Task::Phase::kCreditWait;
    }
  } else {
    t.phase = Task::Phase::kRunnable;
    EnqueueLocked(task);
  }
}

void Scheduler::DeliverLocked(std::unique_lock<std::mutex>& lock,
                              const std::shared_ptr<Task>& task) {
  Task& t = *task;
  if (!t.detached && !t.lease) return;  // never ran: nothing released
  for (;;) {
    // The answer vector lives in the task's context (attached) or its
    // detached state; only this worker touches it while kExecuting, so
    // reading it across the unlock below is safe.
    const std::vector<AnswerTree>& answers =
        t.detached ? t.state.result.answers : t.lease->stream.result.answers;
    size_t grant = answers.size() - t.delivered;
    if (t.credits != kUnlimitedCredits) {
      grant = static_cast<size_t>(
          std::min<uint64_t>(grant, t.credits));
    }
    if (grant == 0) return;
    size_t start = t.delivered;
    t.delivered += grant;
    if (t.credits != kUnlimitedCredits) t.credits -= grant;
    counters_.answers_delivered += grant;
    tenants_[t.tenant].answers += grant;
    AnswerSink* sink = t.sink;
    lock.unlock();
    for (size_t i = start; i < start + grant; ++i) sink->OnAnswer(answers[i]);
    lock.lock();
    // Loop: AddCredits may have landed while the lock was dropped.
  }
}

void Scheduler::FinishLocked(const std::shared_ptr<Task>& task,
                             SubscribeStatus status) {
  Task& t = *task;
  switch (t.phase) {
    case Task::Phase::kAdmission: {
      auto it =
          std::find(admission_queue_.begin(), admission_queue_.end(), task);
      if (it != admission_queue_.end()) admission_queue_.erase(it);
      break;
    }
    case Task::Phase::kRunnable: {
      auto& queue = tenants_[t.tenant].runnable;
      auto it = std::find(queue.begin(), queue.end(), task);
      if (it != queue.end()) queue.erase(it);
      break;
    }
    default:
      break;  // kExecuting (the finishing worker) / kCreditWait: queued nowhere
  }
  // Keep the stream state (final metrics for OnComplete) but return the
  // context warm and free the run slot.
  if (t.lease) DetachLocked(task);
  if (t.holds_slot) {
    t.holds_slot = false;
    --slots_used_;
  }
  t.phase = Task::Phase::kFinished;
  t.terminal = status;
  switch (status) {
    case SubscribeStatus::kCompleted:
      ++counters_.completed;
      break;
    case SubscribeStatus::kDeadlineExpired:
      ++counters_.deadline_expired;
      break;
    case SubscribeStatus::kCancelled:
      ++counters_.cancelled;
      break;
    case SubscribeStatus::kIoError:
      ++counters_.io_errors;
      break;
    default:
      break;
  }
  // The task's engine-epoch hold ends with the task: this is the same
  // terminal step that detached the context, so snapshot reclamation
  // counts parked tasks (they reach here too) but never a live search.
  t.epoch_pin.Release();
  if (t.deadline_at > 0) {
    wheel_.Cancel(t.id);
    by_id_.erase(t.id);
  }
  Tenant& tenant = tenants_[t.tenant];
  if (tenant.open > 0) --tenant.open;
  auto it = std::find(open_.begin(), open_.end(), task);
  if (it != open_.end()) {
    std::swap(*it, open_.back());
    open_.pop_back();
  }
}

void Scheduler::CompleteOutside(const std::shared_ptr<Task>& task) {
  // Terminal state: nothing mutates the task anymore, so reading the
  // status and metrics without the lock is safe.
  if (task->sink != nullptr) {
    task->sink->OnComplete(task->terminal, task->state.result.metrics);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task->complete_fired = true;
  }
  finish_cv_.notify_all();
}

void Scheduler::EnqueueLocked(const std::shared_ptr<Task>& task) {
  tenants_[task->tenant].runnable.push_back(task);
}

void Scheduler::DetachLocked(const std::shared_ptr<Task>& task) {
  Task& t = *task;
  // The context returns to the pool: strip this task's fault listener
  // so the next task attaching to it doesn't inherit a stale waiter.
  // (In-flight fetches still hold their own reference to the waiter;
  // late OnPageReady calls see a finished/parked-no-more task and
  // no-op.)
  t.lease->page_listener.reset();
  t.state = t.lease->DetachStream();
  t.lease.Reset();  // pool mutex nests under mu_; the pool calls nothing back
  t.detached = true;
  if (t.holds_slot) {
    t.holds_slot = false;
    --slots_used_;
  }
}

double Scheduler::NextDeadlineLocked() const {
  // The wheel's earliest fire boundary, not the raw deadline: workers
  // sleeping until the boundary wake exactly when AdvanceTo will fire
  // the timer, instead of one sub-tick early (which would spin).
  return wheel_.NextFireTime();
}

}  // namespace banks
