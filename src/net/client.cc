#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace banks::net {

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Client> Client::Connect(const std::string& host, uint16_t port,
                                        const ClientOptions& options,
                                        std::string* error) {
  auto fail = [&](const std::string& what) -> std::unique_ptr<Client> {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return nullptr;
  };

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail("socket");
  if (options.recv_buffer_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.recv_buffer_bytes,
                 sizeof options.recv_buffer_bytes);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a literal address: resolve it.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      ::close(fd);
      errno = EINVAL;
      return fail("resolve(" + host + ")");
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return fail("connect");
  }

  std::unique_ptr<Client> client(new Client(fd, options));
  WireWriter w;
  HelloRequest hello;
  hello.client_name = options.client_name;
  WriteHello(&w, hello);
  if (!client->SendFrame(FrameType::kHello, 0, w.data())) {
    if (error != nullptr) *error = client->error_;
    return nullptr;
  }
  // The HelloOk routes nowhere (request 0 is never an open request), so
  // read it directly.
  char header_bytes[kFrameHeaderBytes];
  if (!client->ReadExact(header_bytes, sizeof header_bytes)) {
    if (error != nullptr) *error = client->error_;
    return nullptr;
  }
  FrameHeader header;
  if (!DecodeHeader(header_bytes, kDefaultMaxFrameBytes, &header)) {
    if (error != nullptr) *error = "bad HelloOk header";
    return nullptr;
  }
  std::string payload(header.payload_bytes, '\0');
  if (!client->ReadExact(payload.data(), payload.size())) {
    if (error != nullptr) *error = client->error_;
    return nullptr;
  }
  WireReader r(payload);
  if (static_cast<FrameType>(header.type) == FrameType::kError) {
    ErrorReply e;
    ReadErrorReply(&r, &e);
    if (error != nullptr) *error = "server rejected hello: " + e.message;
    return nullptr;
  }
  if (static_cast<FrameType>(header.type) != FrameType::kHelloOk ||
      !ReadHelloReply(&r, &client->server_info_)) {
    if (error != nullptr) *error = "unexpected handshake reply";
    return nullptr;
  }
  return client;
}

bool Client::SendFrame(FrameType type, uint64_t request_id,
                       const std::string& payload) {
  if (fd_ < 0) return false;
  std::string frame = EncodeFrame(type, request_id, payload);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail(std::string("send: ") + std::strerror(errno));
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Client::ReadExact(char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    if (options_.io_timeout_seconds > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      int timeout_ms = static_cast<int>(options_.io_timeout_seconds * 1000);
      int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) {
        Fail("read timeout");
        return false;
      }
      if (pr < 0 && errno != EINTR) {
        Fail(std::string("poll: ") + std::strerror(errno));
        return false;
      }
      if (pr < 0) continue;
    }
    ssize_t r = ::read(fd_, buf + off, n - off);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      Fail("connection closed by server");
      return false;
    }
    if (errno == EINTR) continue;
    Fail(std::string("read: ") + std::strerror(errno));
    return false;
  }
  return true;
}

void Client::Fail(const std::string& why) {
  if (error_.empty()) error_ = why;
  Close();
  // Terminate every open request so blocked consumers see a terminal
  // state instead of spinning on a dead socket.
  for (auto& [id, state] : requests_) {
    if (!state.final) {
      state.final = true;
      state.status = SubscribeStatus::kIoError;
    }
  }
}

bool Client::PumpOne() {
  char header_bytes[kFrameHeaderBytes];
  if (!ReadExact(header_bytes, sizeof header_bytes)) return false;
  FrameHeader header;
  if (!DecodeHeader(header_bytes, kDefaultMaxFrameBytes, &header)) {
    Fail("bad frame header from server");
    return false;
  }
  std::string payload(header.payload_bytes, '\0');
  if (!ReadExact(payload.data(), payload.size())) return false;
  WireReader r(payload);

  auto it = requests_.find(header.request_id);
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kAnswer: {
      AnswerTree tree;
      if (!ReadAnswerTree(&r, &tree)) {
        Fail("bad answer frame");
        return false;
      }
      if (it != requests_.end()) {
        if (it->second.pull && it->second.credits_outstanding > 0) {
          --it->second.credits_outstanding;
        }
        it->second.ready.push_back(std::move(tree));
      }
      return true;
    }
    case FrameType::kFinal: {
      FinalReply f;
      if (!ReadFinalReply(&r, &f)) {
        Fail("bad final frame");
        return false;
      }
      if (it != requests_.end()) {
        it->second.final = true;
        it->second.status = f.status;
        it->second.metrics = std::move(f.metrics);
      }
      return true;
    }
    case FrameType::kError: {
      ErrorReply e;
      ReadErrorReply(&r, &e);
      if (static_cast<uint16_t>(e.code) < 32) {
        // Connection-fatal class: the server closes after this.
        Fail("protocol error: " + e.message);
        return false;
      }
      if (it != requests_.end()) {
        it->second.final = true;
        it->second.status = SubscribeStatus::kIoError;
      }
      return true;
    }
    case FrameType::kPong:
      pongs_++;
      return true;
    default:
      Fail("unexpected frame type from server");
      return false;
  }
}

bool Client::Ping() {
  if (!SendFrame(FrameType::kPing, 0, "banks?")) return false;
  uint64_t seen = pongs_;
  while (fd_ >= 0 && pongs_ == seen) {
    if (!PumpOne()) return false;
  }
  return true;
}

ClientStream Client::Open(FrameType type,
                          const std::vector<std::string>& keywords,
                          Algorithm algorithm, const SearchOptions& options,
                          double deadline_seconds, uint64_t initial_credits) {
  uint64_t id = next_id_++;
  SearchRequest req;
  req.algorithm = algorithm;
  req.options = options;
  req.deadline_seconds = deadline_seconds;
  req.initial_credits = initial_credits;
  req.keywords = keywords;
  WireWriter w;
  WriteSearchRequest(&w, req);

  RequestState state;
  state.pull = type == FrameType::kOpenStream;
  state.credits_outstanding = state.pull ? initial_credits : 0;
  requests_.emplace(id, std::move(state));
  if (!SendFrame(type, id, w.data())) {
    // Fail() already marked the request terminal kIoError.
  }
  return ClientStream(this, id);
}

NetResult Client::Query(const std::vector<std::string>& keywords,
                        Algorithm algorithm, const SearchOptions& options,
                        double deadline_seconds) {
  return Open(FrameType::kQuery, keywords, algorithm, options,
              deadline_seconds, 0)
      .Drain();
}

ClientStream Client::OpenStream(const std::vector<std::string>& keywords,
                                Algorithm algorithm,
                                const SearchOptions& options,
                                double deadline_seconds,
                                uint64_t initial_credits) {
  return Open(FrameType::kOpenStream, keywords, algorithm, options,
              deadline_seconds, initial_credits);
}

ClientStream Client::Subscribe(const std::vector<std::string>& keywords,
                               Algorithm algorithm,
                               const SearchOptions& options,
                               double deadline_seconds) {
  return Open(FrameType::kSubscribe, keywords, algorithm, options,
              deadline_seconds, 0);
}

// ---- ClientStream -----------------------------------------------------------

std::optional<AnswerTree> ClientStream::Next() {
  if (client_ == nullptr) return std::nullopt;
  auto& requests = client_->requests_;
  auto it = requests.find(id_);
  if (it == requests.end()) return std::nullopt;

  for (;;) {
    Client::RequestState& state = it->second;
    if (!state.ready.empty()) {
      AnswerTree tree = std::move(state.ready.front());
      state.ready.pop_front();
      return tree;
    }
    if (state.final) return std::nullopt;
    // Pull stream out of credits: ask for exactly one more answer.
    if (state.pull && state.credits_outstanding == 0) {
      WireWriter w;
      w.U64(1);
      state.credits_outstanding = 1;
      if (!client_->SendFrame(FrameType::kNext, id_, w.data())) {
        return std::nullopt;
      }
    }
    if (!client_->PumpOne()) return std::nullopt;
  }
}

void ClientStream::AddCredits(uint64_t n) {
  if (client_ == nullptr || n == 0) return;
  auto it = client_->requests_.find(id_);
  if (it == client_->requests_.end() || it->second.final) return;
  WireWriter w;
  w.U64(n);
  if (it->second.pull) it->second.credits_outstanding += n;
  client_->SendFrame(FrameType::kNext, id_, w.data());
}

void ClientStream::Cancel() {
  if (client_ == nullptr) return;
  auto it = client_->requests_.find(id_);
  if (it == client_->requests_.end() || it->second.final) return;
  client_->SendFrame(FrameType::kCancel, id_, "");
}

NetResult ClientStream::Drain() {
  NetResult result;
  if (client_ == nullptr) {
    result.status = SubscribeStatus::kIoError;
    return result;
  }
  while (auto answer = Next()) result.answers.push_back(std::move(*answer));
  auto it = client_->requests_.find(id_);
  if (it != client_->requests_.end()) {
    result.status = it->second.status;
    result.metrics = std::move(it->second.metrics);
    client_->requests_.erase(it);
  } else {
    result.status = SubscribeStatus::kIoError;
  }
  return result;
}

bool ClientStream::done() const {
  if (client_ == nullptr) return true;
  auto it = client_->requests_.find(id_);
  return it == client_->requests_.end() ||
         (it->second.final && it->second.ready.empty());
}

SubscribeStatus ClientStream::status() const {
  if (client_ == nullptr) return SubscribeStatus::kIoError;
  auto it = client_->requests_.find(id_);
  return it == client_->requests_.end() ? SubscribeStatus::kIoError
                                        : it->second.status;
}

const SearchMetrics& ClientStream::metrics() const {
  static const SearchMetrics kEmpty;
  if (client_ == nullptr) return kEmpty;
  auto it = client_->requests_.find(id_);
  return it == client_->requests_.end() ? kEmpty : it->second.metrics;
}

}  // namespace banks::net
