#ifndef BANKS_NET_CLIENT_H_
#define BANKS_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "search/answer.h"
#include "search/options.h"
#include "search/searcher.h"
#include "serve/answer_sink.h"

namespace banks::net {

struct ClientOptions {
  /// Per-read timeout in seconds waiting for a server frame (0 = block
  /// forever). A timeout surfaces as a connection error.
  double io_timeout_seconds = 30.0;

  /// SO_RCVBUF for the connection (0 = kernel default). Tests shrink it
  /// to make the server-side backpressure path reachable.
  int recv_buffer_bytes = 0;

  std::string client_name = "banks_client";
};

/// Result of one drained network query.
struct NetResult {
  std::vector<AnswerTree> answers;
  SearchMetrics metrics;
  SubscribeStatus status = SubscribeStatus::kPending;
};

class Client;

/// Handle to one open request on a Client. Pull streams (OpenStream)
/// advance the server one answer per credit; push streams (Subscribe)
/// deliver against the server's writability window. Not thread-safe —
/// like the Client, it is a single-threaded blocking API.
class ClientStream {
 public:
  ClientStream() = default;

  /// Next answer in release order; nullopt once the stream is terminal
  /// (then status()/metrics() hold the kFinal payload). On a pull
  /// stream this sends a one-answer credit when none is outstanding.
  std::optional<AnswerTree> Next();

  /// Grants `n` extra delivery credits (kNext wire frame).
  void AddCredits(uint64_t n);

  /// Requests cancellation; the terminal kFinal (usually kCancelled)
  /// still arrives and is surfaced by the last Next().
  void Cancel();

  /// Drains the stream to its terminal frame.
  NetResult Drain();

  bool done() const;
  SubscribeStatus status() const;
  const SearchMetrics& metrics() const;
  uint64_t request_id() const { return id_; }
  explicit operator bool() const { return client_ != nullptr; }

 private:
  friend class Client;
  ClientStream(Client* client, uint64_t id) : client_(client), id_(id) {}

  Client* client_ = nullptr;
  uint64_t id_ = 0;
};

/// Blocking client of the banks wire protocol (docs/NETWORK.md): the
/// library side used by tests, the example shell and the socket bench.
///
/// One background-thread-free design: every call runs on the caller's
/// thread and reads frames until its own request advances, routing
/// frames of other open requests into their per-request buffers — so
/// several streams can be open on one connection, consumed in any
/// order, from one thread. Not thread-safe across threads.
class Client {
 public:
  /// Connects, performs the Hello handshake, returns null (with *error)
  /// on failure.
  static std::unique_ptr<Client> Connect(const std::string& host,
                                         uint16_t port,
                                         const ClientOptions& options = {},
                                         std::string* error = nullptr);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Server + graph info from the Hello handshake.
  const HelloReply& server_info() const { return server_info_; }

  /// True until a connection-level failure (socket error, fatal
  /// protocol error, timeout); `last_error` says what happened.
  bool ok() const { return fd_ >= 0; }
  const std::string& last_error() const { return error_; }

  /// Round-trip liveness probe.
  bool Ping();

  /// One drained query: push-all delivery against the server's credit
  /// window, blocking until the terminal frame. On a connection error
  /// the result carries status kIoError.
  NetResult Query(const std::vector<std::string>& keywords,
                  Algorithm algorithm, const SearchOptions& options = {},
                  double deadline_seconds = 0);

  /// Opens a pull stream: the server releases answers only against
  /// credits (initial_credits now, ClientStream::Next/AddCredits later).
  ClientStream OpenStream(const std::vector<std::string>& keywords,
                          Algorithm algorithm,
                          const SearchOptions& options = {},
                          double deadline_seconds = 0,
                          uint64_t initial_credits = 0);

  /// Opens a push subscription (server-managed credit window).
  ClientStream Subscribe(const std::vector<std::string>& keywords,
                         Algorithm algorithm,
                         const SearchOptions& options = {},
                         double deadline_seconds = 0);

  void Close();

 private:
  friend class ClientStream;

  struct RequestState {
    std::deque<AnswerTree> ready;
    bool final = false;
    SubscribeStatus status = SubscribeStatus::kPending;
    SearchMetrics metrics;
    uint64_t credits_outstanding = 0;  // pull credits not yet consumed
    bool pull = false;
  };

  Client(int fd, ClientOptions options);

  ClientStream Open(FrameType type, const std::vector<std::string>& keywords,
                    Algorithm algorithm, const SearchOptions& options,
                    double deadline_seconds, uint64_t initial_credits);
  bool SendFrame(FrameType type, uint64_t request_id,
                 const std::string& payload);
  /// Reads exactly one frame and routes it; false on connection error.
  bool PumpOne();
  /// Fatal connection error: record, close, mark every open request
  /// kIoError so pending streams terminate instead of hanging.
  void Fail(const std::string& why);
  bool ReadExact(char* buf, size_t n);

  int fd_ = -1;
  ClientOptions options_;
  HelloReply server_info_;
  std::string error_;
  uint64_t next_id_ = 1;
  uint64_t pongs_ = 0;
  std::unordered_map<uint64_t, RequestState> requests_;
};

}  // namespace banks::net

#endif  // BANKS_NET_CLIENT_H_
