#include "net/wire.h"

namespace banks::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kQuery: return "Query";
    case FrameType::kOpenStream: return "OpenStream";
    case FrameType::kNext: return "Next";
    case FrameType::kSubscribe: return "Subscribe";
    case FrameType::kAddCredits: return "AddCredits";
    case FrameType::kCancel: return "Cancel";
    case FrameType::kPing: return "Ping";
    case FrameType::kHelloOk: return "HelloOk";
    case FrameType::kAnswer: return "Answer";
    case FrameType::kFinal: return "Final";
    case FrameType::kError: return "Error";
    case FrameType::kPong: return "Pong";
  }
  return "?";
}

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload) {
  FrameHeader h;
  h.payload_bytes = static_cast<uint32_t>(payload.size());
  h.type = static_cast<uint8_t>(type);
  h.request_id = request_id;
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(reinterpret_cast<const char*>(&h), sizeof h);
  frame.append(payload);
  return frame;
}

bool DecodeHeader(const char* data, size_t max_payload, FrameHeader* out) {
  std::memcpy(out, data, sizeof(FrameHeader));
  return out->version == kProtocolVersion && out->payload_bytes <= max_payload;
}

void WriteHello(WireWriter* w, const HelloRequest& hello) {
  w->U32(hello.magic);
  w->U16(hello.version);
  w->Str(hello.client_name);
}

bool ReadHello(WireReader* r, HelloRequest* out) {
  out->magic = r->U32();
  out->version = r->U16();
  out->client_name = r->Str();
  return r->Done();
}

void WriteHelloReply(WireWriter* w, const HelloReply& reply) {
  w->U16(reply.version);
  w->U64(reply.nodes);
  w->U64(reply.edges);
  w->U64(reply.epoch);
  w->Str(reply.server_name);
}

bool ReadHelloReply(WireReader* r, HelloReply* out) {
  out->version = r->U16();
  out->nodes = r->U64();
  out->edges = r->U64();
  out->epoch = r->U64();
  out->server_name = r->Str();
  return r->Done();
}

void WriteSearchRequest(WireWriter* w, const SearchRequest& req) {
  w->U8(static_cast<uint8_t>(req.algorithm));
  const SearchOptions& o = req.options;
  w->U64(o.k);
  w->U32(o.dmax);
  w->F64(o.lambda);
  w->F64(o.mu);
  w->U8(static_cast<uint8_t>(o.combine));
  w->U8(static_cast<uint8_t>(o.bound));
  w->U8(static_cast<uint8_t>(o.edge_filter));
  w->U64(o.max_nodes_explored);
  w->U64(o.max_answers_generated);
  w->U32(o.bound_check_interval);
  w->U64(o.release_patience);
  w->U32(o.shard_count);
  w->F64(req.deadline_seconds);
  w->U64(req.initial_credits);
  w->U32(static_cast<uint32_t>(req.keywords.size()));
  for (const std::string& k : req.keywords) w->Str(k);
}

bool ReadSearchRequest(WireReader* r, SearchRequest* out) {
  uint8_t algo = r->U8();
  if (algo > static_cast<uint8_t>(Algorithm::kBidirectional)) return false;
  out->algorithm = static_cast<Algorithm>(algo);
  SearchOptions& o = out->options;
  o.k = r->U64();
  o.dmax = r->U32();
  o.lambda = r->F64();
  o.mu = r->F64();
  uint8_t combine = r->U8();
  uint8_t bound = r->U8();
  uint8_t filter = r->U8();
  if (combine > static_cast<uint8_t>(ActivationCombine::kSum) ||
      bound > static_cast<uint8_t>(BoundMode::kImmediate) ||
      filter > static_cast<uint8_t>(EdgeFilter::kBackwardOnly)) {
    return false;
  }
  o.combine = static_cast<ActivationCombine>(combine);
  o.bound = static_cast<BoundMode>(bound);
  o.edge_filter = static_cast<EdgeFilter>(filter);
  o.max_nodes_explored = r->U64();
  o.max_answers_generated = r->U64();
  o.bound_check_interval = r->U32();
  o.release_patience = r->U64();
  o.shard_count = r->U32();
  out->deadline_seconds = r->F64();
  out->initial_credits = r->U64();
  size_t n = r->Count(4);  // each keyword is at least its length prefix
  out->keywords.clear();
  out->keywords.reserve(n);
  for (size_t i = 0; i < n; ++i) out->keywords.push_back(r->Str());
  return r->Done();
}

void WriteErrorReply(WireWriter* w, const ErrorReply& e) {
  w->U16(static_cast<uint16_t>(e.code));
  w->Str(e.message);
}

bool ReadErrorReply(WireReader* r, ErrorReply* out) {
  out->code = static_cast<ErrorCode>(r->U16());
  out->message = r->Str();
  return r->Done();
}

void WriteAnswerTree(WireWriter* w, const AnswerTree& tree) {
  w->U32(tree.root);
  w->U32(static_cast<uint32_t>(tree.edges.size()));
  for (const AnswerEdge& e : tree.edges) {
    w->U32(e.parent);
    w->U32(e.child);
    w->F32(e.weight);
  }
  w->U32(static_cast<uint32_t>(tree.keyword_nodes.size()));
  for (NodeId n : tree.keyword_nodes) w->U32(n);
  w->U32(static_cast<uint32_t>(tree.keyword_distances.size()));
  for (double d : tree.keyword_distances) w->F64(d);
  w->F64(tree.edge_score_raw);
  w->F64(tree.node_prestige);
  w->F64(tree.score);
  w->F64(tree.generated_at);
  w->U64(tree.explored_at_generation);
  w->U64(tree.touched_at_generation);
}

bool ReadAnswerTree(WireReader* r, AnswerTree* out) {
  out->root = r->U32();
  size_t edges = r->Count(12);
  out->edges.clear();
  out->edges.reserve(edges);
  for (size_t i = 0; i < edges; ++i) {
    AnswerEdge e;
    e.parent = r->U32();
    e.child = r->U32();
    e.weight = r->F32();
    out->edges.push_back(e);
  }
  size_t kw = r->Count(4);
  out->keyword_nodes.clear();
  out->keyword_nodes.reserve(kw);
  for (size_t i = 0; i < kw; ++i) out->keyword_nodes.push_back(r->U32());
  size_t kd = r->Count(8);
  out->keyword_distances.clear();
  out->keyword_distances.reserve(kd);
  for (size_t i = 0; i < kd; ++i) out->keyword_distances.push_back(r->F64());
  out->edge_score_raw = r->F64();
  out->node_prestige = r->F64();
  out->score = r->F64();
  out->generated_at = r->F64();
  out->explored_at_generation = r->U64();
  out->touched_at_generation = r->U64();
  return r->ok();
}

void WriteMetrics(WireWriter* w, const SearchMetrics& m) {
  w->U64(m.nodes_explored);
  w->U64(m.nodes_touched);
  w->U64(m.edges_relaxed);
  w->U64(m.propagation_steps);
  w->U64(m.answers_generated);
  w->U64(m.answers_output);
  w->U64(m.bsp_rounds);
  w->U64(m.cross_shard_messages);
  w->U64(m.max_mailbox_depth);
  w->U64(m.page_hits);
  w->U64(m.page_misses);
  w->U64(m.page_waits);
  w->U64(m.io_errors);
  w->F64(m.elapsed_seconds);
  w->U32(static_cast<uint32_t>(m.generated_times.size()));
  for (double t : m.generated_times) w->F64(t);
  w->U32(static_cast<uint32_t>(m.output_times.size()));
  for (double t : m.output_times) w->F64(t);
  w->U8(m.budget_exhausted ? 1 : 0);
}

bool ReadMetrics(WireReader* r, SearchMetrics* out) {
  out->nodes_explored = r->U64();
  out->nodes_touched = r->U64();
  out->edges_relaxed = r->U64();
  out->propagation_steps = r->U64();
  out->answers_generated = r->U64();
  out->answers_output = r->U64();
  out->bsp_rounds = r->U64();
  out->cross_shard_messages = r->U64();
  out->max_mailbox_depth = r->U64();
  out->page_hits = r->U64();
  out->page_misses = r->U64();
  out->page_waits = r->U64();
  out->io_errors = r->U64();
  out->elapsed_seconds = r->F64();
  size_t gen = r->Count(8);
  out->generated_times.clear();
  out->generated_times.reserve(gen);
  for (size_t i = 0; i < gen; ++i) out->generated_times.push_back(r->F64());
  size_t rel = r->Count(8);
  out->output_times.clear();
  out->output_times.reserve(rel);
  for (size_t i = 0; i < rel; ++i) out->output_times.push_back(r->F64());
  out->budget_exhausted = r->U8() != 0;
  return r->ok();
}

void WriteFinalReply(WireWriter* w, const FinalReply& f) {
  w->U8(static_cast<uint8_t>(f.status));
  WriteMetrics(w, f.metrics);
}

bool ReadFinalReply(WireReader* r, FinalReply* out) {
  uint8_t status = r->U8();
  if (status > static_cast<uint8_t>(SubscribeStatus::kIoError)) return false;
  out->status = static_cast<SubscribeStatus>(status);
  return ReadMetrics(r, &out->metrics) && r->Done();
}

}  // namespace banks::net
