#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>

#include "util/timer.h"

namespace banks::net {

namespace {
constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeKey = 1;
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

/// One response frame queued for a connection. `grant_credit` marks
/// answer frames of window-credited requests: when the frame's last byte
/// reaches the kernel, the request gets one delivery credit back — the
/// writability→credit mapping.
struct Server::OutFrame {
  std::string bytes;
  size_t offset = 0;
  uint64_t request_id = 0;
  bool is_answer = false;
  bool grant_credit = false;
};

/// State shared between a connection (loop thread) and its sinks
/// (scheduler workers). Lives until the last sink drops it, which may be
/// after the connection itself is gone.
struct Server::ConnShared {
  Server* server;
  uint64_t conn_id;

  std::mutex mu;
  std::deque<OutFrame> pending;  // frames queued by sinks, not yet
                                 // picked up by the loop thread
  bool closed = false;           // connection gone: drop instead of queue
};

struct Server::DirtyQueue {
  std::mutex mu;
  std::vector<uint64_t> conn_ids;
};

/// AnswerSink bridging one request to its connection: serializes frames
/// on the scheduler worker and hands them to the loop thread. Never
/// blocks on socket progress — flow control is the scheduler's credit
/// machinery, not sink-side waiting (the sink threading rules forbid
/// blocking here).
class Server::SocketSink : public AnswerSink {
 public:
  SocketSink(std::shared_ptr<ConnShared> shared, uint64_t request_id,
             bool grant_on_flush)
      : shared_(std::move(shared)),
        request_id_(request_id),
        grant_on_flush_(grant_on_flush) {}

  void OnAnswer(const AnswerTree& answer) override {
    WireWriter w;
    WriteAnswerTree(&w, answer);
    Push(EncodeFrame(FrameType::kAnswer, request_id_, w.data()),
         /*is_answer=*/true, grant_on_flush_);
  }

  void OnComplete(SubscribeStatus status, const SearchMetrics& metrics) override {
    WireWriter w;
    WriteFinalReply(&w, FinalReply{status, metrics});
    Push(EncodeFrame(FrameType::kFinal, request_id_, w.data()),
         /*is_answer=*/false, /*grant_credit=*/false);
  }

  bool grant_on_flush() const { return grant_on_flush_; }

 private:
  void Push(std::string frame, bool is_answer, bool grant_credit) {
    Server* server = shared_->server;
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      if (shared_->closed) return;
      OutFrame out;
      out.bytes = std::move(frame);
      out.request_id = request_id_;
      out.is_answer = is_answer;
      out.grant_credit = grant_credit;
      shared_->pending.push_back(std::move(out));
    }
    server->output_backlog_frames_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(server->dirty_->mu);
      server->dirty_->conn_ids.push_back(shared_->conn_id);
    }
    server->Wake();
  }

  std::shared_ptr<ConnShared> shared_;
  const uint64_t request_id_;
  const bool grant_on_flush_;
};

/// Loop-thread-only connection state.
struct Server::Conn {
  uint64_t id = 0;
  int fd = -1;
  std::string tenant;
  std::shared_ptr<ConnShared> shared;

  std::string inbuf;
  size_t parse_offset = 0;
  std::deque<OutFrame> outbuf;
  bool want_write = false;  // EPOLLOUT currently armed
  bool hello_done = false;
  bool closing = false;  // fatal error sent: flush outbuf, then close

  struct Request {
    std::unique_ptr<SocketSink> sink;
    Subscription sub;
  };
  std::unordered_map<uint64_t, Request> requests;
};

Server::Server(const Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      dirty_(std::make_unique<DirtyQueue>()) {
  if (options_.scheduler != nullptr) {
    scheduler_ = options_.scheduler;
  } else {
    owned_scheduler_ = std::make_unique<Scheduler>(options_.scheduler_options);
    scheduler_ = owned_scheduler_.get();
  }
}

Server::~Server() {
  Shutdown(drain_seconds_.load());
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_.store(true);
  loop_ = std::thread([this] { Loop(); });
  return true;
}

void Server::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still wakes the loop; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::Shutdown(double drain_seconds) {
  std::call_once(shutdown_once_, [&] {
    if (!started_.load()) return;
    drain_seconds_.store(drain_seconds);
    shutdown_requested_.store(true);
    Wake();
    loop_.join();
  });
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_open = connections_open_.load();
  s.frames_received = frames_received_.load();
  s.frames_sent = frames_sent_.load();
  s.answers_sent = answers_sent_.load();
  s.protocol_errors = protocol_errors_.load();
  s.requests_opened = requests_opened_.load();
  s.requests_open = requests_open_.load();
  s.output_backlog_frames = output_backlog_frames_.load();
  return s;
}

void Server::Loop() {
  bool draining = false;
  Timer drain_timer;
  bool drain_cancelled = false;

  for (;;) {
    if (shutdown_requested_.load() && !draining) {
      draining = true;
      drain_timer = Timer();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }

    if (draining) {
      // Drain deadline: cancel whatever is still open, once.
      if (!drain_cancelled && drain_timer.ElapsedSeconds() >= drain_seconds_.load()) {
        drain_cancelled = true;
        for (auto& [id, conn] : conns_) {
          for (auto& [rid, req] : conn->requests) req.sub.Cancel();
        }
        for (auto& [sink, sub] : draining_) sub.Cancel();
      }
      // Second deadline: a reader that stopped reading can keep its
      // outbuf unflushable forever — force the sockets closed (their
      // cancelled tasks finish into draining_ and are waited out below).
      if (drain_cancelled &&
          drain_timer.ElapsedSeconds() >= drain_seconds_.load() + 1.0 &&
          !conns_.empty()) {
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (auto& [id, conn] : conns_) ids.push_back(id);
        for (uint64_t id : ids) DestroyConn(id);
      }
      bool busy = !draining_.empty();
      for (auto& [id, conn] : conns_) {
        busy = busy || !conn->requests.empty() || !conn->outbuf.empty();
        std::lock_guard<std::mutex> lock(conn->shared->mu);
        busy = busy || !conn->shared->pending.empty();
      }
      if (!busy) break;  // drained: close everything below
    }

    // Parked tasks of dead connections finish without waking the loop;
    // poll while any exist (or while draining, to re-check the exit
    // condition). Open requests also force a tick: a task's terminal
    // frame wakes the loop from *inside* OnComplete, so the sweep
    // triggered by that wake can observe finished() still false — with
    // no later wake, the entry would never be reaped without this.
    bool sweep_pending = requests_open_.load(std::memory_order_relaxed) > 0;
    int timeout_ms = (draining || !draining_.empty() || sweep_pending)
                         ? 20
                         : -1;
    epoll_event events[64];
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      uint64_t key = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (key == kListenKey) {
        Accept();
        continue;
      }
      if (key == kWakeKey) {
        uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof drainv) > 0) {
        }
        continue;
      }
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn* conn = it->second.get();
      if (mask & (EPOLLERR | EPOLLHUP)) {
        CloseConn(conn, /*flush_first=*/false);
        continue;
      }
      if (mask & EPOLLIN) ReadConn(conn);
      if (conns_.find(key) == conns_.end()) continue;
      if (mask & EPOLLOUT) FlushConn(conn);
    }

    // Pick up frames the sinks queued since the last pass.
    std::vector<uint64_t> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_->mu);
      dirty.swap(dirty_->conn_ids);
    }
    for (uint64_t id : dirty) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      DrainPending(it->second.get());
      if (conns_.find(id) != conns_.end()) SweepFinished(it->second.get());
    }

    // Periodic pass for entries whose wake raced their finished() flip
    // (see timeout_ms above): sweep every conn that still has open
    // requests, not just the ones marked dirty since the last pass.
    if (sweep_pending) {
      for (auto& [id, conn] : conns_) {
        if (!conn->requests.empty()) SweepFinished(conn.get());
      }
    }

    // Reap finished tasks of disconnected clients.
    if (!draining_.empty()) {
      std::erase_if(draining_, [&](auto& entry) {
        if (!entry.second.finished()) return false;
        requests_open_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      });
    }

    // A closing connection lingers until its error/final frames are out.
    std::vector<uint64_t> doomed;
    for (auto& [id, conn] : conns_) {
      if (conn->closing && conn->outbuf.empty()) doomed.push_back(id);
    }
    for (uint64_t id : doomed) DestroyConn(id);
  }

  // Loop exit: every task is terminal and every flushable byte is out.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) DestroyConn(id);
  // Safety net for abnormal exits (epoll failure): a sink must stay
  // alive until its task's terminal OnComplete, so wait any leftover
  // tasks out before destroying the sinks. Empty on the normal path.
  for (auto& [sink, sub] : draining_) {
    sub.Cancel();
    sub.Wait();
    requests_open_.fetch_sub(1, std::memory_order_relaxed);
  }
  draining_.clear();
}

void Server::Accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof options_.send_buffer_bytes);
    }

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->tenant = "c" + std::to_string(conn->id);
    conn->shared = std::make_shared<ConnShared>();
    conn->shared->server = this;
    conn->shared->conn_id = conn->id;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::ReadConn(Conn* conn) {
  if (conn->closing) return;
  for (;;) {
    size_t old = conn->inbuf.size();
    conn->inbuf.resize(old + kReadChunk);
    ssize_t n = ::read(conn->fd, conn->inbuf.data() + old, kReadChunk);
    if (n > 0) {
      conn->inbuf.resize(old + static_cast<size_t>(n));
      continue;
    }
    conn->inbuf.resize(old);
    if (n == 0) {
      CloseConn(conn, /*flush_first=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn, /*flush_first=*/false);
    return;
  }

  // Parse complete frames.
  while (!conn->closing &&
         conn->inbuf.size() - conn->parse_offset >= kFrameHeaderBytes) {
    FrameHeader header;
    if (!DecodeHeader(conn->inbuf.data() + conn->parse_offset,
                      options_.max_frame_bytes, &header)) {
      ErrorCode code = header.version != kProtocolVersion
                           ? ErrorCode::kUnsupportedVersion
                           : ErrorCode::kBadFrame;
      SendError(conn, 0, code, "malformed or oversized frame", /*fatal=*/true);
      break;
    }
    size_t total = kFrameHeaderBytes + header.payload_bytes;
    if (conn->inbuf.size() - conn->parse_offset < total) break;
    const char* payload =
        conn->inbuf.data() + conn->parse_offset + kFrameHeaderBytes;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bool keep = Dispatch(conn, header, payload);
    conn->parse_offset += total;
    if (!keep) break;
  }
  if (conn->parse_offset > 0) {
    conn->inbuf.erase(0, conn->parse_offset);
    conn->parse_offset = 0;
  }
}

bool Server::Dispatch(Conn* conn, const FrameHeader& header,
                      const char* payload) {
  FrameType type = static_cast<FrameType>(header.type);
  WireReader reader(payload, header.payload_bytes);

  if (!conn->hello_done) {
    if (type != FrameType::kHello) {
      SendError(conn, header.request_id, ErrorCode::kHelloRequired,
                "first frame must be Hello", /*fatal=*/true);
      return false;
    }
    HelloRequest hello;
    if (!ReadHello(&reader, &hello)) {
      SendError(conn, header.request_id, ErrorCode::kBadPayload,
                "bad Hello payload", /*fatal=*/true);
      return false;
    }
    if (hello.magic != kHelloMagic) {
      SendError(conn, header.request_id, ErrorCode::kBadMagic,
                "hello magic mismatch", /*fatal=*/true);
      return false;
    }
    if (hello.version != kProtocolVersion) {
      SendError(conn, header.request_id, ErrorCode::kUnsupportedVersion,
                "unsupported protocol version", /*fatal=*/true);
      return false;
    }
    conn->hello_done = true;
    HelloReply reply;
    const Graph& g = engine_->graph();
    reply.nodes = g.num_nodes();
    reply.edges = g.num_edges();
    reply.epoch = engine_->epoch();
    reply.server_name = options_.server_name;
    WireWriter w;
    WriteHelloReply(&w, reply);
    OutFrame out;
    out.bytes = EncodeFrame(FrameType::kHelloOk, header.request_id, w.data());
    out.request_id = header.request_id;
    conn->outbuf.push_back(std::move(out));
    output_backlog_frames_.fetch_add(1, std::memory_order_relaxed);
    FlushConn(conn);
    return true;
  }

  switch (type) {
    case FrameType::kQuery:
    case FrameType::kOpenStream:
    case FrameType::kSubscribe:
      OpenRequest(conn, type, header.request_id, payload, header.payload_bytes);
      return true;

    case FrameType::kNext:
    case FrameType::kAddCredits: {
      uint64_t credits = reader.U64();
      if (!reader.Done()) {
        SendError(conn, header.request_id, ErrorCode::kBadPayload,
                  "bad credit payload", /*fatal=*/false);
        return true;
      }
      auto it = conn->requests.find(header.request_id);
      if (it == conn->requests.end()) {
        SendError(conn, header.request_id, ErrorCode::kUnknownRequest,
                  "no such request", /*fatal=*/false);
        return true;
      }
      it->second.sub.AddCredits(credits);
      return true;
    }

    case FrameType::kCancel: {
      auto it = conn->requests.find(header.request_id);
      if (it == conn->requests.end()) {
        SendError(conn, header.request_id, ErrorCode::kUnknownRequest,
                  "no such request", /*fatal=*/false);
        return true;
      }
      it->second.sub.Cancel();
      return true;
    }

    case FrameType::kPing: {
      OutFrame out;
      out.bytes = EncodeFrame(FrameType::kPong, header.request_id,
                              std::string(payload, header.payload_bytes));
      out.request_id = header.request_id;
      conn->outbuf.push_back(std::move(out));
      output_backlog_frames_.fetch_add(1, std::memory_order_relaxed);
      FlushConn(conn);
      return true;
    }

    default:
      SendError(conn, header.request_id, ErrorCode::kUnknownType,
                "unhandled frame type", /*fatal=*/false);
      return true;
  }
}

void Server::OpenRequest(Conn* conn, FrameType type, uint64_t request_id,
                         const char* payload, size_t payload_bytes) {
  WireReader reader(payload, payload_bytes);
  SearchRequest req;
  if (request_id == 0 || !ReadSearchRequest(&reader, &req)) {
    SendError(conn, request_id, ErrorCode::kBadPayload, "bad search request",
              /*fatal=*/false);
    return;
  }
  if (conn->requests.count(request_id) != 0) {
    SendError(conn, request_id, ErrorCode::kDuplicateRequest,
              "request id already open", /*fatal=*/false);
    return;
  }
  if (shutdown_requested_.load()) {
    SendError(conn, request_id, ErrorCode::kShuttingDown, "server draining",
              /*fatal=*/false);
    return;
  }

  // Pull streams advance on client kNext credits; push requests run
  // against the writability-granted window.
  bool pull = type == FrameType::kOpenStream;
  SubscribeOptions subscribe;
  subscribe.scheduler = scheduler_;
  subscribe.tenant = conn->tenant;
  subscribe.deadline_seconds = req.deadline_seconds;
  subscribe.answer_credits =
      pull ? req.initial_credits : options_.credit_window;

  Conn::Request entry;
  entry.sink = std::make_unique<SocketSink>(conn->shared, request_id, !pull);
  // Admission control runs inside Subscribe; a rejected task has already
  // pushed its kFinal(kRejected) through the sink when this returns —
  // the protocol-error surface of backpressure.
  entry.sub = engine_->Subscribe(req.keywords, req.algorithm, entry.sink.get(),
                                 req.options, subscribe);
  requests_opened_.fetch_add(1, std::memory_order_relaxed);
  requests_open_.fetch_add(1, std::memory_order_relaxed);
  conn->requests.emplace(request_id, std::move(entry));
  DrainPending(conn);
  SweepFinished(conn);
}

void Server::DrainPending(Conn* conn) {
  std::deque<OutFrame> pending;
  {
    std::lock_guard<std::mutex> lock(conn->shared->mu);
    pending.swap(conn->shared->pending);
  }
  for (OutFrame& frame : pending) conn->outbuf.push_back(std::move(frame));
  if (!conn->outbuf.empty()) FlushConn(conn);
}

void Server::SweepFinished(Conn* conn) {
  // A request whose terminal OnComplete has returned needs no credit
  // grants anymore; its remaining frames are already in the outbuf.
  std::erase_if(conn->requests, [&](auto& kv) {
    if (!kv.second.sub.finished()) return false;
    requests_open_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  });
}

void Server::FlushConn(Conn* conn) {
  while (!conn->outbuf.empty()) {
    OutFrame& frame = conn->outbuf.front();
    ssize_t n = ::send(conn->fd, frame.bytes.data() + frame.offset,
                       frame.bytes.size() - frame.offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      // Write error (peer reset): drop the backlog and let the loop's
      // doomed sweep destroy the connection. Never destroy here — the
      // callers (ReadConn's parse loop, DrainPending) still hold `conn`.
      output_backlog_frames_.fetch_sub(conn->outbuf.size(),
                                       std::memory_order_relaxed);
      conn->outbuf.clear();
      conn->closing = true;
      UpdateInterest(conn);
      return;
    }
    frame.offset += static_cast<size_t>(n);
    if (frame.offset < frame.bytes.size()) break;  // kernel buffer full

    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    output_backlog_frames_.fetch_sub(1, std::memory_order_relaxed);
    bool grant = frame.grant_credit;
    uint64_t rid = frame.request_id;
    if (frame.is_answer) answers_sent_.fetch_add(1, std::memory_order_relaxed);
    conn->outbuf.pop_front();
    if (grant) {
      // Frame fully handed to the kernel: the socket absorbed it, so the
      // scheduler may deliver one more answer for this request.
      auto it = conn->requests.find(rid);
      if (it != conn->requests.end()) it->second.sub.AddCredits(1);
    }
  }
  bool want = !conn->outbuf.empty();
  if (want != conn->want_write) {
    conn->want_write = want;
    UpdateInterest(conn);
  }
}

void Server::UpdateInterest(Conn* conn) {
  epoll_event ev{};
  ev.events = (conn->closing ? 0u : EPOLLIN) |
              (conn->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::SendError(Conn* conn, uint64_t request_id, ErrorCode code,
                       const std::string& message, bool fatal) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  WireWriter w;
  WriteErrorReply(&w, ErrorReply{code, message});
  OutFrame out;
  out.bytes = EncodeFrame(FrameType::kError, request_id, w.data());
  out.request_id = request_id;
  conn->outbuf.push_back(std::move(out));
  output_backlog_frames_.fetch_add(1, std::memory_order_relaxed);
  if (fatal && !conn->closing) {
    conn->closing = true;  // stop reading; DestroyConn once flushed
    UpdateInterest(conn);
  }
  FlushConn(conn);
}

void Server::CloseConn(Conn* conn, bool flush_first) {
  if (flush_first && !conn->outbuf.empty()) {
    conn->closing = true;
    UpdateInterest(conn);
    return;
  }
  DestroyConn(conn->id);
}

void Server::DestroyConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();

  // From here sinks drop their frames instead of queueing.
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(conn->shared->mu);
    conn->shared->closed = true;
    dropped = conn->shared->pending.size();
    conn->shared->pending.clear();
  }
  output_backlog_frames_.fetch_sub(dropped + conn->outbuf.size(),
                                   std::memory_order_relaxed);

  // Disconnect cancels the connection's in-flight tasks; their sinks
  // must outlive the terminal OnComplete, so park them in draining_.
  for (auto& [rid, req] : conn->requests) {
    req.sub.Cancel();
    draining_.emplace_back(std::move(req.sink), std::move(req.sub));
  }
  conn->requests.clear();

  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(it);
}

}  // namespace banks::net
