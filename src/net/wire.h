#ifndef BANKS_NET_WIRE_H_
#define BANKS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "search/answer.h"
#include "search/metrics.h"
#include "search/options.h"
#include "search/searcher.h"
#include "serve/answer_sink.h"

namespace banks::net {

/// Wire protocol of the network front door (docs/NETWORK.md).
///
/// Every message is one frame: a fixed 16-byte header followed by
/// `payload_bytes` of type-specific payload. Like the repo's other
/// serialized formats (util/serialize.h, storage/paged_store.h) the
/// encoding is host-byte-order POD — a same-architecture interchange
/// format, not a portable archive — which keeps encode/decode a straight
/// memcpy on the hot answer path.
///
/// Frames are correlated by `request_id`: the client picks a nonzero id
/// per request; every response frame for that request carries it back.
/// Connection-level errors (malformed frame, missing Hello) use
/// request_id 0.

inline constexpr uint8_t kProtocolVersion = 1;

/// First payload word of a Hello request ("BKS1") — rejects random
/// connects and endianness mismatches before anything else is parsed.
inline constexpr uint32_t kHelloMagic = 0x31534B42u;

inline constexpr size_t kFrameHeaderBytes = 16;

/// Hard cap on a single frame's payload; frames announcing more are a
/// protocol error and close the connection (answer frames for realistic
/// k are a few KB).
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t {
  // Client → server.
  kHello = 1,       // must be the first frame on a connection
  kQuery = 2,       // push-all: server-managed credit window
  kOpenStream = 3,  // pull: answers flow only against kNext credits
  kNext = 4,        // add pull credits to an open stream
  kSubscribe = 5,   // push subscription (window-credited like kQuery)
  kAddCredits = 6,  // extra delivery credits for any open request
  kCancel = 7,      // cancel an open request (terminal kCancelled follows)
  kPing = 8,        // liveness probe; payload echoed back in kPong

  // Server → client.
  kHelloOk = 32,  // Hello accepted; server + graph info
  kAnswer = 33,   // one serialized AnswerTree, in release order
  kFinal = 34,    // terminal status + SearchMetrics; last frame of a request
  kError = 35,    // protocol / request error (ErrorCode + message)
  kPong = 36,     // Ping echo
};

const char* FrameTypeName(FrameType type);

/// Error codes carried by kError frames. Codes < 32 are connection-fatal
/// (the server closes after sending); the rest leave the connection
/// usable and only fail the offending request.
enum class ErrorCode : uint16_t {
  kBadFrame = 1,           // header malformed / oversized / truncated payload
  kUnsupportedVersion = 2, // frame or hello version != kProtocolVersion
  kHelloRequired = 3,      // first frame was not kHello
  kBadMagic = 4,           // hello magic mismatch (wrong protocol/endianness)

  kBadPayload = 32,        // payload failed to decode for this frame type
  kUnknownType = 33,       // frame type the server does not handle
  kUnknownRequest = 34,    // kNext/kAddCredits/kCancel for an unknown id
  kDuplicateRequest = 35,  // request_id already open on this connection
  kShuttingDown = 36,      // server is draining; no new requests
};

struct FrameHeader {
  uint32_t payload_bytes = 0;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
};
static_assert(sizeof(FrameHeader) == kFrameHeaderBytes,
              "wire header must be exactly 16 bytes");

/// Append-only encoder over a std::string buffer.
class WireWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, sizeof v); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a byte span. Every Read* returns a value
/// and sets the sticky fail flag on underflow; callers check ok() once
/// at the end (failed reads return zero values).
class WireReader {
 public:
  WireReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  uint8_t U8() { return Pod<uint8_t>(); }
  uint16_t U16() { return Pod<uint16_t>(); }
  uint32_t U32() { return Pod<uint32_t>(); }
  uint64_t U64() { return Pod<uint64_t>(); }
  float F32() { return Pod<float>(); }
  double F64() { return Pod<double>(); }
  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  /// Element count for a following array of `elem_bytes`-sized items;
  /// fails if the announced count cannot fit in the remaining payload
  /// (the truncated-frame guard for vector fields).
  size_t Count(size_t elem_bytes) {
    uint32_t n = U32();
    if (!ok_ || static_cast<uint64_t>(n) * elem_bytes > remaining()) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool ok() const { return ok_; }
  /// A fully-consumed, error-free payload.
  bool Done() const { return ok_ && p_ == end_; }

 private:
  template <typename T>
  T Pod() {
    if (sizeof(T) > remaining()) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

/// One complete frame, header + payload, ready to write to a socket.
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload);

/// Decodes 16 header bytes. False when the version is unsupported or the
/// announced payload exceeds `max_payload`.
bool DecodeHeader(const char* data, size_t max_payload, FrameHeader* out);

// ---- Payload codecs ---------------------------------------------------------

struct HelloRequest {
  uint32_t magic = kHelloMagic;
  uint16_t version = kProtocolVersion;
  std::string client_name;
};

struct HelloReply {
  uint16_t version = kProtocolVersion;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t epoch = 0;
  std::string server_name;
};

/// Payload of kQuery / kOpenStream / kSubscribe: the search spec. Only
/// result-affecting SearchOptions fields plus shard_count travel; the
/// scratch/thread pools are server-side execution details.
struct SearchRequest {
  Algorithm algorithm = Algorithm::kBidirectional;
  SearchOptions options;
  /// Whole-request deadline in seconds (0 = none), enforced by the
  /// scheduler (SubscribeOptions::deadline_seconds).
  double deadline_seconds = 0;
  /// kOpenStream only: initial pull credits (kQuery/kSubscribe use the
  /// server's writability-granted window instead).
  uint64_t initial_credits = 0;
  std::vector<std::string> keywords;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;
};

/// Payload of kFinal: terminal status + full metrics.
struct FinalReply {
  SubscribeStatus status = SubscribeStatus::kPending;
  SearchMetrics metrics;
};

void WriteHello(WireWriter* w, const HelloRequest& hello);
bool ReadHello(WireReader* r, HelloRequest* out);

void WriteHelloReply(WireWriter* w, const HelloReply& reply);
bool ReadHelloReply(WireReader* r, HelloReply* out);

void WriteSearchRequest(WireWriter* w, const SearchRequest& req);
bool ReadSearchRequest(WireReader* r, SearchRequest* out);

void WriteErrorReply(WireWriter* w, const ErrorReply& e);
bool ReadErrorReply(WireReader* r, ErrorReply* out);

void WriteAnswerTree(WireWriter* w, const AnswerTree& tree);
bool ReadAnswerTree(WireReader* r, AnswerTree* out);

void WriteMetrics(WireWriter* w, const SearchMetrics& m);
bool ReadMetrics(WireReader* r, SearchMetrics* out);

void WriteFinalReply(WireWriter* w, const FinalReply& f);
bool ReadFinalReply(WireReader* r, FinalReply* out);

}  // namespace banks::net

#endif  // BANKS_NET_WIRE_H_
