#ifndef BANKS_NET_SERVER_H_
#define BANKS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "banks/engine.h"
#include "net/wire.h"
#include "serve/scheduler.h"

namespace banks::net {

/// Construction knobs of a Server.
struct ServerOptions {
  /// IPv4 address to bind ("0.0.0.0" to serve beyond loopback).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t port = 0;

  /// Scheduler the connections' tasks run on; null makes the server own
  /// one built from `scheduler_options`. Either way it must have worker
  /// threads (manual-drive schedulers would never run the tasks).
  Scheduler* scheduler = nullptr;
  SchedulerOptions scheduler_options;

  /// Per-frame payload cap; frames announcing more are a fatal protocol
  /// error (kBadFrame) and close the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Delivery-credit window of push requests (kQuery / kSubscribe): the
  /// scheduler may run at most this many answers ahead of what the
  /// kernel has accepted for transmission. Each answer frame fully
  /// flushed to the socket grants one credit back, so kernel send-buffer
  /// backpressure becomes scheduler backpressure: a slow reader's task
  /// finishes its (k-bounded) search, parks in kCreditWait holding zero
  /// pool leases, and the server buffers at most this many frames for
  /// it. See docs/NETWORK.md, "Backpressure".
  uint64_t credit_window = 8;

  /// Test hook: SO_SNDBUF for accepted connections (0 = kernel default).
  /// Shrinking it makes the backpressure path reachable with tiny
  /// result sets.
  int send_buffer_bytes = 0;

  std::string server_name = "banks_server";
};

/// Epoll-based TCP front door over one Engine + Scheduler — the network
/// subsystem (docs/NETWORK.md). One event-loop thread owns every socket;
/// search work happens on the scheduler's workers, which hand frames
/// back to the loop through per-connection queues.
///
/// The serving integration, which is the point of the layer:
///  * every connection is a fair-queueing tenant ("c<serial>"), so the
///    scheduler's stride scheduling arbitrates between connections;
///  * answers push through a socket-backed AnswerSink; delivery credits
///    are granted by socket writability (see ServerOptions::credit_window);
///  * admission rejections and scheduler deadlines surface as typed
///    kFinal statuses (kRejected / kDeadlineExpired), not dropped bytes;
///  * a mid-stream disconnect cancels the connection's tasks, returning
///    their context leases to the pool;
///  * Shutdown() stops accepting, lets in-flight tasks reach their
///    terminal OnComplete (drain), flushes, then closes.
class Server {
 public:
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_open = 0;
    uint64_t frames_received = 0;
    uint64_t frames_sent = 0;
    uint64_t answers_sent = 0;
    uint64_t protocol_errors = 0;
    uint64_t requests_opened = 0;  // Query/OpenStream/Subscribe accepted
    uint64_t requests_open = 0;    // not yet terminal
    /// Response frames currently buffered in server memory (queued by
    /// sinks or awaiting socket space) — the bounded-backpressure gauge:
    /// with a credit window W, one request never holds more than W + 1
    /// frames here no matter how slow its reader is.
    uint64_t output_backlog_frames = 0;
  };

  /// The engine (and external scheduler, if any) must outlive the server.
  explicit Server(const Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event-loop thread. False (with
  /// *error) on bind/listen failure.
  bool Start(std::string* error = nullptr);

  /// Port actually bound (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting connections and new requests, wait
  /// for in-flight tasks' terminal OnComplete and flush their frames,
  /// then close. Tasks still open after `drain_seconds` are cancelled
  /// (their clients get kFinal(kCancelled) if the socket still drains).
  /// Idempotent; also called by the destructor.
  void Shutdown(double drain_seconds = 10.0);

  Stats stats() const;

  /// The scheduler connection tasks run on (configured or server-owned).
  Scheduler& scheduler() { return *scheduler_; }

 private:
  struct Conn;
  struct ConnShared;
  struct OutFrame;
  class SocketSink;

  void Loop();
  void Accept();
  void ReadConn(Conn* conn);
  bool Dispatch(Conn* conn, const FrameHeader& header, const char* payload);
  void OpenRequest(Conn* conn, FrameType type, uint64_t request_id,
                   const char* payload, size_t payload_bytes);
  void FlushConn(Conn* conn);
  void DrainPending(Conn* conn);
  void SweepFinished(Conn* conn);
  void CloseConn(Conn* conn, bool flush_first);
  void DestroyConn(uint64_t conn_id);
  void UpdateInterest(Conn* conn);
  void SendError(Conn* conn, uint64_t request_id, ErrorCode code,
                 const std::string& message, bool fatal);
  void Wake();

  const Engine* engine_;
  ServerOptions options_;
  std::unique_ptr<Scheduler> owned_scheduler_;
  Scheduler* scheduler_ = nullptr;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<double> drain_seconds_{10.0};
  std::once_flag shutdown_once_;

  // Sinks (scheduler workers) mark connections dirty here; the loop
  // drains it after each wake. Guarded by its own mutex, never held
  // together with anything else.
  struct DirtyQueue;
  std::unique_ptr<DirtyQueue> dirty_;

  // Connection table — loop-thread-only.
  uint64_t next_conn_id_ = 2;  // 0 = listen sentinel, 1 = wake sentinel
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  // Disconnected connections' requests whose tasks have not reached
  // their terminal state yet (cancel issued; sinks must stay alive).
  std::vector<std::pair<std::unique_ptr<SocketSink>, Subscription>> draining_;

  // Counters (atomics: read by stats() from any thread).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> answers_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> requests_opened_{0};
  std::atomic<uint64_t> requests_open_{0};
  std::atomic<uint64_t> output_backlog_frames_{0};
};

}  // namespace banks::net

#endif  // BANKS_NET_SERVER_H_
