#ifndef BANKS_GRAPH_GRAPH_H_
#define BANKS_GRAPH_GRAPH_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "storage/buffer_pool.h"

namespace banks {

class PagedStore;
struct GraphBuildOptions;
struct GraphDelta;
class Graph;
Graph ApplyGraphDelta(std::shared_ptr<const Graph> base,
                      const GraphDelta& delta,
                      const GraphBuildOptions& options);

/// Immutable directed weighted search graph in CSR form.
///
/// This is the graph the paper's algorithms run on: the *combined* graph
/// containing every forward edge from the source data plus the derived
/// backward edge for each of them (§2.1). Both out-adjacency (followed by
/// the outgoing iterator) and in-adjacency (followed by backward expanding
/// iterators) are materialized.
///
/// Per-node inverse-weight sums are precomputed for spreading activation:
/// when node v spreads activation μ·a_v, each neighbour u's share is
/// (1/w_uv) / Σ(1/w) over the competing neighbours (§4.3).
///
/// A Graph is either a *base* (built by GraphBuilder::Build or opened
/// from a PagedStore) or an *overlay* produced by ApplyGraphDelta
/// (docs/UPDATES.md): an immutable snapshot layering append-only
/// inserts over a shared base. An overlay owns fresh copies of every
/// per-node scalar and the CSR offset arrays (recomputed effective
/// degrees), plus delta adjacency runs for exactly the nodes whose
/// adjacency changed; untouched nodes read through to the base, paged
/// or resident. Overlays are flattened — base_ never itself has a
/// base_ — so reads cost at most one extra indirection at any epoch.
class Graph {
 public:
  size_t num_nodes() const { return out_offsets_.size() - 1; }
  /// Total directed edges in the combined graph (forward + backward).
  size_t num_edges() const {
    return out_offsets_.empty() ? 0 : out_offsets_.back();
  }

  /// True when adjacency (of this graph or its overlay base) lives in a
  /// paged on-disk store behind a buffer pool instead of in-memory CSR
  /// arrays (storage/paged_store.h).
  bool paged() const {
    return store_ != nullptr || (base_ != nullptr && base_->paged());
  }
  const std::shared_ptr<PagedStore>& paged_store() const {
    return base_ != nullptr ? base_->paged_store() : store_;
  }

  /// True when this graph is an update overlay over a shared base
  /// (ApplyGraphDelta); base() is then non-null and flattened.
  bool overlay() const { return base_ != nullptr; }
  const std::shared_ptr<const Graph>& base() const { return base_; }

  /// Edges leaving v (targets). Traversed by the outgoing iterator.
  /// Resident graphs only — paged adjacency needs a pin (below).
  std::span<const Edge> OutEdges(NodeId v) const {
    if (base_ != nullptr) {
      const size_t count = out_offsets_[v + 1] - out_offsets_[v];
      if (count == 0) return {};
      const uint32_t start = delta_out_start_[v];
      if (start != kNoDeltaRun) return {delta_out_edges_.data() + start, count};
      return base_->OutEdges(v);
    }
    assert(store_ == nullptr);
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Edges entering v (sources). Traversed by backward expansion.
  /// Resident graphs only — paged adjacency needs a pin (below).
  std::span<const Edge> InEdges(NodeId v) const {
    if (base_ != nullptr) {
      const size_t count = in_offsets_[v + 1] - in_offsets_[v];
      if (count == 0) return {};
      const uint32_t start = delta_in_start_[v];
      if (start != kNoDeltaRun) return {delta_in_edges_.data() + start, count};
      return base_->InEdges(v);
    }
    assert(store_ == nullptr);
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Mode-agnostic adjacency: resident graphs (and overlay delta runs)
  /// return a plain span and leave `pin` empty; paged graphs pin the
  /// page holding v's run (blocking on a pool miss) and the span stays
  /// valid while `pin` lives. `pin->hit()` feeds the page hit/miss
  /// metrics; on a failed page read the span is empty and
  /// `pin->failed()` is set.
  std::span<const Edge> OutEdges(NodeId v, PagePin* pin) const {
    if (base_ != nullptr) {
      const size_t count = out_offsets_[v + 1] - out_offsets_[v];
      if (count == 0) return {};
      const uint32_t start = delta_out_start_[v];
      if (start != kNoDeltaRun) return {delta_out_edges_.data() + start, count};
      return base_->OutEdges(v, pin);
    }
    if (store_ == nullptr) return OutEdges(v);
    return PagedRun(out_runs_[v], out_offsets_[v + 1] - out_offsets_[v], pin);
  }
  std::span<const Edge> InEdges(NodeId v, PagePin* pin) const {
    if (base_ != nullptr) {
      const size_t count = in_offsets_[v + 1] - in_offsets_[v];
      if (count == 0) return {};
      const uint32_t start = delta_in_start_[v];
      if (start != kNoDeltaRun) return {delta_in_edges_.data() + start, count};
      return base_->InEdges(v, pin);
    }
    if (store_ == nullptr) return InEdges(v);
    return PagedRun(in_runs_[v], in_offsets_[v + 1] - in_offsets_[v], pin);
  }

  /// Non-blocking page probes for the serving scheduler's page-wait
  /// protocol: true when reading v's adjacency would not block (graph
  /// resident, run empty, overlay delta run, or its page already
  /// pooled). On false, if `listener` is set, an asynchronous fetch has
  /// been queued — exactly one OnPageReady follows per OnFetchQueued —
  /// so the caller can park instead of blocking. Probes never pin and
  /// never change results.
  bool ProbeOutEdges(NodeId v, const std::shared_ptr<PageFetchListener>&
                                   listener = nullptr) const {
    if (base_ != nullptr) {
      if (OutDegree(v) == 0 || delta_out_start_[v] != kNoDeltaRun) return true;
      return base_->ProbeOutEdges(v, listener);
    }
    if (store_ == nullptr || OutDegree(v) == 0) return true;
    return ProbeRun(out_runs_[v], listener);
  }
  bool ProbeInEdges(NodeId v, const std::shared_ptr<PageFetchListener>&
                                  listener = nullptr) const {
    if (base_ != nullptr) {
      if (InDegree(v) == 0 || delta_in_start_[v] != kNoDeltaRun) return true;
      return base_->ProbeInEdges(v, listener);
    }
    if (store_ == nullptr || InDegree(v) == 0) return true;
    return ProbeRun(in_runs_[v], listener);
  }

  size_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// In-degree counting only original forward edges; this is the
  /// "indegree(v)" in the backward-edge weight formula.
  uint32_t ForwardInDegree(NodeId v) const { return fwd_indegree_[v]; }

  /// Σ over in-edges (u,v) of 1/w — normalizer for incoming-direction
  /// activation spreading from v.
  double InInverseWeightSum(NodeId v) const { return in_inv_weight_sum_[v]; }

  /// Σ over out-edges (v,u) of 1/w — normalizer for outgoing-direction
  /// activation spreading from v.
  double OutInverseWeightSum(NodeId v) const { return out_inv_weight_sum_[v]; }

  /// Smallest edge weight in the combined graph (1.0 for an edgeless
  /// graph). Query-invariant aggregate precomputed at Build() time; the
  /// §4.5 depth-floor bound multiplies frontier depth by this, and
  /// recomputing it per query would scan every edge.
  double MinEdgeWeight() const { return min_edge_weight_; }

  /// Relation/type of a node (kUntypedNode when the builder never set one).
  NodeType Type(NodeId v) const {
    return node_types_.empty() ? kUntypedNode : node_types_[v];
  }

  const std::vector<std::string>& type_names() const { return type_names_; }

  /// Weight of the directed edge u→v, or a negative value if absent.
  /// Linear in OutDegree(u); intended for tests and tree construction.
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True if the directed edge u→v exists in the combined graph.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) >= 0; }

  /// Bytes of adjacency + offset storage (the paper's 16·V + 8·E claim is
  /// about this in-memory skeleton; §5.1).
  size_t MemoryBytes() const;

  /// Per-component byte breakdown; sizes buffer pools and feeds the
  /// micro_graph report. For a paged graph `adjacency_*` counts on-disk
  /// page bytes (not RAM) and resident() excludes them.
  struct MemoryUsage {
    size_t adjacency_target_bytes = 0;  // NodeId halves of out+in edges
    size_t adjacency_weight_bytes = 0;  // weight+dir halves (incl. padding)
    size_t offset_bytes = 0;            // CSR offset arrays (always resident)
    size_t node_scalar_bytes = 0;  // indegrees + inverse-weight sums pools
    size_t type_bytes = 0;         // node types + interned type names
    size_t run_table_bytes = 0;    // paged-mode per-node run locators
    /// Paged mode: adjacency bytes kept resident as inlined short runs
    /// (a subset of adjacency_bytes(), counted in resident_bytes).
    size_t adjacency_inline_bytes = 0;

    size_t adjacency_bytes() const {
      return adjacency_target_bytes + adjacency_weight_bytes;
    }
    size_t total_bytes() const {
      return adjacency_bytes() + offset_bytes + node_scalar_bytes +
             type_bytes + run_table_bytes;
    }
    /// RAM actually held by this Graph (paged adjacency excluded; the
    /// buffer pool's resident bytes are accounted by the pool itself).
    size_t resident_bytes = 0;
  };
  MemoryUsage ComputeMemoryUsage() const;

 private:
  friend class GraphBuilder;
  friend class PagedStore;
  friend Graph ApplyGraphDelta(std::shared_ptr<const Graph> base,
                               const GraphDelta& delta,
                               const GraphBuildOptions& options);

  /// Sentinel in delta_*_start_: this node's run reads from the base.
  static constexpr uint32_t kNoDeltaRun = UINT32_MAX;

  std::span<const Edge> PagedRun(PageRunRef run, size_t count,
                                 PagePin* pin) const;
  bool ProbeRun(PageRunRef run,
                const std::shared_ptr<PageFetchListener>& listener) const;

  std::vector<size_t> out_offsets_;  // |V|+1
  std::vector<Edge> out_edges_;
  std::vector<size_t> in_offsets_;  // |V|+1
  std::vector<Edge> in_edges_;
  std::vector<uint32_t> fwd_indegree_;
  std::vector<double> in_inv_weight_sum_;
  std::vector<double> out_inv_weight_sum_;
  double min_edge_weight_ = 1.0;
  std::vector<NodeType> node_types_;
  std::vector<std::string> type_names_;

  // Paged mode (storage/paged_store.h): adjacency runs live in the
  // store's pages; these locators say where. The skeleton above (offsets,
  // scalars, types) stays resident in both modes. Runs short enough to
  // inline (PagedStoreOptions::inline_run_bytes) live in inline_edges_
  // instead — their locators carry kInlinePage and an index into it, and
  // reading them never touches the buffer pool.
  std::shared_ptr<PagedStore> store_;
  std::vector<PageRunRef> out_runs_;
  std::vector<PageRunRef> in_runs_;
  std::vector<Edge> inline_edges_;

  // Overlay mode (ApplyGraphDelta): base_ is the flattened non-overlay
  // graph this snapshot layers inserts over. delta_*_start_[v] indexes
  // this overlay's rebuilt run for v inside delta_*_edges_ (length =
  // the offsets-derived degree), or kNoDeltaRun to read the base's run.
  // Successive overlays copy their predecessor's delta storage, so a
  // node rebuilt at epoch i and untouched since still resolves in one
  // hop at epoch i+k (replaced runs leak inside the vectors until the
  // next full rebuild — bounded by total inserted+rebuilt edges).
  std::shared_ptr<const Graph> base_;
  std::vector<Edge> delta_out_edges_;
  std::vector<Edge> delta_in_edges_;
  std::vector<uint32_t> delta_out_start_;
  std::vector<uint32_t> delta_in_start_;
};

/// Options controlling derived backward edges.
struct GraphBuildOptions {
  /// Create backward edge v→u for every forward u→v with weight
  /// w_uv * log2(1 + fwd_indegree(v)). Disabling yields the pure forward
  /// graph (useful for tests and for the prestige walk ablation).
  bool add_backward_edges = true;
  /// Floor for backward edge weights; log2(1+1)=1 so only indegree-0
  /// targets (impossible for a backward edge's v) would need it, but a
  /// configurable floor also lets tests exercise weight ties.
  double min_backward_weight = 1.0;
};

/// Mutable accumulation phase. Nodes are dense ids handed out in order;
/// edges may be added in any order. Build() freezes into a Graph.
class GraphBuilder {
 public:
  /// Adds one node, optionally typed; returns its id.
  NodeId AddNode(NodeType type = kUntypedNode);

  /// Adds `count` nodes of one type; returns the first id.
  NodeId AddNodes(size_t count, NodeType type = kUntypedNode);

  /// Registers a type name; returns the dense NodeType id.
  NodeType InternType(const std::string& name);

  /// Adds a forward data edge u→v. Weight must be positive (default 1,
  /// "defined by the schema" per §2.3).
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_forward_edges() const { return edges_.size(); }

  /// Freezes into an immutable Graph. The builder is left empty.
  Graph Build(const GraphBuildOptions& options = {});

 private:
  struct RawEdge {
    NodeId u, v;
    float weight;
  };

  size_t num_nodes_ = 0;
  std::vector<RawEdge> edges_;
  std::vector<NodeType> node_types_;
  std::vector<std::string> type_names_;
  bool any_typed_ = false;
};

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_H_
