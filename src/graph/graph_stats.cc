#include "graph/graph_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

namespace banks {
namespace {

/// Gini coefficient of a non-negative sample (sorted in place).
double Gini(std::vector<size_t>* values) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  const double n = static_cast<double>(values->size());
  double weighted = 0, total = 0;
  for (size_t i = 0; i < values->size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>((*values)[i]);
    total += static_cast<double>((*values)[i]);
  }
  if (total == 0) return 0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

/// Union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

GraphStats ComputeGraphStats(const Graph& g, size_t hub_threshold) {
  GraphStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();

  stats.memory = g.ComputeMemoryUsage();

  std::vector<size_t> out_degrees;
  out_degrees.reserve(g.num_nodes());
  UnionFind uf(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t out = g.OutDegree(v);
    out_degrees.push_back(out);
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    PagePin pin;  // mode-agnostic: stats work on paged graphs too
    for (const Edge& e : g.OutEdges(v, &pin)) {
      if (e.dir == EdgeDir::kForward) stats.num_forward_edges++;
      uf.Union(v, e.other);
    }
    uint32_t fwd_in = g.ForwardInDegree(v);
    if (fwd_in > stats.max_forward_indegree) {
      stats.max_forward_indegree = fwd_in;
      stats.max_forward_indegree_node = v;
    }
    if (fwd_in >= hub_threshold) stats.hub_count++;
  }
  stats.mean_out_degree =
      g.num_nodes() ? static_cast<double>(g.num_edges()) /
                          static_cast<double>(g.num_nodes())
                    : 0;
  stats.out_degree_gini = Gini(&out_degrees);

  std::vector<size_t> component_size(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) component_size[uf.Find(v)]++;
  for (size_t size : component_size) {
    if (size > 0) {
      stats.weakly_connected_components++;
      stats.largest_component_size =
          std::max(stats.largest_component_size, size);
    }
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "nodes=" << num_nodes << " edges=" << num_edges << " (fwd "
     << num_forward_edges << ")"
     << " mean_deg=" << mean_out_degree << " max_deg=" << max_out_degree
     << " max_fanin=" << max_forward_indegree << " hubs=" << hub_count
     << " gini=" << out_degree_gini
     << " wcc=" << weakly_connected_components
     << " largest_wcc=" << largest_component_size
     << "\nbytes: adjacency=" << memory.adjacency_bytes() << " (targets "
     << memory.adjacency_target_bytes << ", weights "
     << memory.adjacency_weight_bytes << ")"
     << " offsets=" << memory.offset_bytes
     << " node_pools=" << memory.node_scalar_bytes
     << " types=" << memory.type_bytes
     << " run_tables=" << memory.run_table_bytes
     << " total=" << memory.total_bytes()
     << " resident=" << memory.resident_bytes;
  return os.str();
}

}  // namespace banks
