#ifndef BANKS_GRAPH_TYPES_H_
#define BANKS_GRAPH_TYPES_H_

#include <cstdint>

namespace banks {

/// Dense node identifier. Graphs with tens of millions of nodes fit in
/// 32 bits, matching the paper's compact in-memory index (§5.1).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Node type (relation of origin for tuple nodes); dense small id.
using NodeType = uint16_t;
inline constexpr NodeType kUntypedNode = UINT16_MAX;

/// Provenance of a directed edge in the search graph (§2.1):
/// kForward edges come from the source data (foreign keys, containment);
/// kBackward edges are the derived reverse edges v→u with weight
/// w_uv * log2(1 + indegree(v)) that allow answers to traverse edges
/// "backwards" while discouraging shortcuts through hubs.
enum class EdgeDir : uint8_t { kForward = 0, kBackward = 1 };

/// One directed edge endpoint as stored in the CSR adjacency arrays.
/// In an out-adjacency list `other` is the target; in an in-adjacency
/// list it is the source. `weight` is the traversal cost of the directed
/// edge (lower is better).
struct Edge {
  NodeId other;
  float weight;
  EdgeDir dir;
};

}  // namespace banks

#endif  // BANKS_GRAPH_TYPES_H_
