#ifndef BANKS_GRAPH_GRAPH_IO_H_
#define BANKS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace banks {

/// Binary serialization of the frozen search graph (§5.1 notes the graph
/// skeleton is "really only an index" that can be rebuilt or persisted
/// separately from tuple data). The format stores only the *forward* data
/// edges plus node types; backward edges are re-derived on load so the
/// on-disk format stays independent of the backward-weight formula.
///
/// Returns false / nullopt on malformed input rather than aborting.
bool SaveGraph(const Graph& g, std::ostream& os);
std::optional<Graph> LoadGraph(std::istream& is,
                               const GraphBuildOptions& options = {});

bool SaveGraphToFile(const Graph& g, const std::string& path);
std::optional<Graph> LoadGraphFromFile(const std::string& path,
                                       const GraphBuildOptions& options = {});

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_IO_H_
