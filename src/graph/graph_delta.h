#ifndef BANKS_GRAPH_GRAPH_DELTA_H_
#define BANKS_GRAPH_GRAPH_DELTA_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace banks {

/// One append-only batch of graph inserts (docs/UPDATES.md): new nodes
/// (appended in id order after the base's), new forward data edges
/// (endpoints may be existing or new nodes), and new type names
/// (appended after the base's interned names). No deletes in v1.
struct GraphDelta {
  struct NewEdge {
    NodeId u = 0;
    NodeId v = 0;
    double weight = 1.0;
  };

  /// One entry per appended node, in id order; the i-th gets id
  /// base.num_nodes() + i. kUntypedNode for untyped nodes.
  std::vector<NodeType> new_node_types;
  std::vector<NewEdge> new_edges;
  std::vector<std::string> new_type_names;

  bool empty() const { return new_node_types.empty() && new_edges.empty(); }
};

/// Applies `delta` over `base`, returning an immutable overlay Graph
/// that is *value-identical* to GraphBuilder::Build over the combined
/// logical state — same adjacency in the same canonical order, same
/// derived backward-edge weights, same per-node scalars bit-for-bit —
/// which is what makes search-on-snapshot ≡ search-on-fresh-build
/// byte-identical (ARCHITECTURE.md contract 5).
///
/// `base` may itself be an overlay (the previous epoch); the result is
/// flattened against the ultimate non-overlay graph, so reads never
/// chain. Only the nodes whose adjacency actually changes get rebuilt
/// runs: sources and targets of new edges, plus — because a target's
/// forward in-degree feeds every backward weight derived from edges
/// into it — the forward predecessors of each target. `options` must
/// match the options the base was built with.
///
/// The caller keeps `base` alive through the returned graph's lifetime
/// (the overlay shares, not copies, the base adjacency); Engine does
/// this by holding epoch snapshots in shared_ptrs.
Graph ApplyGraphDelta(std::shared_ptr<const Graph> base,
                      const GraphDelta& delta,
                      const GraphBuildOptions& options);

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_DELTA_H_
