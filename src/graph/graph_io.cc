#include "graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/serialize.h"

namespace banks {
namespace {

constexpr uint64_t kMagic = 0x42414E4B53763101ULL;  // "BANKSv1\x01"

}  // namespace

bool SaveGraph(const Graph& g, std::ostream& os) {
  WritePod(os, kMagic);
  WritePod<uint64_t>(os, g.num_nodes());

  // Emit only the original forward edges; backward edges are re-derived on
  // load so the on-disk format is independent of the weight formula.
  uint64_t fwd_count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutEdges(u)) {
      if (e.dir == EdgeDir::kForward) fwd_count++;
    }
  }
  WritePod(os, fwd_count);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Edge& e : g.OutEdges(u)) {
      if (e.dir != EdgeDir::kForward) continue;
      WritePod<uint32_t>(os, u);
      WritePod<uint32_t>(os, e.other);
      WritePod<float>(os, e.weight);
    }
  }

  WritePod<uint32_t>(os, static_cast<uint32_t>(g.type_names().size()));
  for (const std::string& name : g.type_names()) WriteString(os, name);

  uint8_t has_types = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.Type(v) != kUntypedNode) {
      has_types = 1;
      break;
    }
  }
  WritePod(os, has_types);
  if (has_types) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      WritePod<uint16_t>(os, g.Type(v));
    }
  }
  return static_cast<bool>(os);
}

std::optional<Graph> LoadGraph(std::istream& is,
                               const GraphBuildOptions& options) {
  uint64_t magic;
  if (!ReadPod(is, &magic) || magic != kMagic) return std::nullopt;
  uint64_t num_nodes;
  if (!ReadPod(is, &num_nodes) || num_nodes > UINT32_MAX) return std::nullopt;
  uint64_t num_edges;
  if (!ReadPod(is, &num_edges)) return std::nullopt;

  struct RawEdge {
    uint32_t u, v;
    float w;
  };
  std::vector<RawEdge> raw(num_edges);
  for (auto& e : raw) {
    if (!ReadPod(is, &e.u) || !ReadPod(is, &e.v) || !ReadPod(is, &e.w)) {
      return std::nullopt;
    }
    if (e.u >= num_nodes || e.v >= num_nodes || e.w <= 0) return std::nullopt;
  }

  uint32_t num_types;
  if (!ReadPod(is, &num_types)) return std::nullopt;
  std::vector<std::string> type_names(num_types);
  for (auto& name : type_names) {
    if (!ReadString(is, &name)) return std::nullopt;
  }

  uint8_t has_types;
  if (!ReadPod(is, &has_types)) return std::nullopt;
  std::vector<uint16_t> types;
  if (has_types) {
    types.resize(num_nodes);
    for (auto& t : types) {
      if (!ReadPod(is, &t)) return std::nullopt;
      if (t != UINT16_MAX && t >= num_types) return std::nullopt;
    }
  }

  GraphBuilder builder;
  for (const std::string& name : type_names) builder.InternType(name);
  if (has_types) {
    for (uint64_t i = 0; i < num_nodes; ++i) {
      builder.AddNode(static_cast<NodeType>(types[i]));
    }
  } else {
    builder.AddNodes(num_nodes);
  }
  for (const auto& e : raw) builder.AddEdge(e.u, e.v, e.w);
  return builder.Build(options);
}

bool SaveGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  return os && SaveGraph(g, os);
}

std::optional<Graph> LoadGraphFromFile(const std::string& path,
                                       const GraphBuildOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return LoadGraph(is, options);
}

}  // namespace banks
