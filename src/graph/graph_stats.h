#ifndef BANKS_GRAPH_GRAPH_STATS_H_
#define BANKS_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace banks {

/// Structural summary of a data graph. The synthetic datasets must
/// reproduce the skew properties the paper's algorithms are sensitive to
/// (hub fan-in, heavy-tailed degrees); these statistics make those
/// claims checkable (datasets tests) and reportable (benches, examples).
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;          // directed, incl. derived backward
  size_t num_forward_edges = 0;  // original data edges only

  double mean_out_degree = 0;
  size_t max_out_degree = 0;
  size_t max_forward_indegree = 0;  // the largest hub fan-in
  NodeId max_forward_indegree_node = kInvalidNode;

  /// Degree-distribution Gini coefficient in [0,1): 0 = perfectly
  /// uniform, →1 = extreme hub concentration.
  double out_degree_gini = 0;

  /// Nodes with forward in-degree ≥ hub_threshold.
  size_t hub_count = 0;

  /// Weakly-connected components (treating edges as undirected).
  size_t weakly_connected_components = 0;
  size_t largest_component_size = 0;

  /// Per-component byte breakdown (adjacency targets, weights, offsets,
  /// node scalar pools, types, paged run tables) — the numbers that
  /// size a buffer pool for out-of-core operation (docs/STORAGE.md).
  Graph::MemoryUsage memory;

  std::string ToString() const;
};

/// Computes all statistics in O(V + E).
GraphStats ComputeGraphStats(const Graph& g, size_t hub_threshold = 100);

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_STATS_H_
