#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "storage/paged_store.h"

namespace banks {

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  double best = -1.0;
  PagePin pin;
  for (const Edge& e : OutEdges(u, &pin)) {
    if (e.other == v && (best < 0 || e.weight < best)) best = e.weight;
  }
  return best;
}

std::span<const Edge> Graph::PagedRun(PageRunRef run, size_t count,
                                      PagePin* pin) const {
  if (count == 0) return {};
  if (run.page == kInlinePage) {
    return {inline_edges_.data() + run.offset, count};  // pin stays empty
  }
  const std::byte* base = store_->pool().Pin(run.page, pin);
  if (base == nullptr) return {};  // failed read: pin->failed() is set
  return {reinterpret_cast<const Edge*>(base + run.offset), count};
}

bool Graph::ProbeRun(PageRunRef run,
                     const std::shared_ptr<PageFetchListener>& l) const {
  if (run.page == kInlinePage) return true;
  BufferPool& pool = store_->pool();
  if (pool.Resident(run.page)) return true;
  if (l != nullptr) {
    l->OnFetchQueued(run.page);
    pool.RequestFetch(run.page, l);
  }
  return false;
}

size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(size_t) +
         out_edges_.size() * sizeof(Edge) +
         in_offsets_.size() * sizeof(size_t) +
         in_edges_.size() * sizeof(Edge) +
         fwd_indegree_.size() * sizeof(uint32_t) +
         in_inv_weight_sum_.size() * sizeof(double) +
         out_inv_weight_sum_.size() * sizeof(double) +
         node_types_.size() * sizeof(NodeType);
}

Graph::MemoryUsage Graph::ComputeMemoryUsage() const {
  MemoryUsage u;
  const size_t edge_slots = num_edges() * 2;  // out + in copies
  u.adjacency_target_bytes = edge_slots * sizeof(NodeId);
  u.adjacency_weight_bytes = edge_slots * (sizeof(Edge) - sizeof(NodeId));
  u.offset_bytes = (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t);
  u.node_scalar_bytes = fwd_indegree_.size() * sizeof(uint32_t) +
                        (in_inv_weight_sum_.size() +
                         out_inv_weight_sum_.size()) *
                            sizeof(double);
  u.type_bytes = node_types_.size() * sizeof(NodeType);
  for (const std::string& name : type_names_) u.type_bytes += name.size();
  u.run_table_bytes = (out_runs_.size() + in_runs_.size()) * sizeof(PageRunRef);
  u.adjacency_inline_bytes = inline_edges_.size() * sizeof(Edge);
  u.resident_bytes = u.total_bytes();
  // Paged adjacency lives in the store's pages, except the inlined
  // short runs, which the Graph keeps in RAM.
  if (paged()) {
    u.resident_bytes -= u.adjacency_bytes() - u.adjacency_inline_bytes;
  }
  return u;
}

NodeId GraphBuilder::AddNode(NodeType type) {
  NodeId id = static_cast<NodeId>(num_nodes_++);
  if (type != kUntypedNode) any_typed_ = true;
  node_types_.push_back(type);
  return id;
}

NodeId GraphBuilder::AddNodes(size_t count, NodeType type) {
  NodeId first = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  if (type != kUntypedNode) any_typed_ = true;
  node_types_.insert(node_types_.end(), count, type);
  return first;
}

NodeType GraphBuilder::InternType(const std::string& name) {
  for (size_t i = 0; i < type_names_.size(); ++i) {
    if (type_names_[i] == name) return static_cast<NodeType>(i);
  }
  type_names_.push_back(name);
  return static_cast<NodeType>(type_names_.size() - 1);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  assert(u < num_nodes_ && v < num_nodes_);
  assert(weight > 0);
  edges_.push_back(RawEdge{u, v, static_cast<float>(weight)});
}

Graph GraphBuilder::Build(const GraphBuildOptions& options) {
  Graph g;
  const size_t n = num_nodes_;

  // Forward in-degrees drive the backward-edge weights (§2.3).
  g.fwd_indegree_.assign(n, 0);
  for (const RawEdge& e : edges_) g.fwd_indegree_[e.v]++;

  // Materialize the combined directed edge list.
  struct Directed {
    NodeId u, v;
    float weight;
    EdgeDir dir;
  };
  std::vector<Directed> combined;
  combined.reserve(edges_.size() * (options.add_backward_edges ? 2 : 1));
  for (const RawEdge& e : edges_) {
    combined.push_back({e.u, e.v, e.weight, EdgeDir::kForward});
  }
  if (options.add_backward_edges) {
    for (const RawEdge& e : edges_) {
      double w = e.weight * std::log2(1.0 + g.fwd_indegree_[e.v]);
      w = std::max(w, options.min_backward_weight);
      combined.push_back(
          {e.v, e.u, static_cast<float>(w), EdgeDir::kBackward});
    }
  }

  // Canonical adjacency order: by source, then target, then provenance,
  // then weight. Makes graphs value-identical regardless of the order
  // edges were added (and after serialization round-trips).
  std::sort(combined.begin(), combined.end(),
            [](const Directed& a, const Directed& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              if (a.dir != b.dir) return a.dir < b.dir;
              return a.weight < b.weight;
            });

  // Counting-sort style CSR construction for both directions.
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const Directed& e : combined) {
    g.out_offsets_[e.u + 1]++;
    g.in_offsets_[e.v + 1]++;
  }
  for (size_t i = 0; i < n; ++i) {
    g.out_offsets_[i + 1] += g.out_offsets_[i];
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  }
  g.out_edges_.resize(combined.size());
  g.in_edges_.resize(combined.size());
  {
    std::vector<size_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
    std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const Directed& e : combined) {
      g.out_edges_[out_cursor[e.u]++] = Edge{e.v, e.weight, e.dir};
      g.in_edges_[in_cursor[e.v]++] = Edge{e.u, e.weight, e.dir};
    }
  }

  g.in_inv_weight_sum_.assign(n, 0.0);
  g.out_inv_weight_sum_.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.InEdges(v)) {
      g.in_inv_weight_sum_[v] += 1.0 / e.weight;
    }
    for (const Edge& e : g.OutEdges(v)) {
      g.out_inv_weight_sum_[v] += 1.0 / e.weight;
    }
  }

  if (!g.out_edges_.empty()) {
    g.min_edge_weight_ = g.out_edges_.front().weight;
    for (const Edge& e : g.out_edges_) {
      g.min_edge_weight_ = std::min<double>(g.min_edge_weight_, e.weight);
    }
  }

  if (any_typed_) g.node_types_ = std::move(node_types_);
  g.type_names_ = std::move(type_names_);

  num_nodes_ = 0;
  edges_.clear();
  node_types_.clear();
  type_names_.clear();
  any_typed_ = false;
  return g;
}

}  // namespace banks
