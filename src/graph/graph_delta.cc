#include "graph/graph_delta.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "storage/buffer_pool.h"

namespace banks {
namespace {

// Canonical within-run order: GraphBuilder::Build sorts the combined
// edge list by (u, v, dir, weight) and counting-sorts into both CSR
// directions, so restricted to one node's run — out or in — the order
// is (other, dir, weight). Rebuilt runs sort with the same comparator
// to stay value-identical to a fresh build.
bool RunLess(const Edge& a, const Edge& b) {
  if (a.other != b.other) return a.other < b.other;
  if (a.dir != b.dir) return a.dir < b.dir;
  return a.weight < b.weight;
}

// Forward edges incident to one endpoint, accumulated from the batch.
using EndpointEdges =
    std::unordered_map<NodeId, std::vector<std::pair<NodeId, float>>>;

}  // namespace

Graph ApplyGraphDelta(std::shared_ptr<const Graph> base,
                      const GraphDelta& delta,
                      const GraphBuildOptions& options) {
  assert(base != nullptr);
  const Graph& prev = *base;
  const size_t n_old = prev.num_nodes();
  const size_t n = n_old + delta.new_node_types.size();

  Graph g;
  // Flatten: the overlay points at the ultimate non-overlay graph, so a
  // read is at most one delegation deep at any epoch. The predecessor's
  // delta storage is copied below, which keeps runs rebuilt at earlier
  // epochs resolvable without chaining through it.
  g.base_ = prev.base_ != nullptr ? prev.base_ : base;

  // ---- Per-node scalars: copy, extend, then patch the changed ones ----
  g.fwd_indegree_ = prev.fwd_indegree_;
  g.fwd_indegree_.resize(n, 0);
  for (const GraphDelta::NewEdge& e : delta.new_edges) {
    assert(e.u < n && e.v < n);
    assert(e.weight > 0);
    g.fwd_indegree_[e.v]++;
  }
  g.in_inv_weight_sum_ = prev.in_inv_weight_sum_;
  g.in_inv_weight_sum_.resize(n, 0.0);
  g.out_inv_weight_sum_ = prev.out_inv_weight_sum_;
  g.out_inv_weight_sum_.resize(n, 0.0);
  g.type_names_ = prev.type_names_;
  g.type_names_.insert(g.type_names_.end(), delta.new_type_names.begin(),
                       delta.new_type_names.end());
  // Same materialization rule as GraphBuilder: the types array exists
  // only once any node is typed (Graph::Type reads kUntypedNode from an
  // empty array either way).
  bool any_typed = !prev.node_types_.empty();
  for (NodeType t : delta.new_node_types) {
    any_typed = any_typed || t != kUntypedNode;
  }
  if (any_typed) {
    g.node_types_.assign(n, kUntypedNode);
    for (NodeId v = 0; v < n_old; ++v) g.node_types_[v] = prev.Type(v);
    for (size_t i = 0; i < delta.new_node_types.size(); ++i) {
      g.node_types_[n_old + i] = delta.new_node_types[i];
    }
  }

  // ---- Delta run storage, carried over from the predecessor ----
  if (prev.base_ != nullptr) {
    g.delta_out_edges_ = prev.delta_out_edges_;
    g.delta_in_edges_ = prev.delta_in_edges_;
    g.delta_out_start_ = prev.delta_out_start_;
    g.delta_in_start_ = prev.delta_in_start_;
  } else {
    g.delta_out_start_.assign(n_old, Graph::kNoDeltaRun);
    g.delta_in_start_.assign(n_old, Graph::kNoDeltaRun);
  }
  g.delta_out_start_.resize(n, Graph::kNoDeltaRun);
  g.delta_in_start_.resize(n, Graph::kNoDeltaRun);

  // ---- Which runs change ----
  // Out runs: new-edge sources gain a forward out-edge; with derived
  // backward edges, new-edge targets gain a backward out-edge AND their
  // existing backward out-edges reweight (the weight carries
  // log2(1 + indegree(target)), which just changed).
  // In runs: new-edge targets gain a forward in-edge; new-edge sources
  // gain a backward in-edge; and every forward *predecessor* u of a
  // target v holds the backward edge v→u in its in run, whose weight
  // also carries v's changed in-degree.
  std::vector<uint8_t> rebuild_out(n, 0);
  std::vector<uint8_t> rebuild_in(n, 0);
  EndpointEdges new_out;  // u -> (v, w) forward edges leaving u
  EndpointEdges new_in;   // v -> (u, w) forward edges entering v
  std::vector<NodeId> indeg_changed;
  for (const GraphDelta::NewEdge& e : delta.new_edges) {
    // Float-cast first: GraphBuilder::AddEdge stores float weights, and
    // every derived quantity (backward weights, inverse-weight sums,
    // MinEdgeWeight) must start from the identical float value.
    const float wf = static_cast<float>(e.weight);
    new_out[e.u].emplace_back(e.v, wf);
    new_in[e.v].emplace_back(e.u, wf);
    rebuild_out[e.u] = 1;
    rebuild_in[e.v] = 1;
    if (options.add_backward_edges) {
      rebuild_out[e.v] = 1;
      rebuild_in[e.u] = 1;
      indeg_changed.push_back(e.v);
    }
  }
  if (options.add_backward_edges) {
    std::sort(indeg_changed.begin(), indeg_changed.end());
    indeg_changed.erase(
        std::unique(indeg_changed.begin(), indeg_changed.end()),
        indeg_changed.end());
    for (NodeId v : indeg_changed) {
      if (v >= n_old) continue;  // a brand-new node has no predecessors yet
      PagePin pin;
      for (const Edge& e : prev.InEdges(v, &pin)) {
        if (e.dir == EdgeDir::kForward) rebuild_in[e.other] = 1;
      }
      assert(!pin.failed());  // writer path: IO failure corrupts the epoch
    }
  }

  // ---- Rebuild each changed run in canonical order ----
  // A run is rebuilt from scratch out of the *effective* state: the
  // predecessor's forward edges (read mode-agnostically — base CSR,
  // paged pages, or an earlier overlay's delta run) plus this batch's,
  // with every backward weight recomputed from the new in-degrees
  // exactly the way Build computes it (double math over float inputs,
  // then one float cast).
  const auto backward_weight = [&](NodeId target, float wf) {
    double w = static_cast<double>(wf) *
               std::log2(1.0 + g.fwd_indegree_[target]);
    w = std::max(w, options.min_backward_weight);
    return static_cast<float>(w);
  };
  std::vector<size_t> out_run_len(n, 0);
  std::vector<size_t> in_run_len(n, 0);
  std::vector<Edge> run;
  for (NodeId v = 0; v < n; ++v) {
    if (rebuild_out[v]) {
      run.clear();
      if (v < n_old) {
        PagePin pin;
        for (const Edge& e : prev.OutEdges(v, &pin)) {
          if (e.dir == EdgeDir::kForward) run.push_back(e);
        }
        assert(!pin.failed());
      }
      if (auto it = new_out.find(v); it != new_out.end()) {
        for (const auto& [t, wf] : it->second) {
          run.push_back(Edge{t, wf, EdgeDir::kForward});
        }
      }
      if (options.add_backward_edges) {
        // Backward out-edges of v mirror the forward edges *into* v,
        // weighted by v's (new) in-degree.
        if (v < n_old) {
          PagePin pin;
          for (const Edge& e : prev.InEdges(v, &pin)) {
            if (e.dir == EdgeDir::kForward) {
              run.push_back(
                  Edge{e.other, backward_weight(v, e.weight),
                       EdgeDir::kBackward});
            }
          }
          assert(!pin.failed());
        }
        if (auto it = new_in.find(v); it != new_in.end()) {
          for (const auto& [s, wf] : it->second) {
            run.push_back(Edge{s, backward_weight(v, wf),
                               EdgeDir::kBackward});
          }
        }
      }
      std::sort(run.begin(), run.end(), RunLess);
      assert(g.delta_out_edges_.size() + run.size() <= Graph::kNoDeltaRun);
      g.delta_out_start_[v] =
          static_cast<uint32_t>(g.delta_out_edges_.size());
      g.delta_out_edges_.insert(g.delta_out_edges_.end(), run.begin(),
                                run.end());
      out_run_len[v] = run.size();
      // Recompute the spreading normalizer in run order, matching
      // Build's CSR-order float accumulation bit-for-bit.
      double sum = 0.0;
      for (const Edge& e : run) sum += 1.0 / e.weight;
      g.out_inv_weight_sum_[v] = sum;
    }
    if (rebuild_in[v]) {
      run.clear();
      if (v < n_old) {
        PagePin pin;
        for (const Edge& e : prev.InEdges(v, &pin)) {
          if (e.dir == EdgeDir::kForward) run.push_back(e);
        }
        assert(!pin.failed());
      }
      if (auto it = new_in.find(v); it != new_in.end()) {
        for (const auto& [s, wf] : it->second) {
          run.push_back(Edge{s, wf, EdgeDir::kForward});
        }
      }
      if (options.add_backward_edges) {
        // Backward in-edges of v mirror the forward edges *leaving* v
        // (y→v derived from v→y), weighted by each target y's new
        // in-degree.
        if (v < n_old) {
          PagePin pin;
          for (const Edge& e : prev.OutEdges(v, &pin)) {
            if (e.dir == EdgeDir::kForward) {
              run.push_back(
                  Edge{e.other, backward_weight(e.other, e.weight),
                       EdgeDir::kBackward});
            }
          }
          assert(!pin.failed());
        }
        if (auto it = new_out.find(v); it != new_out.end()) {
          for (const auto& [t, wf] : it->second) {
            run.push_back(Edge{t, backward_weight(t, wf),
                               EdgeDir::kBackward});
          }
        }
      }
      std::sort(run.begin(), run.end(), RunLess);
      assert(g.delta_in_edges_.size() + run.size() <= Graph::kNoDeltaRun);
      g.delta_in_start_[v] = static_cast<uint32_t>(g.delta_in_edges_.size());
      g.delta_in_edges_.insert(g.delta_in_edges_.end(), run.begin(),
                               run.end());
      in_run_len[v] = run.size();
      double sum = 0.0;
      for (const Edge& e : run) sum += 1.0 / e.weight;
      g.in_inv_weight_sum_[v] = sum;
    }
  }

  // ---- Effective-degree offsets ----
  // The overlay's offset arrays serve num_nodes/num_edges/Degree and
  // the delta-run lengths; they are never used to index the base CSR.
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const size_t od =
        rebuild_out[v] ? out_run_len[v] : (v < n_old ? prev.OutDegree(v) : 0);
    const size_t id =
        rebuild_in[v] ? in_run_len[v] : (v < n_old ? prev.InDegree(v) : 0);
    g.out_offsets_[v + 1] = g.out_offsets_[v] + od;
    g.in_offsets_[v + 1] = g.in_offsets_[v] + id;
  }

  // ---- MinEdgeWeight, incrementally ----
  // Every derived backward weight is >= its forward counterpart
  // (log2(1 + indegree) >= 1 for indegree >= 1, and the floor only
  // raises), so the combined minimum is the minimum over forward
  // weights — which inserts can only lower, never raise (in-degree
  // growth reweights backward edges upward only).
  double m = prev.num_edges() > 0 ? prev.MinEdgeWeight()
                                  : std::numeric_limits<double>::infinity();
  for (const GraphDelta::NewEdge& e : delta.new_edges) {
    m = std::min(m, static_cast<double>(static_cast<float>(e.weight)));
  }
  g.min_edge_weight_ = std::isinf(m) ? 1.0 : m;

  return g;
}

}  // namespace banks
