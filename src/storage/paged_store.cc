#include "storage/paged_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "util/serialize.h"

namespace banks {
namespace {

constexpr uint64_t kPagedMagic = 0x42414E4B53503101ULL;  // "BANKSP1\x01"
constexpr uint32_t kPagedVersion = 2;

/// Greedy first-fit packer: runs are appended to the current open page
/// until it would overflow, oversized runs get a dedicated page. Pages
/// keep their creation order, which is what makes the layout (the node
/// order the caller feeds runs in) the physical clustering.
class PagePacker {
 public:
  explicit PagePacker(uint32_t page_size) : page_size_(page_size) {}

  PageRunRef Place(const void* src, size_t bytes) {
    if (bytes == 0) return {};
    const std::byte* p = static_cast<const std::byte*>(src);
    if (bytes >= page_size_) {
      pages_.emplace_back(p, p + bytes);
      return {static_cast<PageId>(pages_.size() - 1), 0};
    }
    if (cur_ == SIZE_MAX || pages_[cur_].size() + bytes > page_size_) {
      pages_.emplace_back();
      pages_.back().reserve(page_size_);
      cur_ = pages_.size() - 1;
    }
    PageRunRef ref{static_cast<PageId>(cur_),
                   static_cast<uint32_t>(pages_[cur_].size())};
    pages_[cur_].insert(pages_[cur_].end(), p, p + bytes);
    return ref;
  }

  const std::vector<std::vector<std::byte>>& pages() const { return pages_; }

 private:
  uint32_t page_size_;
  std::vector<std::vector<std::byte>> pages_;
  size_t cur_ = SIZE_MAX;
};

void WriteRunRef(std::ostream& os, PageRunRef ref) {
  WritePod<uint32_t>(os, ref.page);
  WritePod<uint32_t>(os, ref.offset);
}

bool ReadRunRef(std::istream& is, PageRunRef* ref) {
  return ReadPod(is, &ref->page) && ReadPod(is, &ref->offset);
}

}  // namespace

bool PagedStore::Save(const DataGraph& dg, const std::vector<double>& prestige,
                      const std::string& path,
                      const PagedStoreOptions& options) {
  const Graph& g = dg.graph;
  const InvertedIndex& ix = dg.index;
  assert(!g.paged() && !ix.paged());
  assert(prestige.empty() || prestige.size() == g.num_nodes());
  const size_t n = g.num_nodes();

  // Runs of at most inline_run_bytes stay resident (kInlinePage refs
  // into an Edge array the loader keeps in the Graph); only heavier
  // runs are paged, so the layout below only decides where heavy runs
  // land.
  const size_t inline_cap = options.inline_run_bytes;

  // Physical node order. The clustered layout is the Dijkstra settle
  // order of a multi-source shortest-path sweep seeded from the nodes in
  // descending prestige. Distance uses the same edge weights the
  // searchers expand by, so settle order is exactly the order an
  // activation wavefront radiating from a high-prestige region reaches
  // nodes: the hub-dense core every expansion revisits heads the file,
  // and nodes a search touches back-to-back (equidistant from the hubs
  // it is expanding around) sit in adjacent pages. A plain BFS
  // approximates this but hop count is a poor proxy for weighted
  // distance here — backward edges into hubs carry log-indegree weights,
  // so one hop can cross the whole activation scale; replayed access
  // traces showed the weighted sweep consistently out-hitting both BFS
  // and raw prestige order.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  if (options.layout == PageLayout::kClustered && !prestige.empty()) {
    std::vector<NodeId> by_prestige = order;
    std::stable_sort(by_prestige.begin(), by_prestige.end(),
                     [&](NodeId a, NodeId b) {
                       if (prestige[a] != prestige[b]) {
                         return prestige[a] > prestige[b];
                       }
                       return a < b;
                     });
    order.clear();
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<char> settled(n, 0);
    using QueueEntry = std::pair<double, NodeId>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        frontier;
    for (NodeId s : by_prestige) {
      // Each still-unreached prestige rank opens a new component (or a
      // region the previous sweeps priced out); distance restarts at 0.
      if (settled[s]) continue;
      if (std::isinf(dist[s])) {
        dist[s] = 0;
        frontier.push({0, s});
      }
      while (!frontier.empty()) {
        const auto [d, v] = frontier.top();
        frontier.pop();
        if (settled[v]) continue;
        settled[v] = 1;
        order.push_back(v);
        const auto relax = [&](const Edge& e) {
          const double nd = d + e.weight;
          if (nd < dist[e.other]) {
            dist[e.other] = nd;
            frontier.push({nd, e.other});
          }
        };
        for (size_t i = g.out_offsets_[v]; i < g.out_offsets_[v + 1]; ++i) {
          relax(g.out_edges_[i]);
        }
        for (size_t i = g.in_offsets_[v]; i < g.in_offsets_[v + 1]; ++i) {
          relax(g.in_edges_[i]);
        }
      }
    }
  }

  // Pack adjacency runs: a node's out-run and in-run ride together —
  // bidirectional search touches both directions of the same frontier
  // node, so co-locating them halves its page working set.
  PagePacker packer(options.page_size);
  std::vector<Edge> inline_edges;
  auto place_run = [&](const Edge* src, size_t count) -> PageRunRef {
    const size_t bytes = count * sizeof(Edge);
    if (bytes == 0) return {};
    if (bytes <= inline_cap) {
      PageRunRef ref{kInlinePage, static_cast<uint32_t>(inline_edges.size())};
      inline_edges.insert(inline_edges.end(), src, src + count);
      return ref;
    }
    return packer.Place(src, bytes);
  };
  std::vector<PageRunRef> out_runs(n), in_runs(n);
  for (NodeId v : order) {
    out_runs[v] = place_run(g.out_edges_.data() + g.out_offsets_[v],
                            g.out_offsets_[v + 1] - g.out_offsets_[v]);
    in_runs[v] = place_run(g.in_edges_.data() + g.in_offsets_[v],
                           g.in_offsets_[v + 1] - g.in_offsets_[v]);
  }

  // Posting lists, packed in sorted-term order (the deterministic
  // enumeration the loader re-reads them in).
  const auto terms = ix.SortedTerms();
  std::vector<std::pair<PageRunRef, uint64_t>> posting_runs(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    std::span<const NodeId> list = ix.PostingsById(terms[i].second);
    posting_runs[i] = {packer.Place(list.data(), list.size() * sizeof(NodeId)),
                       list.size()};
  }

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  WritePod(os, kPagedMagic);
  WritePod(os, kPagedVersion);
  WritePod<uint32_t>(os, options.page_size);
  WritePod<uint8_t>(os, static_cast<uint8_t>(options.layout));
  WritePod<uint64_t>(os, n);
  WritePod<uint64_t>(os, g.num_edges());
  WritePod<double>(os, g.MinEdgeWeight());

  // Resident skeleton: CSR offsets and per-node scalar pools.
  for (size_t off : g.out_offsets_) WritePod<uint64_t>(os, off);
  for (size_t off : g.in_offsets_) WritePod<uint64_t>(os, off);
  for (uint32_t d : g.fwd_indegree_) WritePod(os, d);
  for (double s : g.in_inv_weight_sum_) WritePod(os, s);
  for (double s : g.out_inv_weight_sum_) WritePod(os, s);

  WritePod<uint8_t>(os, g.node_types_.empty() ? 0 : 1);
  for (NodeType t : g.node_types_) WritePod<uint16_t>(os, t);
  WritePod<uint32_t>(os, static_cast<uint32_t>(g.type_names_.size()));
  for (const std::string& name : g.type_names_) WriteString(os, name);

  WritePod<uint8_t>(os, prestige.empty() ? 0 : 1);
  for (double p : prestige) WritePod(os, p);

  // Resident short-run pool (kInlinePage refs index into it).
  WritePod<uint64_t>(os, inline_edges.size());
  os.write(reinterpret_cast<const char*>(inline_edges.data()),
           static_cast<std::streamsize>(inline_edges.size() * sizeof(Edge)));

  for (PageRunRef ref : out_runs) WriteRunRef(os, ref);
  for (PageRunRef ref : in_runs) WriteRunRef(os, ref);

  // Index tables (terms and relations resident; postings paged).
  WritePod<uint64_t>(os, terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    WriteString(os, terms[i].first);
    WritePod<uint64_t>(os, posting_runs[i].second);
    WriteRunRef(os, posting_runs[i].first);
  }
  const auto& relations = ix.relations();
  std::vector<std::pair<std::string, InvertedIndex::RelationRange>> rels(
      relations.begin(), relations.end());
  std::sort(rels.begin(), rels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  WritePod<uint64_t>(os, rels.size());
  for (const auto& [name, range] : rels) {
    WriteString(os, name);
    WritePod<uint32_t>(os, range.first);
    WritePod<uint64_t>(os, range.count);
  }

  // Relational extras for DataGraph round-trips.
  WritePod<uint32_t>(os, static_cast<uint32_t>(dg.table_first_node.size()));
  for (NodeId first : dg.table_first_node) WritePod<uint32_t>(os, first);
  WritePod<uint64_t>(os, dg.node_labels.size());
  for (const std::string& label : dg.node_labels) WriteString(os, label);

  // Page directory, then the page blobs.
  const auto& pages = packer.pages();
  WritePod<uint64_t>(os, pages.size());
  for (const auto& page : pages) {
    WritePod<uint32_t>(os, static_cast<uint32_t>(page.size()));
  }
  for (const auto& page : pages) {
    os.write(reinterpret_cast<const char*>(page.data()),
             static_cast<std::streamsize>(page.size()));
  }
  return static_cast<bool>(os);
}

std::optional<PagedData> PagedStore::Open(const std::string& path,
                                          const PagedOpenOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;

  uint64_t magic;
  uint32_t version;
  if (!ReadPod(is, &magic) || magic != kPagedMagic) return std::nullopt;
  if (!ReadPod(is, &version) || version != kPagedVersion) return std::nullopt;

  std::shared_ptr<PagedStore> store(new PagedStore());
  uint8_t layout;
  uint64_t n, m;
  double min_weight;
  if (!ReadPod(is, &store->page_size_) || !ReadPod(is, &layout) ||
      !ReadPod(is, &n) || !ReadPod(is, &m) || !ReadPod(is, &min_weight)) {
    return std::nullopt;
  }
  if (n > UINT32_MAX) return std::nullopt;
  store->layout_ = static_cast<PageLayout>(layout);

  PagedData pd;
  Graph& g = pd.data.graph;
  auto read_u64s = [&](std::vector<size_t>* out, size_t count) {
    out->resize(count);
    for (auto& v : *out) {
      uint64_t x;
      if (!ReadPod(is, &x)) return false;
      v = static_cast<size_t>(x);
    }
    return true;
  };
  if (!read_u64s(&g.out_offsets_, n + 1)) return std::nullopt;
  if (!read_u64s(&g.in_offsets_, n + 1)) return std::nullopt;
  g.fwd_indegree_.resize(n);
  for (auto& d : g.fwd_indegree_) {
    if (!ReadPod(is, &d)) return std::nullopt;
  }
  g.in_inv_weight_sum_.resize(n);
  for (auto& s : g.in_inv_weight_sum_) {
    if (!ReadPod(is, &s)) return std::nullopt;
  }
  g.out_inv_weight_sum_.resize(n);
  for (auto& s : g.out_inv_weight_sum_) {
    if (!ReadPod(is, &s)) return std::nullopt;
  }
  g.min_edge_weight_ = min_weight;

  uint8_t has_types;
  if (!ReadPod(is, &has_types)) return std::nullopt;
  if (has_types) {
    g.node_types_.resize(n);
    for (auto& t : g.node_types_) {
      if (!ReadPod(is, &t)) return std::nullopt;
    }
  }
  uint32_t num_type_names;
  if (!ReadPod(is, &num_type_names)) return std::nullopt;
  g.type_names_.resize(num_type_names);
  for (auto& name : g.type_names_) {
    if (!ReadString(is, &name)) return std::nullopt;
  }

  uint8_t has_prestige;
  if (!ReadPod(is, &has_prestige)) return std::nullopt;
  if (has_prestige) {
    store->prestige_.resize(n);
    for (auto& p : store->prestige_) {
      if (!ReadPod(is, &p)) return std::nullopt;
    }
  }

  uint64_t num_inline_edges;
  if (!ReadPod(is, &num_inline_edges)) return std::nullopt;
  g.inline_edges_.resize(num_inline_edges);
  if (num_inline_edges > 0 &&
      !is.read(reinterpret_cast<char*>(g.inline_edges_.data()),
               static_cast<std::streamsize>(num_inline_edges * sizeof(Edge)))) {
    return std::nullopt;
  }

  g.out_runs_.resize(n);
  for (auto& ref : g.out_runs_) {
    if (!ReadRunRef(is, &ref)) return std::nullopt;
  }
  g.in_runs_.resize(n);
  for (auto& ref : g.in_runs_) {
    if (!ReadRunRef(is, &ref)) return std::nullopt;
  }

  InvertedIndex& ix = pd.data.index;
  uint64_t num_terms;
  if (!ReadPod(is, &num_terms)) return std::nullopt;
  ix.posting_runs_.resize(num_terms);
  for (uint64_t i = 0; i < num_terms; ++i) {
    std::string term;
    if (!ReadString(is, &term)) return std::nullopt;
    auto& run = ix.posting_runs_[i];
    if (!ReadPod(is, &run.count) || !ReadRunRef(is, &run.ref)) {
      return std::nullopt;
    }
    ix.term_ids_.emplace(std::move(term), static_cast<uint32_t>(i));
  }
  uint64_t num_relations;
  if (!ReadPod(is, &num_relations)) return std::nullopt;
  for (uint64_t i = 0; i < num_relations; ++i) {
    std::string name;
    InvertedIndex::RelationRange range;
    uint64_t count;
    if (!ReadString(is, &name) || !ReadPod(is, &range.first) ||
        !ReadPod(is, &count)) {
      return std::nullopt;
    }
    range.count = static_cast<size_t>(count);
    ix.relations_.emplace(std::move(name), range);
  }
  ix.frozen_ = true;

  uint32_t num_tables;
  if (!ReadPod(is, &num_tables)) return std::nullopt;
  pd.data.table_first_node.resize(num_tables);
  for (auto& first : pd.data.table_first_node) {
    if (!ReadPod(is, &first)) return std::nullopt;
  }
  uint64_t num_labels;
  if (!ReadPod(is, &num_labels)) return std::nullopt;
  pd.data.node_labels.resize(num_labels);
  for (auto& label : pd.data.node_labels) {
    if (!ReadString(is, &label)) return std::nullopt;
  }

  uint64_t num_pages;
  if (!ReadPod(is, &num_pages)) return std::nullopt;
  store->page_lengths_.resize(num_pages);
  store->page_offsets_.resize(num_pages);
  uint64_t offset = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    if (!ReadPod(is, &store->page_lengths_[i])) return std::nullopt;
    store->page_offsets_[i] = offset;
    offset += store->page_lengths_[i];
  }
  store->data_start_ = static_cast<uint64_t>(is.tellg());
  is.close();

  store->fd_ = ::open(path.c_str(), O_RDONLY);
  if (store->fd_ < 0) return std::nullopt;
  store->pool_ = std::make_unique<BufferPool>(
      store.get(), BufferPoolOptions{options.pool_bytes, options.policy});

  g.store_ = store;
  ix.store_ = store;
  pd.store = std::move(store);
  return pd;
}

PagedStore::~PagedStore() {
  pool_.reset();  // joins the fetch thread before the fd goes away
  if (fd_ >= 0) ::close(fd_);
}

size_t PagedStore::DataBytes() const {
  size_t total = 0;
  for (uint32_t len : page_lengths_) total += len;
  return total;
}

bool PagedStore::ReadPage(PageId page, std::byte* out) const {
  size_t remaining = page_lengths_[page];
  uint64_t pos = data_start_ + page_offsets_[page];
  char* dst = reinterpret_cast<char*>(out);
  while (remaining > 0) {
    ssize_t got = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      // Truncated or unreadable file: report the failure instead of
      // zero-filling — a zeroed page would fabricate empty adjacency
      // and searches would silently return wrong answers. The buffer
      // pool fails the pins waiting on this read and the searcher
      // surfaces SearchStatus::kIoError.
      return false;
    }
    dst += got;
    pos += static_cast<uint64_t>(got);
    remaining -= static_cast<size_t>(got);
  }
  return true;
}

}  // namespace banks
