#ifndef BANKS_STORAGE_PAGED_STORE_H_
#define BANKS_STORAGE_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/graph_builder.h"
#include "storage/buffer_pool.h"

namespace banks {

/// Physical page-assignment order for adjacency runs (docs/STORAGE.md).
enum class PageLayout : uint8_t {
  /// Runs packed in NodeId order — the naive baseline.
  kNodeOrder = 0,
  /// Runs packed in the settle order of a multi-source Dijkstra sweep
  /// seeded from the nodes in descending prestige (PageRank), using the
  /// same edge weights the searches expand by. The hub-dense region
  /// every activation-directed expansion revisits shares the leading
  /// pages, and nodes an expansion touches back-to-back (equidistant
  /// from the hubs) share pages. Byte-identical results either way:
  /// only the physical placement changes, never the logical CSR order.
  kClustered = 1,
};

struct PagedStoreOptions {
  /// Target page size in bytes. Runs never span pages; a run larger
  /// than this gets a dedicated oversized page.
  uint32_t page_size = 16u << 10;
  /// Adjacency runs of at most this many bytes stay in the resident
  /// skeleton (kInlinePage refs) instead of being paged. A short run
  /// costs less to keep in RAM than the per-node run locator that
  /// points at it, while paging it would spend a pin — and a possible
  /// fault — to read a few dozen bytes. Paging only the heavy hub runs
  /// is also what keeps the buffer pool's working set small: the long
  /// tail of one-touch accesses that would otherwise cycle the pool
  /// never reaches it. 0 pages every run. Posting lists are always
  /// paged regardless (they are read once per query, not per node).
  uint32_t inline_run_bytes = 256;
  PageLayout layout = PageLayout::kClustered;
};

struct PagedOpenOptions {
  /// Buffer pool budget for resident pages (see BufferPoolOptions).
  size_t pool_bytes = 4u << 20;
  EvictionPolicy policy = EvictionPolicy::kLRU;
};

class PagedStore;

/// Result of PagedStore::Open: a DataGraph whose Graph adjacency and
/// InvertedIndex postings read through the store's buffer pool. The
/// graph and index share ownership of the store; `store` is a
/// convenience handle for pool stats.
struct PagedData {
  DataGraph data;
  std::shared_ptr<PagedStore> store;
};

/// One paged on-disk data graph: serialized resident skeleton (CSR
/// offsets, per-node scalars, term/relation tables, labels, prestige)
/// plus fixed-size pages holding the adjacency and posting runs, read
/// on demand through an embedded BufferPool. Format in docs/STORAGE.md.
class PagedStore : public PageSource {
 public:
  /// Serializes `dg` (which must be resident) into a paged file.
  /// `prestige` orders the kClustered layout and is stored in the file
  /// so opening never needs a PageRank pass over paged adjacency; pass
  /// empty to skip both (clustered falls back to node order).
  static bool Save(const DataGraph& dg, const std::vector<double>& prestige,
                   const std::string& path,
                   const PagedStoreOptions& options = {});

  static std::optional<PagedData> Open(const std::string& path,
                                       const PagedOpenOptions& options = {});

  ~PagedStore() override;
  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  BufferPool& pool() const { return *pool_; }
  uint32_t page_size() const { return page_size_; }
  PageLayout layout() const { return layout_; }
  /// Prestige scores stored at Save time (empty if none were given).
  const std::vector<double>& prestige() const { return prestige_; }
  /// Total bytes across all pages — the paged "working set ceiling"
  /// benchmarks size pools against.
  size_t DataBytes() const;

  // PageSource:
  size_t NumPages() const override { return page_lengths_.size(); }
  uint32_t PageLength(PageId page) const override {
    return page_lengths_[page];
  }
  bool ReadPage(PageId page, std::byte* out) const override;

 private:
  PagedStore() = default;

  int fd_ = -1;
  uint32_t page_size_ = 0;
  PageLayout layout_ = PageLayout::kNodeOrder;
  uint64_t data_start_ = 0;            // file offset of the first page
  std::vector<uint64_t> page_offsets_;  // per page, relative to data_start_
  std::vector<uint32_t> page_lengths_;
  std::vector<double> prestige_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace banks

#endif  // BANKS_STORAGE_PAGED_STORE_H_
