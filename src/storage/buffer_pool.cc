#include "storage/buffer_pool.h"

#include <cassert>
#include <limits>
#include <utility>

namespace banks {

PagePin& PagePin::operator=(PagePin&& o) noexcept {
  if (this != &o) {
    Reset();
    pool_ = o.pool_;
    frame_ = o.frame_;
    page_ = o.page_;
    data_ = o.data_;
    hit_ = o.hit_;
    failed_ = o.failed_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.failed_ = false;
  }
  return *this;
}

void PagePin::Reset() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
  pool_ = nullptr;
  data_ = nullptr;
  failed_ = false;
}

BufferPool::BufferPool(const PageSource* source,
                       const BufferPoolOptions& options)
    : source_(source), options_(options) {
  fetch_thread_ = std::thread([this] { FetchLoop(); });
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // All pins must be gone before the pool dies; a live PagePin would
    // dangle. Loads in flight on the fetch thread finish below.
    for ([[maybe_unused]] const Frame& f : frames_) {
      assert(f.pins == 0 && !f.dirty);
    }
  }
  fetch_cv_.notify_all();
  if (fetch_thread_.joinable()) fetch_thread_.join();
}

size_t BufferPool::AcquireFrameLocked(size_t bytes) {
  // Make room: evict unpinned resident pages in policy order until the
  // new page fits, or nothing evictable remains. Pools are small (tens
  // to hundreds of frames), so a linear stamp scan beats maintaining an
  // intrusive list.
  while (resident_bytes_ + bytes > options_.capacity_bytes) {
    size_t victim = frames_.size();
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < frames_.size(); ++i) {
      const Frame& f = frames_[i];
      if (f.data.empty() || f.pins > 0 || f.loading) continue;
      if (f.stamp < best) {
        best = f.stamp;
        victim = i;
      }
    }
    if (victim == frames_.size()) {
      // Everything resident is pinned or loading: overshoot the budget
      // instead of deadlocking. This is what keeps a pathologically
      // small pool correct (just slow).
      ++counters_.capacity_overshoots;
      break;
    }
    Frame& v = frames_[victim];
    assert(!v.dirty);  // read-only store: eviction never writes back
    table_.erase(v.page);
    FreeFrameLocked(victim);
    ++counters_.evictions;
  }

  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    idx = frames_.size();
    frames_.emplace_back();
  }
  Frame& f = frames_[idx];
  f.pins = 0;
  f.loading = false;
  f.dirty = false;
  f.failed = false;
  f.stamp = next_stamp_++;
  f.data.assign(bytes, std::byte{0});
  resident_bytes_ += bytes;
  return idx;
}

void BufferPool::FreeFrameLocked(size_t frame) {
  Frame& f = frames_[frame];
  resident_bytes_ -= f.data.size();
  std::vector<std::byte>().swap(f.data);
  f.waiters.clear();
  f.failed = false;
  f.loading = false;
  free_frames_.push_back(frame);
}

const std::byte* BufferPool::Pin(PageId page, PagePin* pin) {
  std::vector<std::shared_ptr<PageFetchListener>> ready;
  const std::byte* data = nullptr;
  bool hit = false;
  bool failed = false;
  size_t frame_idx = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = table_.find(page);
    if (it != table_.end()) {
      frame_idx = it->second;
      Frame& f = frames_[frame_idx];
      if (f.loading) {
        // Another thread (or the fetch thread) is reading this page;
        // count a miss — the page was not usable — and wait it out.
        ++counters_.misses;
        ++f.pins;  // hold the frame so the loader's result can't evict
        load_cv_.wait(lock, [&] { return !frames_[frame_idx].loading; });
      } else {
        ++counters_.hits;
        hit = true;
        ++f.pins;
      }
      Frame& loaded = frames_[frame_idx];
      if (loaded.failed) {
        // The load we waited on failed; drop our pin — the last one out
        // frees the frame (it is already out of table_, so a later Pin
        // retries the read fresh).
        failed = true;
        hit = false;
        assert(loaded.pins > 0);
        if (--loaded.pins == 0) FreeFrameLocked(frame_idx);
      } else {
        if (options_.policy == EvictionPolicy::kLRU) {
          loaded.stamp = next_stamp_++;
        }
        data = loaded.data.data();
      }
    } else {
      ++counters_.misses;
      const size_t bytes = source_->PageLength(page);
      frame_idx = AcquireFrameLocked(bytes);
      std::byte* buf;
      {
        Frame& f = frames_[frame_idx];
        f.page = page;
        f.loading = true;
        f.pins = 1;
        table_[page] = frame_idx;
        // Adopt listeners queued for this page before a frame existed.
        auto pit = pending_.find(page);
        if (pit != pending_.end()) {
          f.waiters = std::move(pit->second);
          pending_.erase(pit);
        }
        buf = f.data.data();
      }
      // frames_ may reallocate while unlocked (another thread growing
      // the pool), so re-index the frame after re-locking; the heap
      // buffer itself is stable.
      lock.unlock();
      const bool ok = source_->ReadPage(page, buf);
      lock.lock();
      Frame& f = frames_[frame_idx];
      f.loading = false;
      ready = std::move(f.waiters);
      f.waiters.clear();
      if (!ok) {
        // Never serve fabricated bytes: fail every pin attached to this
        // load and take the page out of the table so the next Pin
        // retries (transient errors recover). Waiters that pinned
        // mid-load see `failed` when they wake; the last pin out frees
        // the frame. Async listeners still get their OnPageReady — the
        // fetch protocol owes exactly one per OnFetchQueued — and the
        // requeued task's next probe/pin rediscovers the error.
        failed = true;
        f.failed = true;
        ++counters_.io_errors;
        table_.erase(page);
        if (--f.pins == 0) FreeFrameLocked(frame_idx);
      } else {
        data = f.data.data();
      }
      load_cv_.notify_all();
    }
  }
  // Fire async listeners outside the pool lock (they take scheduler
  // locks of their own).
  for (const auto& l : ready) l->OnPageReady(page);

  pin->Reset();
  if (failed) {
    // No frame held: pool_ stays null so Reset/destruction is a no-op.
    pin->page_ = page;
    pin->hit_ = false;
    pin->failed_ = true;
    return nullptr;
  }
  pin->pool_ = this;
  pin->frame_ = frame_idx;
  pin->page_ = page;
  pin->data_ = data;
  pin->hit_ = hit;
  return data;
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  assert(f.pins > 0);
  --f.pins;
}

bool BufferPool::Resident(PageId page) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(page);
  return it != table_.end() && !frames_[it->second].loading;
}

void BufferPool::RequestFetch(PageId page,
                              std::shared_ptr<PageFetchListener> listener) {
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(page);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        f.waiters.push_back(std::move(listener));
      } else {
        fire_now = true;  // already resident: complete inline, unlocked
      }
    } else {
      ++counters_.fetch_requests;
      auto& waiters = pending_[page];
      if (waiters.empty()) fetch_queue_.push_back(page);
      waiters.push_back(std::move(listener));
    }
  }
  if (fire_now) {
    listener->OnPageReady(page);
  } else {
    fetch_cv_.notify_one();
  }
}

void BufferPool::FetchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    fetch_cv_.wait(lock, [&] { return stopping_ || !fetch_queue_.empty(); });
    if (fetch_queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const PageId page = fetch_queue_.front();
    fetch_queue_.pop_front();

    std::vector<std::shared_ptr<PageFetchListener>> ready;
    auto it = table_.find(page);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        // A synchronous Pin is already reading this page; its completion
        // fires the waiters (including any pending_ adopted there).
        auto pit = pending_.find(page);
        if (pit != pending_.end()) {
          for (auto& l : pit->second) f.waiters.push_back(std::move(l));
          pending_.erase(pit);
        }
        continue;
      }
      // Raced with a Pin that finished the load: complete immediately.
      auto pit = pending_.find(page);
      if (pit != pending_.end()) {
        ready = std::move(pit->second);
        pending_.erase(pit);
      }
    } else {
      const size_t bytes = source_->PageLength(page);
      const size_t frame_idx = AcquireFrameLocked(bytes);
      std::byte* buf;
      {
        Frame& f = frames_[frame_idx];
        f.page = page;
        f.loading = true;
        table_[page] = frame_idx;
        auto pit = pending_.find(page);
        if (pit != pending_.end()) {
          f.waiters = std::move(pit->second);
          pending_.erase(pit);
        }
        buf = f.data.data();
      }
      lock.unlock();  // see Pin: re-index the frame after re-locking
      const bool ok = source_->ReadPage(page, buf);
      lock.lock();
      Frame& f = frames_[frame_idx];
      f.loading = false;
      ready = std::move(f.waiters);
      f.waiters.clear();
      if (!ok) {
        // Same protocol as the Pin miss path: out of the table so the
        // next Pin retries, frame freed once unpinned (synchronous Pins
        // may have attached mid-load), listeners still fired — their
        // task requeues and hits the error on its own next pin.
        ++counters_.io_errors;
        table_.erase(page);
        if (f.pins == 0) {
          FreeFrameLocked(frame_idx);
        } else {
          f.failed = true;
        }
      }
      load_cv_.notify_all();
    }
    if (!ready.empty()) {
      lock.unlock();
      for (const auto& l : ready) l->OnPageReady(page);
      lock.lock();
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats s = counters_;
  for (const Frame& f : frames_) {
    if (f.data.empty()) continue;
    ++s.resident_pages;
    s.resident_bytes += f.data.size();
    if (f.pins > 0) ++s.pinned_pages;
    if (f.dirty) ++s.dirty_pages;
  }
  return s;
}

}  // namespace banks
