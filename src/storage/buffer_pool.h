#ifndef BANKS_STORAGE_BUFFER_POOL_H_
#define BANKS_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace banks {

/// Dense page identifier within one paged store file.
using PageId = uint32_t;

/// Location of one CSR run (adjacency list or posting list) inside the
/// paged file: the page it lives on and its byte offset within that
/// page. A run never spans pages; runs larger than the page size get a
/// dedicated oversized page.
struct PageRunRef {
  PageId page = 0;
  uint32_t offset = 0;
};

/// Sentinel PageRunRef::page marking a run that is inlined into the
/// owner's resident skeleton instead of paged; `offset` then indexes
/// the owner's inline run array, and the buffer pool is never touched
/// (no pin, no hit/miss, probes always succeed).
inline constexpr PageId kInlinePage = UINT32_MAX;

/// Which resident page to evict when the pool needs room.
enum class EvictionPolicy : uint8_t {
  kLRU = 0,   // least recently pinned
  kFIFO = 1,  // least recently loaded
};

/// Read-only page source backing a BufferPool. ReadPage may be called
/// concurrently from pool clients and from the pool's fetch thread, so
/// implementations must be thread-safe (the paged store uses pread).
/// ReadPage returns false when the page could not be read in full
/// (truncated or unreadable file); the pool then fails the pins waiting
/// on it instead of serving fabricated bytes.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual size_t NumPages() const = 0;
  virtual uint32_t PageLength(PageId page) const = 0;
  virtual bool ReadPage(PageId page, std::byte* out) const = 0;
};

/// Completion callback for asynchronous page fetches. The serving
/// scheduler implements this to move a kPageWait task back to runnable;
/// see docs/STORAGE.md ("Page-wait lifecycle"). OnPageReady runs either
/// inline in RequestFetch (page already resident) or on the pool's
/// fetch thread — never with the pool lock held, so implementations may
/// take their own locks.
class PageFetchListener {
 public:
  virtual ~PageFetchListener() = default;
  /// A fetch for `page` was queued on this listener's behalf; exactly
  /// one OnPageReady(page) will follow.
  virtual void OnFetchQueued(PageId page) { (void)page; }
  virtual void OnPageReady(PageId page) = 0;
};

class BufferPool;

/// RAII pin on one page frame. While a PagePin is live the frame cannot
/// be evicted; destruction (or Reset) unpins. Movable, not copyable.
class PagePin {
 public:
  PagePin() = default;
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;
  PagePin(PagePin&& o) noexcept { *this = std::move(o); }
  PagePin& operator=(PagePin&& o) noexcept;
  ~PagePin() { Reset(); }

  void Reset();
  bool empty() const { return pool_ == nullptr; }
  /// True when the pin found the page already resident (a pool hit).
  bool hit() const { return hit_; }
  /// True when the underlying ReadPage failed: the pin holds no frame
  /// and data() is null. Searchers surface this as SearchStatus::kIoError
  /// rather than expanding fabricated empty adjacency.
  bool failed() const { return failed_; }
  PageId page() const { return page_; }
  const std::byte* data() const { return data_; }

 private:
  friend class BufferPool;
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_ = 0;
  const std::byte* data_ = nullptr;
  bool hit_ = false;
  bool failed_ = false;
};

/// Counters and gauges; Snapshot under the pool lock.
struct BufferPoolStats {
  uint64_t hits = 0;        // Pin found the page resident
  uint64_t misses = 0;      // Pin had to load (or wait for a load)
  uint64_t evictions = 0;   // resident pages dropped for room
  uint64_t fetch_requests = 0;     // async fetches queued
  uint64_t capacity_overshoots = 0;  // loads forced past capacity_bytes
  uint64_t io_errors = 0;  // ReadPage failures (truncated/unreadable file)
  size_t resident_pages = 0;
  size_t resident_bytes = 0;
  size_t pinned_pages = 0;
  size_t dirty_pages = 0;  // always 0: the store is read-only (asserted)
};

struct BufferPoolOptions {
  /// Target byte budget for resident pages. Not a hard ceiling: when
  /// every resident page is pinned the pool loads past the budget
  /// rather than deadlocking (counted in capacity_overshoots), so even
  /// a pathologically small pool stays correct.
  size_t capacity_bytes = 4u << 20;
  EvictionPolicy policy = EvictionPolicy::kLRU;
};

/// Pinned buffer pool over a PageSource. Synchronous Pin() blocks the
/// caller on a miss; RequestFetch() queues the read on the pool's fetch
/// thread and notifies a PageFetchListener, which is how a page miss
/// becomes a scheduler quantum boundary instead of a blocked worker.
///
/// Thread-safe. Pages are read-only: frames are never dirty and
/// eviction never writes back.
class BufferPool {
 public:
  BufferPool(const PageSource* source, const BufferPoolOptions& options);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `page`, loading it if needed (blocking). Returns the frame
  /// bytes; `pin` holds the frame until released. pin->hit() says
  /// whether this call was a pool hit.
  const std::byte* Pin(PageId page, PagePin* pin);

  /// True when `page` is resident (loaded, not mid-fetch). A pure
  /// probe: no pin, no counter update, no load triggered.
  bool Resident(PageId page) const;

  /// Queues an asynchronous load of `page`. Exactly one
  /// listener->OnPageReady(page) follows per call: inline (before
  /// returning) when the page is already resident, from the fetch
  /// thread otherwise. Duplicate requests for an in-flight page attach
  /// to the same read.
  void RequestFetch(PageId page, std::shared_ptr<PageFetchListener> listener);

  BufferPoolStats stats() const;
  size_t capacity_bytes() const { return options_.capacity_bytes; }
  EvictionPolicy policy() const { return options_.policy; }

 private:
  struct Frame {
    PageId page = 0;
    std::vector<std::byte> data;
    uint32_t pins = 0;
    bool loading = false;
    bool dirty = false;  // invariant: never set (read-only store)
    // Set when the load failed. The frame is already out of table_ (a
    // later Pin retries the read fresh); it lingers only while waiters
    // that pinned mid-load drain, and the last Unpin frees it.
    bool failed = false;
    uint64_t stamp = 0;  // eviction order: LRU = last pin, FIFO = load
    std::vector<std::shared_ptr<PageFetchListener>> waiters;
  };

  void Unpin(size_t frame);
  // Returns the index of a free (or freshly evicted) frame with room
  // accounted for `bytes`. Requires mu_ held.
  size_t AcquireFrameLocked(size_t bytes);
  // Returns `frame` (which must be unpinned and out of table_) to the
  // free list, releasing its bytes. Requires mu_ held.
  void FreeFrameLocked(size_t frame);
  void FetchLoop();

  const PageSource* source_;
  const BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;  // signaled when a load completes
  std::unordered_map<PageId, size_t> table_;  // page -> frame index
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  size_t resident_bytes_ = 0;
  uint64_t next_stamp_ = 1;
  BufferPoolStats counters_;

  // Async fetch machinery. pending_ holds listeners for pages queued
  // but not yet framed; once a frame exists they ride on its waiters.
  std::deque<PageId> fetch_queue_;
  std::unordered_map<PageId, std::vector<std::shared_ptr<PageFetchListener>>>
      pending_;
  std::condition_variable fetch_cv_;
  bool stopping_ = false;
  std::thread fetch_thread_;

  friend class PagePin;
};

}  // namespace banks

#endif  // BANKS_STORAGE_BUFFER_POOL_H_
