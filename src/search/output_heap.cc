#include "search/output_heap.h"

#include <algorithm>

namespace banks {

bool OutputHeap::Insert(AnswerTree tree) {
  uint64_t sig = tree.Signature();
  auto out_it = output_scores_.find(sig);
  if (out_it != output_scores_.end()) {
    // Already released; late lower-scored rotations are dropped. A late
    // *better* rotation would ideally have waited — the bound machinery
    // exists to make this rare (§5.7 observes near-perfect ordering).
    return false;
  }
  auto it = pending_.find(sig);
  if (it == pending_.end()) {
    if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
    pending_.emplace(sig, std::move(tree));
    return true;
  }
  if (it->second.score >= tree.score) return false;
  if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
  it->second = std::move(tree);
  return true;
}

double OutputHeap::BestPendingScore() const {
  if (!cache_valid_) {
    cached_best_ = -1;
    for (const auto& [sig, tree] : pending_) {
      cached_best_ = std::max(cached_best_, tree.score);
    }
    cache_valid_ = true;
  }
  return pending_.empty() ? -1 : cached_best_;
}

void OutputHeap::ReleaseIf(size_t limit, std::vector<AnswerTree>* out,
                           bool (*releasable)(const AnswerTree&, double),
                           double arg) {
  std::vector<uint64_t> sigs;
  for (const auto& [sig, tree] : pending_) {
    if (releasable(tree, arg)) sigs.push_back(sig);
  }
  std::sort(sigs.begin(), sigs.end(), [&](uint64_t a, uint64_t b) {
    const AnswerTree& ta = pending_.at(a);
    const AnswerTree& tb = pending_.at(b);
    if (ta.score != tb.score) return ta.score > tb.score;
    return a < b;  // deterministic tie-break
  });
  for (uint64_t sig : sigs) {
    if (out->size() >= limit) break;
    auto it = pending_.find(sig);
    output_scores_[sig] = it->second.score;
    out->push_back(std::move(it->second));
    pending_.erase(it);
    cache_valid_ = false;
  }
}

void OutputHeap::ReleaseWithScoreBound(double bound, size_t limit,
                                       std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out,
      [](const AnswerTree& t, double b) { return t.score >= b; }, bound);
}

void OutputHeap::ReleaseWithEdgeBound(double max_eraw, size_t limit,
                                      std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out,
      [](const AnswerTree& t, double b) { return t.edge_score_raw <= b; },
      max_eraw);
}

void OutputHeap::ReleaseBest(size_t count, size_t limit,
                             std::vector<AnswerTree>* out) {
  size_t capped = std::min(limit, out->size() + count);
  ReleaseIf(
      capped, out, [](const AnswerTree&, double) { return true; }, 0);
}

void OutputHeap::Drain(size_t limit, std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out, [](const AnswerTree&, double) { return true; }, 0);
}

}  // namespace banks
