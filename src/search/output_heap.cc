#include "search/output_heap.h"

#include <algorithm>

namespace banks {

void OutputHeap::Reset() {
  index_.Clear();
  used_ = 0;  // slots_ keeps its records (and their vector capacity)
  pending_count_ = 0;
  merge_scratch_.clear();
  taken_sigs_.clear();
  cached_best_ = -1;
  cache_valid_ = true;
}

OutputHeap::Record* OutputHeap::Accept(const AnswerTree& tree, uint64_t sig) {
  const size_t before = index_.size();
  uint32_t& slot = index_[sig];
  if (index_.size() != before) {  // fresh signature this query
    if (used_ == slots_.size()) slots_.emplace_back();
    slot = static_cast<uint32_t>(used_++);
    Record& rec = slots_[slot];
    rec.sig = sig;
    rec.score = tree.score;
    rec.released = false;
    pending_count_++;
    if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
    return &rec;
  }
  Record& rec = slots_[slot];
  if (rec.released) {
    // Already released; late lower-scored rotations are dropped. A late
    // *better* rotation would ideally have waited — the bound machinery
    // exists to make this rare (§5.7 observes near-perfect ordering).
    return nullptr;
  }
  if (rec.score >= tree.score) return nullptr;
  if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
  rec.score = tree.score;
  return &rec;
}

bool OutputHeap::Insert(AnswerTree tree) {
  Record* rec = Accept(tree, tree.Signature(&sig_scratch_));
  if (rec == nullptr) return false;
  rec->tree = std::move(tree);
  return true;
}

bool OutputHeap::InsertCopy(const AnswerTree& tree) {
  return InsertCopy(tree, tree.Signature(&sig_scratch_));
}

bool OutputHeap::InsertCopy(const AnswerTree& tree, uint64_t sig) {
  Record* rec = Accept(tree, sig);
  if (rec == nullptr) return false;
  rec->tree = tree;  // copy-assign reuses the slot's vector capacity
  return true;
}

double OutputHeap::BestPendingScore() const {
  if (!cache_valid_) {
    cached_best_ = -1;
    for (size_t i = 0; i < used_; ++i) {
      if (slots_[i].released) continue;
      cached_best_ = std::max(cached_best_, slots_[i].score);
    }
    cache_valid_ = true;
  }
  return pending_count_ == 0 ? -1 : cached_best_;
}

void OutputHeap::CollectReleasable(bool (*releasable)(const AnswerTree&,
                                                      double),
                                   double arg, uint32_t heap_tag,
                                   std::vector<MergedPick>* out) const {
  for (uint32_t i = 0; i < used_; ++i) {
    if (slots_[i].released) continue;
    if (releasable(slots_[i].tree, arg)) {
      out->push_back(MergedPick{slots_[i].score, slots_[i].sig, heap_tag, i});
    }
  }
}

AnswerTree OutputHeap::TakeSlot(uint32_t slot) {
  Record& rec = slots_[slot];
  rec.released = true;
  pending_count_--;
  cache_valid_ = false;
  return std::move(rec.tree);
}

void OutputHeap::DiscardSlot(uint32_t slot) {
  Record& rec = slots_[slot];
  rec.released = true;
  pending_count_--;
  cache_valid_ = false;
}

/// The shared release core: collects the releasable records of every
/// heap, orders them globally by the canonical (score desc, sig asc)
/// release order — heap tag as a final tie-break, reachable only for a
/// cross-heap duplicate signature — and releases until `limit`. This is
/// the single release path: the per-heap Release* members call it with
/// count == 1, so "merging N shard heaps" and "one heap" are literally
/// the same code ordering the same keys.
void MergedReleaseIf(OutputHeap* heaps, size_t count,
                     bool (*releasable)(const AnswerTree&, double), double arg,
                     size_t limit, std::vector<AnswerTree>* out) {
  using MergedPick = OutputHeap::MergedPick;
  std::vector<MergedPick>& picks = heaps[0].merge_scratch_;
  picks.clear();
  for (uint32_t h = 0; h < count; ++h) {
    heaps[h].CollectReleasable(releasable, arg, h, &picks);
  }
  std::sort(picks.begin(), picks.end(),
            [](const MergedPick& a, const MergedPick& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.sig != b.sig) return a.sig < b.sig;
              return a.heap < b.heap;
            });
  std::vector<uint64_t>& taken = heaps[0].taken_sigs_;
  taken.clear();
  for (const MergedPick& pick : picks) {
    if (count > 1 &&
        std::find(taken.begin(), taken.end(), pick.sig) != taken.end()) {
      // A lower-scored copy of a signature already released this merge:
      // a single heap would have rejected it at insert time. Discarded
      // even once the limit is reached — otherwise the loser would
      // survive as pending and be emitted by a later release.
      heaps[pick.heap].DiscardSlot(pick.slot);
      continue;
    }
    if (out->size() >= limit) {
      if (count == 1) break;  // nothing left to do without dedup
      continue;               // keep scanning for duplicates of taken sigs
    }
    out->push_back(heaps[pick.heap].TakeSlot(pick.slot));
    if (count > 1) taken.push_back(pick.sig);
  }
}

void OutputHeap::ReleaseWithScoreBound(double bound, size_t limit,
                                       std::vector<AnswerTree>* out) {
  MergedReleaseWithScoreBound(this, 1, bound, limit, out);
}

void OutputHeap::ReleaseWithEdgeBound(double max_eraw, size_t limit,
                                      std::vector<AnswerTree>* out) {
  MergedReleaseWithEdgeBound(this, 1, max_eraw, limit, out);
}

void OutputHeap::ReleaseBest(size_t count, size_t limit,
                             std::vector<AnswerTree>* out) {
  MergedReleaseBest(this, 1, count, limit, out);
}

void OutputHeap::Drain(size_t limit, std::vector<AnswerTree>* out) {
  MergedDrain(this, 1, limit, out);
}

void MergedReleaseWithScoreBound(OutputHeap* heaps, size_t count, double bound,
                                 size_t limit, std::vector<AnswerTree>* out) {
  MergedReleaseIf(
      heaps, count,
      [](const AnswerTree& t, double b) { return t.score >= b; }, bound,
      limit, out);
}

void MergedReleaseWithEdgeBound(OutputHeap* heaps, size_t count,
                                double max_eraw, size_t limit,
                                std::vector<AnswerTree>* out) {
  MergedReleaseIf(
      heaps, count,
      [](const AnswerTree& t, double b) { return t.edge_score_raw <= b; },
      max_eraw, limit, out);
}

void MergedReleaseBest(OutputHeap* heaps, size_t count, size_t release_count,
                       size_t limit, std::vector<AnswerTree>* out) {
  size_t capped = std::min(limit, out->size() + release_count);
  MergedReleaseIf(
      heaps, count, [](const AnswerTree&, double) { return true; }, 0,
      capped, out);
}

void MergedDrain(OutputHeap* heaps, size_t count, size_t limit,
                 std::vector<AnswerTree>* out) {
  MergedReleaseIf(
      heaps, count, [](const AnswerTree&, double) { return true; }, 0, limit,
      out);
}

size_t MergedPendingCount(const OutputHeap* heaps, size_t count) {
  size_t total = 0;
  for (size_t h = 0; h < count; ++h) total += heaps[h].pending_count();
  return total;
}

double MergedBestPendingScore(const OutputHeap* heaps, size_t count) {
  double best = -1;
  for (size_t h = 0; h < count; ++h) {
    best = std::max(best, heaps[h].BestPendingScore());
  }
  return best;
}

}  // namespace banks
