#include "search/output_heap.h"

#include <algorithm>

namespace banks {

void OutputHeap::Reset() {
  index_.Clear();
  used_ = 0;  // slots_ keeps its records (and their vector capacity)
  pending_count_ = 0;
  release_scratch_.clear();
  cached_best_ = -1;
  cache_valid_ = true;
}

OutputHeap::Record* OutputHeap::Accept(const AnswerTree& tree) {
  uint64_t sig = tree.Signature(&sig_scratch_);
  const size_t before = index_.size();
  uint32_t& slot = index_[sig];
  if (index_.size() != before) {  // fresh signature this query
    if (used_ == slots_.size()) slots_.emplace_back();
    slot = static_cast<uint32_t>(used_++);
    Record& rec = slots_[slot];
    rec.sig = sig;
    rec.score = tree.score;
    rec.released = false;
    pending_count_++;
    if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
    return &rec;
  }
  Record& rec = slots_[slot];
  if (rec.released) {
    // Already released; late lower-scored rotations are dropped. A late
    // *better* rotation would ideally have waited — the bound machinery
    // exists to make this rare (§5.7 observes near-perfect ordering).
    return nullptr;
  }
  if (rec.score >= tree.score) return nullptr;
  if (cache_valid_) cached_best_ = std::max(cached_best_, tree.score);
  rec.score = tree.score;
  return &rec;
}

bool OutputHeap::Insert(AnswerTree tree) {
  Record* rec = Accept(tree);
  if (rec == nullptr) return false;
  rec->tree = std::move(tree);
  return true;
}

bool OutputHeap::InsertCopy(const AnswerTree& tree) {
  Record* rec = Accept(tree);
  if (rec == nullptr) return false;
  rec->tree = tree;  // copy-assign reuses the slot's vector capacity
  return true;
}

double OutputHeap::BestPendingScore() const {
  if (!cache_valid_) {
    cached_best_ = -1;
    for (size_t i = 0; i < used_; ++i) {
      if (slots_[i].released) continue;
      cached_best_ = std::max(cached_best_, slots_[i].score);
    }
    cache_valid_ = true;
  }
  return pending_count_ == 0 ? -1 : cached_best_;
}

void OutputHeap::ReleaseIf(size_t limit, std::vector<AnswerTree>* out,
                           bool (*releasable)(const AnswerTree&, double),
                           double arg) {
  std::vector<uint32_t>& picks = release_scratch_;
  picks.clear();
  for (uint32_t i = 0; i < used_; ++i) {
    if (slots_[i].released) continue;
    if (releasable(slots_[i].tree, arg)) picks.push_back(i);
  }
  std::sort(picks.begin(), picks.end(), [&](uint32_t a, uint32_t b) {
    const Record& ra = slots_[a];
    const Record& rb = slots_[b];
    if (ra.score != rb.score) return ra.score > rb.score;
    return ra.sig < rb.sig;  // deterministic tie-break
  });
  for (uint32_t i : picks) {
    if (out->size() >= limit) break;
    Record& rec = slots_[i];
    rec.released = true;
    out->push_back(std::move(rec.tree));
    pending_count_--;
    cache_valid_ = false;
  }
}

void OutputHeap::ReleaseWithScoreBound(double bound, size_t limit,
                                       std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out,
      [](const AnswerTree& t, double b) { return t.score >= b; }, bound);
}

void OutputHeap::ReleaseWithEdgeBound(double max_eraw, size_t limit,
                                      std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out,
      [](const AnswerTree& t, double b) { return t.edge_score_raw <= b; },
      max_eraw);
}

void OutputHeap::ReleaseBest(size_t count, size_t limit,
                             std::vector<AnswerTree>* out) {
  size_t capped = std::min(limit, out->size() + count);
  ReleaseIf(
      capped, out, [](const AnswerTree&, double) { return true; }, 0);
}

void OutputHeap::Drain(size_t limit, std::vector<AnswerTree>* out) {
  ReleaseIf(
      limit, out, [](const AnswerTree&, double) { return true; }, 0);
}

}  // namespace banks
