#include "search/answer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace banks {
namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // 64-bit mix in the spirit of boost::hash_combine / splitmix64.
  v *= 0x9E3779B97F4A7C15ULL;
  v ^= v >> 32;
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::vector<NodeId> AnswerTree::Nodes() const {
  std::vector<NodeId> nodes;
  nodes.push_back(root);
  for (const AnswerEdge& e : edges) {
    nodes.push_back(e.parent);
    nodes.push_back(e.child);
  }
  for (NodeId k : keyword_nodes) nodes.push_back(k);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

size_t AnswerTree::RootChildCount() const {
  std::set<NodeId> children;
  for (const AnswerEdge& e : edges) {
    if (e.parent == root) children.insert(e.child);
  }
  return children.size();
}

bool AnswerTree::RootMatchesAKeyword() const {
  for (NodeId k : keyword_nodes) {
    if (k == root) return true;
  }
  return false;
}

bool AnswerTree::IsMinimalRooted() const {
  return RootChildCount() != 1 || RootMatchesAKeyword();
}

uint64_t AnswerTree::Signature() const {
  uint64_t h = 0x5851F42D4C957F2DULL;
  for (NodeId v : Nodes()) h = HashCombine(h, v);
  // Undirected edge multiset, canonically ordered so that rotations of
  // the same tree hash identically.
  std::vector<std::pair<NodeId, NodeId>> undirected;
  undirected.reserve(edges.size());
  for (const AnswerEdge& e : edges) {
    undirected.emplace_back(std::min(e.parent, e.child),
                            std::max(e.parent, e.child));
  }
  std::sort(undirected.begin(), undirected.end());
  undirected.erase(std::unique(undirected.begin(), undirected.end()),
                   undirected.end());
  for (const auto& [a, b] : undirected) {
    h = HashCombine(h, (static_cast<uint64_t>(a) << 32) | b);
  }
  return h;
}

bool SameAnswer(const AnswerTree& a, const AnswerTree& b) {
  return a.root == b.root && a.edges == b.edges &&
         a.keyword_nodes == b.keyword_nodes &&
         a.keyword_distances == b.keyword_distances &&
         a.edge_score_raw == b.edge_score_raw &&
         a.node_prestige == b.node_prestige && a.score == b.score &&
         a.explored_at_generation == b.explored_at_generation &&
         a.touched_at_generation == b.touched_at_generation;
}

bool AnswerTree::Validate(const Graph& g, std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (root == kInvalidNode) return fail("invalid root");
  if (root >= g.num_nodes()) return fail("root out of range");

  std::unordered_map<NodeId, NodeId> parent_of;
  for (const AnswerEdge& e : edges) {
    if (e.parent >= g.num_nodes() || e.child >= g.num_nodes()) {
      return fail("edge endpoint out of range");
    }
    double w = g.EdgeWeight(e.parent, e.child);
    if (w < 0) return fail("edge not present in graph");
    if (std::fabs(w - e.weight) > 1e-4) {
      // Multi-edges: any matching weight is acceptable.
      bool found = false;
      for (const Edge& ge : g.OutEdges(e.parent)) {
        if (ge.other == e.child && std::fabs(ge.weight - e.weight) < 1e-4) {
          found = true;
          break;
        }
      }
      if (!found) return fail("edge weight mismatch");
    }
    auto [it, inserted] = parent_of.emplace(e.child, e.parent);
    if (!inserted && it->second != e.parent) {
      return fail("node has two parents (not a tree)");
    }
    if (e.child == root) return fail("root has a parent");
  }

  // Every node must reach the root by following parents (acyclic, rooted).
  for (const AnswerEdge& e : edges) {
    NodeId cur = e.child;
    size_t hops = 0;
    while (cur != root) {
      auto it = parent_of.find(cur);
      if (it == parent_of.end()) return fail("disconnected edge");
      cur = it->second;
      if (++hops > edges.size()) return fail("cycle in answer edges");
    }
  }

  // Keyword nodes must be in the tree (root counts).
  std::unordered_set<NodeId> nodes;
  nodes.insert(root);
  for (const AnswerEdge& e : edges) {
    nodes.insert(e.parent);
    nodes.insert(e.child);
  }
  for (NodeId k : keyword_nodes) {
    if (!nodes.count(k)) return fail("keyword node not in tree");
  }
  return true;
}

}  // namespace banks
