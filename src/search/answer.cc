#include "search/answer.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace banks {
namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // 64-bit mix in the spirit of boost::hash_combine / splitmix64.
  v *= 0x9E3779B97F4A7C15ULL;
  v ^= v >> 32;
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::vector<NodeId> AnswerTree::Nodes() const {
  std::vector<NodeId> nodes;
  Nodes(&nodes);
  return nodes;
}

void AnswerTree::Nodes(std::vector<NodeId>* out) const {
  out->clear();
  out->push_back(root);
  for (const AnswerEdge& e : edges) {
    out->push_back(e.parent);
    out->push_back(e.child);
  }
  for (NodeId k : keyword_nodes) out->push_back(k);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

size_t AnswerTree::RootChildCount() const {
  // Allocation-free distinct count: answers have a handful of edges, so
  // the quadratic "seen earlier?" scan beats building a set. Runs per
  // materialized tree (IsMinimalRooted) on the hot path.
  size_t count = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].parent != root) continue;
    bool seen = false;
    for (size_t j = 0; j < i && !seen; ++j) {
      seen = edges[j].parent == root && edges[j].child == edges[i].child;
    }
    if (!seen) count++;
  }
  return count;
}

bool AnswerTree::RootMatchesAKeyword() const {
  for (NodeId k : keyword_nodes) {
    if (k == root) return true;
  }
  return false;
}

bool AnswerTree::IsMinimalRooted() const {
  return RootChildCount() != 1 || RootMatchesAKeyword();
}

uint64_t AnswerTree::Signature() const {
  SignatureScratch scratch;
  return Signature(&scratch);
}

uint64_t AnswerTree::Signature(SignatureScratch* scratch) const {
  uint64_t h = 0x5851F42D4C957F2DULL;
  Nodes(&scratch->nodes);
  for (NodeId v : scratch->nodes) h = HashCombine(h, v);
  // Undirected edge multiset, canonically ordered so that rotations of
  // the same tree hash identically.
  std::vector<std::pair<NodeId, NodeId>>& undirected = scratch->undirected;
  undirected.clear();
  for (const AnswerEdge& e : edges) {
    undirected.emplace_back(std::min(e.parent, e.child),
                            std::max(e.parent, e.child));
  }
  std::sort(undirected.begin(), undirected.end());
  undirected.erase(std::unique(undirected.begin(), undirected.end()),
                   undirected.end());
  for (const auto& [a, b] : undirected) {
    h = HashCombine(h, (static_cast<uint64_t>(a) << 32) | b);
  }
  return h;
}

bool SameAnswer(const AnswerTree& a, const AnswerTree& b) {
  return a.root == b.root && a.edges == b.edges &&
         a.keyword_nodes == b.keyword_nodes &&
         a.keyword_distances == b.keyword_distances &&
         a.edge_score_raw == b.edge_score_raw &&
         a.node_prestige == b.node_prestige && a.score == b.score &&
         a.explored_at_generation == b.explored_at_generation &&
         a.touched_at_generation == b.touched_at_generation;
}

bool AnswerTree::Validate(const Graph& g, std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (root == kInvalidNode) return fail("invalid root");
  if (root >= g.num_nodes()) return fail("root out of range");

  // Answers are tiny (≤ n keyword paths of ≤ dmax hops), so parent
  // lookups run on a flat sorted (child, parent) vector instead of a
  // hash map — no allocation beyond one small buffer, and cache-friendly
  // binary searches.
  std::vector<std::pair<NodeId, NodeId>> parent_of;
  parent_of.reserve(edges.size());
  for (const AnswerEdge& e : edges) {
    if (e.parent >= g.num_nodes() || e.child >= g.num_nodes()) {
      return fail("edge endpoint out of range");
    }
    double w = g.EdgeWeight(e.parent, e.child);
    if (w < 0) return fail("edge not present in graph");
    if (std::fabs(w - e.weight) > 1e-4) {
      // Multi-edges: any matching weight is acceptable.
      bool found = false;
      for (const Edge& ge : g.OutEdges(e.parent)) {
        if (ge.other == e.child && std::fabs(ge.weight - e.weight) < 1e-4) {
          found = true;
          break;
        }
      }
      if (!found) return fail("edge weight mismatch");
    }
    parent_of.emplace_back(e.child, e.parent);
    if (e.child == root) return fail("root has a parent");
  }
  std::sort(parent_of.begin(), parent_of.end());
  for (size_t i = 1; i < parent_of.size(); ++i) {
    if (parent_of[i].first == parent_of[i - 1].first &&
        parent_of[i].second != parent_of[i - 1].second) {
      return fail("node has two parents (not a tree)");
    }
  }
  auto find_parent = [&](NodeId child) -> const NodeId* {
    auto it = std::lower_bound(
        parent_of.begin(), parent_of.end(), child,
        [](const std::pair<NodeId, NodeId>& p, NodeId c) {
          return p.first < c;
        });
    if (it == parent_of.end() || it->first != child) return nullptr;
    return &it->second;
  };

  // Every node must reach the root by following parents (acyclic, rooted).
  for (const AnswerEdge& e : edges) {
    NodeId cur = e.child;
    size_t hops = 0;
    while (cur != root) {
      const NodeId* p = find_parent(cur);
      if (p == nullptr) return fail("disconnected edge");
      cur = *p;
      if (++hops > edges.size()) return fail("cycle in answer edges");
    }
  }

  // Keyword nodes must be in the tree (root counts).
  std::vector<NodeId> nodes;
  nodes.reserve(edges.size() * 2 + 1);
  nodes.push_back(root);
  for (const AnswerEdge& e : edges) {
    nodes.push_back(e.parent);
    nodes.push_back(e.child);
  }
  std::sort(nodes.begin(), nodes.end());
  for (NodeId k : keyword_nodes) {
    if (!std::binary_search(nodes.begin(), nodes.end(), k)) {
      return fail("keyword node not in tree");
    }
  }
  return true;
}

}  // namespace banks
