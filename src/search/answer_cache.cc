#include "search/answer_cache.h"

#include <chrono>
#include <unordered_set>
#include <utility>

namespace banks {

AnswerCache::AnswerCache(const AnswerCacheOptions& options)
    : options_(options) {}

double AnswerCache::Now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool AnswerCache::Lookup(const std::string& key, SearchResult* out) {
  const double now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.expires_at <= now) {
    if (it != entries_.end()) entries_.erase(it);  // expired: reclaim
    ++misses_;
    return false;
  }
  *out = it->second.result;
  ++hits_;
  return true;
}

void AnswerCache::Store(const std::string& key, const SearchResult& result) {
  Store(key, {}, result);
}

void AnswerCache::Store(const std::string& key,
                        std::vector<std::string> keywords,
                        const SearchResult& result) {
  const double now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  it->second.result = result;
  it->second.keywords = std::move(keywords);
  it->second.expires_at = now + options_.ttl_seconds;
  // Every store — refresh included — re-ages the entry, so a hot
  // recurring query is never evicted in favour of a stale first-comer.
  it->second.stored_seq = next_seq_++;
  if (inserted) EvictLocked(now);
}

size_t AnswerCache::InvalidateKeywords(
    const std::vector<std::string>& folded) {
  if (folded.empty()) return 0;
  const std::unordered_set<std::string> touched(folded.begin(), folded.end());
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& kws = it->second.keywords;
    // No keyword metadata = unknown provenance: drop conservatively.
    bool stale = kws.empty();
    for (const std::string& kw : kws) {
      if (touched.count(kw) > 0) {
        stale = true;
        break;
      }
    }
    if (stale) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void AnswerCache::EvictLocked(double now) {
  if (options_.max_entries == 0) return;
  // Pass 1: expired entries go first, regardless of age.
  for (auto it = entries_.begin();
       it != entries_.end() && entries_.size() > options_.max_entries;) {
    if (it->second.expires_at <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: oldest-stored live entries. A linear min-scan per eviction
  // is fine: evictions only happen at the (bounded) capacity limit, and
  // keeping the age on the entry itself means nothing can leak or go
  // stale — unlike an insertion-order side list.
  while (entries_.size() > options_.max_entries) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.stored_seq < oldest->second.stored_seq) oldest = it;
    }
    entries_.erase(oldest);
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t AnswerCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t AnswerCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::string AnswerCacheKey(Algorithm algorithm, const SearchOptions& options,
                           const std::vector<std::string>& keywords,
                           uint64_t graph_epoch) {
  std::string key;
  key += 'e';
  key += std::to_string(graph_epoch);
  key += '|';
  key += std::to_string(static_cast<int>(algorithm));
  key += '|';
  key += std::to_string(OptionsFingerprint(options));
  for (const std::string& kw : keywords) {
    key += '|';
    key += std::to_string(kw.size());
    key += ':';
    key += kw;
  }
  return key;
}

}  // namespace banks
