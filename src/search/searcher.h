#ifndef BANKS_SEARCH_SEARCHER_H_
#define BANKS_SEARCH_SEARCHER_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "search/answer.h"
#include "search/metrics.h"
#include "search/options.h"
#include "search/search_context.h"
#include "util/timer.h"

namespace banks {

/// The three algorithms compared in the paper (§3, §4.6, §4).
enum class Algorithm {
  kBackwardMI,     // multiple-iterator Backward expanding search [3]
  kBackwardSI,     // single-iterator ablation (§4.6)
  kBidirectional,  // this paper's contribution (§4)
};

const char* AlgorithmName(Algorithm algorithm);

/// Bounds for one Resume slice of a search. Zero-valued fields impose
/// no bound; a default StepLimits runs the search to completion.
///
/// Pausing is behavior-neutral: the bounds only decide when Resume
/// *returns* between loop iterations, never what the search computes, so
/// any pause pattern yields the same answer sequence and deterministic
/// metrics as an uninterrupted run.
///
/// Granularity: the bounds are checked between loop iterations only —
/// for the Bidirectional searcher an iteration is one whole BSP round
/// (pop phase + cascade sub-rounds + release check), for the Backward
/// searchers one settled pop. A sharded search therefore pauses only on
/// round boundaries and max_steps may overshoot by the tail of the
/// round in flight; since round boundaries are part of the defined
/// search order, the pause points are identical at every shard count
/// (see src/README.md, "Parallel expansion").
struct StepLimits {
  /// Pause once the stream result holds at least this many released
  /// answers (an absolute count, not a per-slice increment). This is
  /// the answer-at-a-time knob: AnswerStream::Next passes pulled + 1.
  size_t release_target = 0;

  /// Pause after this many node expansions within this slice.
  uint64_t max_steps = 0;

  /// Pause once this slice has run this many wall-clock seconds.
  double deadline_seconds = 0;
};

/// What a Resume slice ended with.
enum class SearchStatus : uint8_t {
  kRunning,   // paused by a StepLimits bound; call Resume again to go on
  kDone,      // search complete: answers and metrics are final
  kPageWait,  // paused on a paged-graph page fault: the next expansion
              // needs a page that is not pooled. Only returned when the
              // context carries a page_listener (the serving scheduler's
              // page-wait protocol); an async fetch has been queued and
              // exactly one OnPageReady will follow per OnFetchQueued
              // fired during the slice. Resume again after it fires.
              // Without a listener the pin blocks synchronously instead.
  kIoError,   // terminal: a page read failed (truncated or unreadable
              // backing file) and the search cannot proceed without
              // fabricating adjacency. The stream is marked done; the
              // answers released before the failure remain valid (they
              // were computed on real bytes) but the result is partial.
};

/// Stopwatch for one Resume slice that reports seconds since *query*
/// start: the stream state's accumulated search time from earlier
/// slices plus this slice. Keeps answer timestamps (generated_at,
/// output_times) measured in search time, excluding paused gaps.
class SliceTimer {
 public:
  explicit SliceTimer(double base) : base_(base) {}
  double ElapsedSeconds() const { return base_ + timer_.ElapsedSeconds(); }
  double SliceSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  double base_;
  Timer timer_;
};

// ---- Shared Resume plumbing ------------------------------------------------
// The three searchers' Resume implementations share the same slice
// skeleton: classify the slice (done / first / resuming), check the
// StepLimits between loop iterations, and finalize the stream state on
// pause or completion. The helpers below are that skeleton, so a
// StepLimits change lands in one place.

/// How a Resume slice starts (BeginResumeSlice).
enum class SliceStart : uint8_t {
  kAlreadyDone,  // stream finished (or query unrunnable): return kDone
  kFresh,        // first slice: seed the search before the main loop
  kResuming,     // mid-search: skip seeding, continue the loop
};

/// Shared Resume prologue: classifies the slice and, for a fresh query,
/// applies AND semantics — no keywords, or a keyword matching nothing,
/// marks the query done on the spot (its empty result is final).
inline SliceStart BeginResumeSlice(
    const std::vector<std::vector<NodeId>>& origins,
    SearchContext::StreamState* ss) {
  using Phase = SearchContext::StreamState::Phase;
  if (ss->phase == Phase::kDone) return SliceStart::kAlreadyDone;
  if (ss->phase == Phase::kRunning) return SliceStart::kResuming;
  bool runnable = !origins.empty();
  for (const auto& s : origins) runnable = runnable && !s.empty();
  if (!runnable) {
    ss->phase = Phase::kDone;
    return SliceStart::kAlreadyDone;
  }
  ss->phase = Phase::kRunning;
  return SliceStart::kFresh;
}

/// Evaluates the slice bounds between loop iterations and books the
/// elapsed time into the stream state when pausing. Construct once per
/// slice (captures the entry step count); never influences what the
/// search computes, only when Resume returns.
class SliceGuard {
 public:
  SliceGuard(const StepLimits& limits, SearchContext::StreamState* ss,
             const SliceTimer* timer)
      : limits_(limits),
        ss_(ss),
        timer_(timer),
        steps_at_entry_(ss->steps) {}

  bool PauseDue() const {
    return (limits_.release_target != 0 &&
            ss_->result.answers.size() >= limits_.release_target) ||
           (limits_.max_steps != 0 &&
            ss_->steps - steps_at_entry_ >= limits_.max_steps) ||
           (limits_.deadline_seconds > 0 &&
            timer_->SliceSeconds() >= limits_.deadline_seconds);
  }

  /// Books elapsed search time and returns the paused status.
  SearchStatus Pause() const {
    ss_->result.metrics.elapsed_seconds = timer_->ElapsedSeconds();
    ss_->elapsed = ss_->result.metrics.elapsed_seconds;
    return SearchStatus::kRunning;
  }

  /// Books elapsed time like Pause() but reports a page fault: the next
  /// expansion's page is being fetched asynchronously; resume when the
  /// context's page listener hears OnPageReady.
  SearchStatus PageWait() const {
    ss_->result.metrics.elapsed_seconds = timer_->ElapsedSeconds();
    ss_->elapsed = ss_->result.metrics.elapsed_seconds;
    ++ss_->result.metrics.page_waits;
    ++ss_->page_fault_retries;
    return SearchStatus::kPageWait;
  }

  /// Terminal page-read failure: books elapsed time, marks the stream
  /// done (further Resumes are no-ops) and returns kIoError. The caller
  /// bumps metrics.io_errors at the point it saw the failed pin.
  SearchStatus IoError() const {
    ss_->result.metrics.elapsed_seconds = timer_->ElapsedSeconds();
    ss_->elapsed = ss_->result.metrics.elapsed_seconds;
    ss_->phase = SearchContext::StreamState::Phase::kDone;
    return SearchStatus::kIoError;
  }

 private:
  const StepLimits limits_;
  SearchContext::StreamState* ss_;
  const SliceTimer* timer_;
  const uint64_t steps_at_entry_;
};

/// Shared Resume epilogue: finalizes the metrics, marks the stream done.
inline SearchStatus FinishResume(SearchContext::StreamState* ss,
                                 const SliceTimer& timer) {
  ss->result.metrics.answers_output = ss->result.answers.size();
  ss->result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  ss->elapsed = ss->result.metrics.elapsed_seconds;
  ss->phase = SearchContext::StreamState::Phase::kDone;
  return SearchStatus::kDone;
}

/// Common interface: a searcher is bound to a graph + prestige vector and
/// answers keyword queries given as resolved origin sets S_1..S_n
/// (duplicates within an S_i are ignored). An empty S_i means the keyword
/// matches nothing — the result is empty, per AND semantics.
class Searcher {
 public:
  Searcher(const Graph& graph, const std::vector<double>& prestige,
           const SearchOptions& options)
      : graph_(graph), prestige_(prestige), options_(options) {}
  virtual ~Searcher() = default;

  Searcher(const Searcher&) = delete;
  Searcher& operator=(const Searcher&) = delete;

  /// Runs the search to top-k completion (or exhaustion/budget) using
  /// `context` as scratch space. The context is reset at query start;
  /// passing the same (warm) context across a query stream avoids
  /// re-allocating per-query state. Must not be null.
  ///
  /// Const: a search mutates only the context, so one searcher may be
  /// shared by concurrent callers as long as each brings its own
  /// SearchContext (Engine::QueryBatch shares one searcher across its
  /// worker threads this way).
  ///
  /// With SearchOptions::shard_count > 1 the search shards its frontier
  /// by NodeId range and runs its batched phases on worker threads
  /// (scratch leased from SearchOptions::shard_pool); results are
  /// byte-identical to shard_count = 1 — expansion follows a strict
  /// total order that partitioning cannot change.
  ///
  /// Implemented as Reset + one unbounded Resume slice, so a drained
  /// search and a streamed one run the identical state machine.
  SearchResult Search(const std::vector<std::vector<NodeId>>& origins,
                      SearchContext* context) const;

  /// Resumable core of the search — the streaming API's engine room.
  ///
  /// The context's stream state (SearchContext::stream) holds the whole
  /// control state of a search in flight: released answers, metrics,
  /// loop counters, release cadence and accumulated time; the
  /// positional state (frontiers, heaps, reach maps, output buffers)
  /// lives in the context pools as always. Protocol:
  ///
  ///   context->stream.Reset();                       // new query
  ///   while (searcher->Resume(origins, context, limits)
  ///          == SearchStatus::kRunning) { ... consume/decide ... }
  ///   SearchResult r = std::move(context->stream.result);
  ///
  /// Each call runs the search until a StepLimits bound pauses it
  /// (kRunning) or it completes (kDone: final release + drain done,
  /// metrics finalized). Calling Resume after kDone is a no-op that
  /// returns kDone. `origins` must be the same across all slices of one
  /// query, and the searcher's options must not change mid-query.
  ///
  /// Pausing is behavior-neutral (see StepLimits): pulling answers one
  /// at a time yields exactly the drained run's sequence, prefix by
  /// prefix, at any shard count.
  virtual SearchStatus Resume(const std::vector<std::vector<NodeId>>& origins,
                              SearchContext* context,
                              const StepLimits& limits) const = 0;

  /// Convenience overload backed by a context owned by this searcher
  /// (lazily created, reused across calls on the same searcher).
  SearchResult Search(const std::vector<std::vector<NodeId>>& origins);

  const SearchOptions& options() const { return options_; }

 protected:
  /// Edge admission under the configured EdgeFilter.
  bool EdgeAllowed(const Edge& e) const {
    switch (options_.edge_filter) {
      case EdgeFilter::kAll:
        return true;
      case EdgeFilter::kForwardOnly:
        return e.dir == EdgeDir::kForward;
      case EdgeFilter::kBackwardOnly:
        return e.dir == EdgeDir::kBackward;
    }
    return true;
  }

  const Graph& graph_;
  const std::vector<double>& prestige_;
  SearchOptions options_;

 private:
  std::unique_ptr<SearchContext> owned_context_;
};

/// Factory over the Algorithm enum.
std::unique_ptr<Searcher> CreateSearcher(Algorithm algorithm,
                                         const Graph& graph,
                                         const std::vector<double>& prestige,
                                         const SearchOptions& options);

}  // namespace banks

#endif  // BANKS_SEARCH_SEARCHER_H_
