#ifndef BANKS_SEARCH_SEARCHER_H_
#define BANKS_SEARCH_SEARCHER_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "search/answer.h"
#include "search/metrics.h"
#include "search/options.h"
#include "search/search_context.h"

namespace banks {

/// Result of one keyword search: answers in output order plus the
/// paper's performance counters.
struct SearchResult {
  std::vector<AnswerTree> answers;
  SearchMetrics metrics;
};

/// The three algorithms compared in the paper (§3, §4.6, §4).
enum class Algorithm {
  kBackwardMI,     // multiple-iterator Backward expanding search [3]
  kBackwardSI,     // single-iterator ablation (§4.6)
  kBidirectional,  // this paper's contribution (§4)
};

const char* AlgorithmName(Algorithm algorithm);

/// Common interface: a searcher is bound to a graph + prestige vector and
/// answers keyword queries given as resolved origin sets S_1..S_n
/// (duplicates within an S_i are ignored). An empty S_i means the keyword
/// matches nothing — the result is empty, per AND semantics.
class Searcher {
 public:
  Searcher(const Graph& graph, const std::vector<double>& prestige,
           const SearchOptions& options)
      : graph_(graph), prestige_(prestige), options_(options) {}
  virtual ~Searcher() = default;

  Searcher(const Searcher&) = delete;
  Searcher& operator=(const Searcher&) = delete;

  /// Runs the search to top-k completion (or exhaustion/budget) using
  /// `context` as scratch space. The context is reset at query start;
  /// passing the same (warm) context across a query stream avoids
  /// re-allocating per-query state. Must not be null.
  ///
  /// Const: a search mutates only the context, so one searcher may be
  /// shared by concurrent callers as long as each brings its own
  /// SearchContext (Engine::QueryBatch shares one searcher across its
  /// worker threads this way).
  ///
  /// With SearchOptions::shard_count > 1 the search shards its frontier
  /// by NodeId range and runs its batched phases on worker threads
  /// (scratch leased from SearchOptions::shard_pool); results are
  /// byte-identical to shard_count = 1 — expansion follows a strict
  /// total order that partitioning cannot change.
  virtual SearchResult Search(const std::vector<std::vector<NodeId>>& origins,
                              SearchContext* context) const = 0;

  /// Convenience overload backed by a context owned by this searcher
  /// (lazily created, reused across calls on the same searcher).
  SearchResult Search(const std::vector<std::vector<NodeId>>& origins);

  const SearchOptions& options() const { return options_; }

 protected:
  /// Edge admission under the configured EdgeFilter.
  bool EdgeAllowed(const Edge& e) const {
    switch (options_.edge_filter) {
      case EdgeFilter::kAll:
        return true;
      case EdgeFilter::kForwardOnly:
        return e.dir == EdgeDir::kForward;
      case EdgeFilter::kBackwardOnly:
        return e.dir == EdgeDir::kBackward;
    }
    return true;
  }

  const Graph& graph_;
  const std::vector<double>& prestige_;
  SearchOptions options_;

 private:
  std::unique_ptr<SearchContext> owned_context_;
};

/// Factory over the Algorithm enum.
std::unique_ptr<Searcher> CreateSearcher(Algorithm algorithm,
                                         const Graph& graph,
                                         const std::vector<double>& prestige,
                                         const SearchOptions& options);

}  // namespace banks

#endif  // BANKS_SEARCH_SEARCHER_H_
