#ifndef BANKS_SEARCH_SHARDING_H_
#define BANKS_SEARCH_SHARDING_H_

#include <cstdint>

#include "graph/types.h"

namespace banks {

/// Node-space partition of the sharded frontier: shard p owns the
/// contiguous NodeId range [p*N/S, (p+1)*N/S). Every per-node frontier
/// structure (Q_in/Q_out heaps, the NodeId→state maps, the per-keyword
/// frontier-minimum heaps) is split along this partition, so one query's
/// expansion state can be maintained — and its batched phases scanned —
/// per shard without two shards ever touching the same node's slot.
struct ShardPlan {
  uint32_t count = 1;      // active shards (1 = unsharded)
  uint64_t num_nodes = 0;  // graph size the ranges partition

  uint32_t ShardOf(NodeId v) const {
    // count == 1 short-circuits the division on the default path: this
    // runs once per relaxed edge.
    if (count == 1 || num_nodes == 0) return 0;
    uint32_t s =
        static_cast<uint32_t>(static_cast<uint64_t>(v) * count / num_nodes);
    return s < count ? s : count - 1;  // ids beyond num_nodes clamp
  }
};

/// Frontier priority of the Bidirectional Q_in/Q_out queues: activation
/// first (the paper's prioritization), NodeId as a strict tie-break.
///
/// The tie-break is what makes the sharded frontier possible: with a
/// strict *total* order, "the next node to expand" is a property of the
/// frontier's contents alone, not of any heap's internal layout — so the
/// argmax over per-shard heap tops pops exactly the node a single global
/// heap would, and shard_count can never change the expansion sequence.
struct ActPriority {
  double act = 0;
  NodeId node = kInvalidNode;

  /// std::priority_queue convention: a < b means a pops *after* b.
  /// Higher activation wins; equal activation falls to the smaller
  /// NodeId. Incomparable duplicates cannot arise: a node is in a given
  /// queue at most once.
  friend bool operator<(const ActPriority& a, const ActPriority& b) {
    if (a.act != b.act) return a.act < b.act;
    return a.node > b.node;
  }
};

}  // namespace banks

#endif  // BANKS_SEARCH_SHARDING_H_
