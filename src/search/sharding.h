#ifndef BANKS_SEARCH_SHARDING_H_
#define BANKS_SEARCH_SHARDING_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace banks {

// ---- BSP lanes: the parallel-expansion partition ---------------------------
//
// The expansion state of a query is partitioned into a FIXED number of
// lanes (kNumLanes), each owning a contiguous NodeId range. The main
// loop of the Bidirectional searcher is a sequence of bulk-synchronous
// (BSP) rounds over these lanes:
//
//   1. Pop phase — every qualifying lane pops one node from its own
//      Q_in/Q_out and explores its edges. Effects on nodes the lane
//      owns are applied locally; effects on other lanes' nodes —
//      Attach relaxations, Activate propagations, prestige-spread
//      updates, node discovery — are appended to per-(sender, receiver)
//      mailboxes. No lane ever writes another lane's state directly,
//      so the phase is contention-free.
//   2. Discovery — at the barrier, the coordinator assigns state
//      indices to newly discovered nodes and links explored edges into
//      the owner lanes' parent/child lists, walking the mailboxes in
//      (sender lane, message sequence) order.
//   3. Cascade sub-rounds — each lane drains its inboxes in (sender
//      lane, sequence) order, applying each message and running the
//      resulting local Attach/Activate cascade to completion; effects
//      that leave the lane are appended to the opposite mailbox bank.
//      Sub-rounds repeat, swapping banks at a barrier, until no
//      mailbox holds a message.
//   4. Round end — the coordinator merges per-lane counters and runs
//      the §4.5 release checks against the now round-consistent state
//      (candidate builds and NRA scans fan back out to the workers).
//
// Determinism contract: the lane count, the lane partition, the message
// application order and the round boundaries are all independent of
// SearchOptions::shard_count — shard_count only chooses how many worker
// threads execute the lanes (1 runs them sequentially, in lane order,
// through the identical code path). Round boundaries are therefore part
// of the *defined search order*: every shard count, including the
// sequential shard-1 path, produces byte-identical answers and equal
// deterministic metrics. Streaming pauses (StepLimits) land only on
// round boundaries, where all mailboxes are provably empty, so a paused
// search's position is fully captured by the context pools.

/// Number of BSP lanes. Fixed — NOT derived from shard_count — so that
/// the round structure, and with it the search order, is invariant
/// under the worker-thread count.
inline constexpr uint32_t kNumLanes = 8;

/// The lane partition: lane(v) = min(v >> shift, kNumLanes - 1), with
/// the shift chosen so the node space spreads over the lanes. A pure
/// bit shift keeps the per-edge owner lookup branch-free (it runs once
/// per explored edge and once per cross-lane cascade hop).
struct LanePlan {
  uint32_t shift = 0;

  static LanePlan ForNodes(uint64_t num_nodes) {
    uint32_t bits = 0;
    while ((num_nodes - 1) >> bits != 0 && num_nodes > 1) ++bits;
    return LanePlan{bits <= 3 ? 0 : bits - 3};  // 2^3 == kNumLanes
  }

  uint32_t LaneOf(NodeId v) const {
    uint32_t lane = static_cast<uint32_t>(v) >> shift;
    return lane < kNumLanes ? lane : kNumLanes - 1;
  }
};

/// One cross-lane effect, appended to a mailbox during a BSP phase and
/// applied by the receiving lane after the next barrier. Application
/// order — sender lane, then sequence number within the mailbox — is
/// part of the defined search order.
struct LaneMessage {
  enum Type : uint8_t {
    /// In-context edge exploration (popped v, in-edge u→v): receiver
    /// owns u. Carries v's per-keyword distances (payload[0..n)) and
    /// the backward activation spread v→u (payload[n..2n)).
    kExploreIn,
    /// Out-context edge exploration (popped u, out-edge u→v): receiver
    /// owns v. Carries the forward activation spread u→v
    /// (payload[0..n)); the receiver answers with kDistReply when v
    /// already has finite distances.
    kExploreOut,
    /// Distance row of v sent back to u's lane so u can relax through
    /// the out-context edge u→v (payload[0..n) = v's distances).
    kDistReply,
    /// Single-keyword Attach relaxation: d(target, kw) may improve to
    /// `value` via `via_state`.
    kRelax,
    /// Single-keyword Activate propagation: target received `value`
    /// activation for keyword kw.
    kRaise,
  };

  Type type;
  uint32_t kw = 0;            // kRelax / kRaise
  NodeId target_node = 0;     // kExplore*: node to discover
  uint32_t target_state = 0;  // state index (kExplore*: set at discovery)
  uint32_t via_state = 0;     // provider / tree-parent state
  float w = 0;                // edge weight (kExplore*, kDistReply)
  uint32_t depth = 0;         // kExplore*: depth of target if new
  double value = 0;           // kRelax: candidate dist; kRaise: activation
  uint32_t payload = 0;       // offset into the mailbox payload array
};

/// One (sender, receiver) mailbox: a message vector plus a shared
/// payload arena for the variable-length per-keyword rows. Mailboxes
/// are double-banked — a phase consumes bank b while producing into
/// bank b^1 — and keep their capacity across rounds and queries.
struct LaneMailbox {
  std::vector<LaneMessage> msgs;
  std::vector<double> payload;

  void Clear() {
    msgs.clear();
    payload.clear();
  }
};

// ---- NodeId-range partition of variable shard count ------------------------

/// Node-space partition used by the Backward searchers' sharded
/// frontiers and by tests: shard p owns the contiguous NodeId range
/// [p*N/S, (p+1)*N/S). (The Bidirectional BSP loop uses the fixed
/// LanePlan above instead, so its round structure cannot depend on the
/// shard count.)
struct ShardPlan {
  uint32_t count = 1;      // active shards (1 = unsharded)
  uint64_t num_nodes = 0;  // graph size the ranges partition

  uint32_t ShardOf(NodeId v) const {
    // count == 1 short-circuits the division on the default path: this
    // runs once per relaxed edge.
    if (count == 1 || num_nodes == 0) return 0;
    uint32_t s =
        static_cast<uint32_t>(static_cast<uint64_t>(v) * count / num_nodes);
    return s < count ? s : count - 1;  // ids beyond num_nodes clamp
  }
};

/// Frontier priority of the Bidirectional Q_in/Q_out queues: activation
/// first (the paper's prioritization), NodeId as a strict tie-break.
///
/// The tie-break is what makes the lane frontier exact: with a strict
/// *total* order, "the best node of a lane" is a property of the
/// frontier's contents alone, not of any heap's internal layout — so
/// the per-round pop set (every lane whose best activation is within
/// the qualifying fraction of the global best) is a deterministic
/// function of the round-start frontier.
struct ActPriority {
  double act = 0;
  NodeId node = kInvalidNode;

  /// std::priority_queue convention: a < b means a pops *after* b.
  /// Higher activation wins; equal activation falls to the smaller
  /// NodeId. Incomparable duplicates cannot arise: a node is in a given
  /// queue at most once.
  friend bool operator<(const ActPriority& a, const ActPriority& b) {
    if (a.act != b.act) return a.act < b.act;
    return a.node > b.node;
  }
};

}  // namespace banks

#endif  // BANKS_SEARCH_SHARDING_H_
