#include "search/bidirectional.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/shard_team.h"
#include "search/sharding.h"
#include "search/tree_builder.h"
#include "util/indexed_heap.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoState = UINT32_MAX;

// Flags per explored directed edge.
constexpr uint8_t kEdgeRecorded = 1;   // parent/child lists + dist relax done
constexpr uint8_t kSpreadBackward = 2; // activation spread v→u done
constexpr uint8_t kSpreadForward = 4;  // activation spread u→v done

// Outcome of one parallel candidate build (materialization batch). The
// sequential accept pass replays the guards of the one-at-a-time
// materialize in this order: improvement pre-check (kSkip = failed),
// watermark (sequential only — it depends on earlier accepts), then
// last_eraw commit, then the build outcome.
constexpr uint8_t kCandSkip = 0;       // eraw does not improve the root
constexpr uint8_t kCandWalkFail = 1;   // stale sp chain; commit eraw only
constexpr uint8_t kCandBuildFail = 2;  // union build / minimality failed
constexpr uint8_t kCandReady = 3;      // tree staged in cand_trees

// Engage the shard team only when a phase has enough work to amortize
// the wake-up barrier. Purely a scheduling choice: the same values are
// computed either way.
constexpr size_t kMinCandidatesPerShard = 2;
constexpr size_t kMinScanStatesPerShard = 2048;

}  // namespace

SearchStatus BidirectionalSearcher::Resume(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context,
    const StepLimits& limits) const {
  SearchContext::StreamState& ss = context->stream;
  const SliceStart start = BeginResumeSlice(origins, &ss);
  if (start == SliceStart::kAlreadyDone) return SearchStatus::kDone;
  const bool fresh = start == SliceStart::kFresh;

  // The whole control state of the search lives in the stream state;
  // everything below it (frontiers, per-state arrays, output buffers)
  // lives in the context pools. A resumed slice re-binds the references
  // and lambdas — cheap — and continues the loop exactly where the
  // previous slice paused.
  SearchResult& result = ss.result;
  SliceTimer timer(ss.elapsed);
  const uint32_t n = static_cast<uint32_t>(origins.size());

  // ---- Sharding plan ------------------------------------------------------
  // The frontier (queues, node→state maps, §4.5 minima, output buffers)
  // is partitioned into NodeId ranges. Expansion order is a strict total
  // order — activation, then NodeId — so the argmax over per-shard heap
  // tops is the same node a single heap would pop, and every shard count
  // (including 1, the sequential path) runs the identical search.
  const uint32_t num_shards = std::max<uint32_t>(1, options_.shard_count);
  const ShardPlan plan{num_shards, graph_.num_nodes()};
  ShardRuntime runtime(num_shards, options_.shard_pool);

  // ---- State storage (pooled in the reusable context) ---------------------
  // Per-state bookkeeping is structure-of-arrays: parallel flat vectors
  // indexed by state index. The explore loop below only ever touches the
  // arrays it reads — popping a node reads node/depth/flags without
  // dragging the materialization bookkeeping through the cache. State
  // indices are global (discovery order); only the frontier structures
  // are per-shard.
  SearchContext& ctx = *context;
  if (fresh) ctx.BeginQuery(n, num_shards);
  std::vector<NodeId>& node_of = ctx.node;
  std::vector<uint32_t>& depth_of = ctx.depth;
  std::vector<uint8_t>& flags_of = ctx.state_flags;
  std::vector<double>& last_eraw = ctx.last_eraw;
  std::vector<double>& dist = ctx.dist;        // num_states() * n
  std::vector<uint32_t>& sp = ctx.sp;          // next state toward keyword
  std::vector<double>& act = ctx.act;          // per-keyword activation
  std::vector<double>& act_sum = ctx.act_sum;  // per-state total (queue key)

  auto get_state = [&](NodeId v, uint32_t depth) -> uint32_t {
    uint32_t& slot = ctx.node_shard_index[plan.ShardOf(v)][v];
    if (slot != 0) return slot - 1;  // stored index + 1; 0 means new
    uint32_t idx = static_cast<uint32_t>(node_of.size());
    slot = idx + 1;
    node_of.push_back(v);
    depth_of.push_back(depth);
    flags_of.push_back(0);
    last_eraw.push_back(kInf);
    ctx.marked_time.push_back(0);
    ctx.marked_explored.push_back(0);
    ctx.marked_touched.push_back(0);
    ctx.parents.emplace_back();
    ctx.children.emplace_back();
    dist.insert(dist.end(), n, kInf);
    sp.insert(sp.end(), n, kNoState);
    act.insert(act.end(), n, 0.0);
    act_sum.push_back(0.0);
    return idx;
  };

  auto d_at = [&](uint32_t s, uint32_t i) -> double& { return dist[s * n + i]; };
  auto sp_at = [&](uint32_t s, uint32_t i) -> uint32_t& { return sp[s * n + i]; };
  auto a_at = [&](uint32_t s, uint32_t i) -> double& { return act[s * n + i]; };

  // ---- Queues and frontier bookkeeping -----------------------------------
  // One heap per shard; a state lives in the heaps of the shard owning
  // its NodeId. Priorities carry (activation, NodeId) so the cross-shard
  // argmax below is total-order exact.
  std::vector<IndexedHeap<ActPriority>>& qin = ctx.qin;
  std::vector<IndexedHeap<ActPriority>>& qout = ctx.qout;
  // Per (shard, keyword) min-dist over frontier states (§4.5 bound m_i:
  // reduced min across shards).
  std::vector<IndexedHeap<double, std::greater<double>>>& min_dist =
      ctx.min_dist;
  // Min-depth over each queue shard (fallback bound when no distance is
  // known).
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>>& qin_depth =
      ctx.qin_depth;
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>>& qout_depth =
      ctx.qout_depth;

  auto shard_of_state = [&](uint32_t s) { return plan.ShardOf(node_of[s]); };
  auto pri_of = [&](uint32_t s) {
    return ActPriority{act_sum[s], node_of[s]};
  };

  // Query-invariant aggregate, precomputed at graph build time (§4.5
  // depth floor); recomputing it here would scan every edge per query.
  const double min_edge_weight = graph_.MinEdgeWeight();

  // The per-keyword frontier-minimum heaps only feed the tight bound;
  // maintaining them costs a heap update per (relaxation × keyword), so
  // loose/immediate modes skip them (their releases are driven by the
  // edge-bound-with-drip machinery, see maybe_release).
  const bool track_frontier_minima = options_.bound == BoundMode::kTight;
  auto frontier_dist_update = [&](uint32_t s, uint32_t i) {
    if (!track_frontier_minima) return;
    const uint32_t p = shard_of_state(s);
    if (qin[p].Contains(s) || qout[p].Contains(s)) {
      if (d_at(s, i) != kInf) min_dist[p * n + i].Update(s, d_at(s, i));
    }
  };
  auto frontier_enter = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    const uint32_t p = shard_of_state(s);
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) != kInf) min_dist[p * n + i].Update(s, d_at(s, i));
    }
  };
  auto frontier_leave = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    const uint32_t p = shard_of_state(s);
    if (qin[p].Contains(s) || qout[p].Contains(s)) return;  // still frontier
    for (uint32_t i = 0; i < n; ++i) {
      if (min_dist[p * n + i].Contains(s)) min_dist[p * n + i].Erase(s);
    }
  };

  // Signature-sharded output buffers, merged at every release check.
  OutputHeap* heaps = ctx.output_heaps.data();
  uint64_t& steps = ss.steps;
  uint64_t& last_progress = ss.last_progress;  // last step best pending changed
  double& last_top = ss.last_top;              // champion score being aged

  // ---- Emission -----------------------------------------------------------
  auto is_complete = [&](uint32_t s) {
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) == kInf) return false;
    }
    return true;
  };

  // Materializing a tree (union Dijkstra + scoring + signature) is two
  // orders of magnitude more expensive than a distance relaxation, and
  // Attach can improve a completed root thousands of times. emit() only
  // *marks* the root; materialize_dirty() builds trees in batches at the
  // release checks, once the batch's distances have settled.
  std::vector<uint32_t>& dirty_roots = ctx.dirty_roots;

  // Top-k eraw watermark: a root whose raw edge score is far beyond the
  // k-th best generated answer cannot enter the top-k (prestige can
  // reorder scores only within a bounded factor; the 2(1+w) slack is
  // generous for λ = 0.2). Prunes the long tail of late completions.
  // Pooled max-heap of the k smallest eraws seen.
  std::vector<double>& best_eraws = ctx.best_eraws;
  auto beyond_watermark = [&](double eraw) {
    return best_eraws.size() >= options_.k &&
           eraw > 2.0 * (1.0 + best_eraws.front());
  };

  auto emit = [&](uint32_t s) {
    if (!is_complete(s)) return;
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    // Re-materialize only on a >=2% improvement: micro-refinements do
    // not change rank but tree construction dominates per-answer cost.
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    if (beyond_watermark(eraw)) return;
    if (!(flags_of[s] & kStateDirty)) {
      flags_of[s] |= kStateDirty;
      ctx.marked_time[s] = timer.ElapsedSeconds();
      ctx.marked_explored[s] = result.metrics.nodes_explored;
      ctx.marked_touched[s] = result.metrics.nodes_touched;
      dirty_roots.push_back(s);
    }
  };

  // Builds the candidate tree for marked root `s` into *scratch's pooled
  // buffers and stages it in ctx.cand_trees[j]. Pure reads of the
  // settled dist/sp/marked state — safe for concurrent shard workers —
  // with all accept decisions deferred to the sequential pass below.
  auto build_candidate = [&](size_t j, SearchContext* scratch) {
    const uint32_t s = dirty_roots[j];
    ctx.cand_state[j] = kCandSkip;
    if (!is_complete(s)) return;
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    ctx.cand_eraw[j] = eraw;

    std::vector<NodeId>& keyword_nodes = scratch->kw_scratch;
    std::vector<AnswerEdge>& union_edges = scratch->union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    ctx.cand_state[j] = kCandWalkFail;
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t cur = s;
      size_t guard = 0;
      while (sp_at(cur, i) != kNoState) {
        uint32_t nxt = sp_at(cur, i);
        union_edges.push_back(AnswerEdge{
            node_of[cur], node_of[nxt],
            static_cast<float>(d_at(cur, i) - d_at(nxt, i))});
        cur = nxt;
        if (++guard > node_of.size()) return;  // stale cycle; skip emission
      }
      if (d_at(cur, i) != 0) return;  // broken chain; skip
      keyword_nodes[i] = node_of[cur];
    }
    AnswerTree& tree = scratch->answer_scratch;
    ctx.cand_state[j] = kCandBuildFail;
    if (!BuildAnswerFromPathUnion(node_of[s], keyword_nodes, union_edges,
                                  &scratch->tree_scratch, &tree) ||
        !tree.IsMinimalRooted()) {
      return;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = ctx.marked_time[s];
    tree.explored_at_generation = ctx.marked_explored[s];
    tree.touched_at_generation = ctx.marked_touched[s];
    ctx.cand_trees[j] = tree;  // copy-assign into the recycled slot
    ctx.cand_state[j] = kCandReady;
  };

  // Two-phase materialization: shard workers build the batch's candidate
  // trees in parallel (the expensive union-Dijkstra + scoring), then the
  // coordinator replays acceptance — watermark, last_eraw commit,
  // duplicate suppression, metrics — sequentially in mark order. The
  // outcome is byte-identical to materializing each root on arrival.
  auto materialize_dirty = [&] {
    const size_t batch = dirty_roots.size();
    if (batch == 0) return;
    if (ctx.cand_trees.size() < batch) ctx.cand_trees.resize(batch);
    ctx.cand_state.assign(batch, kCandSkip);
    ctx.cand_eraw.assign(batch, kInf);
    if (runtime.Engage(batch, kMinCandidatesPerShard)) {
      runtime.PrepareWorkerScratch();
      runtime.Run([&](uint32_t shard) {
        SearchContext* scratch =
            shard == 0 ? &ctx : runtime.WorkerScratch(shard);
        for (size_t j = shard; j < batch; j += num_shards) {
          build_candidate(j, scratch);
        }
      });
    } else {
      for (size_t j = 0; j < batch; ++j) build_candidate(j, &ctx);
    }

    for (size_t j = 0; j < batch; ++j) {
      const uint32_t s = dirty_roots[j];
      flags_of[s] &= static_cast<uint8_t>(~kStateDirty);
      if (ctx.cand_state[j] == kCandSkip) continue;
      const double eraw = ctx.cand_eraw[j];
      if (beyond_watermark(eraw)) continue;
      last_eraw[s] = eraw;
      if (ctx.cand_state[j] != kCandReady) continue;
      AnswerTree& tree = ctx.cand_trees[j];
      uint64_t sig = tree.Signature(&ctx.sig_scratch);
      if (heaps[sig % num_shards].InsertCopy(tree, sig)) {
        result.metrics.answers_generated++;
        best_eraws.push_back(eraw);
        std::push_heap(best_eraws.begin(), best_eraws.end());
        if (best_eraws.size() > options_.k) {
          std::pop_heap(best_eraws.begin(), best_eraws.end());
          best_eraws.pop_back();
        }
        double top = MergedBestPendingScore(heaps, num_shards);
        if (top > last_top + 1e-15) {
          last_top = top;
          last_progress = steps;
        }
      }
    }
    dirty_roots.clear();
  };

  // ---- Attach: best-first propagation of distance improvements (§4.2.1) --
  // The scratch queue lives on the context (drained to empty before each
  // return, so reuse is safe) — Attach runs once per relaxation and a
  // fresh heap allocation per call would dominate small queries.
  auto attach = [&](uint32_t s0, uint32_t i) {
    auto& pq = ctx.attach_queue;
    pq.emplace(d_at(s0, i), s0);
    while (!pq.empty()) {
      auto [d0, u] = pq.top();
      pq.pop();
      if (d0 > d_at(u, i) + 1e-12) continue;  // stale
      ctx.edge_lists.ForEach(ctx.parents[u], [&](uint32_t x, float w) {
        result.metrics.propagation_steps++;
        double nd = d0 + w;
        if (nd < d_at(x, i) - 1e-12) {
          d_at(x, i) = nd;
          sp_at(x, i) = u;
          frontier_dist_update(x, i);
          emit(x);
          pq.emplace(nd, x);
        }
      });
    }
  };

  // ---- Activate: best-first propagation of activation increases (§4.3) ---
  auto queue_priority_update = [&](uint32_t s) {
    const uint32_t p = shard_of_state(s);
    if (qin[p].Contains(s)) qin[p].Update(s, pri_of(s));
    if (qout[p].Contains(s)) qout[p].Update(s, pri_of(s));
  };

  auto raise_activation = [&](uint32_t s, uint32_t i, double value) -> bool {
    if (options_.combine == ActivationCombine::kSum) {
      act_sum[s] += value;
      a_at(s, i) += value;
      queue_priority_update(s);
      return false;  // additive mode does not re-propagate
    }
    // Sub-0.1% increases are absorbed without re-propagation: activation
    // is a *priority* signal, and micro-cascades through the explored
    // region dominate running time while never changing pop order.
    if (value <= a_at(s, i) * 1.001 + 1e-18) return false;
    act_sum[s] += value - a_at(s, i);
    a_at(s, i) = value;
    queue_priority_update(s);
    return true;
  };

  auto activate = [&](uint32_t s0, uint32_t i) {
    if (options_.combine == ActivationCombine::kSum) return;
    auto& pq = ctx.activate_queue;  // max-heap: strongest activation first
    pq.emplace(a_at(s0, i), s0);
    while (!pq.empty()) {
      auto [a0, v] = pq.top();
      pq.pop();
      if (a0 < a_at(v, i) * (1 - 1e-12)) continue;  // stale
      const NodeId v_node = node_of[v];
      double in_norm = graph_.InInverseWeightSum(v_node);
      if (in_norm > 0) {
        ctx.edge_lists.ForEach(ctx.parents[v], [&](uint32_t x, float w) {
          result.metrics.propagation_steps++;
          double recv = options_.mu * a0 * (1.0 / w) / in_norm;
          if (raise_activation(x, i, recv)) pq.emplace(recv, x);
        });
      }
      double out_norm = graph_.OutInverseWeightSum(v_node);
      if (out_norm > 0) {
        ctx.edge_lists.ForEach(ctx.children[v], [&](uint32_t y, float w) {
          result.metrics.propagation_steps++;
          double recv = options_.mu * a0 * (1.0 / w) / out_norm;
          if (raise_activation(y, i, recv)) pq.emplace(recv, y);
        });
      }
    }
  };

  // ---- ExploreEdge (Figure 3): edge (u,v), i.e. u→v in the graph ----------
  // `incoming_context` is true when called while expanding v from Q_in
  // (activation then spreads v→u); false when expanding u from Q_out
  // (activation spreads u→v).
  auto explore_edge = [&](uint32_t su, uint32_t sv, float w,
                          bool incoming_context) {
    result.metrics.edges_relaxed++;
    uint64_t key = (static_cast<uint64_t>(su) << 32) | sv;
    // Reference into the flat map: valid until the next edge_flags
    // insertion, and nothing below inserts into edge_flags.
    uint8_t& flags = ctx.edge_flags[key];

    if (!(flags & kEdgeRecorded)) {
      flags |= kEdgeRecorded;
      ctx.edge_lists.Append(&ctx.parents[sv], su, w);
      ctx.edge_lists.Append(&ctx.children[su], sv, w);
      // Relax u's per-keyword distances through v ("if u has a better
      // path to t_i via v").
      for (uint32_t i = 0; i < n; ++i) {
        if (d_at(sv, i) == kInf) continue;
        double nd = d_at(sv, i) + w;
        if (nd < d_at(su, i) - 1e-12) {
          d_at(su, i) = nd;
          sp_at(su, i) = sv;
          frontier_dist_update(su, i);
          emit(su);
          attach(su, i);
        }
      }
    }

    if (incoming_context && !(flags & kSpreadBackward)) {
      flags |= kSpreadBackward;
      double norm = graph_.InInverseWeightSum(node_of[sv]);
      if (norm > 0) {
        for (uint32_t i = 0; i < n; ++i) {
          if (a_at(sv, i) <= 0) continue;
          double recv = options_.mu * a_at(sv, i) * (1.0 / w) / norm;
          if (raise_activation(su, i, recv)) activate(su, i);
        }
      }
    }
    if (!incoming_context && !(flags & kSpreadForward)) {
      flags |= kSpreadForward;
      double norm = graph_.OutInverseWeightSum(node_of[su]);
      if (norm > 0) {
        for (uint32_t i = 0; i < n; ++i) {
          if (a_at(su, i) <= 0) continue;
          double recv = options_.mu * a_at(su, i) * (1.0 / w) / norm;
          if (raise_activation(sv, i, recv)) activate(sv, i);
        }
      }
    }
  };

  // ---- Seeding (Eq. 1): a_{u,i} = prestige(u) / |S_i| ---------------------
  if (fresh) {
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<NodeId>& uniq = ctx.uniq_scratch;
      uniq.assign(origins[i].begin(), origins[i].end());
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      const double denom = static_cast<double>(uniq.size());
      for (NodeId o : uniq) {
        uint32_t s = get_state(o, 0);
        d_at(s, i) = 0;
        double prestige = prestige_.empty() ? 1.0 : prestige_[o];
        a_at(s, i) = std::max(a_at(s, i), prestige / denom);
      }
    }
    // Recompute totals exactly (seed arithmetic above avoids double counts).
    for (uint32_t s = 0; s < node_of.size(); ++s) {
      double total = 0;
      for (uint32_t i = 0; i < n; ++i) total += a_at(s, i);
      act_sum[s] = total;
      const uint32_t p = shard_of_state(s);
      qin[p].Push(s, pri_of(s));
      qin_depth[p].Push(s, depth_of[s]);
      result.metrics.nodes_touched++;
      frontier_enter(s);
    }
  }

  // ---- §4.5 release bound -------------------------------------------------
  // Both floors are reductions across shards: min over the per-shard
  // frontier-minimum heaps, min over the per-shard depth heaps.
  auto keyword_floor = [&](uint32_t i) -> double {
    double m = kInf;
    for (uint32_t p = 0; p < num_shards; ++p) {
      if (!min_dist[p * n + i].empty()) {
        m = std::min(m, min_dist[p * n + i].TopPriority());
      }
    }
    uint32_t best_in_depth = UINT32_MAX;
    uint32_t best_out_depth = UINT32_MAX;
    for (uint32_t p = 0; p < num_shards; ++p) {
      if (!qin_depth[p].empty()) {
        best_in_depth = std::min(best_in_depth, qin_depth[p].TopPriority());
      }
      if (!qout_depth[p].empty()) {
        best_out_depth = std::min(best_out_depth, qout_depth[p].TopPriority());
      }
    }
    double depth_floor = kInf;
    if (best_in_depth != UINT32_MAX) {
      depth_floor = (best_in_depth + 1) * min_edge_weight;
    } else if (best_out_depth != UINT32_MAX) {
      depth_floor = (best_out_depth + 1) * min_edge_weight;
    }
    return std::min(m, depth_floor);
  };

  auto maybe_release = [&](bool force) {
    // The tight bound's NRA scan is O(states); amortize it. Loose and
    // immediate releases are cheap and run at the base interval.
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, node_of.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    materialize_dirty();
    std::vector<double>& m = ctx.bound_scratch;
    m.assign(n, 0.0);
    double h = 0;
    for (uint32_t i = 0; i < n; ++i) {
      m[i] = keyword_floor(i);
      h += m[i];
    }
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      MergedDrain(heaps, num_shards, options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      MergedReleaseWithEdgeBound(heaps, num_shards, h, options_.k,
                                 &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k &&
          MergedPendingCount(heaps, num_shards) > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        MergedReleaseBest(heaps, num_shards,
                          std::max<size_t>(1, options_.k / 8), options_.k,
                          &result.answers);
      }
    } else {
      // NRA-style: unseen roots are bounded by h; every partially seen
      // node may complete with m_i for its missing keywords. The scan
      // over the flat state slab is a pure min-reduction, so each shard
      // worker takes a contiguous slice of the state range.
      double best_potential_eraw = h;
      const size_t num_states = node_of.size();
      auto scan_slice = [&](size_t begin, size_t end) -> double {
        double best = kInf;
        for (size_t s = begin; s < end; ++s) {
          double pot = 0;
          for (uint32_t i = 0; i < n; ++i) {
            pot += std::min(dist[s * n + i], m[i]);
          }
          best = std::min(best, pot);
        }
        return best;
      };
      if (runtime.Engage(num_states, kMinScanStatesPerShard)) {
        ctx.nra_partial.assign(num_shards, kInf);
        runtime.Run([&](uint32_t shard) {
          size_t begin = num_states * shard / num_shards;
          size_t end = num_states * (shard + 1) / num_shards;
          ctx.nra_partial[shard] = scan_slice(begin, end);
        });
        for (double p : ctx.nra_partial) {
          best_potential_eraw = std::min(best_potential_eraw, p);
        }
      } else {
        best_potential_eraw =
            std::min(best_potential_eraw, scan_slice(0, num_states));
      }
      double ub = ScoreUpperBound(h, 1.0, options_.lambda);
      ub = std::max(
          ub, ScoreUpperBound(best_potential_eraw, 1.0, options_.lambda));
      MergedReleaseWithScoreBound(heaps, num_shards, ub - 1e-12, options_.k,
                                  &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = MergedBestPendingScore(heaps, num_shards);
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  // Slice bounds (streaming pauses): checked between loop iterations
  // only, so a pause never changes what the search computes.
  const SliceGuard slice(limits, &ss, &timer);

  // ---- Main loop (Figure 3 lines 4–23) ------------------------------------
  // The pop is the argmax over the per-shard heap tops under the
  // (activation, NodeId) total order; on an exact tie between the best
  // Q_in and Q_out tops — only possible when one node is in both — Q_in
  // wins, as in the unsharded algorithm.
  for (;;) {
    int best_in = -1;
    int best_out = -1;
    ActPriority in_top;
    ActPriority out_top;
    for (uint32_t p = 0; p < num_shards; ++p) {
      if (!qin[p].empty() &&
          (best_in < 0 || in_top < qin[p].TopPriority())) {
        best_in = static_cast<int>(p);
        in_top = qin[p].TopPriority();
      }
      if (!qout[p].empty() &&
          (best_out < 0 || out_top < qout[p].TopPriority())) {
        best_out = static_cast<int>(p);
        out_top = qout[p].TopPriority();
      }
    }
    if (best_in < 0 && best_out < 0) break;
    if (result.answers.size() >= options_.k) break;
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (slice.PauseDue()) return slice.Pause();

    const bool take_in =
        best_out < 0 || (best_in >= 0 && !(in_top < out_top));  // tie → Q_in

    // NOTE: get_state() may reallocate the per-state arrays; never hold a
    // reference into them across it — copy what we need into locals.
    if (take_in) {
      const uint32_t vp = static_cast<uint32_t>(best_in);
      uint32_t v = qin[vp].Pop();
      if (qin_depth[vp].Contains(v)) qin_depth[vp].Erase(v);
      frontier_leave(v);
      flags_of[v] |= kStatePoppedIn;
      const NodeId v_node = node_of[v];
      const uint32_t v_depth = depth_of[v];
      result.metrics.nodes_explored++;
      steps++;
      emit(v);
      if (v_depth < options_.dmax) {
        for (const Edge& e : graph_.InEdges(v_node)) {
          if (!EdgeAllowed(e)) continue;
          uint32_t u = get_state(e.other, v_depth + 1);
          explore_edge(u, v, e.weight, /*incoming_context=*/true);
          const uint32_t up = shard_of_state(u);
          if (!(flags_of[u] & kStatePoppedIn) && !qin[up].Contains(u)) {
            qin[up].Push(u, pri_of(u));
            qin_depth[up].Push(u, depth_of[u]);
            result.metrics.nodes_touched++;
            frontier_enter(u);
          }
        }
      }
      if (!(flags_of[v] & kStateEverInQout)) {
        flags_of[v] |= kStateEverInQout;
        qout[vp].Push(v, pri_of(v));
        qout_depth[vp].Push(v, v_depth);
        result.metrics.nodes_touched++;
        frontier_enter(v);
      }
    } else {
      const uint32_t up = static_cast<uint32_t>(best_out);
      uint32_t u = qout[up].Pop();
      if (qout_depth[up].Contains(u)) qout_depth[up].Erase(u);
      frontier_leave(u);
      flags_of[u] |= kStatePoppedOut;
      const NodeId u_node = node_of[u];
      const uint32_t u_depth = depth_of[u];
      result.metrics.nodes_explored++;
      steps++;
      emit(u);
      if (u_depth < options_.dmax) {
        for (const Edge& e : graph_.OutEdges(u_node)) {
          if (!EdgeAllowed(e)) continue;
          uint32_t v = get_state(e.other, u_depth + 1);
          explore_edge(u, v, e.weight, /*incoming_context=*/false);
          const uint32_t vp = shard_of_state(v);
          if (!(flags_of[v] & kStateEverInQout)) {
            flags_of[v] |= kStateEverInQout;
            qout[vp].Push(v, pri_of(v));
            qout_depth[vp].Push(v, depth_of[v]);
            result.metrics.nodes_touched++;
            frontier_enter(v);
          }
        }
      }
    }
    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    MergedDrain(heaps, num_shards, options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  return FinishResume(&ss, timer);
}

}  // namespace banks
