#include "search/bidirectional.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "storage/buffer_pool.h"

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/shard_team.h"
#include "search/sharding.h"
#include "search/tree_builder.h"
#include "util/indexed_heap.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoState = UINT32_MAX;

// Outcome of one parallel candidate build (materialization batch). The
// sequential accept pass replays the guards of the one-at-a-time
// materialize in this order: improvement pre-check (kSkip = failed),
// watermark (sequential only — it depends on earlier accepts), then
// last_eraw commit, then the build outcome.
constexpr uint8_t kCandSkip = 0;       // eraw does not improve the root
constexpr uint8_t kCandWalkFail = 1;   // stale sp chain; commit eraw only
constexpr uint8_t kCandBuildFail = 2;  // union build / minimality failed
constexpr uint8_t kCandReady = 3;      // tree staged in cand_trees

// Engage the shard team for the *tail* phases (post-loop force release)
// only when there is enough work to amortize the wake-up. Purely a
// scheduling choice: the same values are computed either way.
constexpr size_t kMinCandidatesPerShard = 2;
constexpr size_t kMinScanStatesPerShard = 2048;

// A lane pops this round iff its best frontier activation is at least
// this fraction of the global best. The global-best lane always
// qualifies, so every round pops at least one node and the loop makes
// progress; lanes holding only low-priority work sit the round out, so
// the pop set tracks the paper's activation prioritization instead of
// blindly popping one node per lane. A query constant: the pop set is a
// deterministic function of the round-start frontier.
constexpr double kLanePopFraction = 0.5;

// Per-round coordinator→worker control block. Written only by worker 0
// in its sequential sections, each of which ends at a barrier before
// any other worker reads; the round-entry barrier closes the reverse
// window (every read of round R's fields precedes the round-R+1
// rewrite). The barriers' release/acquire pairs are the only
// synchronization these plain fields need.
struct RoundFlags {
  bool stop = false;       // leave the round loop (B_control)
  bool paused = false;     // stop was a streaming pause, not termination
  bool page_wait = false;  // stop was a paged-graph page fault (kPageWait)
  bool cascade = false;   // current mailbox bank still holds messages
  bool do_release = false;  // this round crossed a release-check boundary
  size_t build_batch = 0;   // dirty roots staged for the build phase
  // Metric bases frozen at round start: every root marked during the
  // round reports the same explored/touched-at-generation, making the
  // bookkeeping independent of intra-round lane order.
  uint64_t explored_base = 0;
  uint64_t touched_base = 0;
};

}  // namespace

SearchStatus BidirectionalSearcher::Resume(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context,
    const StepLimits& limits) const {
  SearchContext::StreamState& ss = context->stream;
  const SliceStart start = BeginResumeSlice(origins, &ss);
  if (start == SliceStart::kAlreadyDone) return SearchStatus::kDone;
  const bool fresh = start == SliceStart::kFresh;

  // The whole control state of the search lives in the stream state;
  // everything below it (frontiers, per-state arrays, mailboxes, output
  // buffers) lives in the context pools. A resumed slice re-binds the
  // references and lambdas — cheap — and continues the round loop
  // exactly at the round boundary where the previous slice paused (the
  // only place a pause can land, so all mailboxes are empty here).
  SearchResult& result = ss.result;
  SliceTimer timer(ss.elapsed);
  const uint32_t n = static_cast<uint32_t>(origins.size());

  // ---- Lanes and workers --------------------------------------------------
  // The search state is partitioned into kNumLanes fixed lanes (see
  // sharding.h for the BSP round structure and the determinism
  // contract). shard_count picks only how many worker threads execute
  // the lanes: W == 1 runs them sequentially through the identical code
  // path, so every shard count produces byte-identical answers.
  const uint32_t L = kNumLanes;
  const uint32_t num_workers =
      std::min(std::max<uint32_t>(1, options_.shard_count), kNumLanes);
  const LanePlan plan = LanePlan::ForNodes(graph_.num_nodes());
  ShardRuntime runtime(num_workers, options_.shard_pool, options_.team_pool);

  // ---- State storage (pooled in the reusable context) ---------------------
  // Per-state bookkeeping is structure-of-arrays: parallel flat vectors
  // indexed by global state index (discovery order). The arrays grow
  // only in the coordinator's sequential discovery pass, so parallel
  // phases read them without ever racing a reallocation.
  SearchContext& ctx = *context;
  if (fresh) ctx.BeginQuery(n, num_workers);
  std::vector<NodeId>& node_of = ctx.node;
  std::vector<uint32_t>& depth_of = ctx.depth;
  std::vector<uint8_t>& flags_of = ctx.state_flags;
  std::vector<double>& last_eraw = ctx.last_eraw;
  std::vector<double>& dist = ctx.dist;        // num_states() * n
  std::vector<uint32_t>& sp = ctx.sp;          // next state toward keyword
  std::vector<double>& act = ctx.act;          // per-keyword activation
  std::vector<double>& act_sum = ctx.act_sum;  // per-state total (queue key)

  // Discovery: coordinator-only (sequential sections), so first-message
  // order — which is deterministic — decides a new state's depth.
  auto get_state = [&](NodeId v, uint32_t depth) -> uint32_t {
    uint32_t& slot = ctx.node_shard_index[plan.LaneOf(v)][v];
    if (slot != 0) return slot - 1;  // stored index + 1; 0 means new
    uint32_t idx = static_cast<uint32_t>(node_of.size());
    slot = idx + 1;
    node_of.push_back(v);
    depth_of.push_back(depth);
    flags_of.push_back(0);
    last_eraw.push_back(kInf);
    ctx.marked_time.push_back(0);
    ctx.marked_explored.push_back(0);
    ctx.marked_touched.push_back(0);
    ctx.parents.emplace_back();
    ctx.children.emplace_back();
    dist.insert(dist.end(), n, kInf);
    sp.insert(sp.end(), n, kNoState);
    act.insert(act.end(), n, 0.0);
    act_sum.push_back(0.0);
    return idx;
  };

  auto d_at = [&](uint32_t s, uint32_t i) -> double& { return dist[s * n + i]; };
  auto sp_at = [&](uint32_t s, uint32_t i) -> uint32_t& { return sp[s * n + i]; };
  auto a_at = [&](uint32_t s, uint32_t i) -> double& { return act[s * n + i]; };

  // ---- Queues and frontier bookkeeping -----------------------------------
  // One heap per lane; a state lives in the heaps of the lane owning
  // its NodeId, and only that lane's worker ever touches them during a
  // parallel phase.
  std::vector<IndexedHeap<ActPriority>>& qin = ctx.qin;
  std::vector<IndexedHeap<ActPriority>>& qout = ctx.qout;
  // Per (lane, keyword) min-dist over frontier states (§4.5 bound m_i:
  // reduced min across lanes at the release check).
  std::vector<IndexedHeap<double, std::greater<double>>>& min_dist =
      ctx.min_dist;
  // Min-depth over each queue lane (fallback bound when no distance is
  // known).
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>>& qin_depth =
      ctx.qin_depth;
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>>& qout_depth =
      ctx.qout_depth;

  auto lane_of_state = [&](uint32_t s) { return plan.LaneOf(node_of[s]); };
  auto pri_of = [&](uint32_t s) {
    return ActPriority{act_sum[s], node_of[s]};
  };

  // Query-invariant aggregate, precomputed at graph build time (§4.5
  // depth floor); recomputing it here would scan every edge per query.
  const double min_edge_weight = graph_.MinEdgeWeight();

  // The per-keyword frontier-minimum heaps only feed the tight bound;
  // maintaining them costs a heap update per (relaxation × keyword), so
  // loose/immediate modes skip them (their releases are driven by the
  // edge-bound-with-drip machinery, see the release sections below).
  const bool track_frontier_minima = options_.bound == BoundMode::kTight;
  auto frontier_dist_update = [&](uint32_t s, uint32_t i) {
    if (!track_frontier_minima) return;
    const uint32_t l = lane_of_state(s);
    if (qin[l].Contains(s) || qout[l].Contains(s)) {
      if (d_at(s, i) != kInf) min_dist[l * n + i].Update(s, d_at(s, i));
    }
  };
  auto frontier_enter = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    const uint32_t l = lane_of_state(s);
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) != kInf) min_dist[l * n + i].Update(s, d_at(s, i));
    }
  };
  auto frontier_leave = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    const uint32_t l = lane_of_state(s);
    if (qin[l].Contains(s) || qout[l].Contains(s)) return;  // still frontier
    for (uint32_t i = 0; i < n; ++i) {
      if (min_dist[l * n + i].Contains(s)) min_dist[l * n + i].Erase(s);
    }
  };

  // Signature-sharded output buffers, merged at every release check.
  OutputHeap* heaps = ctx.output_heaps.data();
  uint64_t& steps = ss.steps;
  uint64_t& last_progress = ss.last_progress;  // last step best pending changed
  double& last_top = ss.last_top;              // champion score being aged

  // ---- Round control block ------------------------------------------------
  RoundFlags flags;
  // Failure protocol: any phase body that throws records the exception
  // and raises `failed`; phase bodies are skipped once it is up, but
  // every worker still arrives at every barrier, and the only loop exit
  // is the control barrier, where worker 0 — for whom `failed` is
  // stable — publishes stop. Uniform barrier traffic is what makes the
  // abort deadlock-free.
  std::atomic<bool> failed{false};
  // Raised by the coordinator at round end when any lane's expansion hit
  // a failed page read (LaneCounters::io_errors); the next control
  // barrier stops the loop and Resume returns kIoError. Coordinator-only
  // writes/reads, so a plain bool is enough.
  bool io_failure = false;
  std::exception_ptr first_failure;
  std::mutex failure_mu;
  auto record_failure = [&]() {
    std::lock_guard<std::mutex> lock(failure_mu);
    if (!first_failure) first_failure = std::current_exception();
    failed.store(true, std::memory_order_release);
  };
  auto guarded = [&](auto&& fn) {
    if (failed.load(std::memory_order_acquire)) return;
    try {
      fn();
    } catch (...) {
      record_failure();
    }
  };

  // ---- Mailboxes ----------------------------------------------------------
  auto box_at = [&](int bank, uint32_t sender, uint32_t receiver)
      -> LaneMailbox& {
    return ctx.mailboxes[(static_cast<size_t>(bank) * kNumLanes + sender) *
                             kNumLanes +
                         receiver];
  };
  auto post = [&](int bank, uint32_t sender, uint32_t receiver,
                  const LaneMessage& m) {
    LaneMailbox& box = box_at(bank, sender, receiver);
    box.msgs.push_back(m);
    LaneCounters& c = ctx.lane_counters[sender];
    if (receiver != sender) c.cross_msgs++;
    if (box.msgs.size() > c.max_box) c.max_box = box.msgs.size();
  };

  // ---- Emission -----------------------------------------------------------
  auto is_complete = [&](uint32_t s) {
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) == kInf) return false;
    }
    return true;
  };

  // Materializing a tree (union Dijkstra + scoring + signature) is two
  // orders of magnitude more expensive than a distance relaxation, and
  // Attach can improve a completed root thousands of times. emit() only
  // *marks* the root (into its lane's emit list — emit runs inside
  // parallel phases); the build phase materializes trees in batches at
  // the release checks, once the batch's distances have settled.
  std::vector<uint32_t>& dirty_roots = ctx.dirty_roots;

  // Top-k eraw watermark: a root whose raw edge score is far beyond the
  // k-th best generated answer cannot enter the top-k (prestige can
  // reorder scores only within a bounded factor; the 2(1+w) slack is
  // generous for λ = 0.2). Prunes the long tail of late completions.
  // Pooled max-heap of the k smallest eraws seen; mutated only in the
  // coordinator's accept section, so parallel-phase reads are safe.
  std::vector<double>& best_eraws = ctx.best_eraws;
  auto beyond_watermark = [&](double eraw) {
    return best_eraws.size() >= options_.k &&
           eraw > 2.0 * (1.0 + best_eraws.front());
  };

  auto emit = [&](uint32_t s) {
    if (!is_complete(s)) return;
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    // Re-materialize only on a >=2% improvement: micro-refinements do
    // not change rank but tree construction dominates per-answer cost.
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    if (beyond_watermark(eraw)) return;
    if (!(flags_of[s] & kStateDirty)) {
      flags_of[s] |= kStateDirty;
      ctx.marked_time[s] = timer.ElapsedSeconds();
      ctx.marked_explored[s] = flags.explored_base;
      ctx.marked_touched[s] = flags.touched_base;
      ctx.lane_dirty[lane_of_state(s)].push_back(s);
    }
  };

  // Builds the candidate tree for marked root `s` into *scratch's pooled
  // buffers and stages it in ctx.cand_trees[j]. Pure reads of the
  // settled dist/sp/marked state — safe for concurrent shard workers —
  // with all accept decisions deferred to the sequential pass below.
  auto build_candidate = [&](size_t j, SearchContext* scratch) {
    const uint32_t s = dirty_roots[j];
    ctx.cand_state[j] = kCandSkip;
    if (!is_complete(s)) return;
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    ctx.cand_eraw[j] = eraw;

    std::vector<NodeId>& keyword_nodes = scratch->kw_scratch;
    std::vector<AnswerEdge>& union_edges = scratch->union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    ctx.cand_state[j] = kCandWalkFail;
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t cur = s;
      size_t guard = 0;
      while (sp_at(cur, i) != kNoState) {
        uint32_t nxt = sp_at(cur, i);
        union_edges.push_back(AnswerEdge{
            node_of[cur], node_of[nxt],
            static_cast<float>(d_at(cur, i) - d_at(nxt, i))});
        cur = nxt;
        if (++guard > node_of.size()) return;  // stale cycle; skip emission
      }
      if (d_at(cur, i) != 0) return;  // broken chain; skip
      keyword_nodes[i] = node_of[cur];
    }
    AnswerTree& tree = scratch->answer_scratch;
    ctx.cand_state[j] = kCandBuildFail;
    if (!BuildAnswerFromPathUnion(node_of[s], keyword_nodes, union_edges,
                                  &scratch->tree_scratch, &tree) ||
        !tree.IsMinimalRooted()) {
      return;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = ctx.marked_time[s];
    tree.explored_at_generation = ctx.marked_explored[s];
    tree.touched_at_generation = ctx.marked_touched[s];
    ctx.cand_trees[j] = tree;  // copy-assign into the recycled slot
    ctx.cand_state[j] = kCandReady;
  };

  // Sequential accept replay — watermark, last_eraw commit, duplicate
  // suppression, metrics — in mark order. Coordinator only.
  auto accept_batch = [&] {
    const size_t batch = dirty_roots.size();
    for (size_t j = 0; j < batch; ++j) {
      const uint32_t s = dirty_roots[j];
      flags_of[s] &= static_cast<uint8_t>(~kStateDirty);
      if (ctx.cand_state[j] == kCandSkip) continue;
      const double eraw = ctx.cand_eraw[j];
      if (beyond_watermark(eraw)) continue;
      last_eraw[s] = eraw;
      if (ctx.cand_state[j] != kCandReady) continue;
      AnswerTree& tree = ctx.cand_trees[j];
      uint64_t sig = tree.Signature(&ctx.sig_scratch);
      if (heaps[sig % L].InsertCopy(tree, sig)) {
        result.metrics.answers_generated++;
        best_eraws.push_back(eraw);
        std::push_heap(best_eraws.begin(), best_eraws.end());
        if (best_eraws.size() > options_.k) {
          std::pop_heap(best_eraws.begin(), best_eraws.end());
          best_eraws.pop_back();
        }
        double top = MergedBestPendingScore(heaps, L);
        if (top > last_top + 1e-15) {
          last_top = top;
          last_progress = steps;
        }
      }
    }
    dirty_roots.clear();
  };

  // ---- Attach: best-first propagation of distance improvements (§4.2.1) --
  // Lane-local cascade: runs on the lane's own queue; hops that leave
  // the lane are posted as kRelax messages into the produce bank and
  // picked up by the owner in the next cascade sub-round. The remote
  // send is unconditional — the receiver re-checks improvement, and the
  // epsilon guard keeps the message volume finite — because peeking at
  // the remote row to pre-filter would read state another lane may be
  // mutating this very phase.
  auto attach_local = [&](uint32_t l, uint32_t i, int pb) {
    auto& pq = ctx.attach_queues[l];
    LaneCounters& c = ctx.lane_counters[l];
    while (!pq.empty()) {
      auto [d0, u] = pq.top();
      pq.pop();
      if (d0 > d_at(u, i) + 1e-12) continue;  // stale
      ctx.edge_lists.ForEach(ctx.parents[u], [&](uint32_t x, float w) {
        c.propagation++;
        double nd = d0 + w;
        const uint32_t xl = lane_of_state(x);
        if (xl != l) {
          LaneMessage m;
          m.type = LaneMessage::kRelax;
          m.kw = i;
          m.target_state = x;
          m.via_state = u;
          m.value = nd;
          post(pb, l, xl, m);
          return;  // continue ForEach
        }
        if (nd < d_at(x, i) - 1e-12) {
          d_at(x, i) = nd;
          sp_at(x, i) = u;
          frontier_dist_update(x, i);
          emit(x);
          pq.emplace(nd, x);
        }
      });
    }
  };

  // ---- Activate: best-first propagation of activation increases (§4.3) ---
  auto queue_priority_update = [&](uint32_t s) {
    const uint32_t l = lane_of_state(s);
    if (qin[l].Contains(s)) qin[l].Update(s, pri_of(s));
    if (qout[l].Contains(s)) qout[l].Update(s, pri_of(s));
  };

  auto raise_local = [&](uint32_t s, uint32_t i, double value) -> bool {
    if (options_.combine == ActivationCombine::kSum) {
      act_sum[s] += value;
      a_at(s, i) += value;
      queue_priority_update(s);
      return false;  // additive mode does not re-propagate
    }
    // Sub-0.1% increases are absorbed without re-propagation: activation
    // is a *priority* signal, and micro-cascades through the explored
    // region dominate running time while never changing pop order.
    if (value <= a_at(s, i) * 1.001 + 1e-18) return false;
    act_sum[s] += value - a_at(s, i);
    a_at(s, i) = value;
    queue_priority_update(s);
    return true;
  };

  auto activate_local = [&](uint32_t l, uint32_t i, int pb) {
    if (options_.combine == ActivationCombine::kSum) return;
    auto& pq = ctx.activate_queues[l];  // max-heap: strongest first
    LaneCounters& c = ctx.lane_counters[l];
    while (!pq.empty()) {
      auto [a0, v] = pq.top();
      pq.pop();
      if (a0 < a_at(v, i) * (1 - 1e-12)) continue;  // stale
      const NodeId v_node = node_of[v];
      double in_norm = graph_.InInverseWeightSum(v_node);
      if (in_norm > 0) {
        ctx.edge_lists.ForEach(ctx.parents[v], [&](uint32_t x, float w) {
          c.propagation++;
          double recv = options_.mu * a0 * (1.0 / w) / in_norm;
          const uint32_t xl = lane_of_state(x);
          if (xl != l) {
            LaneMessage m;
            m.type = LaneMessage::kRaise;
            m.kw = i;
            m.target_state = x;
            m.value = recv;
            post(pb, l, xl, m);
            return;
          }
          if (raise_local(x, i, recv)) pq.emplace(recv, x);
        });
      }
      double out_norm = graph_.OutInverseWeightSum(v_node);
      if (out_norm > 0) {
        ctx.edge_lists.ForEach(ctx.children[v], [&](uint32_t y, float w) {
          c.propagation++;
          double recv = options_.mu * a0 * (1.0 / w) / out_norm;
          const uint32_t yl = lane_of_state(y);
          if (yl != l) {
            LaneMessage m;
            m.type = LaneMessage::kRaise;
            m.kw = i;
            m.target_state = y;
            m.value = recv;
            post(pb, l, yl, m);
            return;
          }
          if (raise_local(y, i, recv)) pq.emplace(recv, y);
        });
      }
    }
  };

  // Relax local state `su` through provider `sv` using the provider's
  // per-keyword distance row `dv` (a mailbox-payload snapshot, or sv's
  // live row when sv is lane-local — old ExploreEdge read it live too).
  auto relax_with_dists = [&](uint32_t l, uint32_t su, uint32_t sv,
                              const double* dv, float w, int pb) {
    for (uint32_t i = 0; i < n; ++i) {
      if (dv[i] == kInf) continue;
      const double nd = dv[i] + w;
      if (nd < d_at(su, i) - 1e-12) {
        d_at(su, i) = nd;
        sp_at(su, i) = sv;
        frontier_dist_update(su, i);
        emit(su);
        ctx.attach_queues[l].emplace(nd, su);
        attach_local(l, i, pb);
      }
    }
  };

  // ---- Message application (cascade sub-rounds) ---------------------------
  // `l` is the receiving lane; `pb` the produce bank for effects that
  // leave the lane again.
  auto apply_message = [&](uint32_t l, const LaneMailbox& box,
                           const LaneMessage& m, int pb) {
    LaneCounters& c = ctx.lane_counters[l];
    switch (m.type) {
      case LaneMessage::kExploreIn: {
        // Popped v explored in-edge u→v; this lane owns u.
        const uint32_t su = m.target_state;
        const uint32_t sv = m.via_state;
        const double* pay = box.payload.data() + m.payload;
        // Relax u through v (Figure 3's "better path to t_i via v"),
        // from v's distance row as of its pop. Later improvements of v
        // flow through the now-linked edge via Attach.
        relax_with_dists(l, su, sv, pay, m.w, pb);
        // Backward activation spread v→u, once per directed edge.
        {
          const uint64_t key = (static_cast<uint64_t>(su) << 32) | sv;
          uint8_t& f = ctx.lane_edge_flags[l][key];
          const bool spread = !(f & kEdgeSpreadIn);
          f |= kEdgeSpreadIn;
          if (spread) {
            for (uint32_t i = 0; i < n; ++i) {
              const double recv = pay[n + i];
              if (recv <= 0) continue;
              if (raise_local(su, i, recv)) {
                ctx.activate_queues[l].emplace(a_at(su, i), su);
                activate_local(l, i, pb);
              }
            }
          }
        }
        // Frontier entry for u.
        if (!(flags_of[su] & kStatePoppedIn) && !qin[l].Contains(su)) {
          qin[l].Push(su, pri_of(su));
          qin_depth[l].Push(su, depth_of[su]);
          c.touched++;
          frontier_enter(su);
        }
        break;
      }
      case LaneMessage::kExploreOut: {
        // Popped u explored out-edge u→v; this lane owns v.
        const uint32_t sv = m.target_state;
        const uint32_t su = m.via_state;
        const double* pay = box.payload.data() + m.payload;
        // u can relax through v when v already has finite distances
        // (the out-context half of ExploreEdge's record-time relax):
        // lane-local u relaxes inline; a remote u gets v's distance row
        // as a kDistReply in the next sub-round.
        {
          bool any = false;
          for (uint32_t i = 0; i < n; ++i) {
            if (d_at(sv, i) != kInf) {
              any = true;
              break;
            }
          }
          if (any) {
            const uint32_t ul = lane_of_state(su);
            if (ul == l) {
              relax_with_dists(l, su, sv, &dist[static_cast<size_t>(sv) * n],
                               m.w, pb);
            } else {
              LaneMailbox& rbox = box_at(pb, l, ul);
              LaneMessage rm;
              rm.type = LaneMessage::kDistReply;
              rm.target_state = su;
              rm.via_state = sv;
              rm.w = m.w;
              rm.payload = static_cast<uint32_t>(rbox.payload.size());
              for (uint32_t i = 0; i < n; ++i) {
                rbox.payload.push_back(d_at(sv, i));
              }
              post(pb, l, ul, rm);
            }
          }
        }
        // Forward activation spread u→v, once per directed edge.
        {
          const uint64_t key = (static_cast<uint64_t>(su) << 32) | sv;
          uint8_t& f = ctx.lane_edge_flags[l][key];
          const bool spread = !(f & kEdgeSpreadOut);
          f |= kEdgeSpreadOut;
          if (spread) {
            for (uint32_t i = 0; i < n; ++i) {
              const double recv = pay[i];
              if (recv <= 0) continue;
              if (raise_local(sv, i, recv)) {
                ctx.activate_queues[l].emplace(a_at(sv, i), sv);
                activate_local(l, i, pb);
              }
            }
          }
        }
        // Frontier entry for v (Q_out).
        if (!(flags_of[sv] & kStateEverInQout)) {
          flags_of[sv] |= kStateEverInQout;
          qout[l].Push(sv, pri_of(sv));
          qout_depth[l].Push(sv, depth_of[sv]);
          c.touched++;
          frontier_enter(sv);
        }
        break;
      }
      case LaneMessage::kDistReply: {
        const double* pay = box.payload.data() + m.payload;
        relax_with_dists(l, m.target_state, m.via_state, pay, m.w, pb);
        break;
      }
      case LaneMessage::kRelax: {
        const uint32_t x = m.target_state;
        if (m.value < d_at(x, m.kw) - 1e-12) {
          d_at(x, m.kw) = m.value;
          sp_at(x, m.kw) = m.via_state;
          frontier_dist_update(x, m.kw);
          emit(x);
          ctx.attach_queues[l].emplace(m.value, x);
          attach_local(l, m.kw, pb);
        }
        break;
      }
      case LaneMessage::kRaise: {
        const uint32_t x = m.target_state;
        if (raise_local(x, m.kw, m.value)) {
          ctx.activate_queues[l].emplace(a_at(x, m.kw), x);
          activate_local(l, m.kw, pb);
        }
        break;
      }
    }
  };

  // ---- Pop phase ----------------------------------------------------------
  // One pop per qualifying lane (ctx.lane_pop, decided at the control
  // barrier). Edge explorations always leave through the mailboxes —
  // even lane-local ones — so that node discovery and edge-list linking
  // happen only in the coordinator's sequential discovery pass.
  auto pop_lane = [&](uint32_t l) {
    const uint8_t which = ctx.lane_pop[l];
    if (which == 0) return;
    LaneCounters& c = ctx.lane_counters[l];
    if (which == 1) {
      const uint32_t v = qin[l].Pop();
      if (qin_depth[l].Contains(v)) qin_depth[l].Erase(v);
      frontier_leave(v);
      flags_of[v] |= kStatePoppedIn;
      const NodeId v_node = node_of[v];
      const uint32_t v_depth = depth_of[v];
      c.explored++;
      emit(v);
      if (v_depth < options_.dmax) {
        const double norm = graph_.InInverseWeightSum(v_node);
        PagePin pin;
        std::span<const Edge> in_edges = graph_.InEdges(v_node, &pin);
        // A failed pin yields an empty span: the expansion is skipped,
        // the lane's io_errors count stops the loop at round end.
        if (pin.failed()) ++c.io_errors;
        if (!pin.empty()) ++(pin.hit() ? c.page_hits : c.page_misses);
        for (const Edge& e : in_edges) {
          if (!EdgeAllowed(e)) continue;
          c.relaxed++;
          const uint32_t rl = plan.LaneOf(e.other);
          LaneMailbox& bx = box_at(0, l, rl);
          LaneMessage m;
          m.type = LaneMessage::kExploreIn;
          m.target_node = e.other;
          m.via_state = v;
          m.w = e.weight;
          m.depth = v_depth + 1;
          m.payload = static_cast<uint32_t>(bx.payload.size());
          for (uint32_t i = 0; i < n; ++i) bx.payload.push_back(d_at(v, i));
          for (uint32_t i = 0; i < n; ++i) {
            double recv = 0;
            if (norm > 0 && a_at(v, i) > 0) {
              recv = options_.mu * a_at(v, i) * (1.0 / e.weight) / norm;
            }
            bx.payload.push_back(recv);
          }
          post(0, l, rl, m);
        }
      }
      if (!(flags_of[v] & kStateEverInQout)) {
        flags_of[v] |= kStateEverInQout;
        qout[l].Push(v, pri_of(v));
        qout_depth[l].Push(v, v_depth);
        c.touched++;
        frontier_enter(v);
      }
    } else {
      const uint32_t u = qout[l].Pop();
      if (qout_depth[l].Contains(u)) qout_depth[l].Erase(u);
      frontier_leave(u);
      flags_of[u] |= kStatePoppedOut;
      const NodeId u_node = node_of[u];
      const uint32_t u_depth = depth_of[u];
      c.explored++;
      emit(u);
      if (u_depth < options_.dmax) {
        const double norm = graph_.OutInverseWeightSum(u_node);
        PagePin pin;
        std::span<const Edge> out_edges = graph_.OutEdges(u_node, &pin);
        if (pin.failed()) ++c.io_errors;  // empty span; stop at round end
        if (!pin.empty()) ++(pin.hit() ? c.page_hits : c.page_misses);
        for (const Edge& e : out_edges) {
          if (!EdgeAllowed(e)) continue;
          c.relaxed++;
          const uint32_t rl = plan.LaneOf(e.other);
          LaneMailbox& bx = box_at(0, l, rl);
          LaneMessage m;
          m.type = LaneMessage::kExploreOut;
          m.target_node = e.other;
          m.via_state = u;
          m.w = e.weight;
          m.depth = u_depth + 1;
          m.payload = static_cast<uint32_t>(bx.payload.size());
          for (uint32_t i = 0; i < n; ++i) {
            double recv = 0;
            if (norm > 0 && a_at(u, i) > 0) {
              recv = options_.mu * a_at(u, i) * (1.0 / e.weight) / norm;
            }
            bx.payload.push_back(recv);
          }
          post(0, l, rl, m);
        }
      }
    }
  };

  // ---- Discovery (coordinator, after the pop barrier) ---------------------
  // Walk the pop phase's mailboxes in (sender, receiver, sequence)
  // order: resolve target states (first message wins a new node's
  // depth) and link the explored edges into the owner lanes' lists.
  // The single edge-list arena is safe because this pass is the only
  // writer and every parallel phase only reads the lists.
  auto discovery = [&] {
    for (uint32_t s = 0; s < L; ++s) {
      for (uint32_t r = 0; r < L; ++r) {
        LaneMailbox& box = box_at(0, s, r);
        for (LaneMessage& m : box.msgs) {
          if (m.type != LaneMessage::kExploreIn &&
              m.type != LaneMessage::kExploreOut) {
            continue;
          }
          const uint32_t ts = get_state(m.target_node, m.depth);
          m.target_state = ts;
          uint32_t su, sv;
          if (m.type == LaneMessage::kExploreIn) {
            su = ts;
            sv = m.via_state;
          } else {
            sv = ts;
            su = m.via_state;
          }
          const uint64_t key = (static_cast<uint64_t>(su) << 32) | sv;
          // Both linking bits live in the coordinator-owned edge_links
          // map (this pass is its only toucher), so one lookup covers
          // them; Append never mutates the map, so holding the
          // reference across both is safe.
          uint8_t& f = ctx.edge_links[key];
          if (!(f & kEdgeParentLinked)) {
            f |= kEdgeParentLinked;
            ctx.edge_lists.Append(&ctx.parents[sv], su, m.w);
          }
          if (!(f & kEdgeChildLinked)) {
            f |= kEdgeChildLinked;
            ctx.edge_lists.Append(&ctx.children[su], sv, m.w);
          }
        }
      }
    }
  };

  // ---- Seeding (Eq. 1): a_{u,i} = prestige(u) / |S_i| ---------------------
  // Sequential, on the coordinator, before the round loop starts.
  if (fresh) {
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<NodeId>& uniq = ctx.uniq_scratch;
      uniq.assign(origins[i].begin(), origins[i].end());
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      const double denom = static_cast<double>(uniq.size());
      for (NodeId o : uniq) {
        uint32_t s = get_state(o, 0);
        d_at(s, i) = 0;
        double prestige = prestige_.empty() ? 1.0 : prestige_[o];
        a_at(s, i) = std::max(a_at(s, i), prestige / denom);
      }
    }
    // Recompute totals exactly (seed arithmetic above avoids double counts).
    for (uint32_t s = 0; s < node_of.size(); ++s) {
      double total = 0;
      for (uint32_t i = 0; i < n; ++i) total += a_at(s, i);
      act_sum[s] = total;
      const uint32_t l = lane_of_state(s);
      qin[l].Push(s, pri_of(s));
      qin_depth[l].Push(s, depth_of[s]);
      result.metrics.nodes_touched++;
      frontier_enter(s);
    }
  }

  // ---- §4.5 release bound -------------------------------------------------
  // Both floors are reductions across lanes: min over the per-lane
  // frontier-minimum heaps, min over the per-lane depth heaps.
  auto keyword_floor = [&](uint32_t i) -> double {
    double m = kInf;
    for (uint32_t l = 0; l < L; ++l) {
      if (!min_dist[l * n + i].empty()) {
        m = std::min(m, min_dist[l * n + i].TopPriority());
      }
    }
    uint32_t best_in_depth = UINT32_MAX;
    uint32_t best_out_depth = UINT32_MAX;
    for (uint32_t l = 0; l < L; ++l) {
      if (!qin_depth[l].empty()) {
        best_in_depth = std::min(best_in_depth, qin_depth[l].TopPriority());
      }
      if (!qout_depth[l].empty()) {
        best_out_depth = std::min(best_out_depth, qout_depth[l].TopPriority());
      }
    }
    double depth_floor = kInf;
    if (best_in_depth != UINT32_MAX) {
      depth_floor = (best_in_depth + 1) * min_edge_weight;
    } else if (best_out_depth != UINT32_MAX) {
      depth_floor = (best_out_depth + 1) * min_edge_weight;
    }
    return std::min(m, depth_floor);
  };

  auto compute_bounds = [&]() -> double {
    std::vector<double>& m = ctx.bound_scratch;
    m.assign(n, 0.0);
    double h = 0;
    for (uint32_t i = 0; i < n; ++i) {
      m[i] = keyword_floor(i);
      h += m[i];
    }
    return h;
  };

  // NRA slice scan: unseen roots are bounded by h; every partially seen
  // node may complete with m_i for its missing keywords. Pure
  // min-reduction over the flat state slab, so workers take contiguous
  // slices.
  auto scan_slice = [&](size_t begin, size_t end) -> double {
    const std::vector<double>& m = ctx.bound_scratch;
    double best = kInf;
    for (size_t s = begin; s < end; ++s) {
      double pot = 0;
      for (uint32_t i = 0; i < n; ++i) {
        pot += std::min(dist[s * n + i], m[i]);
      }
      best = std::min(best, pot);
    }
    return best;
  };

  // Mode-dispatched release against precomputed bounds. Coordinator only.
  auto finish_release = [&](double h, double best_potential_eraw) {
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      MergedDrain(heaps, L, options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      MergedReleaseWithEdgeBound(heaps, L, h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k &&
          MergedPendingCount(heaps, L) > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        MergedReleaseBest(heaps, L, std::max<size_t>(1, options_.k / 8),
                          options_.k, &result.answers);
      }
    } else {
      double ub = ScoreUpperBound(h, 1.0, options_.lambda);
      ub = std::max(
          ub, ScoreUpperBound(best_potential_eraw, 1.0, options_.lambda));
      MergedReleaseWithScoreBound(heaps, L, ub - 1e-12, options_.k,
                                  &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = MergedBestPendingScore(heaps, L);
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  // Slice bounds (streaming pauses): checked only at the control
  // barrier, so a pause always lands on a round boundary — mailboxes
  // empty, cascades drained — and never changes what the search
  // computes. When sharded, StepLimits therefore act at round
  // granularity (a round pops up to kNumLanes nodes).
  const SliceGuard slice(limits, &ss, &timer);

  // ---- Round control (coordinator, at the top of each round) --------------
  // Termination checks replicate the sequential loop's order: queue
  // exhaustion, top-k completion, budgets, then the streaming pause.
  auto control = [&] {
    flags = RoundFlags{};
    if (failed.load(std::memory_order_acquire)) {
      flags.stop = true;
      return;
    }
    if (io_failure) {  // a lane saw a failed page read last round
      flags.stop = true;
      return;
    }
    // Per-lane best under the (activation, NodeId) total order; tie
    // between a lane's Q_in and Q_out tops goes to Q_in, as in the
    // unsharded algorithm.
    ActPriority lane_top[kNumLanes];
    uint8_t lane_src[kNumLanes];
    bool any = false;
    ActPriority global_top;
    for (uint32_t l = 0; l < L; ++l) {
      lane_src[l] = 0;
      const bool has_in = !qin[l].empty();
      const bool has_out = !qout[l].empty();
      if (!has_in && !has_out) continue;
      ActPriority top;
      uint8_t src = 0;
      if (has_in) {
        top = qin[l].TopPriority();
        src = 1;
      }
      if (has_out && (!has_in || top < qout[l].TopPriority())) {
        top = qout[l].TopPriority();
        src = 2;
      }
      lane_top[l] = top;
      lane_src[l] = src;
      if (!any || global_top < top) {
        global_top = top;
        any = true;
      }
    }
    if (!any) {
      flags.stop = true;
      return;
    }
    if (result.answers.size() >= options_.k) {
      flags.stop = true;
      return;
    }
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      flags.stop = true;
      return;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      flags.stop = true;
      return;
    }
    if (slice.PauseDue()) {
      flags.stop = true;
      flags.paused = true;
      return;
    }
    const double cutoff = kLanePopFraction * global_top.act;
    for (uint32_t l = 0; l < L; ++l) {
      ctx.lane_pop[l] =
          (lane_src[l] != 0 && lane_top[l].act >= cutoff) ? lane_src[l] : 0;
    }
    if (ctx.page_listener != nullptr && graph_.paged()) {
      // Page-wait protocol (docs/STORAGE.md): the pop set is decided —
      // a deterministic function of the round-start frontier — so probe
      // every popping lane's expansion page before committing to the
      // round. On any miss, queue async fetches for *all* missing pages
      // (the fault waiter counts one OnPageReady per OnFetchQueued) and
      // pause at this round boundary; the retried slice recomputes the
      // identical pop set and sails through. Probes mutate nothing.
      //
      // Thrash escape: when the round needs more pages than the pool
      // holds (or concurrent tasks keep evicting our fetches), retried
      // probes can fault forever. Past the retry cap, skip the probe
      // and let this round's pins block synchronously — guaranteed
      // progress, identical results.
      if (ctx.stream.page_fault_retries >=
          SearchContext::StreamState::kMaxPageFaultRetries) {
        ctx.stream.page_fault_retries = 0;
      } else {
        bool faulted = false;
        for (uint32_t l = 0; l < L; ++l) {
          if (ctx.lane_pop[l] == 0) continue;
          const uint32_t s =
              ctx.lane_pop[l] == 1 ? qin[l].Top() : qout[l].Top();
          if (depth_of[s] >= options_.dmax) continue;
          const NodeId v = node_of[s];
          const bool ready = ctx.lane_pop[l] == 1
                                 ? graph_.ProbeInEdges(v, ctx.page_listener)
                                 : graph_.ProbeOutEdges(v, ctx.page_listener);
          if (!ready) faulted = true;
        }
        if (faulted) {
          flags.stop = true;
          flags.page_wait = true;
          return;
        }
        ctx.stream.page_fault_retries = 0;
      }
    }
    flags.explored_base = result.metrics.nodes_explored;
    flags.touched_base = result.metrics.nodes_touched;
  };

  // ---- Round end (coordinator) --------------------------------------------
  // Merge per-lane counters (lane order → deterministic totals), count
  // the round's pops into the step clock, concatenate the lanes' emit
  // lists, and decide whether this round crossed a release boundary.
  auto round_end = [&] {
    SearchMetrics& met = result.metrics;
    for (uint32_t l = 0; l < L; ++l) {
      LaneCounters& c = ctx.lane_counters[l];
      met.nodes_explored += c.explored;
      met.nodes_touched += c.touched;
      met.edges_relaxed += c.relaxed;
      met.propagation_steps += c.propagation;
      met.cross_shard_messages += c.cross_msgs;
      if (c.max_box > met.max_mailbox_depth) met.max_mailbox_depth = c.max_box;
      met.page_hits += c.page_hits;
      met.page_misses += c.page_misses;
      if (c.io_errors > 0) io_failure = true;
      met.io_errors += c.io_errors;
      c.Reset();
    }
    met.bsp_rounds++;
    uint64_t pops = 0;
    for (uint32_t l = 0; l < L; ++l) {
      if (ctx.lane_pop[l] != 0) pops++;
    }
    const uint64_t steps_before = steps;
    steps += pops;
    for (uint32_t l = 0; l < L; ++l) {
      dirty_roots.insert(dirty_roots.end(), ctx.lane_dirty[l].begin(),
                         ctx.lane_dirty[l].end());
      ctx.lane_dirty[l].clear();
    }
    // The tight bound's NRA scan is O(states); amortize it. Loose and
    // immediate releases are cheap and run at the base interval. A
    // round advances the step clock by its pop count, so the release
    // fires whenever the clock crossed an interval boundary.
    uint64_t interval = options_.bound_check_interval;
    if (interval == 0) interval = 1;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, node_of.size() / 8);
    }
    flags.do_release = (steps_before / interval) != (steps / interval);
    // A round that lost adjacency to a failed read expanded a partial
    // graph: release nothing from it — only answers released before the
    // failure are guaranteed to match a clean run.
    if (io_failure) flags.do_release = false;
    if (flags.do_release) {
      const size_t batch = dirty_roots.size();
      flags.build_batch = batch;
      if (ctx.cand_trees.size() < batch) ctx.cand_trees.resize(batch);
      ctx.cand_state.assign(batch, kCandSkip);
      ctx.cand_eraw.assign(batch, kInf);
    }
  };

  double release_h = 0;  // written by the coordinator between barriers

  // ---- The BSP round loop -------------------------------------------------
  // Every worker traverses the identical barrier sequence; all
  // conditional structure is published by the coordinator in flags
  // strictly before the barrier that precedes the read (the tight-mode
  // scan is gated by the bound mode, a query constant). See sharding.h
  // for the phase-by-phase contract.
  SpinBarrier barrier(num_workers);
  auto worker_fn = [&](uint32_t w) {
    SearchContext* scratch = w == 0 ? &ctx : runtime.WorkerScratch(w);
    for (;;) {
      // Round-entry barrier: the previous round's last flags read
      // (`do_release`, below) happens after a barrier the coordinator
      // also passes, so without this quiesce point worker 0 could loop
      // around and rewrite `flags` in control() while a straggler is
      // still reading the old round's fields.
      barrier.Wait();
      if (w == 0) {
        try {
          control();
        } catch (...) {
          record_failure();
          flags.stop = true;
        }
      }
      barrier.Wait();
      if (flags.stop) break;

      guarded([&] {
        for (uint32_t l = w; l < L; l += num_workers) pop_lane(l);
      });
      barrier.Wait();
      if (w == 0) guarded([&] { discovery(); });
      barrier.Wait();

      int bank = 0;
      for (;;) {
        if (w == 0) {
          bool nonempty = false;
          for (uint32_t b = 0; b < L * L && !nonempty; ++b) {
            nonempty = !ctx.mailboxes[static_cast<size_t>(bank) * L * L + b]
                            .msgs.empty();
          }
          flags.cascade = nonempty && !failed.load(std::memory_order_acquire);
        }
        barrier.Wait();
        if (!flags.cascade) break;
        guarded([&] {
          const int pb = bank ^ 1;
          for (uint32_t l = w; l < L; l += num_workers) {
            for (uint32_t s = 0; s < L; ++s) {
              LaneMailbox& box = box_at(bank, s, l);
              for (const LaneMessage& m : box.msgs) {
                apply_message(l, box, m, pb);
              }
              box.Clear();
            }
          }
        });
        barrier.Wait();
        bank ^= 1;
      }

      if (w == 0) guarded([&] { round_end(); });
      barrier.Wait();
      if (!flags.do_release) continue;

      guarded([&] {
        for (size_t j = w; j < flags.build_batch; j += num_workers) {
          build_candidate(j, scratch);
        }
      });
      barrier.Wait();
      if (w == 0) {
        guarded([&] {
          accept_batch();
          release_h = compute_bounds();
          if (options_.bound == BoundMode::kTight) {
            ctx.nra_partial.assign(num_workers, kInf);
          } else {
            finish_release(release_h, 0);
          }
        });
      }
      barrier.Wait();
      if (options_.bound == BoundMode::kTight) {
        guarded([&] {
          const size_t num_states = node_of.size();
          const size_t begin = num_states * w / num_workers;
          const size_t end = num_states * (w + 1) / num_workers;
          ctx.nra_partial[w] = scan_slice(begin, end);
        });
        barrier.Wait();
        if (w == 0) {
          guarded([&] {
            double best_potential = release_h;
            for (double p : ctx.nra_partial) {
              best_potential = std::min(best_potential, p);
            }
            finish_release(release_h, best_potential);
          });
        }
        barrier.Wait();
      }
    }
  };

  if (num_workers > 1) runtime.PrepareWorkerScratch();
  runtime.Run(worker_fn);
  if (first_failure) std::rethrow_exception(first_failure);
  if (io_failure) return slice.IoError();
  if (flags.page_wait) return slice.PageWait();
  if (flags.paused) return slice.Pause();

  // ---- Force release + drain (sequential tail; the team is idle, so
  // the batch phases may re-engage it the old way) --------------------------
  {
    const size_t batch = dirty_roots.size();
    if (batch > 0) {
      if (ctx.cand_trees.size() < batch) ctx.cand_trees.resize(batch);
      ctx.cand_state.assign(batch, kCandSkip);
      ctx.cand_eraw.assign(batch, kInf);
      if (runtime.Engage(batch, kMinCandidatesPerShard)) {
        runtime.PrepareWorkerScratch();
        runtime.Run([&](uint32_t w) {
          SearchContext* scratch = w == 0 ? &ctx : runtime.WorkerScratch(w);
          for (size_t j = w; j < batch; j += num_workers) {
            build_candidate(j, scratch);
          }
        });
      } else {
        for (size_t j = 0; j < batch; ++j) build_candidate(j, &ctx);
      }
    }
    accept_batch();
    const double h = compute_bounds();
    double best_potential = h;
    if (options_.bound == BoundMode::kTight) {
      const size_t num_states = node_of.size();
      if (runtime.Engage(num_states, kMinScanStatesPerShard)) {
        ctx.nra_partial.assign(num_workers, kInf);
        runtime.Run([&](uint32_t w) {
          size_t begin = num_states * w / num_workers;
          size_t end = num_states * (w + 1) / num_workers;
          ctx.nra_partial[w] = scan_slice(begin, end);
        });
        for (double p : ctx.nra_partial) {
          best_potential = std::min(best_potential, p);
        }
      } else {
        best_potential = std::min(best_potential, scan_slice(0, num_states));
      }
    }
    finish_release(h, best_potential);
  }
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    MergedDrain(heaps, L, options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  return FinishResume(&ss, timer);
}

}  // namespace banks
