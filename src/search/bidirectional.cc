#include "search/bidirectional.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/tree_builder.h"
#include "util/indexed_heap.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoState = UINT32_MAX;

// Flags per explored directed edge.
constexpr uint8_t kEdgeRecorded = 1;   // parent/child lists + dist relax done
constexpr uint8_t kSpreadBackward = 2; // activation spread v→u done
constexpr uint8_t kSpreadForward = 4;  // activation spread u→v done

}  // namespace

SearchResult BidirectionalSearcher::Search(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context) const {
  SearchResult result;
  Timer timer;
  const uint32_t n = static_cast<uint32_t>(origins.size());
  if (n == 0) return result;
  for (const auto& s : origins) {
    if (s.empty()) return result;
  }

  // ---- State storage (pooled in the reusable context) ---------------------
  // Per-state bookkeeping is structure-of-arrays: parallel flat vectors
  // indexed by state index. The explore loop below only ever touches the
  // arrays it reads — popping a node reads node/depth/flags without
  // dragging the materialization bookkeeping through the cache.
  SearchContext& ctx = *context;
  ctx.BeginQuery(n);
  std::vector<NodeId>& node_of = ctx.node;
  std::vector<uint32_t>& depth_of = ctx.depth;
  std::vector<uint8_t>& flags_of = ctx.state_flags;
  std::vector<double>& last_eraw = ctx.last_eraw;
  std::vector<double>& dist = ctx.dist;        // num_states() * n
  std::vector<uint32_t>& sp = ctx.sp;          // next state toward keyword
  std::vector<double>& act = ctx.act;          // per-keyword activation
  std::vector<double>& act_sum = ctx.act_sum;  // per-state total (queue key)

  auto get_state = [&](NodeId v, uint32_t depth) -> uint32_t {
    uint32_t& slot = ctx.node_index[v];
    if (slot != 0) return slot - 1;  // stored index + 1; 0 means new
    uint32_t idx = static_cast<uint32_t>(node_of.size());
    slot = idx + 1;
    node_of.push_back(v);
    depth_of.push_back(depth);
    flags_of.push_back(0);
    last_eraw.push_back(kInf);
    ctx.marked_time.push_back(0);
    ctx.marked_explored.push_back(0);
    ctx.marked_touched.push_back(0);
    ctx.parents.emplace_back();
    ctx.children.emplace_back();
    dist.insert(dist.end(), n, kInf);
    sp.insert(sp.end(), n, kNoState);
    act.insert(act.end(), n, 0.0);
    act_sum.push_back(0.0);
    return idx;
  };

  auto d_at = [&](uint32_t s, uint32_t i) -> double& { return dist[s * n + i]; };
  auto sp_at = [&](uint32_t s, uint32_t i) -> uint32_t& { return sp[s * n + i]; };
  auto a_at = [&](uint32_t s, uint32_t i) -> double& { return act[s * n + i]; };

  // ---- Queues and frontier bookkeeping -----------------------------------
  IndexedHeap<double>& qin = ctx.qin;    // max-heap on total activation
  IndexedHeap<double>& qout = ctx.qout;  // max-heap on total activation
  // Per-keyword min-dist over frontier states (for the §4.5 bound m_i).
  std::vector<IndexedHeap<double, std::greater<double>>>& min_dist =
      ctx.min_dist;
  // Min-depth over each queue (fallback bound when no distance is known).
  IndexedHeap<uint32_t, std::greater<uint32_t>>& qin_depth = ctx.qin_depth;
  IndexedHeap<uint32_t, std::greater<uint32_t>>& qout_depth = ctx.qout_depth;

  // Query-invariant aggregate, precomputed at graph build time (§4.5
  // depth floor); recomputing it here would scan every edge per query.
  const double min_edge_weight = graph_.MinEdgeWeight();

  // The per-keyword frontier-minimum heaps only feed the tight bound;
  // maintaining them costs a heap update per (relaxation × keyword), so
  // loose/immediate modes skip them (their releases are driven by the
  // edge-bound-with-drip machinery, see maybe_release).
  const bool track_frontier_minima = options_.bound == BoundMode::kTight;
  auto frontier_dist_update = [&](uint32_t s, uint32_t i) {
    if (!track_frontier_minima) return;
    if (qin.Contains(s) || qout.Contains(s)) {
      if (d_at(s, i) != kInf) min_dist[i].Update(s, d_at(s, i));
    }
  };
  auto frontier_enter = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) != kInf) min_dist[i].Update(s, d_at(s, i));
    }
  };
  auto frontier_leave = [&](uint32_t s) {
    if (!track_frontier_minima) return;
    if (qin.Contains(s) || qout.Contains(s)) return;  // still a frontier node
    for (uint32_t i = 0; i < n; ++i) {
      if (min_dist[i].Contains(s)) min_dist[i].Erase(s);
    }
  };

  OutputHeap& heap = ctx.output_heap;
  uint64_t steps = 0;
  uint64_t last_progress = 0;  // last step the best pending answer changed
  double last_top = -1;        // champion score being aged

  // ---- Emission -----------------------------------------------------------
  auto is_complete = [&](uint32_t s) {
    for (uint32_t i = 0; i < n; ++i) {
      if (d_at(s, i) == kInf) return false;
    }
    return true;
  };

  // Materializing a tree (union Dijkstra + scoring + signature) is two
  // orders of magnitude more expensive than a distance relaxation, and
  // Attach can improve a completed root thousands of times. emit() only
  // *marks* the root; materialize_dirty() builds trees in batches at the
  // release checks, once the batch's distances have settled.
  std::vector<uint32_t>& dirty_roots = ctx.dirty_roots;

  // Top-k eraw watermark: a root whose raw edge score is far beyond the
  // k-th best generated answer cannot enter the top-k (prestige can
  // reorder scores only within a bounded factor; the 2(1+w) slack is
  // generous for λ = 0.2). Prunes the long tail of late completions.
  // Pooled max-heap of the k smallest eraws seen.
  std::vector<double>& best_eraws = ctx.best_eraws;
  auto beyond_watermark = [&](double eraw) {
    return best_eraws.size() >= options_.k &&
           eraw > 2.0 * (1.0 + best_eraws.front());
  };

  auto emit = [&](uint32_t s) {
    if (!is_complete(s)) return;
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    // Re-materialize only on a >=2% improvement: micro-refinements do
    // not change rank but tree construction dominates per-answer cost.
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    if (beyond_watermark(eraw)) return;
    if (!(flags_of[s] & kStateDirty)) {
      flags_of[s] |= kStateDirty;
      ctx.marked_time[s] = timer.ElapsedSeconds();
      ctx.marked_explored[s] = result.metrics.nodes_explored;
      ctx.marked_touched[s] = result.metrics.nodes_touched;
      dirty_roots.push_back(s);
    }
  };

  auto materialize = [&](uint32_t s) {
    double eraw = 0;
    for (uint32_t i = 0; i < n; ++i) eraw += d_at(s, i);
    if (eraw >= last_eraw[s] * 0.98 - 1e-12) return;
    if (beyond_watermark(eraw)) return;
    last_eraw[s] = eraw;

    std::vector<NodeId>& keyword_nodes = ctx.kw_scratch;
    std::vector<AnswerEdge>& union_edges = ctx.union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t cur = s;
      size_t guard = 0;
      while (sp_at(cur, i) != kNoState) {
        uint32_t nxt = sp_at(cur, i);
        union_edges.push_back(AnswerEdge{
            node_of[cur], node_of[nxt],
            static_cast<float>(d_at(cur, i) - d_at(nxt, i))});
        cur = nxt;
        if (++guard > node_of.size()) return;  // stale cycle; skip emission
      }
      if (d_at(cur, i) != 0) return;  // broken chain; skip
      keyword_nodes[i] = node_of[cur];
    }
    AnswerTree& tree = ctx.answer_scratch;
    if (!BuildAnswerFromPathUnion(node_of[s], keyword_nodes, union_edges,
                                  &ctx.tree_scratch, &tree) ||
        !tree.IsMinimalRooted()) {
      return;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = ctx.marked_time[s];
    tree.explored_at_generation = ctx.marked_explored[s];
    tree.touched_at_generation = ctx.marked_touched[s];
    if (heap.InsertCopy(tree)) {
      result.metrics.answers_generated++;
      best_eraws.push_back(eraw);
      std::push_heap(best_eraws.begin(), best_eraws.end());
      if (best_eraws.size() > options_.k) {
        std::pop_heap(best_eraws.begin(), best_eraws.end());
        best_eraws.pop_back();
      }
      double top = heap.BestPendingScore();
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  auto materialize_dirty = [&] {
    for (uint32_t s : dirty_roots) {
      flags_of[s] &= static_cast<uint8_t>(~kStateDirty);
      if (is_complete(s)) materialize(s);
    }
    dirty_roots.clear();
  };

  // ---- Attach: best-first propagation of distance improvements (§4.2.1) --
  // The scratch queue lives on the context (drained to empty before each
  // return, so reuse is safe) — Attach runs once per relaxation and a
  // fresh heap allocation per call would dominate small queries.
  auto attach = [&](uint32_t s0, uint32_t i) {
    auto& pq = ctx.attach_queue;
    pq.emplace(d_at(s0, i), s0);
    while (!pq.empty()) {
      auto [d0, u] = pq.top();
      pq.pop();
      if (d0 > d_at(u, i) + 1e-12) continue;  // stale
      ctx.edge_lists.ForEach(ctx.parents[u], [&](uint32_t x, float w) {
        result.metrics.propagation_steps++;
        double nd = d0 + w;
        if (nd < d_at(x, i) - 1e-12) {
          d_at(x, i) = nd;
          sp_at(x, i) = u;
          frontier_dist_update(x, i);
          emit(x);
          pq.emplace(nd, x);
        }
      });
    }
  };

  // ---- Activate: best-first propagation of activation increases (§4.3) ---
  auto queue_priority_update = [&](uint32_t s) {
    if (qin.Contains(s)) qin.Update(s, act_sum[s]);
    if (qout.Contains(s)) qout.Update(s, act_sum[s]);
  };

  auto raise_activation = [&](uint32_t s, uint32_t i, double value) -> bool {
    if (options_.combine == ActivationCombine::kSum) {
      act_sum[s] += value;
      a_at(s, i) += value;
      queue_priority_update(s);
      return false;  // additive mode does not re-propagate
    }
    // Sub-0.1% increases are absorbed without re-propagation: activation
    // is a *priority* signal, and micro-cascades through the explored
    // region dominate running time while never changing pop order.
    if (value <= a_at(s, i) * 1.001 + 1e-18) return false;
    act_sum[s] += value - a_at(s, i);
    a_at(s, i) = value;
    queue_priority_update(s);
    return true;
  };

  auto activate = [&](uint32_t s0, uint32_t i) {
    if (options_.combine == ActivationCombine::kSum) return;
    auto& pq = ctx.activate_queue;  // max-heap: strongest activation first
    pq.emplace(a_at(s0, i), s0);
    while (!pq.empty()) {
      auto [a0, v] = pq.top();
      pq.pop();
      if (a0 < a_at(v, i) * (1 - 1e-12)) continue;  // stale
      const NodeId v_node = node_of[v];
      double in_norm = graph_.InInverseWeightSum(v_node);
      if (in_norm > 0) {
        ctx.edge_lists.ForEach(ctx.parents[v], [&](uint32_t x, float w) {
          result.metrics.propagation_steps++;
          double recv = options_.mu * a0 * (1.0 / w) / in_norm;
          if (raise_activation(x, i, recv)) pq.emplace(recv, x);
        });
      }
      double out_norm = graph_.OutInverseWeightSum(v_node);
      if (out_norm > 0) {
        ctx.edge_lists.ForEach(ctx.children[v], [&](uint32_t y, float w) {
          result.metrics.propagation_steps++;
          double recv = options_.mu * a0 * (1.0 / w) / out_norm;
          if (raise_activation(y, i, recv)) pq.emplace(recv, y);
        });
      }
    }
  };

  // ---- ExploreEdge (Figure 3): edge (u,v), i.e. u→v in the graph ----------
  // `incoming_context` is true when called while expanding v from Q_in
  // (activation then spreads v→u); false when expanding u from Q_out
  // (activation spreads u→v).
  auto explore_edge = [&](uint32_t su, uint32_t sv, float w,
                          bool incoming_context) {
    result.metrics.edges_relaxed++;
    uint64_t key = (static_cast<uint64_t>(su) << 32) | sv;
    // Reference into the flat map: valid until the next edge_flags
    // insertion, and nothing below inserts into edge_flags.
    uint8_t& flags = ctx.edge_flags[key];

    if (!(flags & kEdgeRecorded)) {
      flags |= kEdgeRecorded;
      ctx.edge_lists.Append(&ctx.parents[sv], su, w);
      ctx.edge_lists.Append(&ctx.children[su], sv, w);
      // Relax u's per-keyword distances through v ("if u has a better
      // path to t_i via v").
      for (uint32_t i = 0; i < n; ++i) {
        if (d_at(sv, i) == kInf) continue;
        double nd = d_at(sv, i) + w;
        if (nd < d_at(su, i) - 1e-12) {
          d_at(su, i) = nd;
          sp_at(su, i) = sv;
          frontier_dist_update(su, i);
          emit(su);
          attach(su, i);
        }
      }
    }

    if (incoming_context && !(flags & kSpreadBackward)) {
      flags |= kSpreadBackward;
      double norm = graph_.InInverseWeightSum(node_of[sv]);
      if (norm > 0) {
        for (uint32_t i = 0; i < n; ++i) {
          if (a_at(sv, i) <= 0) continue;
          double recv = options_.mu * a_at(sv, i) * (1.0 / w) / norm;
          if (raise_activation(su, i, recv)) activate(su, i);
        }
      }
    }
    if (!incoming_context && !(flags & kSpreadForward)) {
      flags |= kSpreadForward;
      double norm = graph_.OutInverseWeightSum(node_of[su]);
      if (norm > 0) {
        for (uint32_t i = 0; i < n; ++i) {
          if (a_at(su, i) <= 0) continue;
          double recv = options_.mu * a_at(su, i) * (1.0 / w) / norm;
          if (raise_activation(sv, i, recv)) activate(sv, i);
        }
      }
    }
  };

  // ---- Seeding (Eq. 1): a_{u,i} = prestige(u) / |S_i| ---------------------
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<NodeId>& uniq = ctx.uniq_scratch;
    uniq.assign(origins[i].begin(), origins[i].end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    const double denom = static_cast<double>(uniq.size());
    for (NodeId o : uniq) {
      uint32_t s = get_state(o, 0);
      d_at(s, i) = 0;
      double prestige = prestige_.empty() ? 1.0 : prestige_[o];
      a_at(s, i) = std::max(a_at(s, i), prestige / denom);
    }
  }
  // Recompute totals exactly (seed arithmetic above avoids double counts).
  for (uint32_t s = 0; s < node_of.size(); ++s) {
    double total = 0;
    for (uint32_t i = 0; i < n; ++i) total += a_at(s, i);
    act_sum[s] = total;
    qin.Push(s, act_sum[s]);
    qin_depth.Push(s, depth_of[s]);
    result.metrics.nodes_touched++;
    frontier_enter(s);
  }

  // ---- §4.5 release bound -------------------------------------------------
  auto keyword_floor = [&](uint32_t i) -> double {
    double m = kInf;
    if (!min_dist[i].empty()) m = min_dist[i].TopPriority();
    double depth_floor = kInf;
    if (!qin_depth.empty()) {
      depth_floor = (qin_depth.TopPriority() + 1) * min_edge_weight;
    } else if (!qout_depth.empty()) {
      depth_floor = (qout_depth.TopPriority() + 1) * min_edge_weight;
    }
    return std::min(m, depth_floor);
  };

  auto maybe_release = [&](bool force) {
    // The tight bound's NRA scan is O(states); amortize it. Loose and
    // immediate releases are cheap and run at the base interval.
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, node_of.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    materialize_dirty();
    std::vector<double>& m = ctx.bound_scratch;
    m.assign(n, 0.0);
    double h = 0;
    for (uint32_t i = 0; i < n; ++i) {
      m[i] = keyword_floor(i);
      h += m[i];
    }
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      heap.Drain(options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      heap.ReleaseWithEdgeBound(h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k && heap.pending_count() > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        heap.ReleaseBest(std::max<size_t>(1, options_.k / 8), options_.k,
                         &result.answers);
      }
    } else {
      // NRA-style: unseen roots are bounded by h; every partially seen
      // node may complete with m_i for its missing keywords.
      double best_potential_eraw = h;
      double ub = ScoreUpperBound(h, 1.0, options_.lambda);
      for (uint32_t s = 0; s < node_of.size(); ++s) {
        double pot = 0;
        for (uint32_t i = 0; i < n; ++i) {
          pot += std::min(d_at(s, i), m[i]);
        }
        best_potential_eraw = std::min(best_potential_eraw, pot);
      }
      ub = std::max(
          ub, ScoreUpperBound(best_potential_eraw, 1.0, options_.lambda));
      heap.ReleaseWithScoreBound(ub - 1e-12, options_.k, &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = heap.BestPendingScore();
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  // ---- Main loop (Figure 3 lines 4–23) ------------------------------------
  while ((!qin.empty() || !qout.empty()) &&
         result.answers.size() < options_.k) {
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }

    bool take_in;
    if (qin.empty()) {
      take_in = false;
    } else if (qout.empty()) {
      take_in = true;
    } else {
      take_in = qin.TopPriority() >= qout.TopPriority();  // tie → Q_in
    }

    // NOTE: get_state() may reallocate the per-state arrays; never hold a
    // reference into them across it — copy what we need into locals.
    if (take_in) {
      uint32_t v = qin.Pop();
      if (qin_depth.Contains(v)) qin_depth.Erase(v);
      frontier_leave(v);
      flags_of[v] |= kStatePoppedIn;
      const NodeId v_node = node_of[v];
      const uint32_t v_depth = depth_of[v];
      result.metrics.nodes_explored++;
      steps++;
      emit(v);
      if (v_depth < options_.dmax) {
        for (const Edge& e : graph_.InEdges(v_node)) {
          if (!EdgeAllowed(e)) continue;
          uint32_t u = get_state(e.other, v_depth + 1);
          explore_edge(u, v, e.weight, /*incoming_context=*/true);
          if (!(flags_of[u] & kStatePoppedIn) && !qin.Contains(u)) {
            qin.Push(u, act_sum[u]);
            qin_depth.Push(u, depth_of[u]);
            result.metrics.nodes_touched++;
            frontier_enter(u);
          }
        }
      }
      if (!(flags_of[v] & kStateEverInQout)) {
        flags_of[v] |= kStateEverInQout;
        qout.Push(v, act_sum[v]);
        qout_depth.Push(v, v_depth);
        result.metrics.nodes_touched++;
        frontier_enter(v);
      }
    } else {
      uint32_t u = qout.Pop();
      if (qout_depth.Contains(u)) qout_depth.Erase(u);
      frontier_leave(u);
      flags_of[u] |= kStatePoppedOut;
      const NodeId u_node = node_of[u];
      const uint32_t u_depth = depth_of[u];
      result.metrics.nodes_explored++;
      steps++;
      emit(u);
      if (u_depth < options_.dmax) {
        for (const Edge& e : graph_.OutEdges(u_node)) {
          if (!EdgeAllowed(e)) continue;
          uint32_t v = get_state(e.other, u_depth + 1);
          explore_edge(u, v, e.weight, /*incoming_context=*/false);
          if (!(flags_of[v] & kStateEverInQout)) {
            flags_of[v] |= kStateEverInQout;
            qout.Push(v, act_sum[v]);
            qout_depth.Push(v, depth_of[v]);
            result.metrics.nodes_touched++;
            frontier_enter(v);
          }
        }
      }
    }
    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    heap.Drain(options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  result.metrics.answers_output = result.answers.size();
  result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace banks
