#include "search/backward_si.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SearchResult BackwardSISearcher::Search(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context) const {
  SearchResult result;
  Timer timer;
  const size_t n = origins.size();
  if (n == 0) return result;
  for (const auto& s : origins) {
    if (s.empty()) return result;
  }

  SearchContext& ctx = *context;
  ctx.BeginQuery(n);

  // reach_maps[i] maps node → best path to the nearest origin of keyword
  // i (BackwardReach records, pooled flat tables in the context).
  ctx.EnsureReachMaps(n);
  auto reach = [&](size_t i) -> FlatHashMap<NodeId, BackwardReach>& {
    return ctx.reach_maps[i];
  };
  // Shared frontier: (dist, node, keyword), smallest distance first
  // ("its backward iterator is prioritized only by distance", §4.6).
  // Pooled min-heap storage on the context, driven by push/pop_heap —
  // byte-compatible with the std::priority_queue it replaces.
  using QE = SearchContext::SIFrontierEntry;
  std::vector<QE>& frontier = ctx.si_frontier;
  auto frontier_greater = [](const QE& a, const QE& b) {
    return a.dist > b.dist;
  };
  auto frontier_push = [&](QE e) {
    frontier.push_back(e);
    std::push_heap(frontier.begin(), frontier.end(), frontier_greater);
  };
  auto frontier_pop = [&]() -> QE {
    std::pop_heap(frontier.begin(), frontier.end(), frontier_greater);
    QE top = frontier.back();
    frontier.pop_back();
    return top;
  };

  // Count of keywords with finite distance, per node, for completion
  // checks without scanning all n maps (ctx.node_index doubles as the
  // covered-count table for this algorithm).
  FlatHashMap<NodeId, uint32_t>& covered = ctx.node_index;

  OutputHeap& heap = ctx.output_heap;
  uint64_t steps = 0;
  uint64_t last_progress = 0;  // last step the best pending answer changed
  double last_top = -1;        // champion score being aged

  for (uint32_t i = 0; i < n; ++i) {
    for (NodeId o : origins[i]) {
      BackwardReach& r = reach(i)[o];
      if (r.dist == 0 && r.matched == o) continue;  // duplicate origin
      if (r.dist != kInf) continue;
      r = BackwardReach{0.0, kInvalidNode, o, 0, false};
      covered[o]++;
      frontier_push(QE{0.0, o, i});
      result.metrics.nodes_touched++;
    }
  }

  // Builds the candidate into ctx.answer_scratch; returns false when a
  // reach chain is broken (stale path).
  auto build_tree = [&](NodeId root) -> bool {
    std::vector<NodeId>& keyword_nodes = ctx.kw_scratch;
    std::vector<AnswerEdge>& union_edges = ctx.union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    for (uint32_t i = 0; i < n; ++i) {
      NodeId cur = root;
      const BackwardReach* it = reach(i).Find(cur);
      if (it == nullptr || it->dist == kInf) return false;
      keyword_nodes[i] = it->matched;
      while (it->next_hop != kInvalidNode) {
        NodeId nxt = it->next_hop;
        const BackwardReach* nit = reach(i).Find(nxt);
        if (nit == nullptr) return false;
        union_edges.push_back(
            AnswerEdge{cur, nxt, static_cast<float>(it->dist - nit->dist)});
        cur = nxt;
        it = nit;
      }
    }
    AnswerTree& tree = ctx.answer_scratch;
    if (!BuildAnswerFromPathUnion(root, keyword_nodes, union_edges,
                                  &ctx.tree_scratch, &tree)) {
      return false;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = timer.ElapsedSeconds();
    tree.explored_at_generation = result.metrics.nodes_explored;
    tree.touched_at_generation = result.metrics.nodes_touched;
    return true;
  };

  auto try_emit = [&](NodeId v) {
    const uint32_t* cit = covered.Find(v);
    if (cit == nullptr || *cit < n) return;
    if (!build_tree(v) || !ctx.answer_scratch.IsMinimalRooted()) return;
    if (heap.InsertCopy(ctx.answer_scratch)) {
      result.metrics.answers_generated++;
      double top = heap.BestPendingScore();
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  // Nodes complete at seed time (single-keyword queries; nodes matching
  // every keyword at once) are already answers.
  for (const auto& s : origins) {
    for (NodeId o : s) try_emit(o);
  }

  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, covered.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    // Coarse §4.5 bound: the global frontier minimum lower-bounds every
    // m_i (the paper's "coarser approximation").
    double m = frontier.empty() ? kInf : frontier.front().dist;
    double h = m * static_cast<double>(n);
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      heap.Drain(options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      heap.ReleaseWithEdgeBound(h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k && heap.pending_count() > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        heap.ReleaseBest(std::max<size_t>(1, options_.k / 8), options_.k,
                         &result.answers);
      }
    } else {
      // NRA-style (§4.5): partially reached nodes may complete each
      // missing keyword at cost m.
      double best_potential = h;
      for (const auto& entry : covered) {
        double pot = 0;
        for (uint32_t i = 0; i < n; ++i) {
          const BackwardReach* it = reach(i).Find(entry.key);
          double d = (it == nullptr) ? kInf : it->dist;
          pot += std::min(d, m);
        }
        best_potential = std::min(best_potential, pot);
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      heap.ReleaseWithScoreBound(ub - 1e-12, options_.k, &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = heap.BestPendingScore();
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  while (!frontier.empty() && result.answers.size() < options_.k) {
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    QE top = frontier_pop();
    BackwardReach& r = reach(top.keyword)[top.node];
    if (r.settled || top.dist > r.dist + 1e-12) continue;  // stale entry
    r.settled = true;
    result.metrics.nodes_explored++;
    steps++;

    if (r.hops < options_.dmax) {
      // Copy what the expansion needs: `r` points into the flat map and
      // is invalidated by the reach(...)[u] insertions below.
      const uint32_t next_hops = r.hops + 1;
      const double base = r.dist;
      const NodeId matched = r.matched;
      for (const Edge& e : graph_.InEdges(top.node)) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        double nd = base + e.weight;
        BackwardReach& ru = reach(top.keyword)[u];
        if (ru.settled) continue;
        if (nd < ru.dist - 1e-12) {
          bool was_unreached = ru.dist == kInf;
          ru.dist = nd;
          ru.next_hop = top.node;
          ru.matched = matched;
          ru.hops = next_hops;
          if (was_unreached) {
            covered[u]++;
            result.metrics.nodes_touched++;
          }
          frontier_push(QE{nd, u, top.keyword});
          try_emit(u);
        }
      }
    }
    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    heap.Drain(options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  result.metrics.answers_output = result.answers.size();
  result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace banks
