#include "search/backward_si.h"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "storage/buffer_pool.h"

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/shard_team.h"
#include "search/sharding.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Engage the shard team for the tight-bound scan only past this many
// reached nodes per shard (scheduling choice only; values identical).
constexpr size_t kMinScanEntriesPerShard = 2048;

}  // namespace

SearchStatus BackwardSISearcher::Resume(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context,
    const StepLimits& limits) const {
  SearchContext::StreamState& ss = context->stream;
  const SliceStart start = BeginResumeSlice(origins, &ss);
  if (start == SliceStart::kAlreadyDone) return SearchStatus::kDone;
  const bool fresh = start == SliceStart::kFresh;

  // Control state persists in the stream state; a resumed slice re-binds
  // the references and lambdas and continues the Dijkstra loop exactly
  // where the previous slice paused.
  SearchResult& result = ss.result;
  SliceTimer timer(ss.elapsed);
  const size_t n = origins.size();

  // Frontier structures are partitioned into one lane per worker.
  // Unlike the bidirectional BSP loop, the lane count here is free to
  // follow shard_count: the pop order is the argmin over lane heap
  // fronts under a lexicographic *total* order, which is a property of
  // the frontier contents alone — any partition (including a single
  // lane at shard_count 1, which keeps the sequential path free of
  // per-pop multi-lane scans) replays the identical pop order.
  const uint32_t num_workers =
      std::min(std::max<uint32_t>(1, options_.shard_count), kNumLanes);
  const uint32_t L = num_workers;
  const ShardPlan plan{L, graph_.num_nodes()};
  ShardRuntime runtime(num_workers, options_.shard_pool, options_.team_pool);

  SearchContext& ctx = *context;
  if (fresh) {
    ctx.BeginQuery(n, num_workers);
    // reach_maps[i] maps node → best path to the nearest origin of
    // keyword i (BackwardReach records, pooled flat tables in the
    // context).
    ctx.EnsureReachMaps(n);
  }
  auto reach = [&](size_t i) -> FlatHashMap<NodeId, BackwardReach>& {
    return ctx.reach_maps[i];
  };
  // Shared frontier: (dist, node, keyword), smallest first under a
  // *lexicographic* order ("its backward iterator is prioritized only by
  // distance", §4.6 — the node/keyword tie-break never changes which
  // distance pops, it pins WHICH entry does, so the frontier can be
  // partitioned by NodeId lane: the argmin over per-lane heap fronts is
  // the exact entry a single heap would pop). Pooled per-lane min-heap
  // storage on the context, driven by push/pop_heap.
  using QE = SearchContext::SIFrontierEntry;
  std::vector<std::vector<QE>>& frontier = ctx.si_frontier;
  auto qe_after = [](const QE& a, const QE& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.node != b.node) return a.node > b.node;
    return a.keyword > b.keyword;
  };
  auto frontier_push = [&](QE e) {
    std::vector<QE>& lane = frontier[plan.ShardOf(e.node)];
    lane.push_back(e);
    std::push_heap(lane.begin(), lane.end(), qe_after);
  };
  // Mailbox discipline for frontier updates: during one settled pop,
  // pushes whose target lane differs from the popping lane are staged
  // (ctx.si_stage, element = target lane) and applied at the end of the
  // pop in lane order — the shared-frontier equivalent of the BSP
  // apply-at-barrier rule, and what the cross-shard message metrics
  // count. Result-neutral: the frontier is consulted only between pops,
  // and the lexicographic total order makes the heap front a property
  // of the contents alone.
  std::vector<std::vector<QE>>& stage = ctx.si_stage;
  auto staged_push = [&](uint32_t pop_lane, QE e) {
    const uint32_t tl = plan.ShardOf(e.node);
    if (tl == pop_lane) {
      frontier_push(e);
      return;
    }
    result.metrics.cross_shard_messages++;
    stage[tl].push_back(e);
  };
  auto apply_staged = [&] {
    for (uint32_t tl = 0; tl < L; ++tl) {
      if (stage[tl].empty()) continue;
      if (stage[tl].size() > result.metrics.max_mailbox_depth) {
        result.metrics.max_mailbox_depth = stage[tl].size();
      }
      for (const QE& e : stage[tl]) frontier_push(e);
      stage[tl].clear();
    }
  };
  // Lane whose front is the global minimum entry, or -1 when empty.
  auto best_shard = [&]() -> int {
    int best = -1;
    for (uint32_t p = 0; p < L; ++p) {
      if (frontier[p].empty()) continue;
      if (best < 0 || qe_after(frontier[best].front(), frontier[p].front())) {
        best = static_cast<int>(p);
      }
    }
    return best;
  };
  auto frontier_pop = [&](uint32_t p) -> QE {
    std::vector<QE>& shard = frontier[p];
    std::pop_heap(shard.begin(), shard.end(), qe_after);
    QE top = shard.back();
    shard.pop_back();
    return top;
  };

  // Count of keywords with finite distance, per node, for completion
  // checks without scanning all n maps (ctx.node_index doubles as the
  // covered-count table for this algorithm).
  FlatHashMap<NodeId, uint32_t>& covered = ctx.node_index;

  // Signature-sharded output buffers, merged at every release check.
  OutputHeap* heaps = ctx.output_heaps.data();
  uint64_t& steps = ss.steps;
  uint64_t& last_progress = ss.last_progress;  // last step best pending changed
  double& last_top = ss.last_top;              // champion score being aged

  if (fresh) {
    for (uint32_t i = 0; i < n; ++i) {
      for (NodeId o : origins[i]) {
        BackwardReach& r = reach(i)[o];
        if (r.dist == 0 && r.matched == o) continue;  // duplicate origin
        if (r.dist != kInf) continue;
        r = BackwardReach{0.0, kInvalidNode, o, 0, false};
        covered[o]++;
        frontier_push(QE{0.0, o, i});
        result.metrics.nodes_touched++;
      }
    }
  }

  // Builds the candidate into ctx.answer_scratch; returns false when a
  // reach chain is broken (stale path).
  auto build_tree = [&](NodeId root) -> bool {
    std::vector<NodeId>& keyword_nodes = ctx.kw_scratch;
    std::vector<AnswerEdge>& union_edges = ctx.union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    for (uint32_t i = 0; i < n; ++i) {
      NodeId cur = root;
      const BackwardReach* it = reach(i).Find(cur);
      if (it == nullptr || it->dist == kInf) return false;
      keyword_nodes[i] = it->matched;
      while (it->next_hop != kInvalidNode) {
        NodeId nxt = it->next_hop;
        const BackwardReach* nit = reach(i).Find(nxt);
        if (nit == nullptr) return false;
        union_edges.push_back(
            AnswerEdge{cur, nxt, static_cast<float>(it->dist - nit->dist)});
        cur = nxt;
        it = nit;
      }
    }
    AnswerTree& tree = ctx.answer_scratch;
    if (!BuildAnswerFromPathUnion(root, keyword_nodes, union_edges,
                                  &ctx.tree_scratch, &tree)) {
      return false;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = timer.ElapsedSeconds();
    tree.explored_at_generation = result.metrics.nodes_explored;
    tree.touched_at_generation = result.metrics.nodes_touched;
    return true;
  };

  auto try_emit = [&](NodeId v) {
    const uint32_t* cit = covered.Find(v);
    if (cit == nullptr || *cit < n) return;
    if (!build_tree(v) || !ctx.answer_scratch.IsMinimalRooted()) return;
    uint64_t sig = ctx.answer_scratch.Signature(&ctx.sig_scratch);
    if (heaps[sig % L].InsertCopy(ctx.answer_scratch, sig)) {
      result.metrics.answers_generated++;
      double top = MergedBestPendingScore(heaps, L);
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  // Nodes complete at seed time (single-keyword queries; nodes matching
  // every keyword at once) are already answers.
  if (fresh) {
    for (const auto& s : origins) {
      for (NodeId o : s) try_emit(o);
    }
  }

  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, covered.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    // Coarse §4.5 bound: the global frontier minimum lower-bounds every
    // m_i (the paper's "coarser approximation") — the min over the
    // per-lane heap fronts.
    double m = kInf;
    for (uint32_t p = 0; p < L; ++p) {
      if (!frontier[p].empty()) m = std::min(m, frontier[p].front().dist);
    }
    double h = m * static_cast<double>(n);
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      MergedDrain(heaps, L, options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      MergedReleaseWithEdgeBound(heaps, L, h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k &&
          MergedPendingCount(heaps, L) > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        MergedReleaseBest(heaps, L, std::max<size_t>(1, options_.k / 8),
                          options_.k, &result.answers);
      }
    } else {
      // NRA-style (§4.5): partially reached nodes may complete each
      // missing keyword at cost m. Pure min-reduction over the dense
      // covered entries: shard workers scan contiguous slices.
      const size_t num_entries = covered.size();
      auto scan_slice = [&](size_t begin, size_t end) -> double {
        double best = kInf;
        for (size_t e = begin; e < end; ++e) {
          const NodeId v = (covered.begin() + e)->key;
          double pot = 0;
          for (uint32_t i = 0; i < n; ++i) {
            const BackwardReach* it = reach(i).Find(v);
            double d = (it == nullptr) ? kInf : it->dist;
            pot += std::min(d, m);
          }
          best = std::min(best, pot);
        }
        return best;
      };
      double best_potential = h;
      if (runtime.Engage(num_entries, kMinScanEntriesPerShard)) {
        ctx.nra_partial.assign(num_workers, kInf);
        runtime.Run([&](uint32_t w) {
          size_t begin = num_entries * w / num_workers;
          size_t end = num_entries * (w + 1) / num_workers;
          ctx.nra_partial[w] = scan_slice(begin, end);
        });
        for (double p : ctx.nra_partial) {
          best_potential = std::min(best_potential, p);
        }
      } else {
        best_potential = std::min(best_potential, scan_slice(0, num_entries));
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      MergedReleaseWithScoreBound(heaps, L, ub - 1e-12, options_.k,
                                  &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = MergedBestPendingScore(heaps, L);
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  // Slice bounds (streaming pauses): checked between loop iterations
  // only, so a pause never changes what the search computes.
  const SliceGuard slice(limits, &ss, &timer);

  for (;;) {
    int p = best_shard();
    if (p < 0 || result.answers.size() >= options_.k) break;
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (slice.PauseDue()) return slice.Pause();
    if (ctx.page_listener != nullptr && graph_.paged()) {
      // Page-wait protocol (docs/STORAGE.md): before committing to the
      // pop, check that the expansion it would trigger has its adjacency
      // page pooled; on a miss, queue the fetch and detach the quantum
      // instead of blocking the worker on the read. The probe mutates
      // nothing, so the retried slice replays this decision identically.
      // Past the retry cap (e.g. concurrent tasks keep evicting our
      // fetched page) the probe is skipped for one pop and its pins
      // block synchronously — guaranteed progress, identical results.
      if (ctx.stream.page_fault_retries >=
          SearchContext::StreamState::kMaxPageFaultRetries) {
        ctx.stream.page_fault_retries = 0;
      } else {
        const QE& head = frontier[p].front();
        const BackwardReach* hr = reach(head.keyword).Find(head.node);
        const bool will_expand = hr != nullptr && !hr->settled &&
                                 head.dist <= hr->dist + 1e-12 &&
                                 hr->hops < options_.dmax;
        if (will_expand &&
            !graph_.ProbeInEdges(head.node, ctx.page_listener)) {
          return slice.PageWait();
        }
        ctx.stream.page_fault_retries = 0;
      }
    }
    QE top = frontier_pop(static_cast<uint32_t>(p));
    BackwardReach& r = reach(top.keyword)[top.node];
    if (r.settled || top.dist > r.dist + 1e-12) continue;  // stale entry
    r.settled = true;
    result.metrics.nodes_explored++;
    result.metrics.bsp_rounds++;  // one settled pop per round (§4.6 argmin)
    steps++;

    if (r.hops < options_.dmax) {
      // Copy what the expansion needs: `r` points into the flat map and
      // is invalidated by the reach(...)[u] insertions below.
      const uint32_t next_hops = r.hops + 1;
      const double base = r.dist;
      const NodeId matched = r.matched;
      const uint32_t pop_lane = static_cast<uint32_t>(p);
      PagePin pin;
      std::span<const Edge> in_edges = graph_.InEdges(top.node, &pin);
      if (pin.failed()) {
        ++result.metrics.io_errors;
        return slice.IoError();
      }
      if (!pin.empty()) {
        ++(pin.hit() ? result.metrics.page_hits : result.metrics.page_misses);
      }
      for (const Edge& e : in_edges) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        double nd = base + e.weight;
        BackwardReach& ru = reach(top.keyword)[u];
        if (ru.settled) continue;
        if (nd < ru.dist - 1e-12) {
          bool was_unreached = ru.dist == kInf;
          ru.dist = nd;
          ru.next_hop = top.node;
          ru.matched = matched;
          ru.hops = next_hops;
          if (was_unreached) {
            covered[u]++;
            result.metrics.nodes_touched++;
          }
          staged_push(pop_lane, QE{nd, u, top.keyword});
          try_emit(u);
        }
      }
      apply_staged();
    }
    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    MergedDrain(heaps, L, options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  return FinishResume(&ss, timer);
}

}  // namespace banks
