#include "search/search_context.h"

#include <algorithm>

namespace banks {

void SearchContext::StreamState::Reset() {
  phase = Phase::kFresh;
  // Clear rather than assign fresh objects: the answers vector and the
  // metrics' per-answer time vectors keep their capacity, so a warm
  // stream's bookkeeping allocates nothing.
  result.answers.clear();
  SearchMetrics& m = result.metrics;
  m.nodes_explored = 0;
  m.nodes_touched = 0;
  m.edges_relaxed = 0;
  m.propagation_steps = 0;
  m.answers_generated = 0;
  m.answers_output = 0;
  m.elapsed_seconds = 0;
  m.generated_times.clear();
  m.output_times.clear();
  m.budget_exhausted = false;
  steps = 0;
  last_progress = 0;
  last_top = -1;
  elapsed = 0;
}

void SearchContext::BeginQuery(size_t num_keywords, uint32_t shard_count) {
  ++queries_started_;
  active_shards_ = std::max<uint32_t>(1, shard_count);

  node_index.Clear();
  // Sharded pools grow to the largest (shard_count, keywords) seen and
  // never shrink; every existing slot is cleared — not just the first
  // active_shards_ — so no stale state can leak into a later query run
  // at a higher shard count.
  if (node_shard_index.size() < active_shards_) {
    node_shard_index.resize(active_shards_);
  }
  for (auto& m : node_shard_index) m.Clear();

  node.clear();
  depth.clear();
  state_flags.clear();
  last_eraw.clear();
  marked_time.clear();
  marked_explored.clear();
  marked_touched.clear();
  parents.clear();
  children.clear();

  dist.clear();
  sp.clear();
  act.clear();
  act_sum.clear();
  edge_lists.Clear();
  edge_flags.Clear();
  if (qin.size() < active_shards_) qin.resize(active_shards_);
  if (qout.size() < active_shards_) qout.resize(active_shards_);
  if (qin_depth.size() < active_shards_) qin_depth.resize(active_shards_);
  if (qout_depth.size() < active_shards_) qout_depth.resize(active_shards_);
  for (auto& h : qin) h.Clear();
  for (auto& h : qout) h.Clear();
  for (auto& h : qin_depth) h.Clear();
  for (auto& h : qout_depth) h.Clear();
  const size_t min_dist_slots = active_shards_ * num_keywords;
  if (min_dist.size() < min_dist_slots) min_dist.resize(min_dist_slots);
  for (auto& h : min_dist) h.Clear();
  dirty_roots.clear();
  best_eraws.clear();
  // The Attach/Activate loops drain their queues before returning, so
  // these are only non-empty if a previous query aborted mid-propagation
  // (e.g. via an exception unwinding through Search).
  while (!attach_queue.empty()) attach_queue.pop();
  while (!activate_queue.empty()) activate_queue.pop();
  bound_scratch.clear();

  if (output_heaps.size() < active_shards_) output_heaps.resize(active_shards_);
  for (auto& h : output_heaps) h.Reset();
  kw_scratch.clear();
  union_edge_scratch.clear();
  uniq_scratch.clear();
  // cand_trees keeps its slots (their vectors' capacity is recycled by
  // the next batch's copy-assignments); cand_state/cand_eraw are sized
  // per batch by the searcher.
  cand_state.clear();
  cand_eraw.clear();
  nra_partial.clear();
  shard_minima.clear();

  for (auto& m : reach_maps) m.Clear();
  frontiers.Clear();
  iter_keyword.clear();
  iter_origin.clear();
  if (scheduler.size() < active_shards_) scheduler.resize(active_shards_);
  for (auto& s : scheduler) s.clear();
  id_scratch.clear();
  if (si_frontier.size() < active_shards_) si_frontier.resize(active_shards_);
  for (auto& s : si_frontier) s.clear();
  visit_dist.clear();
  visit_iter.clear();
  visit_covered.clear();
}

void SearchContext::EnsureReachMaps(size_t count) {
  if (reach_maps.size() < count) reach_maps.resize(count);
  frontiers.EnsureSegments(count);
}

}  // namespace banks
