#include "search/search_context.h"

#include <algorithm>

namespace banks {

void SearchContext::StreamState::Reset() {
  phase = Phase::kFresh;
  // Clear rather than assign fresh objects: the answers vector and the
  // metrics' per-answer time vectors keep their capacity, so a warm
  // stream's bookkeeping allocates nothing.
  result.answers.clear();
  SearchMetrics& m = result.metrics;
  m.nodes_explored = 0;
  m.nodes_touched = 0;
  m.edges_relaxed = 0;
  m.propagation_steps = 0;
  m.answers_generated = 0;
  m.answers_output = 0;
  m.bsp_rounds = 0;
  m.cross_shard_messages = 0;
  m.max_mailbox_depth = 0;
  m.page_hits = 0;
  m.page_misses = 0;
  m.page_waits = 0;
  m.elapsed_seconds = 0;
  m.generated_times.clear();
  m.output_times.clear();
  m.budget_exhausted = false;
  steps = 0;
  last_progress = 0;
  last_top = -1;
  elapsed = 0;
  page_fault_retries = 0;
}

void SearchContext::BeginQuery(size_t num_keywords, uint32_t shard_count) {
  ++queries_started_;
  active_shards_ = std::max<uint32_t>(1, shard_count);

  node_index.Clear();
  // Lane-partitioned pools have a fixed kNumLanes slots regardless of
  // shard_count (the worker count must not shape the search), so the
  // first query sizes them once and every later query is growth-free.
  if (node_shard_index.size() < kNumLanes) node_shard_index.resize(kNumLanes);
  for (auto& m : node_shard_index) m.Clear();

  node.clear();
  depth.clear();
  state_flags.clear();
  last_eraw.clear();
  marked_time.clear();
  marked_explored.clear();
  marked_touched.clear();
  parents.clear();
  children.clear();

  dist.clear();
  sp.clear();
  act.clear();
  act_sum.clear();
  edge_lists.Clear();
  edge_links.Clear();
  if (lane_edge_flags.size() < kNumLanes) lane_edge_flags.resize(kNumLanes);
  for (auto& m : lane_edge_flags) m.Clear();
  if (qin.size() < kNumLanes) qin.resize(kNumLanes);
  if (qout.size() < kNumLanes) qout.resize(kNumLanes);
  if (qin_depth.size() < kNumLanes) qin_depth.resize(kNumLanes);
  if (qout_depth.size() < kNumLanes) qout_depth.resize(kNumLanes);
  for (auto& h : qin) h.Clear();
  for (auto& h : qout) h.Clear();
  for (auto& h : qin_depth) h.Clear();
  for (auto& h : qout_depth) h.Clear();
  const size_t min_dist_slots = kNumLanes * num_keywords;
  if (min_dist.size() < min_dist_slots) min_dist.resize(min_dist_slots);
  for (auto& h : min_dist) h.Clear();
  dirty_roots.clear();
  best_eraws.clear();
  // The Attach/Activate loops drain their queues before returning, so
  // these are only non-empty if a previous query aborted mid-propagation
  // (e.g. via an exception unwinding through Search).
  if (attach_queues.size() < kNumLanes) attach_queues.resize(kNumLanes);
  if (activate_queues.size() < kNumLanes) activate_queues.resize(kNumLanes);
  for (auto& q : attach_queues) {
    while (!q.empty()) q.pop();
  }
  for (auto& q : activate_queues) {
    while (!q.empty()) q.pop();
  }
  bound_scratch.clear();

  const size_t mailbox_slots = 2 * kNumLanes * kNumLanes;  // double-banked
  if (mailboxes.size() < mailbox_slots) mailboxes.resize(mailbox_slots);
  for (auto& box : mailboxes) box.Clear();
  lane_pop.assign(kNumLanes, 0);
  if (lane_counters.size() < kNumLanes) lane_counters.resize(kNumLanes);
  for (auto& c : lane_counters) c.Reset();
  if (lane_dirty.size() < kNumLanes) lane_dirty.resize(kNumLanes);
  for (auto& d : lane_dirty) d.clear();
  if (si_stage.size() < kNumLanes) si_stage.resize(kNumLanes);
  for (auto& s : si_stage) s.clear();
  if (sched_stage.size() < kNumLanes) sched_stage.resize(kNumLanes);
  for (auto& s : sched_stage) s.clear();

  if (output_heaps.size() < kNumLanes) output_heaps.resize(kNumLanes);
  for (auto& h : output_heaps) h.Reset();
  kw_scratch.clear();
  union_edge_scratch.clear();
  uniq_scratch.clear();
  // cand_trees keeps its slots (their vectors' capacity is recycled by
  // the next batch's copy-assignments); cand_state/cand_eraw are sized
  // per batch by the searcher.
  cand_state.clear();
  cand_eraw.clear();
  nra_partial.clear();
  shard_minima.clear();

  for (auto& m : reach_maps) m.Clear();
  frontiers.Clear();
  iter_keyword.clear();
  iter_origin.clear();
  if (scheduler.size() < kNumLanes) scheduler.resize(kNumLanes);
  for (auto& s : scheduler) s.clear();
  id_scratch.clear();
  if (si_frontier.size() < kNumLanes) si_frontier.resize(kNumLanes);
  for (auto& s : si_frontier) s.clear();
  visit_dist.clear();
  visit_iter.clear();
  visit_covered.clear();
}

void SearchContext::EnsureReachMaps(size_t count) {
  if (reach_maps.size() < count) reach_maps.resize(count);
  frontiers.EnsureSegments(count);
}

}  // namespace banks
