#include "search/search_context.h"

namespace banks {

void SearchContext::BeginQuery(size_t num_keywords) {
  ++queries_started_;

  node_index.Clear();

  node.clear();
  depth.clear();
  state_flags.clear();
  last_eraw.clear();
  marked_time.clear();
  marked_explored.clear();
  marked_touched.clear();
  parents.clear();
  children.clear();

  dist.clear();
  sp.clear();
  act.clear();
  act_sum.clear();
  edge_lists.Clear();
  edge_flags.Clear();
  qin.Clear();
  qout.Clear();
  qin_depth.Clear();
  qout_depth.Clear();
  if (min_dist.size() < num_keywords) min_dist.resize(num_keywords);
  for (auto& h : min_dist) h.Clear();
  dirty_roots.clear();
  best_eraws.clear();
  // The Attach/Activate loops drain their queues before returning, so
  // these are only non-empty if a previous query aborted mid-propagation
  // (e.g. via an exception unwinding through Search).
  while (!attach_queue.empty()) attach_queue.pop();
  while (!activate_queue.empty()) activate_queue.pop();
  bound_scratch.clear();

  output_heap.Reset();
  kw_scratch.clear();
  union_edge_scratch.clear();
  uniq_scratch.clear();

  for (auto& m : reach_maps) m.Clear();
  frontiers.Clear();
  iter_keyword.clear();
  iter_origin.clear();
  scheduler.clear();
  id_scratch.clear();
  si_frontier.clear();
  visit_dist.clear();
  visit_iter.clear();
  visit_covered.clear();
}

void SearchContext::EnsureReachMaps(size_t count) {
  if (reach_maps.size() < count) reach_maps.resize(count);
  frontiers.EnsureSegments(count);
}

}  // namespace banks
