#ifndef BANKS_SEARCH_FLAT_HASH_H_
#define BANKS_SEARCH_FLAT_HASH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace banks {

/// Finalizer of splitmix64 — a full-avalanche 64→64 bit mixer. Dense
/// NodeIds and packed (state,state) edge keys are highly regular, so the
/// open-addressing tables below must scramble them before masking.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Open-addressing hash map tuned for per-query search state.
///
/// Two properties matter on the query hot path and distinguish this from
/// `std::unordered_map`:
///  * **Flat storage.** The probe table is a contiguous slot array
///    (linear probing) and values live in a dense `entries_` vector —
///    no per-node heap allocation, and iteration over live entries is a
///    linear scan of exactly `size()` elements.
///  * **Epoch-versioned O(1) reset.** `Clear()` bumps a generation
///    counter instead of touching the table, so a reused map starts the
///    next query with all capacity retained and zero work done. A warm
///    `SearchContext` therefore performs no hash-table allocations at
///    all once its tables have grown to the working-set size.
///
/// K must be an unsigned integer type (NodeId or a packed uint64_t edge
/// key). References returned by `operator[]`/`Find` are invalidated by
/// the next insertion (dense storage may grow), like `std::vector`.
template <typename K, typename V>
class FlatHashMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  FlatHashMap() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Forgets all entries in O(1), keeping both the slot table and the
  /// dense entry capacity for reuse.
  void Clear() {
    entries_.clear();
    if (++epoch_ == 0) {
      // Epoch counter wrapped (once per 2^32 queries): hard-reset the
      // slot generations so stale slots cannot alias the new epoch.
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* Find(K key) {
    if (slots_.empty()) return nullptr;
    size_t i = HashMix64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == key) return &entries_[s.entry].value;
      i = (i + 1) & mask_;
    }
  }
  const V* Find(K key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  /// Value for `key`, default-constructed and inserted if absent.
  V& operator[](K key) {
    if (slots_.empty() || (entries_.size() + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    size_t i = HashMix64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.key = key;
        s.entry = static_cast<uint32_t>(entries_.size());
        entries_.push_back(Entry{key, V{}});
        return entries_.back().value;
      }
      if (s.key == key) return entries_[s.entry].value;
      i = (i + 1) & mask_;
    }
  }

  /// Dense iteration over live entries, in insertion order.
  typename std::vector<Entry>::iterator begin() { return entries_.begin(); }
  typename std::vector<Entry>::iterator end() { return entries_.end(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return entries_.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return entries_.end();
  }

 private:
  struct Slot {
    K key;
    uint32_t epoch = 0;  // live iff equal to the map's current epoch
    uint32_t entry = 0;  // index into entries_
  };

  void Rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap >= 8);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    if (epoch_ == 0) epoch_ = 1;  // fresh table: make slot epoch 0 "dead"
    for (uint32_t e = 0; e < entries_.size(); ++e) {
      size_t i = HashMix64(static_cast<uint64_t>(entries_[e].key)) & mask_;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
      slots_[i] = Slot{entries_[e].key, epoch_, e};
    }
  }

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  size_t mask_ = 0;
  uint32_t epoch_ = 0;
};

}  // namespace banks

#endif  // BANKS_SEARCH_FLAT_HASH_H_
