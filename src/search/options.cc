#include "search/options.h"

#include <bit>

namespace banks {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t value, uint64_t* h) {
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (value >> (byte * 8)) & 0xff;
    *h *= kFnvPrime;
  }
}

void Mix(double value, uint64_t* h) { Mix(std::bit_cast<uint64_t>(value), h); }

}  // namespace

uint64_t OptionsFingerprint(const SearchOptions& o) {
  uint64_t h = kFnvOffset;
  Mix(static_cast<uint64_t>(o.k), &h);
  Mix(static_cast<uint64_t>(o.dmax), &h);
  Mix(o.lambda, &h);
  Mix(o.mu, &h);
  Mix(static_cast<uint64_t>(o.combine), &h);
  Mix(static_cast<uint64_t>(o.bound), &h);
  Mix(static_cast<uint64_t>(o.edge_filter), &h);
  Mix(o.max_nodes_explored, &h);
  Mix(o.max_answers_generated, &h);
  Mix(static_cast<uint64_t>(o.bound_check_interval), &h);
  Mix(o.release_patience, &h);
  return h;
}

bool SameResultOptions(const SearchOptions& a, const SearchOptions& b) {
  return a.k == b.k && a.dmax == b.dmax &&
         std::bit_cast<uint64_t>(a.lambda) == std::bit_cast<uint64_t>(b.lambda) &&
         std::bit_cast<uint64_t>(a.mu) == std::bit_cast<uint64_t>(b.mu) &&
         a.combine == b.combine && a.bound == b.bound &&
         a.edge_filter == b.edge_filter &&
         a.max_nodes_explored == b.max_nodes_explored &&
         a.max_answers_generated == b.max_answers_generated &&
         a.bound_check_interval == b.bound_check_interval &&
         a.release_patience == b.release_patience;
}

}  // namespace banks
