#ifndef BANKS_SEARCH_OUTPUT_HEAP_H_
#define BANKS_SEARCH_OUTPUT_HEAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "search/answer.h"

namespace banks {

/// Buffer that reorders generated answers before output (§4.2.3, §4.5).
///
/// Answers are not generated in relevance order; the OutputHeap holds
/// them until the search determines no better answer can appear. It also
/// performs duplicate suppression: "it is possible for the same tree to
/// appear in more than one result, but with different roots; such
/// duplicates with lower score are discarded when they are inserted".
class OutputHeap {
 public:
  /// Inserts a scored tree. Returns true if it is new or improves on the
  /// buffered/already-output copy with the same rotation signature.
  bool Insert(AnswerTree tree);

  /// Moves every pending answer with score >= bound into *out (best
  /// first), stopping after *out reaches `limit` answers in total.
  void ReleaseWithScoreBound(double bound, size_t limit,
                             std::vector<AnswerTree>* out);

  /// Loose-heuristic release (§4.5): moves pending answers whose *raw
  /// edge score* is <= max_eraw, sorted by overall score among them.
  void ReleaseWithEdgeBound(double max_eraw, size_t limit,
                            std::vector<AnswerTree>* out);

  /// Releases the `count` best pending answers unconditionally (the
  /// staleness drip of SearchOptions::release_patience).
  void ReleaseBest(size_t count, size_t limit, std::vector<AnswerTree>* out);

  /// Releases everything pending, best first (search termination).
  void Drain(size_t limit, std::vector<AnswerTree>* out);

  size_t pending_count() const { return pending_.size(); }

  /// Best pending score, or -1 if empty. Amortized O(1): inserts keep a
  /// running max; releases invalidate it and the next call rescans.
  double BestPendingScore() const;

 private:
  void ReleaseIf(size_t limit, std::vector<AnswerTree>* out,
                 bool (*releasable)(const AnswerTree&, double), double arg);

  // signature → pending tree (best copy seen so far).
  std::unordered_map<uint64_t, AnswerTree> pending_;
  // signature → score of the copy already output (release is final).
  std::unordered_map<uint64_t, double> output_scores_;
  mutable double cached_best_ = -1;
  mutable bool cache_valid_ = true;
};

}  // namespace banks

#endif  // BANKS_SEARCH_OUTPUT_HEAP_H_
