#ifndef BANKS_SEARCH_OUTPUT_HEAP_H_
#define BANKS_SEARCH_OUTPUT_HEAP_H_

#include <cstdint>
#include <vector>

#include "search/answer.h"
#include "search/flat_hash.h"

namespace banks {

/// Buffer that reorders generated answers before output (§4.2.3, §4.5).
///
/// Answers are not generated in relevance order; the OutputHeap holds
/// them until the search determines no better answer can appear. It also
/// performs duplicate suppression: "it is possible for the same tree to
/// appear in more than one result, but with different roots; such
/// duplicates with lower score are discarded when they are inserted".
///
/// All storage is pooled: the signature table is an epoch-versioned
/// FlatHashMap into a recycled slot array, and released answers are
/// tombstoned in place rather than erased. Reset() forgets the query in
/// O(1)-ish without destroying the slots' trees, so their vector
/// capacity is re-used by the next query's candidates — a heap recycled
/// through a warm SearchContext buffers a whole query without
/// allocating. A released record is a tombstone: release is final, and
/// every late duplicate of it is dropped outright.
///
/// Sharded searches keep one heap per signature shard (sig mod
/// shard_count) and run every release through the Merged* functions
/// below, which globally order the per-shard candidates before
/// releasing — byte-identical to a single heap holding the union.
class OutputHeap {
 public:
  /// One releasable pending record, tagged with its owning heap: the
  /// unit the merged release checks sort globally across shard-local
  /// heaps. The (score desc, sig asc) order is the canonical release
  /// order of a single heap, so merging preserves it exactly.
  struct MergedPick {
    double score;
    uint64_t sig;
    uint32_t heap;  // caller-assigned tag of the owning heap
    uint32_t slot;
  };

  /// Forgets all pending and released answers in O(live records),
  /// keeping every table and scratch capacity for the next query.
  void Reset();

  /// Inserts a scored tree. Returns true if it is new or improves on the
  /// buffered/already-output copy with the same rotation signature.
  bool Insert(AnswerTree tree);

  /// Copy-on-accept insert for the hot path: `tree` is a pooled scratch
  /// the searcher rebuilds per candidate. Duplicate / non-improving
  /// candidates are rejected with zero allocations (signature runs on
  /// pooled scratch, no tree is copied); only an accepted candidate pays
  /// for an owning copy — and an improved duplicate copies into the
  /// existing record's capacity.
  bool InsertCopy(const AnswerTree& tree);

  /// InsertCopy with the signature already computed (sharded searchers
  /// compute it once to route the candidate to its signature shard).
  bool InsertCopy(const AnswerTree& tree, uint64_t sig);

  /// Moves every pending answer with score >= bound into *out (best
  /// first), stopping after *out reaches `limit` answers in total.
  void ReleaseWithScoreBound(double bound, size_t limit,
                             std::vector<AnswerTree>* out);

  /// Loose-heuristic release (§4.5): moves pending answers whose *raw
  /// edge score* is <= max_eraw, sorted by overall score among them.
  void ReleaseWithEdgeBound(double max_eraw, size_t limit,
                            std::vector<AnswerTree>* out);

  /// Releases the `count` best pending answers unconditionally (the
  /// staleness drip of SearchOptions::release_patience).
  void ReleaseBest(size_t count, size_t limit, std::vector<AnswerTree>* out);

  /// Releases everything pending, best first (search termination).
  void Drain(size_t limit, std::vector<AnswerTree>* out);

  size_t pending_count() const { return pending_count_; }

  /// Best pending score, or -1 if empty. Amortized O(1): inserts keep a
  /// running max; releases invalidate it and the next call rescans.
  double BestPendingScore() const;

  /// Appends every pending record satisfying releasable(tree, arg) to
  /// *out, tagged with `heap_tag`. Pure scan: safe to run concurrently
  /// across distinct heaps.
  void CollectReleasable(bool (*releasable)(const AnswerTree&, double),
                         double arg, uint32_t heap_tag,
                         std::vector<MergedPick>* out) const;

  /// Releases slot `slot` (from a MergedPick of this heap) and moves its
  /// tree out. The record becomes a tombstone, as with the Release*
  /// paths.
  AnswerTree TakeSlot(uint32_t slot);

  /// Tombstones slot `slot` without emitting it — how a merged release
  /// drops the lower-scored copy of a signature that two heaps both
  /// hold (a single heap would have rejected it at insert).
  void DiscardSlot(uint32_t slot);

 private:
  friend void MergedReleaseIf(OutputHeap* heaps, size_t count,
                              bool (*releasable)(const AnswerTree&, double),
                              double arg, size_t limit,
                              std::vector<AnswerTree>* out);

  /// One answer seen this query. Pending records hold the best buffered
  /// copy; released records are tombstones (their tree is moved out and
  /// late duplicates of their signature are dropped). Slots survive
  /// Reset() — only the first `used_` are live — so a slot's tree
  /// vectors keep their capacity for the next query's copy-assignments.
  struct Record {
    AnswerTree tree;
    uint64_t sig = 0;
    double score = 0;  // == tree.score while pending
    bool released = false;
  };

  /// Finds/creates the record for `tree`'s signature and decides
  /// acceptance; returns the record to fill, or nullptr for rejection.
  Record* Accept(const AnswerTree& tree, uint64_t sig);

  FlatHashMap<uint64_t, uint32_t> index_;  // signature → slot
  std::vector<Record> slots_;              // recycled across Reset()
  size_t used_ = 0;                        // live slot count this query
  size_t pending_count_ = 0;
  // Merged-release scratch, pooled on the first heap of a shard set.
  std::vector<MergedPick> merge_scratch_;
  std::vector<uint64_t> taken_sigs_;
  AnswerTree::SignatureScratch sig_scratch_;
  mutable double cached_best_ = -1;
  mutable bool cache_valid_ = true;
};

// ---- Merged release checks over per-shard heaps ---------------------------
// `heaps[0..count)` are the shard-local output buffers of one search.
// Each function is byte-identical to calling the corresponding member on
// a single heap holding the union of the records, provided no signature
// is pending in two heaps — which the sig-mod-shard routing guarantees.
// (Should two heaps nonetheless hold one signature, the higher-scored
// copy wins and the other is tombstoned, matching insert-time
// suppression, as long as both pass the release predicate together —
// Drain/ReleaseBest always do.)

size_t MergedPendingCount(const OutputHeap* heaps, size_t count);

/// Best pending score across the shard heaps, or -1 when none pending.
double MergedBestPendingScore(const OutputHeap* heaps, size_t count);

void MergedReleaseWithScoreBound(OutputHeap* heaps, size_t count, double bound,
                                 size_t limit, std::vector<AnswerTree>* out);

void MergedReleaseWithEdgeBound(OutputHeap* heaps, size_t count,
                                double max_eraw, size_t limit,
                                std::vector<AnswerTree>* out);

void MergedReleaseBest(OutputHeap* heaps, size_t count, size_t release_count,
                       size_t limit, std::vector<AnswerTree>* out);

void MergedDrain(OutputHeap* heaps, size_t count, size_t limit,
                 std::vector<AnswerTree>* out);

}  // namespace banks

#endif  // BANKS_SEARCH_OUTPUT_HEAP_H_
