#ifndef BANKS_SEARCH_OUTPUT_HEAP_H_
#define BANKS_SEARCH_OUTPUT_HEAP_H_

#include <cstdint>
#include <vector>

#include "search/answer.h"
#include "search/flat_hash.h"

namespace banks {

/// Buffer that reorders generated answers before output (§4.2.3, §4.5).
///
/// Answers are not generated in relevance order; the OutputHeap holds
/// them until the search determines no better answer can appear. It also
/// performs duplicate suppression: "it is possible for the same tree to
/// appear in more than one result, but with different roots; such
/// duplicates with lower score are discarded when they are inserted".
///
/// All storage is pooled: the signature table is an epoch-versioned
/// FlatHashMap into a recycled slot array, and released answers are
/// tombstoned in place rather than erased. Reset() forgets the query in
/// O(1)-ish without destroying the slots' trees, so their vector
/// capacity is re-used by the next query's candidates — a heap recycled
/// through a warm SearchContext buffers a whole query without
/// allocating. A released record is a tombstone: release is final, and
/// every late duplicate of it is dropped outright.
class OutputHeap {
 public:
  /// Forgets all pending and released answers in O(live records),
  /// keeping every table and scratch capacity for the next query.
  void Reset();

  /// Inserts a scored tree. Returns true if it is new or improves on the
  /// buffered/already-output copy with the same rotation signature.
  bool Insert(AnswerTree tree);

  /// Copy-on-accept insert for the hot path: `tree` is a pooled scratch
  /// the searcher rebuilds per candidate. Duplicate / non-improving
  /// candidates are rejected with zero allocations (signature runs on
  /// pooled scratch, no tree is copied); only an accepted candidate pays
  /// for an owning copy — and an improved duplicate copies into the
  /// existing record's capacity.
  bool InsertCopy(const AnswerTree& tree);

  /// Moves every pending answer with score >= bound into *out (best
  /// first), stopping after *out reaches `limit` answers in total.
  void ReleaseWithScoreBound(double bound, size_t limit,
                             std::vector<AnswerTree>* out);

  /// Loose-heuristic release (§4.5): moves pending answers whose *raw
  /// edge score* is <= max_eraw, sorted by overall score among them.
  void ReleaseWithEdgeBound(double max_eraw, size_t limit,
                            std::vector<AnswerTree>* out);

  /// Releases the `count` best pending answers unconditionally (the
  /// staleness drip of SearchOptions::release_patience).
  void ReleaseBest(size_t count, size_t limit, std::vector<AnswerTree>* out);

  /// Releases everything pending, best first (search termination).
  void Drain(size_t limit, std::vector<AnswerTree>* out);

  size_t pending_count() const { return pending_count_; }

  /// Best pending score, or -1 if empty. Amortized O(1): inserts keep a
  /// running max; releases invalidate it and the next call rescans.
  double BestPendingScore() const;

 private:
  /// One answer seen this query. Pending records hold the best buffered
  /// copy; released records are tombstones (their tree is moved out and
  /// late duplicates of their signature are dropped). Slots survive
  /// Reset() — only the first `used_` are live — so a slot's tree
  /// vectors keep their capacity for the next query's copy-assignments.
  struct Record {
    AnswerTree tree;
    uint64_t sig = 0;
    double score = 0;  // == tree.score while pending
    bool released = false;
  };

  void ReleaseIf(size_t limit, std::vector<AnswerTree>* out,
                 bool (*releasable)(const AnswerTree&, double), double arg);

  /// Finds/creates the record for `tree`'s signature and decides
  /// acceptance; returns the record to fill, or nullptr for rejection.
  Record* Accept(const AnswerTree& tree);

  FlatHashMap<uint64_t, uint32_t> index_;  // signature → slot
  std::vector<Record> slots_;              // recycled across Reset()
  size_t used_ = 0;                        // live slot count this query
  size_t pending_count_ = 0;
  std::vector<uint32_t> release_scratch_;  // releasable slots, then sorted
  AnswerTree::SignatureScratch sig_scratch_;
  mutable double cached_best_ = -1;
  mutable bool cache_valid_ = true;
};

}  // namespace banks

#endif  // BANKS_SEARCH_OUTPUT_HEAP_H_
