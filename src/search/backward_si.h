#ifndef BANKS_SEARCH_BACKWARD_SI_H_
#define BANKS_SEARCH_BACKWARD_SI_H_

#include "search/searcher.h"

namespace banks {

/// Single-iterator Backward expanding search (§4.6).
///
/// Identical to Backward search except all shortest-path iterators are
/// merged into one: per keyword *term* (not per keyword node) a
/// multi-source Dijkstra runs over the in-edges, storing for each node
/// only the distance and next hop toward the *nearest* node matching
/// each term. The frontier is prioritized purely by distance — no
/// spreading activation, no forward iterator — which isolates the
/// single-iterator effect from the other Bidirectional ideas.
class BackwardSISearcher : public Searcher {
 public:
  using Searcher::Searcher;

  SearchStatus Resume(const std::vector<std::vector<NodeId>>& origins,
                      SearchContext* context,
                      const StepLimits& limits) const override;
};

}  // namespace banks

#endif  // BANKS_SEARCH_BACKWARD_SI_H_
