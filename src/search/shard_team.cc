#include "search/shard_team.h"

namespace banks {

ShardTeam::ShardTeam(uint32_t shards) : shards_(shards == 0 ? 1 : shards) {
  workers_.reserve(shards_ - 1);
  for (uint32_t w = 1; w < shards_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardTeam::~ShardTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardTeam::WorkerLoop(uint32_t shard) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(shard);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!failure_) failure_ = std::current_exception();
    }
    bool last;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --outstanding_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void ShardTeam::Run(const std::function<void(uint32_t)>& fn) {
  if (shards_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    outstanding_ = shards_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  try {
    fn(0);  // the coordinator is shard 0
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failure_) failure_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
  if (failure_) {
    std::exception_ptr f = failure_;
    failure_ = nullptr;
    lock.unlock();
    std::rethrow_exception(f);
  }
}

ShardTeamPool& ShardTeamPool::Default() {
  static ShardTeamPool* pool = new ShardTeamPool();  // never destroyed:
  return *pool;  // teams may outlive main()'s static teardown order
}

ShardTeamPool::Lease ShardTeamPool::Acquire(uint32_t shards) {
  if (shards < 2) shards = 2;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquires_;
    std::vector<ShardTeam*>& idle = idle_[shards];
    if (!idle.empty()) {
      ShardTeam* team = idle.back();
      idle.pop_back();
      return Lease(this, team);
    }
  }
  // Spawn outside the lock: thread creation is the slow path and must
  // not serialize concurrent acquires of other size classes.
  auto fresh = std::make_unique<ShardTeam>(shards);
  ShardTeam* team = fresh.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    all_.push_back(std::move(fresh));
  }
  return Lease(this, team);
}

void ShardTeamPool::Release(ShardTeam* team) {
  if (team == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  idle_[team->shards()].push_back(team);
}

size_t ShardTeamPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

size_t ShardTeamPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [shards, idle] : idle_) n += idle.size();
  return n;
}

uint64_t ShardTeamPool::acquires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_;
}

ShardRuntime::ShardRuntime(uint32_t shards, SearchContextPool* pool,
                           ShardTeamPool* team_pool)
    : shards_(shards == 0 ? 1 : shards),
      pool_(pool),
      team_pool_(team_pool != nullptr ? team_pool
                                      : &ShardTeamPool::Default()) {}

bool ShardRuntime::Engage(size_t work_items, size_t min_per_shard) {
  return shards_ > 1 && work_items >= min_per_shard * shards_;
}

void ShardRuntime::Run(const std::function<void(uint32_t)>& fn) {
  if (shards_ == 1) {
    fn(0);
    return;
  }
  if (!team_) team_ = team_pool_->Acquire(shards_);
  team_->Run(fn);
}

void ShardRuntime::PrepareWorkerScratch() {
  if (shards_ == 1 || !leases_.empty()) return;
  if (pool_ == nullptr) {
    local_pool_ = std::make_unique<SearchContextPool>();
    pool_ = local_pool_.get();
  }
  leases_.resize(shards_ - 1);
  for (SearchContextPool::Lease& lease : leases_) lease = pool_->Acquire();
}

SearchContext* ShardRuntime::WorkerScratch(uint32_t shard) const {
  if (shard == 0 || leases_.empty()) return nullptr;
  return leases_[shard - 1].get();
}

}  // namespace banks
