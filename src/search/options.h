#ifndef BANKS_SEARCH_OPTIONS_H_
#define BANKS_SEARCH_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace banks {

class SearchContextPool;
class ShardTeamPool;

/// How per-keyword activation received over multiple edges is combined
/// (§4.3): kMax reflects shortest-path tree scoring (paper default);
/// kSum rewards confluence of many paths and powers the "near queries"
/// extension mentioned in footnote 6.
enum class ActivationCombine : uint8_t { kMax, kSum };

/// Answer-release policy of §4.5.
///  kTight — NRA-style upper bound from per-keyword frontier minima plus
///           the best completion of partially-seen nodes; answers are
///           released only when no better answer can appear.
///  kLoose — the paper's cheaper heuristic: release once the answer's
///           aggregate edge score beats h(m_1..m_k), ignoring prestige.
///  kImmediate — release in generation order (no buffering); useful for
///           measuring pure generation behaviour.
enum class BoundMode : uint8_t { kTight, kLoose, kImmediate };

/// Which edges a search may traverse. The paper notes prioritization "can
/// be extended to enforce constraints using edge types to restrict search
/// to specified search paths"; restricting by provenance is the built-in
/// constraint.
enum class EdgeFilter : uint8_t { kAll, kForwardOnly, kBackwardOnly };

/// Knobs shared by all three search algorithms. Defaults follow §5.1:
/// "we used the default values noted earlier in the paper for all
/// parameters (such as mu, lambda and dmax)".
struct SearchOptions {
  /// Number of answers to produce (top-k).
  size_t k = 10;

  /// Depth cutoff d_max: nodes farther than this many edges from their
  /// nearest keyword node (or root for forward expansion) are not
  /// expanded. "A generous default of dmax = 8" (§4.2).
  uint32_t dmax = 8;

  /// Importance of node prestige in the overall score E·N^λ (§2.3).
  double lambda = 0.2;

  /// Activation attenuation: each node spreads fraction mu of received
  /// activation to neighbours and retains 1-mu (§4.3).
  double mu = 0.5;

  ActivationCombine combine = ActivationCombine::kMax;
  BoundMode bound = BoundMode::kTight;
  EdgeFilter edge_filter = EdgeFilter::kAll;

  /// Safety budget: stop after exploring this many nodes (0 = unlimited).
  uint64_t max_nodes_explored = 0;

  /// Cap on answers generated into the output buffer before forced
  /// termination (0 = unlimited). Guards pathological workloads.
  uint64_t max_answers_generated = 0;

  /// Recompute the release upper bound every this many node expansions.
  uint32_t bound_check_interval = 64;

  /// Loose-mode staleness release (engineering addition beyond §4.5,
  /// ablatable): if this many node expansions pass with no new answer
  /// generated and nothing released, the best pending answer is released
  /// anyway. Prevents frontier-minimum starvation (unexpanded dist-0
  /// origin nodes of a frequent keyword keep m_i at 0 forever) from
  /// degenerating into full-graph exploration. The §5.7 recall/precision
  /// harness validates that ordering quality survives. 0 disables.
  uint64_t release_patience = 512;

  /// Shards of the intra-query frontier: the per-node search state
  /// (Q_in/Q_out heaps, NodeId→state maps, §4.5 frontier-minimum heaps,
  /// output buffers) is partitioned into this many NodeId ranges, and
  /// the search's batched phases — candidate-tree materialization and
  /// the release-bound scans — run one slice per worker thread. 1 (the
  /// default) is the sequential path. Any shard count returns identical
  /// answers and deterministic metrics: expansion follows a strict
  /// total order (activation, then NodeId), so partitioning can never
  /// reorder the search. 0 is treated as 1.
  uint32_t shard_count = 1;

  /// Scratch pool for shard worker threads (shard_count > 1): each
  /// worker leases a SearchContext for its tree-building scratch.
  /// Non-owning; null falls back to a per-query internal pool, which is
  /// correct but cold — callers running query streams should share one
  /// pool so worker scratch stays warm.
  SearchContextPool* shard_pool = nullptr;

  /// Worker-thread pool for sharded queries (shard_count > 1): the
  /// search leases a warm ShardTeam per Resume slice instead of
  /// spawning threads. Non-owning; null uses the process-wide
  /// ShardTeamPool::Default(), which is the right choice for almost
  /// everyone — pass an explicit pool only to isolate thread
  /// accounting (tests, embedders with their own thread budgets).
  ShardTeamPool* team_pool = nullptr;
};

/// Canonical 64-bit fingerprint (FNV-1a) over every *result-affecting*
/// field of the options: k, dmax, lambda, mu, combine, bound,
/// edge_filter, the two budgets, bound_check_interval and
/// release_patience. Excluded by design: shard_count, shard_pool and
/// team_pool — sharding is proven result-neutral (any shard count
/// returns byte-identical answers), and the scratch/thread pools are
/// execution details — so one cache entry serves a query at any
/// parallelism. Floating
/// fields hash by bit pattern: -0.0 vs 0.0 (or two NaN payloads) count
/// as different options, which errs on the side of never aliasing two
/// configurations that could differ.
///
/// This is the options half of the AnswerCache key; equal fingerprints
/// from distinct option sets are possible in principle (64-bit hash) but
/// SameResultOptions gives the exact predicate when needed.
uint64_t OptionsFingerprint(const SearchOptions& options);

/// Exact field-wise equality over the same result-affecting set that
/// OptionsFingerprint hashes (shard_count/shard_pool/team_pool
/// ignored).
bool SameResultOptions(const SearchOptions& a, const SearchOptions& b);

}  // namespace banks

#endif  // BANKS_SEARCH_OPTIONS_H_
