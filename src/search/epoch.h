#ifndef BANKS_SEARCH_EPOCH_H_
#define BANKS_SEARCH_EPOCH_H_

#include <cstdint>
#include <memory>
#include <utility>

namespace banks {

/// A reader's hold on one engine epoch snapshot (docs/UPDATES.md).
///
/// Engine::ApplyUpdate publishes each update as a new immutable
/// snapshot; a search opened before the publish keeps reading the state
/// it started on. The pin is what makes that safe: it shares ownership
/// of the snapshot (type-erased — the holder never looks inside), so
/// the graph, index and prestige a searcher was built against outlive
/// any number of concurrent updates. Epoch reclamation is exactly
/// shared_ptr reclamation: the last pin released frees the snapshot.
///
/// Pins ride with the reader, not the thread: an AnswerStream holds its
/// pin until the terminal transition (drained, done, cancelled, IO
/// error), a scheduler task carries it in TaskSpec and the scheduler
/// releases it in the same terminal step that detaches the context —
/// including while the task is parked (credit-wait, admission queue,
/// page-wait), which is why a parked task holds an epoch pin even with
/// zero context leases.
struct EpochPin {
  std::shared_ptr<const void> snapshot;
  uint64_t epoch = 0;

  explicit operator bool() const { return snapshot != nullptr; }

  void Release() {
    snapshot.reset();
    epoch = 0;
  }
};

}  // namespace banks

#endif  // BANKS_SEARCH_EPOCH_H_
