#include "search/answer_stream.h"

#include <utility>

#include "serve/queue_sink.h"
#include "serve/scheduler.h"

namespace banks {

/// Scheduled-mode backing: the subscription pushes into `sink`, the
/// stream's Next()/Drain() pop from it. Declared in the header, defined
/// here so answer_stream.h does not pull in the serve/ layer.
struct AnswerStream::Served {
  QueueSink sink;
  Subscription subscription;
};

AnswerStream::AnswerStream(const Searcher* searcher,
                           std::vector<std::vector<NodeId>> origins,
                           const StreamOptions& options,
                           SearchContext* context)
    : AnswerStream(searcher, std::move(origins), nullptr, options, context,
                   nullptr) {}

AnswerStream::AnswerStream(
    const Searcher* searcher, std::vector<std::vector<NodeId>> owned_origins,
    const std::vector<std::vector<NodeId>>* borrowed_origins,
    const StreamOptions& options, SearchContext* context,
    std::unique_ptr<Searcher> owned_searcher, EpochPin epoch_pin)
    : searcher_(searcher),
      owned_searcher_(std::move(owned_searcher)),
      owned_origins_(std::move(owned_origins)),
      borrowed_origins_(borrowed_origins),
      options_(options),
      epoch_pin_(std::move(epoch_pin)) {
  if (options_.scheduler != nullptr && owned_searcher_ != nullptr) {
    // Scheduled mode: hand the search to the serving core and consume
    // its pushes. No context is held here — the scheduler attaches and
    // detaches pooled contexts around quanta itself, and the epoch pin
    // rides with the task (released by the scheduler's terminal step).
    served_ = std::make_unique<Served>();
    TaskSpec spec;
    spec.searcher = std::move(owned_searcher_);
    spec.origins = borrowed_origins_ != nullptr ? *borrowed_origins_
                                                : std::move(owned_origins_);
    borrowed_origins_ = nullptr;
    spec.sink = &served_->sink;
    spec.epoch_pin = std::move(epoch_pin_);
    served_->subscription = options_.scheduler->Submit(std::move(spec));
    return;
  }
  if (context != nullptr) {
    external_ = context;
  } else if (options_.pool != nullptr) {
    lease_ = options_.pool->Acquire();
  } else {
    owned_ctx_ = std::make_unique<SearchContext>();
  }
  this->context()->stream.Reset();
}

AnswerStream::AnswerStream(AnswerStream&& other) noexcept
    : searcher_(std::exchange(other.searcher_, nullptr)),
      owned_searcher_(std::move(other.owned_searcher_)),
      owned_origins_(std::move(other.owned_origins_)),
      borrowed_origins_(std::exchange(other.borrowed_origins_, nullptr)),
      options_(other.options_),
      external_(std::exchange(other.external_, nullptr)),
      lease_(std::move(other.lease_)),
      owned_ctx_(std::move(other.owned_ctx_)),
      served_(std::move(other.served_)),
      pulled_(std::exchange(other.pulled_, 0)),
      finished_(std::exchange(other.finished_, true)),
      hit_limit_(other.hit_limit_),
      epoch_pin_(std::move(other.epoch_pin_)),
      metrics_snapshot_(std::move(other.metrics_snapshot_)) {}

AnswerStream& AnswerStream::operator=(AnswerStream&& other) noexcept {
  if (this != &other) {
    searcher_ = std::exchange(other.searcher_, nullptr);
    owned_searcher_ = std::move(other.owned_searcher_);
    owned_origins_ = std::move(other.owned_origins_);
    borrowed_origins_ = std::exchange(other.borrowed_origins_, nullptr);
    options_ = other.options_;
    external_ = std::exchange(other.external_, nullptr);
    lease_ = std::move(other.lease_);
    owned_ctx_ = std::move(other.owned_ctx_);
    ReleaseServed();  // our own live subscription must not outlive its sink
    served_ = std::move(other.served_);
    pulled_ = std::exchange(other.pulled_, 0);
    finished_ = std::exchange(other.finished_, true);
    hit_limit_ = other.hit_limit_;
    epoch_pin_ = std::move(other.epoch_pin_);
    metrics_snapshot_ = std::move(other.metrics_snapshot_);
  }
  return *this;
}

AnswerStream::~AnswerStream() { ReleaseServed(); }

void AnswerStream::ReleaseServed() {
  if (served_ == nullptr) return;
  // The scheduler may still be delivering into served_->sink; cancel
  // and wait for the terminal push before the sink goes away. Wait
  // returns immediately when the task already finished.
  served_->subscription.Cancel();
  served_->subscription.Wait();
  metrics_snapshot_ = served_->sink.final_metrics();
  served_.reset();
}

SearchContext* AnswerStream::context() const {
  if (external_ != nullptr) return external_;
  if (lease_) return lease_.get();
  return owned_ctx_.get();
}

std::optional<AnswerTree> AnswerStream::TakeBuffered() {
  std::vector<AnswerTree>& answers = context()->stream.result.answers;
  if (pulled_ >= answers.size()) return std::nullopt;
  // Move out of the slot: release order is append-only, so the husk is
  // never revisited (Drain skips the pulled prefix).
  return std::move(answers[pulled_++]);
}

std::optional<AnswerTree> AnswerStream::Next() {
  if (served_ != nullptr) {
    hit_limit_ = false;
    bool timed_out = false;
    std::optional<AnswerTree> answer =
        options_.deadline_seconds > 0
            ? served_->sink.PopFor(options_.deadline_seconds, &timed_out)
            : served_->sink.Pop();
    if (answer) {
      ++pulled_;
      return answer;
    }
    if (timed_out) {
      hit_limit_ = true;  // still live: the scheduler keeps working
      return std::nullopt;
    }
    finished_ = true;
    metrics_snapshot_ = served_->sink.final_metrics();
    return std::nullopt;
  }
  hit_limit_ = false;
  SearchContext* ctx = context();
  if (ctx == nullptr) return std::nullopt;  // moved-from or cancelled
  if (std::optional<AnswerTree> buffered = TakeBuffered()) return buffered;
  if (finished_) return std::nullopt;

  StepLimits limits;
  limits.release_target = pulled_ + 1;
  limits.max_steps = options_.step_budget;
  limits.deadline_seconds = options_.deadline_seconds;
  SearchStatus status = searcher_->Resume(origins(), ctx, limits);
  if (status == SearchStatus::kDone || status == SearchStatus::kIoError) {
    // kIoError is terminal too: a graph page read failed, the released
    // prefix stands, nothing further can come. Released answers are
    // self-contained copies, so the epoch hold can end here.
    finished_ = true;
    epoch_pin_.Release();
  }
  if (std::optional<AnswerTree> released = TakeBuffered()) return released;
  if (status == SearchStatus::kRunning) hit_limit_ = true;
  return std::nullopt;
}

SearchResult AnswerStream::Drain() {
  if (served_ != nullptr) {
    SearchResult out;
    served_->sink.WaitTerminal();
    AnswerTree tree;
    while (served_->sink.TryPop(&tree)) out.answers.push_back(std::move(tree));
    pulled_ += out.answers.size();
    out.metrics = served_->sink.final_metrics();
    metrics_snapshot_ = out.metrics;
    finished_ = true;
    hit_limit_ = false;
    return out;
  }
  SearchResult out;
  SearchContext* ctx = context();
  if (ctx == nullptr) {
    out.metrics = metrics_snapshot_;
    return out;
  }
  if (!finished_) {
    // Unbounded resume: ends at kDone — or kIoError on a failed page
    // read, with the released prefix as the (partial) result.
    searcher_->Resume(origins(), ctx, StepLimits{});
    finished_ = true;
  }
  epoch_pin_.Release();
  hit_limit_ = false;
  SearchResult& live = ctx->stream.result;
  out.metrics = std::move(live.metrics);
  if (pulled_ == 0) {
    out.answers = std::move(live.answers);
  } else {
    out.answers.reserve(live.answers.size() - pulled_);
    for (size_t i = pulled_; i < live.answers.size(); ++i) {
      out.answers.push_back(std::move(live.answers[i]));
    }
  }
  pulled_ = live.answers.size();
  return out;
}

void AnswerStream::Cancel() {
  if (served_ != nullptr) {
    ReleaseServed();  // snapshots the final metrics
    pulled_ = 0;
    finished_ = true;
    hit_limit_ = false;
    return;
  }
  SearchContext* ctx = context();
  if (ctx != nullptr) {
    metrics_snapshot_ = ctx->stream.result.metrics;
    // Leave the context ready for its next query and hand it back now
    // (pooled leases return to the pool without waiting for the stream
    // destructor). Abandoned partial state is scratch; Reset clears it.
    ctx->stream.Reset();
  }
  external_ = nullptr;
  lease_.Reset();
  owned_ctx_.reset();
  epoch_pin_.Release();
  pulled_ = 0;
  finished_ = true;
  hit_limit_ = false;
}

bool AnswerStream::done() const {
  if (served_ != nullptr) return served_->sink.exhausted();
  if (!finished_) return false;
  SearchContext* ctx = context();
  return ctx == nullptr || pulled_ >= ctx->stream.result.answers.size();
}

const SearchMetrics& AnswerStream::metrics() const {
  // Scheduled mode: the context lives with the scheduler, so the live
  // counters are not reachable here; the snapshot is filled at the
  // terminal push (Next/Drain/Cancel).
  if (served_ != nullptr) return metrics_snapshot_;
  SearchContext* ctx = context();
  return ctx != nullptr ? ctx->stream.result.metrics : metrics_snapshot_;
}

}  // namespace banks
