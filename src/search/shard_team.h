#ifndef BANKS_SEARCH_SHARD_TEAM_H_
#define BANKS_SEARCH_SHARD_TEAM_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "search/context_pool.h"

namespace banks {

/// Worker threads for one sharded query's parallel phases.
///
/// A team of `shards - 1` threads parks on a condition variable;
/// `Run(fn)` wakes them, executes fn(shard) for every shard in
/// [0, shards) — shard 0 on the calling thread — and returns once all
/// shards completed (a full barrier, so phase writes happen-before the
/// coordinator's next read). The coordinator-only sections of a search
/// run while the team is parked, so a phase function may freely touch
/// state the sequential sections also touch, as long as concurrent
/// shards stay on their own slices.
///
/// An exception escaping any shard's fn is captured and rethrown from
/// Run on the calling thread (first one wins; the barrier still
/// completes).
class ShardTeam {
 public:
  /// Spawns `shards - 1` parked workers. shards must be >= 1.
  explicit ShardTeam(uint32_t shards);
  ~ShardTeam();

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  uint32_t shards() const { return shards_; }

  /// Executes fn(shard) for shard ∈ [0, shards()), in parallel, and
  /// waits for all of them.
  void Run(const std::function<void(uint32_t)>& fn);

 private:
  void WorkerLoop(uint32_t shard);

  const uint32_t shards_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* job_ = nullptr;  // valid during a Run
  uint64_t generation_ = 0;   // bumped per Run; workers wait for a new one
  uint32_t outstanding_ = 0;  // workers still running the current job
  bool stop_ = false;
  std::exception_ptr failure_;
  std::vector<std::thread> workers_;
};

/// Per-query execution state of a sharded search: the shard partition,
/// a lazily-spawned ShardTeam, and per-worker scratch contexts leased
/// from a SearchContextPool.
///
/// Thread spawn and lease checkout are deferred until a phase is big
/// enough to engage the team (Engage), so a sharded query whose batches
/// stay tiny costs nothing over the sequential path. Worker shard w >= 1
/// draws its materialization scratch (tree builder, candidate tree,
/// path-union buffers) from a pool lease; shard 0 is the coordinator and
/// uses the query's own SearchContext. When the caller provides no pool
/// (SearchOptions::shard_pool == nullptr) an internal per-query pool is
/// used — correctness is unchanged, but the leases start cold, so
/// streaming callers should share a pool across queries.
class ShardRuntime {
 public:
  /// `pool` may be null (internal pool). `shards` >= 1.
  ShardRuntime(uint32_t shards, SearchContextPool* pool);

  uint32_t shards() const { return shards_; }

  /// True when `work_items` justifies waking (and, first time, spawning)
  /// the team: sharding enabled and at least `min_per_shard` items per
  /// shard. Deterministic in the work size only — engaging or not never
  /// changes results, just who computes them.
  bool Engage(size_t work_items, size_t min_per_shard);

  /// Runs fn(shard) across the team (spawning it on first use).
  void Run(const std::function<void(uint32_t)>& fn);

  /// Checks out one pool lease per worker shard (idempotent). Must be
  /// called by the coordinator before a Run whose phase function uses
  /// WorkerScratch — the leases are acquired here, on one thread, so
  /// the phase itself only reads the lease table.
  void PrepareWorkerScratch();

  /// Leased scratch context for worker shard w >= 1 (prepared by
  /// PrepareWorkerScratch; read-only here, safe from any shard).
  /// Returns nullptr for shard 0: the coordinator owns the query
  /// context and uses its scratch directly.
  SearchContext* WorkerScratch(uint32_t shard) const;

 private:
  const uint32_t shards_;
  SearchContextPool* pool_;
  std::unique_ptr<SearchContextPool> local_pool_;  // when caller gave none
  std::unique_ptr<ShardTeam> team_;
  std::vector<SearchContextPool::Lease> leases_;  // [shard-1] for shard >= 1
};

}  // namespace banks

#endif  // BANKS_SEARCH_SHARD_TEAM_H_
