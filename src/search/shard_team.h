#ifndef BANKS_SEARCH_SHARD_TEAM_H_
#define BANKS_SEARCH_SHARD_TEAM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "search/context_pool.h"

namespace banks {

/// Worker threads for one sharded query's parallel phases.
///
/// A team of `shards - 1` threads parks on a condition variable;
/// `Run(fn)` wakes them, executes fn(shard) for every shard in
/// [0, shards) — shard 0 on the calling thread — and returns once all
/// shards completed (a full barrier, so phase writes happen-before the
/// coordinator's next read). The coordinator-only sections of a search
/// run while the team is parked, so a phase function may freely touch
/// state the sequential sections also touch, as long as concurrent
/// shards stay on their own slices.
///
/// An exception escaping any shard's fn is captured and rethrown from
/// Run on the calling thread (first one wins; the barrier still
/// completes). A long-lived fn that contains internal SpinBarrier
/// waits (the BSP expansion loop) must therefore keep *arriving* at
/// its barriers after a peer has faulted — see SpinBarrier.
class ShardTeam {
 public:
  /// Spawns `shards - 1` parked workers. shards must be >= 1.
  explicit ShardTeam(uint32_t shards);
  ~ShardTeam();

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  uint32_t shards() const { return shards_; }

  /// Executes fn(shard) for shard ∈ [0, shards()), in parallel, and
  /// waits for all of them.
  void Run(const std::function<void(uint32_t)>& fn);

 private:
  void WorkerLoop(uint32_t shard);

  const uint32_t shards_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* job_ = nullptr;  // valid during a Run
  uint64_t generation_ = 0;   // bumped per Run; workers wait for a new one
  uint32_t outstanding_ = 0;  // workers still running the current job
  bool stop_ = false;
  std::exception_ptr failure_;
  std::vector<std::thread> workers_;
};

/// Sense-reversing spin barrier for the BSP round loop.
///
/// The expansion loop runs as ONE ShardTeam::Run whose phase function
/// contains many short barrier waits (a few per round). A CV-based
/// barrier would pay a syscall per phase; at BSP granularity (tens of
/// microseconds of work between barriers) spinning with yield is the
/// right trade even on oversubscribed machines.
///
/// parties == 1 short-circuits, so the sequential shard-1 path runs
/// the identical loop with every Wait a no-op.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all parties arrive. Reusable immediately: the last
  /// arriver resets the count before releasing the generation, so a
  /// released thread may re-enter Wait without racing the reset.
  void Wait() {
    if (parties_ <= 1) return;
    uint32_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> count_{0};
  std::atomic<uint32_t> generation_{0};
};

/// Process-wide pool of ShardTeams, keyed by team size.
///
/// Spawning `shards - 1` threads costs tens of microseconds — more
/// than a small sharded query. Warm query streams already amortize
/// scratch through SearchContextPool; this pool does the same for the
/// threads: a team is leased for the duration of one query (or one
/// Resume slice), its workers park between phases, and the lease
/// destructor returns the still-running team for the next query.
///
/// Teams are recycled most-recently-returned first per size class, and
/// the pool never shrinks: the high-water mark of concurrent leases of
/// a given size determines how many teams of that size exist.
class ShardTeamPool {
 public:
  /// RAII checkout of one team. Movable, not copyable; empty leases
  /// (default-constructed / moved-from) release nothing.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept : pool_(other.pool_), team_(other.team_) {
      other.pool_ = nullptr;
      other.team_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Reset();
        pool_ = other.pool_;
        team_ = other.team_;
        other.pool_ = nullptr;
        other.team_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Reset(); }

    ShardTeam* get() const { return team_; }
    ShardTeam* operator->() const { return team_; }
    explicit operator bool() const { return team_ != nullptr; }

    /// Returns the team to the pool now, leaving the lease empty.
    void Reset() {
      if (pool_ != nullptr) pool_->Release(team_);
      pool_ = nullptr;
      team_ = nullptr;
    }

   private:
    friend class ShardTeamPool;
    Lease(ShardTeamPool* pool, ShardTeam* team) : pool_(pool), team_(team) {}

    ShardTeamPool* pool_ = nullptr;
    ShardTeam* team_ = nullptr;
  };

  ShardTeamPool() = default;
  ShardTeamPool(const ShardTeamPool&) = delete;
  ShardTeamPool& operator=(const ShardTeamPool&) = delete;

  /// The process-wide pool used when SearchOptions::team_pool is null.
  static ShardTeamPool& Default();

  /// Checks out an idle team of exactly `shards` workers, spawning a
  /// fresh one only when all existing teams of that size are leased.
  /// Never blocks on other leases. shards must be >= 2 (a size-1 team
  /// has no threads to pool; sequential paths skip the checkout).
  Lease Acquire(uint32_t shards);

  /// Total teams ever spawned, across all size classes.
  size_t size() const;

  /// Teams currently idle in the pool.
  size_t available() const;

  /// Number of Acquire calls served (diagnostics).
  uint64_t acquires() const;

 private:
  friend class Lease;
  void Release(ShardTeam* team);

  mutable std::mutex mu_;
  // Size class → idle teams, LIFO (back = most recently returned).
  std::map<uint32_t, std::vector<ShardTeam*>> idle_;
  std::vector<std::unique_ptr<ShardTeam>> all_;
  uint64_t acquires_ = 0;
};

/// Per-query execution state of a sharded search: the shard partition,
/// a pool-leased ShardTeam, and per-worker scratch contexts leased
/// from a SearchContextPool.
///
/// Team checkout and lease checkout are deferred until a phase is big
/// enough to engage the team (Engage) or the BSP loop starts, so a
/// sharded query whose batches stay tiny costs nothing over the
/// sequential path. Worker shard w >= 1 draws its materialization
/// scratch (tree builder, candidate tree, path-union buffers) from a
/// pool lease; shard 0 is the coordinator and uses the query's own
/// SearchContext. When the caller provides no context pool
/// (SearchOptions::shard_pool == nullptr) an internal per-query pool
/// is used — correctness is unchanged, but the leases start cold, so
/// streaming callers should share a pool across queries. Teams come
/// from `team_pool` (ShardTeamPool::Default() when null), so thread
/// spawn is already amortized without any caller setup.
class ShardRuntime {
 public:
  /// `pool` may be null (internal pool); `team_pool` may be null
  /// (process-wide default pool). `shards` >= 1.
  ShardRuntime(uint32_t shards, SearchContextPool* pool,
               ShardTeamPool* team_pool = nullptr);

  uint32_t shards() const { return shards_; }

  /// True when `work_items` justifies waking (and, first time, leasing)
  /// the team: sharding enabled and at least `min_per_shard` items per
  /// shard. Deterministic in the work size only — engaging or not never
  /// changes results, just who computes them.
  bool Engage(size_t work_items, size_t min_per_shard);

  /// Runs fn(shard) across the team (leasing it on first use).
  void Run(const std::function<void(uint32_t)>& fn);

  /// Checks out one pool lease per worker shard (idempotent). Must be
  /// called by the coordinator before a Run whose phase function uses
  /// WorkerScratch — the leases are acquired here, on one thread, so
  /// the phase itself only reads the lease table.
  void PrepareWorkerScratch();

  /// Leased scratch context for worker shard w >= 1 (prepared by
  /// PrepareWorkerScratch; read-only here, safe from any shard).
  /// Returns nullptr for shard 0: the coordinator owns the query
  /// context and uses its scratch directly.
  SearchContext* WorkerScratch(uint32_t shard) const;

 private:
  const uint32_t shards_;
  SearchContextPool* pool_;
  ShardTeamPool* team_pool_;
  std::unique_ptr<SearchContextPool> local_pool_;  // when caller gave none
  ShardTeamPool::Lease team_;
  std::vector<SearchContextPool::Lease> leases_;  // [shard-1] for shard >= 1
};

}  // namespace banks

#endif  // BANKS_SEARCH_SHARD_TEAM_H_
