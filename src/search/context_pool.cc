#include "search/context_pool.h"

namespace banks {

SearchContextPool::SearchContextPool(size_t initial) {
  all_.reserve(initial);
  idle_.reserve(initial);
  for (size_t i = 0; i < initial; ++i) {
    all_.push_back(std::make_unique<SearchContext>());
    idle_.push_back(all_.back().get());
  }
}

SearchContextPool::Lease SearchContextPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  ++acquires_;
  if (idle_.empty()) {
    all_.push_back(std::make_unique<SearchContext>());
    return Lease(this, all_.back().get());
  }
  SearchContext* context = idle_.back();
  idle_.pop_back();
  return Lease(this, context);
}

void SearchContextPool::Release(SearchContext* context) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(context);
}

size_t SearchContextPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

size_t SearchContextPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

size_t SearchContextPool::leased() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size() - idle_.size();
}

uint64_t SearchContextPool::acquires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_;
}

}  // namespace banks
