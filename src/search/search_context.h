#ifndef BANKS_SEARCH_SEARCH_CONTEXT_H_
#define BANKS_SEARCH_SEARCH_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "graph/types.h"
#include "search/flat_hash.h"
#include "util/indexed_heap.h"

namespace banks {

/// Arena for the explored-edge lists P_u / C_u of the Bidirectional
/// algorithm (Figure 2 of the paper).
///
/// Every discovered node accumulates a list of explored in- and
/// out-edges; with one `std::vector` per node that is two heap
/// allocations (plus regrowth) per discovered node per query. Here all
/// lists live in one chunk arena: a list is a chain of small fixed-size
/// chunks referenced by (head, tail) indices, appended in O(1) and
/// iterated in insertion order. `Clear()` recycles the whole arena at
/// once, so a reused arena serves subsequent queries allocation-free.
class EdgeListPool {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  /// Handle to one list; value-semantic, stored inside NodeState.
  struct Ref {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  void Clear() { chunks_.clear(); }
  size_t chunk_count() const { return chunks_.size(); }

  /// Appends (state, weight) to the list designated by *ref.
  void Append(Ref* ref, uint32_t state, float weight) {
    if (ref->tail == kNil || chunks_[ref->tail].count == kChunkCap) {
      uint32_t c = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
      if (ref->tail == kNil) {
        ref->head = c;
      } else {
        chunks_[ref->tail].next = c;
      }
      ref->tail = c;
    }
    Chunk& chunk = chunks_[ref->tail];
    chunk.state[chunk.count] = state;
    chunk.weight[chunk.count] = weight;
    chunk.count++;
  }

  /// Calls f(state, weight) for each element, in insertion order.
  template <typename F>
  void ForEach(const Ref& ref, F&& f) const {
    for (uint32_t c = ref.head; c != kNil; c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      for (uint32_t i = 0; i < chunk.count; ++i) {
        f(chunk.state[i], chunk.weight[i]);
      }
    }
  }

 private:
  static constexpr uint32_t kChunkCap = 6;  // 56-byte chunks
  struct Chunk {
    uint32_t next = kNil;
    uint32_t count = 0;
    uint32_t state[kChunkCap];
    float weight[kChunkCap];
  };
  std::vector<Chunk> chunks_;
};

/// Per-discovered-node bookkeeping for the Bidirectional search
/// (Figure 2). Per-keyword arrays (dist, sp, activation) live in flat
/// pools on the SearchContext indexed by state_index * num_keywords +
/// keyword; the explored-edge lists live in the context's EdgeListPool.
struct NodeState {
  NodeId node = kInvalidNode;
  uint32_t depth = 0;        // hops from nearest seed when discovered
  bool popped_in = false;    // member of X_in
  bool popped_out = false;   // member of X_out
  bool ever_in_qout = false; // inserted into Q_out at least once
  bool dirty = false;        // complete and awaiting materialization
  double last_emitted_eraw = std::numeric_limits<double>::infinity();
  // Generation-point bookkeeping captured when the root is *marked*
  // (that is when the answer first exists; materialization is deferred).
  double marked_time = 0;
  uint64_t marked_explored = 0;
  uint64_t marked_touched = 0;
  // P_u / C_u: explored edges into / out of this node.
  EdgeListPool::Ref parents;
  EdgeListPool::Ref children;
};

/// Best known backward path from a node toward one keyword's origin
/// (shared record of the Backward MI/SI searchers; MI keeps one map per
/// iterator and ignores `matched`, SI one map per keyword).
struct BackwardReach {
  double dist = std::numeric_limits<double>::infinity();
  NodeId next_hop = kInvalidNode;  // toward the matched keyword node
  NodeId matched = kInvalidNode;   // the origin node reached
  uint32_t hops = 0;               // edge count (depth for dmax cutoff)
  bool settled = false;
};

/// Reusable per-query scratch space for all three search algorithms.
///
/// A search discovers a small, query-dependent fraction of the graph but
/// allocates state proportional to it: node records, per-keyword
/// distance/activation arrays, explored-edge lists, frontier heaps, hash
/// tables. Constructing these from scratch per query makes allocation —
/// not graph traversal — the dominant cost of small interactive queries.
///
/// A SearchContext owns all of that state in flat, epoch-resettable
/// pools. The first query on a context grows each pool to its working
/// size; subsequent queries reuse the capacity and perform (almost) no
/// allocations. Hold one context per query stream:
///
///   SearchContext ctx;
///   for (const auto& origins : stream)
///     engine.QueryResolved(origins, Algorithm::kBidirectional, opts, &ctx);
///
/// A context is scratch space, not a result: it carries no information
/// across queries other than capacity, and a query run through a warm
/// context returns byte-identical answers to one run through a fresh
/// context. Not thread-safe; use one context per thread.
class SearchContext {
 public:
  using ScoredState = std::pair<double, uint32_t>;

  SearchContext() = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// Resets all pools for a query over `num_keywords` keywords. O(live
  /// state of the previous query), allocation-free once pools are warm.
  void BeginQuery(size_t num_keywords);

  /// Number of BeginQuery calls, i.e. queries served (diagnostics).
  uint64_t queries_started() const { return queries_started_; }

  /// Ensures reach_maps holds at least `count` maps (MI: one per
  /// iterator; SI: one per keyword). Clearing is BeginQuery's job:
  /// call this only after BeginQuery, which resets every existing map.
  void EnsureReachMaps(size_t count);

  // ---- Shared: node → dense index -----------------------------------------
  // Bidirectional: NodeId → state index into `states`.
  // Backward MI:   NodeId → visit index into the visit_* pools.
  // Backward SI:   NodeId → count of keywords with a finite distance.
  FlatHashMap<NodeId, uint32_t> node_index;

  // ---- Bidirectional pools ------------------------------------------------
  std::vector<NodeState> states;
  std::vector<double> dist;     // states.size() * n, kInf when unreached
  std::vector<uint32_t> sp;     // next state toward keyword, or sentinel
  std::vector<double> act;      // per-keyword activation
  std::vector<double> act_sum;  // per-state total activation (queue key)
  EdgeListPool edge_lists;      // P_u / C_u arena
  // (su << 32 | sv) → explored-edge flags.
  FlatHashMap<uint64_t, uint8_t> edge_flags;
  IndexedHeap<double> qin;   // max-heap on total activation
  IndexedHeap<double> qout;  // max-heap on total activation
  // Per-keyword min-dist over frontier states (§4.5 tight bound m_i).
  std::vector<IndexedHeap<double, std::greater<double>>> min_dist;
  // Min-depth over each queue (fallback bound when no distance known).
  IndexedHeap<uint32_t, std::greater<uint32_t>> qin_depth;
  IndexedHeap<uint32_t, std::greater<uint32_t>> qout_depth;
  std::vector<uint32_t> dirty_roots;  // completed, awaiting materialization
  // Drained-to-empty scratch queues of Attach / Activate (§4.2.1, §4.3).
  std::priority_queue<ScoredState, std::vector<ScoredState>,
                      std::greater<ScoredState>>
      attach_queue;
  std::priority_queue<ScoredState> activate_queue;
  std::vector<double> bound_scratch;  // per-keyword m_i in release checks

  // ---- Backward MI / SI pools ---------------------------------------------
  // One Dijkstra reach map per MI iterator / SI keyword.
  std::vector<FlatHashMap<NodeId, BackwardReach>> reach_maps;
  // MI visit records in flat pools: best dist/iterator per keyword
  // (visit_index * n + keyword) and per-visit covered-keyword count.
  std::vector<double> visit_dist;
  std::vector<uint32_t> visit_iter;
  std::vector<uint32_t> visit_covered;

 private:
  uint64_t queries_started_ = 0;
};

}  // namespace banks

#endif  // BANKS_SEARCH_SEARCH_CONTEXT_H_
