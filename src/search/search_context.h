#ifndef BANKS_SEARCH_SEARCH_CONTEXT_H_
#define BANKS_SEARCH_SEARCH_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "search/answer.h"
#include "search/flat_hash.h"
#include "search/metrics.h"
#include "search/output_heap.h"
#include "search/sharding.h"
#include "search/tree_builder.h"
#include "util/indexed_heap.h"

namespace banks {

class PageFetchListener;  // storage/buffer_pool.h

/// Arena for the explored-edge lists P_u / C_u of the Bidirectional
/// algorithm (Figure 2 of the paper).
///
/// Every discovered node accumulates a list of explored in- and
/// out-edges; with one `std::vector` per node that is two heap
/// allocations (plus regrowth) per discovered node per query. Here all
/// lists live in one chunk arena: a list is a chain of small fixed-size
/// chunks referenced by (head, tail) indices, appended in O(1) and
/// iterated in insertion order. `Clear()` recycles the whole arena at
/// once, so a reused arena serves subsequent queries allocation-free.
class EdgeListPool {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  /// Handle to one list; value-semantic, stored in the per-state
  /// parents/children arrays of the SearchContext.
  struct Ref {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  void Clear() { chunks_.clear(); }
  size_t chunk_count() const { return chunks_.size(); }

  /// Appends (state, weight) to the list designated by *ref.
  void Append(Ref* ref, uint32_t state, float weight) {
    if (ref->tail == kNil || chunks_[ref->tail].count == kChunkCap) {
      uint32_t c = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
      if (ref->tail == kNil) {
        ref->head = c;
      } else {
        chunks_[ref->tail].next = c;
      }
      ref->tail = c;
    }
    Chunk& chunk = chunks_[ref->tail];
    chunk.state[chunk.count] = state;
    chunk.weight[chunk.count] = weight;
    chunk.count++;
  }

  /// Calls f(state, weight) for each element, in insertion order.
  template <typename F>
  void ForEach(const Ref& ref, F&& f) const {
    for (uint32_t c = ref.head; c != kNil; c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      for (uint32_t i = 0; i < chunk.count; ++i) {
        f(chunk.state[i], chunk.weight[i]);
      }
    }
  }

 private:
  static constexpr uint32_t kChunkCap = 6;  // 56-byte chunks
  struct Chunk {
    uint32_t next = kNil;
    uint32_t count = 0;
    uint32_t state[kChunkCap];
    float weight[kChunkCap];
  };
  std::vector<Chunk> chunks_;
};

// Packed per-state flag bits (SearchContext::state_flags). One byte per
// state instead of four bools: the hot explore loop tests at most one
// flag per pop, so the flags ride in their own dense array.
inline constexpr uint8_t kStatePoppedIn = 1u << 0;    // member of X_in
inline constexpr uint8_t kStatePoppedOut = 1u << 1;   // member of X_out
inline constexpr uint8_t kStateEverInQout = 1u << 2;  // entered Q_out once
inline constexpr uint8_t kStateDirty = 1u << 3;       // awaiting materialize

// Per-edge flag bits of the edge-flag maps, keyed by the state pair
// (su << 32 | sv) of a directed explored edge u→v. Each bit lives in
// the map whose only writer is the phase that tests it, so no map ever
// needs locking:
//   SearchContext::edge_links (coordinator-owned; written only by the
//     sequential discovery pass): kEdgeParentLinked (P_sv got the su
//     entry) and kEdgeChildLinked (C_su got the sv entry) share one
//     lookup per explore message.
//   lane_edge_flags[lane(sv)]: kEdgeSpreadOut (forward activation u→v
//     applied; written by lane(sv) when it applies kExploreOut).
//   lane_edge_flags[lane(su)]: kEdgeSpreadIn (backward activation v→u
//     applied; written by lane(su) on kExploreIn apply).
// The spread bits stay per-lane because both apply concurrently in the
// same phase for the same edge key.
inline constexpr uint8_t kEdgeParentLinked = 1u << 0;
inline constexpr uint8_t kEdgeChildLinked = 1u << 1;
inline constexpr uint8_t kEdgeSpreadIn = 1u << 2;
inline constexpr uint8_t kEdgeSpreadOut = 1u << 3;

/// Per-lane metric accumulators of the BSP expansion loop. Workers
/// count into their own lane's slot during parallel phases; the
/// coordinator merges the slots into SearchMetrics at each round end
/// (in lane order, so the merged totals are deterministic).
struct LaneCounters {
  uint64_t explored = 0;     // pops processed
  uint64_t touched = 0;      // frontier insertions
  uint64_t relaxed = 0;      // edges examined past the filter
  uint64_t propagation = 0;  // Attach/Activate list-element visits
  uint64_t cross_msgs = 0;   // messages sent to a different lane
  uint64_t max_box = 0;      // deepest single mailbox seen
  uint64_t page_hits = 0;    // paged adjacency pins served from the pool
  uint64_t page_misses = 0;  // paged adjacency pins that had to read
  uint64_t io_errors = 0;    // paged adjacency pins whose read failed

  void Reset() { *this = LaneCounters{}; }
};

/// Best known backward path from a node toward one keyword's origin
/// (shared record of the Backward MI/SI searchers; MI keeps one map per
/// iterator and ignores `matched`, SI one map per keyword).
struct BackwardReach {
  double dist = std::numeric_limits<double>::infinity();
  NodeId next_hop = kInvalidNode;  // toward the matched keyword node
  NodeId matched = kInvalidNode;   // the origin node reached
  uint32_t hops = 0;               // edge count (depth for dmax cutoff)
  bool settled = false;
};

/// Pooled storage for Backward-MI's per-iterator lazy-deletion frontier
/// heaps: one segment per single-node iterator, used as a binary
/// min-heap via std::push_heap/pop_heap. Segments keep their capacity
/// across queries (Clear() empties without deallocating), so a warm
/// context runs frequent-keyword queries — which construct hundreds of
/// iterators — without a single frontier allocation.
class FrontierPool {
 public:
  using Entry = std::pair<double, NodeId>;  // (dist, node)

  /// Grows the pool to at least `count` segments (never shrinks).
  void EnsureSegments(size_t count) {
    if (segments_.size() < count) segments_.resize(count);
  }

  /// Empties every segment, keeping all capacity.
  void Clear() {
    for (auto& s : segments_) s.clear();
  }

  std::vector<Entry>& Segment(size_t i) { return segments_[i]; }

  size_t segment_count() const { return segments_.size(); }

  /// Sum of segment capacities (test hook: warm reuse must not grow it).
  size_t TotalCapacity() const {
    size_t total = 0;
    for (const auto& s : segments_) total += s.capacity();
    return total;
  }

 private:
  std::vector<std::vector<Entry>> segments_;
};

/// Reusable per-query scratch space for all three search algorithms.
///
/// A search discovers a small, query-dependent fraction of the graph but
/// allocates state proportional to it: node records, per-keyword
/// distance/activation arrays, explored-edge lists, frontier heaps, hash
/// tables, the answer output buffer. Constructing these from scratch per
/// query makes allocation — not graph traversal — the dominant cost of
/// small interactive queries.
///
/// A SearchContext owns all of that state in flat, epoch-resettable
/// pools. The first query on a context grows each pool to its working
/// size; subsequent queries reuse the capacity and perform (almost) no
/// allocations. Hold one context per query stream:
///
///   SearchContext ctx;
///   for (const auto& origins : stream)
///     engine.QueryResolved(origins, Algorithm::kBidirectional, opts, &ctx);
///
/// Per-discovered-node bookkeeping is structure-of-arrays: parallel flat
/// vectors indexed by state index (node ids, depths, packed flag bytes,
/// materialization bookkeeping, explored-edge list refs), matching the
/// layout of the per-keyword dist/sp/act pools. The hot explore loop
/// touches only the arrays it actually reads, and shard workers scanning
/// states by contiguous index range never false-share a record.
///
/// Frontier structures are partitioned into the kNumLanes BSP lanes:
/// the queue heaps, per-lane NodeId→state maps, §4.5 frontier-minimum
/// heaps, output buffers and mailboxes are vectors with a fixed
/// kNumLanes elements, all live for every query. The lane count never
/// depends on SearchOptions::shard_count (which only picks the worker
/// thread count), so a context warmed at one shard count serves any
/// other without reallocation and — more importantly — without any
/// change to the search order.
///
/// A context is scratch space, not a result: it carries no information
/// across queries other than capacity, and a query run through a warm
/// context returns byte-identical answers to one run through a fresh
/// context. Not thread-safe; use one context per thread — shard workers
/// get their own leased contexts for scratch and only read this one.
class SearchContext {
 public:
  using ScoredState = std::pair<double, uint32_t>;

  /// Entry of Backward-SI's shared frontier heap (pooled below).
  struct SIFrontierEntry {
    double dist;
    NodeId node;
    uint32_t keyword;
  };

  SearchContext() = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// Persisted control state of a resumable search (Searcher::Resume /
  /// AnswerStream). Everything a searcher's main loop used to keep in
  /// function-local variables lives here instead: the released answers
  /// and metrics accumulated so far, the expansion-step counter that
  /// drives the release-check cadence, the release-progress tracking of
  /// the loose bound's staleness drip, and the search time accumulated
  /// across slices. The *positional* state — frontier heaps, node maps,
  /// reach maps, output buffers, MI scheduler — already lives in the
  /// pools below, which is what lets a search pause at any
  /// answer-release point and resume exactly where it left off.
  ///
  /// Like the rest of the context this is scratch, not a result: a
  /// stream abandoned mid-search leaves the context fully reusable (the
  /// next Reset/BeginQuery clears it), and Reset keeps the answer
  /// vector's capacity so warm streaming allocates nothing beyond the
  /// per-answer handoff.
  struct StreamState {
    enum class Phase : uint8_t {
      kFresh,    // no query started since Reset()
      kRunning,  // mid-search: Resume continues this query
      kDone,     // search complete (or cancelled): result is final
    };

    Phase phase = Phase::kFresh;
    /// Answers in release order plus metrics-so-far; final at kDone.
    SearchResult result;
    /// Node expansions so far (the release-check cadence counter).
    uint64_t steps = 0;
    /// Last step the best pending answer improved or a release happened
    /// (ages the loose bound's staleness drip).
    uint64_t last_progress = 0;
    /// Best pending score being aged by the staleness drip.
    double last_top = -1;
    /// Search seconds accumulated across completed slices (pauses
    /// excluded, so answer timestamps stay in search time).
    double elapsed = 0;

    /// Consecutive slices that ended in kPageWait without an
    /// intervening successful probe. When a search's per-step working
    /// set exceeds the buffer pool (or concurrent tasks keep evicting
    /// each other's fetches), the probe/fetch/retry cycle can otherwise
    /// thrash forever; past kMaxPageFaultRetries the searchers skip the
    /// probe for one step and fall back to blocking pins, which always
    /// make progress. Bumped by SliceGuard::PageWait, cleared by a
    /// successful probe (results are unaffected either way).
    uint32_t page_fault_retries = 0;

    /// Probe-skip threshold for the thrash escape above.
    static constexpr uint32_t kMaxPageFaultRetries = 3;

    /// Forgets the current query, keeping result-vector capacity.
    void Reset();
  };

  StreamState stream;

  /// Page-fault notification target for the serving scheduler's
  /// page-wait protocol (docs/SERVING.md, docs/STORAGE.md). When set,
  /// a searcher running on a paged graph *probes* the page of its next
  /// expansion before committing to it; on a miss it queues an async
  /// fetch through this listener and returns SearchStatus::kPageWait
  /// instead of blocking its thread on the read. Null (the default, and
  /// always for plain Query/stream paths) makes paged pins block
  /// synchronously — same results, thread-occupying waits.
  std::shared_ptr<PageFetchListener> page_listener;

  /// Moves the resumable control state out of this context and resets
  /// the husk, leaving the context immediately warm-reusable. This is
  /// the serving core's detach step (docs/SERVING.md): a task idling in
  /// the scheduler — admitted but waiting for sink credit — keeps only
  /// the returned compact StreamState while the context goes back to
  /// its pool. Only meaningful once the search is kDone (the positional
  /// state still lives in the pools below and is NOT moved).
  StreamState DetachStream() {
    StreamState out = std::move(stream);
    stream.Reset();
    return out;
  }

  /// Resets all pools for a query over `num_keywords` keywords to be
  /// run with `shard_count` worker threads. The lane partition of the
  /// frontier pools is always kNumLanes — shard_count is recorded for
  /// the searchers' worker-count decisions only and never changes any
  /// pool's shape. O(live state of the previous query),
  /// allocation-free once pools are warm.
  void BeginQuery(size_t num_keywords, uint32_t shard_count = 1);

  /// Shard count of the current query (set by BeginQuery; >= 1). The
  /// requested worker parallelism, NOT the lane count (kNumLanes).
  uint32_t active_shards() const { return active_shards_; }

  /// Number of BeginQuery calls, i.e. queries served (diagnostics).
  uint64_t queries_started() const { return queries_started_; }

  /// Ensures reach_maps and frontier segments hold at least `count`
  /// entries (MI: one per iterator; SI: one reach map per keyword).
  /// Clearing is BeginQuery's job: call this only after BeginQuery,
  /// which resets every existing map and segment.
  void EnsureReachMaps(size_t count);

  /// Number of discovered states this query (Bidirectional).
  size_t num_states() const { return node.size(); }

  // ---- Shared: node → dense index -----------------------------------------
  // Backward MI:   NodeId → visit index into the visit_* pools.
  // Backward SI:   NodeId → count of keywords with a finite distance.
  // (Bidirectional keeps its NodeId→state maps per shard, below.)
  FlatHashMap<NodeId, uint32_t> node_index;

  // Bidirectional: NodeId → state index + 1 into the per-state arrays,
  // one map per lane — a node is looked up only in the map of the lane
  // owning its NodeId range. State indices stay global (assigned in
  // discovery order, which the canonical round structure makes
  // worker-count-independent), so every flat per-state array below is
  // shared. Maps are written only in the coordinator's sequential
  // discovery pass; parallel phases read them freely.
  std::vector<FlatHashMap<NodeId, uint32_t>> node_shard_index;

  // ---- Bidirectional per-state arrays (SoA, parallel) ---------------------
  std::vector<NodeId> node;        // state → discovered node id
  std::vector<uint32_t> depth;     // hops from nearest seed at discovery
  std::vector<uint8_t> state_flags;  // kState* bits
  // Materialization bookkeeping, captured when the root is *marked*
  // (that is when the answer first exists; materialization is deferred).
  std::vector<double> last_eraw;   // last materialized raw edge score
  std::vector<double> marked_time;
  std::vector<uint64_t> marked_explored;
  std::vector<uint64_t> marked_touched;
  // P_u / C_u: explored edges into / out of each state.
  std::vector<EdgeListPool::Ref> parents;
  std::vector<EdgeListPool::Ref> children;

  // ---- Bidirectional per-keyword pools ------------------------------------
  std::vector<double> dist;     // num_states() * n, kInf when unreached
  std::vector<uint32_t> sp;     // next state toward keyword, or sentinel
  std::vector<double> act;      // per-keyword activation
  std::vector<double> act_sum;  // per-state total activation (queue key)
  // P_u / C_u arena. Single shared arena: lists are appended only in
  // the coordinator's sequential discovery pass, so parallel phases see
  // a read-only arena and never race.
  EdgeListPool edge_lists;
  // (su << 32 | sv) state pair → explored-edge flag bits (kEdge*; see
  // the flag-bit ownership comment above). edge_links holds the two
  // linking bits and is touched only by the coordinator's sequential
  // discovery pass; the per-lane maps hold the spread bits written by
  // the owning lane during the apply phase.
  FlatHashMap<uint64_t, uint8_t> edge_links;
  std::vector<FlatHashMap<uint64_t, uint8_t>> lane_edge_flags;
  // Per-lane frontiers: element l holds the states whose NodeId falls
  // in lane l's range, keyed by global state index with an ActPriority
  // (activation, NodeId) total order — "the best of a lane" is a
  // deterministic property of the frontier contents, which is what lets
  // the per-round pop set be defined from the heap tops alone.
  std::vector<IndexedHeap<ActPriority>> qin;
  std::vector<IndexedHeap<ActPriority>> qout;
  // Per (lane, keyword) min-dist over frontier states; the §4.5 tight
  // bound m_i reduces min over the lane heaps at index l*n + i.
  std::vector<IndexedHeap<double, std::greater<double>>> min_dist;
  // Min-depth over each queue lane (fallback bound when no distance
  // known); the depth floor reduces min across lanes.
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>> qin_depth;
  std::vector<IndexedHeap<uint32_t, std::greater<uint32_t>>> qout_depth;
  std::vector<uint32_t> dirty_roots;  // completed, awaiting materialization
  // Max-heap (push_heap/pop_heap) of the k smallest generated eraws:
  // the top-k watermark that prunes late completions.
  std::vector<double> best_eraws;
  // Drained-to-empty cascade queues of Attach / Activate (§4.2.1,
  // §4.3), one pair per lane: a lane's cascade runs on its own queue,
  // and cross-lane hops leave through the mailboxes instead.
  std::vector<std::priority_queue<ScoredState, std::vector<ScoredState>,
                                  std::greater<ScoredState>>>
      attach_queues;
  std::vector<std::priority_queue<ScoredState>> activate_queues;
  std::vector<double> bound_scratch;  // per-keyword m_i in release checks

  // ---- BSP mailboxes & per-lane round scratch -----------------------------
  // Double-banked (sender, receiver) mailboxes:
  // index = bank * L² + sender * L + receiver, L = kNumLanes. A phase
  // consumes bank b while appending to bank b^1; each (box, phase) has
  // exactly one writer (the sender lane), so appends are lock-free by
  // construction. Capacity persists across rounds and queries.
  std::vector<LaneMailbox> mailboxes;
  // Per-lane pop decision of the current round: 0 = sit out, 1 = pop
  // from Q_in, 2 = pop from Q_out. Written by the coordinator's control
  // section, read by every worker after the round barrier.
  std::vector<uint8_t> lane_pop;
  // Per-lane metric accumulators, merged at round end.
  std::vector<LaneCounters> lane_counters;
  // Per-lane emit lists of the current round, concatenated into
  // dirty_roots in lane order at the round barrier.
  std::vector<std::vector<uint32_t>> lane_dirty;
  // Backward-SI / MI staging of cross-lane frontier pushes: relaxations
  // of one settled pop collect here (element = target lane) and apply
  // in lane order once the pop completes — the shared-frontier
  // equivalent of the mailbox applied-at-barrier discipline.
  std::vector<std::vector<SIFrontierEntry>> si_stage;
  std::vector<std::vector<ScoredState>> sched_stage;

  // ---- Answer buffering / materialization ---------------------------------
  // The §4.3 output buffer, partitioned by answer signature (sig mod
  // kNumLanes): a signature deterministically owns one lane-local heap,
  // so duplicate suppression is exact without cross-lane coordination,
  // and the release checks merge the per-lane heaps (MergedRelease*) —
  // proven identical to a single heap for any heap count. Pooled:
  // signature tables and release scratch keep their capacity across
  // queries.
  std::vector<OutputHeap> output_heaps;
  // Union-Dijkstra scratch of BuildAnswerFromPathUnion.
  TreeBuilderScratch tree_scratch;
  // Candidate tree, rebuilt in place per materialization; the output
  // heap copies it only on accept (OutputHeap::InsertCopy), so rejected
  // duplicates never allocate.
  AnswerTree answer_scratch;
  // Signature scratch for routing candidates to their output shard.
  AnswerTree::SignatureScratch sig_scratch;
  // Per-materialization path-union scratch (keyword nodes + edges).
  std::vector<NodeId> kw_scratch;
  std::vector<AnswerEdge> union_edge_scratch;
  std::vector<NodeId> uniq_scratch;  // per-keyword origin dedup at seeding
  // Staging slots of the two-phase materialization batch: shard workers
  // build candidate trees for the marked roots in parallel (pure reads
  // of the settled dist/sp state into these recycled slots), then the
  // coordinator replays the accept decisions — watermark, duplicate
  // suppression, metrics — sequentially in mark order, so the batch is
  // byte-identical to materializing one root at a time.
  std::vector<AnswerTree> cand_trees;   // never shrinks; capacity recycled
  std::vector<uint8_t> cand_state;      // per-root build outcome (kCand*)
  std::vector<double> cand_eraw;        // per-root raw edge score
  // Per-shard partial results of the batched reduction phases: the
  // §4.5 NRA scan minima (one slot per shard) and MI's per-(shard,
  // keyword) frontier minima (shard*n + i).
  std::vector<double> nra_partial;
  std::vector<double> shard_minima;

  // ---- Backward MI / SI pools ---------------------------------------------
  // One Dijkstra reach map per MI iterator / SI keyword.
  std::vector<FlatHashMap<NodeId, BackwardReach>> reach_maps;
  // One lazy-deletion frontier heap segment per MI iterator.
  FrontierPool frontiers;
  // MI iterator records, SoA: keyword and origin per iterator.
  std::vector<uint32_t> iter_keyword;
  std::vector<NodeId> iter_origin;
  // MI scheduler, partitioned by iterator origin lane: (peek dist,
  // iter idx) min-heap storage per lane; the next step is the argmin
  // over lane tops (the pair order is already total, so partitioning
  // never reorders the schedule).
  std::vector<std::vector<ScoredState>> scheduler;
  std::vector<uint32_t> id_scratch;  // MI emit: chosen iterator per keyword
  // SI shared frontier, partitioned by node lane: (dist, node, keyword)
  // min-heap storage per lane under a lexicographic total order.
  std::vector<std::vector<SIFrontierEntry>> si_frontier;
  // MI visit records in flat pools: best dist/iterator per keyword
  // (visit_index * n + keyword) and per-visit covered-keyword count.
  std::vector<double> visit_dist;
  std::vector<uint32_t> visit_iter;
  std::vector<uint32_t> visit_covered;

 private:
  uint64_t queries_started_ = 0;
  uint32_t active_shards_ = 1;
};

}  // namespace banks

#endif  // BANKS_SEARCH_SEARCH_CONTEXT_H_
