#ifndef BANKS_SEARCH_SCORING_H_
#define BANKS_SEARCH_SCORING_H_

#include <vector>

#include "search/answer.h"

namespace banks {

/// Scoring per §2.3 (see DESIGN.md §2 for the normalization choices).
///
///   Eraw   = Σ_i s(T, t_i)          (path-length sum; lower is better)
///   Escore = 1 / (1 + Eraw)          ∈ (0, 1]
///   N      = mean prestige of {root} ∪ {keyword leaves}   ∈ (0, 1]
///   score  = Escore · N^λ            (higher is better)
///
/// The mean (rather than sum) for N divides the paper's sum by the
/// constant n+1 for a query with n keywords, preserving the ranking
/// within a query while keeping N on the same (0,1] scale as Escore.

/// Normalized edge score from a raw path-length sum.
double EdgeScoreFromRaw(double eraw);

/// Tree prestige N from per-node prestige values.
double TreePrestige(const AnswerTree& tree,
                    const std::vector<double>& prestige);

/// Overall score E·N^λ from components.
double CombineScore(double escore, double prestige_n, double lambda);

/// Fills tree->edge_score_raw (from keyword_distances), node_prestige
/// and score.
void ScoreTree(AnswerTree* tree, const std::vector<double>& prestige,
               double lambda);

/// Upper bound on the overall score of any answer whose raw edge score
/// is at least `min_eraw` (prestige bounded by max_prestige ≤ 1).
/// Monotone: larger min_eraw ⇒ smaller bound. Used by §4.5 release
/// decisions.
double ScoreUpperBound(double min_eraw, double max_prestige, double lambda);

}  // namespace banks

#endif  // BANKS_SEARCH_SCORING_H_
