#ifndef BANKS_SEARCH_CONTEXT_POOL_H_
#define BANKS_SEARCH_CONTEXT_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "search/search_context.h"

namespace banks {

/// Thread-safe pool of reusable SearchContexts.
///
/// A SearchContext amortizes per-query allocations, but only for the one
/// caller holding it (it is not thread-safe). A batch of queries running
/// on N worker threads wants N warm contexts checked in and out as
/// workers pick up work; this pool provides exactly that:
///
///   SearchContextPool pool;
///   // on each worker thread:
///   SearchContextPool::Lease lease = pool.Acquire();
///   searcher->Search(origins, lease.get());
///   // lease destructor returns the (now warm) context to the pool
///
/// Contexts are recycled most-recently-returned first, so a steady-state
/// pool keeps reusing the same few warm contexts instead of spreading
/// load over many cold ones. The pool never shrinks: the high-water mark
/// of concurrent leases determines how many contexts exist.
///
/// Acquire/Release take a mutex but no lock is held while a context is
/// leased, so the critical section is a few pointer moves — negligible
/// next to any query.
class SearchContextPool {
 public:
  /// RAII checkout: returns the context to the pool on destruction.
  /// Movable, not copyable. A default-constructed / moved-from lease is
  /// empty (get() == nullptr) and releases nothing.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), context_(other.context_) {
      other.pool_ = nullptr;
      other.context_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Reset();
        pool_ = other.pool_;
        context_ = other.context_;
        other.pool_ = nullptr;
        other.context_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Reset(); }

    SearchContext* get() const { return context_; }
    SearchContext* operator->() const { return context_; }
    SearchContext& operator*() const { return *context_; }
    explicit operator bool() const { return context_ != nullptr; }

    /// Returns the context to the pool now, leaving the lease empty.
    void Reset() {
      if (pool_ != nullptr) pool_->Release(context_);
      pool_ = nullptr;
      context_ = nullptr;
    }

   private:
    friend class SearchContextPool;
    Lease(SearchContextPool* pool, SearchContext* context)
        : pool_(pool), context_(context) {}

    SearchContextPool* pool_ = nullptr;
    SearchContext* context_ = nullptr;
  };

  /// `initial` contexts are constructed up front (they are still cold
  /// until their first query; pre-sizing only saves the lazy path).
  explicit SearchContextPool(size_t initial = 0);

  SearchContextPool(const SearchContextPool&) = delete;
  SearchContextPool& operator=(const SearchContextPool&) = delete;

  /// Checks out an idle context, constructing a fresh one only when all
  /// existing contexts are leased. Never blocks on other leases.
  Lease Acquire();

  /// Total contexts ever constructed (== high-water mark of concurrent
  /// leases, plus any `initial` surplus).
  size_t size() const;

  /// Contexts currently idle in the pool.
  size_t available() const;

  /// Contexts currently checked out (size() - available()). The serving
  /// core's detach contract is stated in these terms: an idle
  /// subscription — queued for admission or waiting for sink credit —
  /// contributes nothing to leased().
  size_t leased() const;

  /// Number of Acquire calls served (diagnostics).
  uint64_t acquires() const;

 private:
  friend class Lease;
  void Release(SearchContext* context);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SearchContext>> all_;
  std::vector<SearchContext*> idle_;  // LIFO: back is most recently returned
  uint64_t acquires_ = 0;
};

}  // namespace banks

#endif  // BANKS_SEARCH_CONTEXT_POOL_H_
