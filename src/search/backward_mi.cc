#include "search/backward_mi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One single-source backward shortest-path iterator (§3). Its Dijkstra
/// state (BackwardReach per reached node, settled folded in) lives in a
/// pooled flat map on the SearchContext.
struct Iterator {
  uint32_t keyword = 0;
  NodeId origin = kInvalidNode;
  FlatHashMap<NodeId, BackwardReach>* reach = nullptr;
  // Lazy-deletion min-heap of (dist, node).
  std::priority_queue<std::pair<double, NodeId>,
                      std::vector<std::pair<double, NodeId>>,
                      std::greater<>>
      frontier;

  /// Skips stale heap entries; returns the next true frontier distance
  /// or +inf when exhausted.
  double PeekDist() {
    while (!frontier.empty()) {
      auto [d, v] = frontier.top();
      const BackwardReach* r = reach->Find(v);
      if (r == nullptr || r->settled || d > r->dist + 1e-12) {
        frontier.pop();
        continue;
      }
      return d;
    }
    return kInf;
  }
};

}  // namespace

SearchResult BackwardMISearcher::Search(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context) const {
  SearchResult result;
  Timer timer;
  const size_t n = origins.size();
  if (n == 0) return result;
  for (const auto& s : origins) {
    if (s.empty()) return result;  // AND semantics: some keyword matches 0
  }

  SearchContext& ctx = *context;
  ctx.BeginQuery(n);

  // Build one iterator per keyword node; reach maps are handed out from
  // the context pool once the iterator count is known.
  std::vector<Iterator> iters;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<NodeId> uniq = origins[i];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (NodeId o : uniq) {
      Iterator it;
      it.keyword = i;
      it.origin = o;
      iters.push_back(std::move(it));
    }
  }
  ctx.EnsureReachMaps(iters.size());
  for (uint32_t i = 0; i < iters.size(); ++i) {
    Iterator& it = iters[i];
    it.reach = &ctx.reach_maps[i];
    (*it.reach)[it.origin] = BackwardReach{0.0, kInvalidNode, it.origin, 0,
                                           false};
    it.frontier.emplace(0.0, it.origin);
    result.metrics.nodes_touched++;
  }

  // Global scheduler: iterator with the nearest next node steps first.
  using SchedEntry = std::pair<double, uint32_t>;  // (peek dist, iter idx)
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, std::greater<>>
      scheduler;
  for (uint32_t i = 0; i < iters.size(); ++i) scheduler.emplace(0.0, i);

  // Per-node record of which iterators have visited it. node → dense
  // visit index (stored +1; 0 means absent); the per-keyword best
  // distance / iterator live at visit_index * n + keyword in the flat
  // pools, the covered-keyword count in visit_covered.
  FlatHashMap<NodeId, uint32_t>& visits = ctx.node_index;
  std::vector<double>& visit_dist = ctx.visit_dist;
  std::vector<uint32_t>& visit_iter = ctx.visit_iter;
  std::vector<uint32_t>& visit_covered = ctx.visit_covered;

  OutputHeap heap;
  uint64_t steps = 0;
  uint64_t last_progress = 0;  // last step the best pending answer changed
  double last_top = -1;        // champion score being aged

  // Frontier minima per keyword for the §4.5 release bound.
  auto frontier_minima = [&](std::vector<double>* m) {
    m->assign(n, kInf);
    for (auto& it : iters) {
      double d = it.PeekDist();
      (*m)[it.keyword] = std::min((*m)[it.keyword], d);
    }
  };

  auto build_tree = [&](NodeId root, const std::vector<uint32_t>& iter_ids)
      -> std::optional<AnswerTree> {
    std::vector<NodeId> keyword_nodes(n);
    std::vector<AnswerEdge> union_edges;
    for (uint32_t i = 0; i < n; ++i) {
      const Iterator& it = iters[iter_ids[i]];
      keyword_nodes[i] = it.origin;
      NodeId cur = root;
      for (;;) {
        const BackwardReach* rit = it.reach->Find(cur);
        assert(rit != nullptr);
        if (rit->next_hop == kInvalidNode) break;
        NodeId nxt = rit->next_hop;
        double w = rit->dist - it.reach->Find(nxt)->dist;
        union_edges.push_back(AnswerEdge{cur, nxt, static_cast<float>(w)});
        cur = nxt;
      }
    }
    auto tree = BuildAnswerFromPathUnion(root, keyword_nodes, union_edges);
    if (!tree) return std::nullopt;
    ScoreTree(&*tree, prestige_, options_.lambda);
    tree->generated_at = timer.ElapsedSeconds();
    tree->explored_at_generation = result.metrics.nodes_explored;
    tree->touched_at_generation = result.metrics.nodes_touched;
    return tree;
  };

  // Emits the combination of a fresh visit with the best other origins.
  auto emit_for_visit = [&](NodeId v, uint32_t iter_id) {
    const uint32_t* slot = visits.Find(v);
    if (slot == nullptr || *slot == 0) return;
    const uint32_t vidx = *slot - 1;
    if (visit_covered[vidx] < n) return;
    uint32_t kw = iters[iter_id].keyword;
    std::vector<uint32_t> ids(n);
    for (uint32_t j = 0; j < n; ++j) {
      ids[j] = (j == kw) ? iter_id : visit_iter[vidx * n + j];
    }
    std::optional<AnswerTree> tree = build_tree(v, ids);
    if (!tree || !tree->IsMinimalRooted()) return;
    if (heap.Insert(std::move(*tree))) {
      result.metrics.answers_generated++;
      double top = heap.BestPendingScore();
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  std::vector<double>& minima = ctx.bound_scratch;
  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, visits.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    frontier_minima(&minima);
    double h = 0;
    for (double m : minima) h += m;
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      heap.Drain(options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      heap.ReleaseWithEdgeBound(h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k && heap.pending_count() > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        heap.ReleaseBest(std::max<size_t>(1, options_.k / 8), options_.k,
                         &result.answers);
      }
    } else {
      // NRA-style (§4.5): an unseen root costs at least h = Σ m_i; a
      // partially visited root may complete each missing keyword at
      // m_i.
      double best_potential = h;
      for (const auto& entry : visits) {
        const uint32_t vidx = entry.value - 1;
        double pot = 0;
        for (size_t i = 0; i < n; ++i) {
          pot += std::min(visit_dist[vidx * n + i], minima[i]);
        }
        best_potential = std::min(best_potential, pot);
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      heap.ReleaseWithScoreBound(ub - 1e-12, options_.k, &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = heap.BestPendingScore();
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  while (!scheduler.empty() && result.answers.size() < options_.k) {
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    auto [sched_dist, iter_id] = scheduler.top();
    scheduler.pop();
    Iterator& it = iters[iter_id];
    double actual = it.PeekDist();
    if (actual == kInf) continue;  // exhausted iterator
    if (actual > sched_dist + 1e-12) {
      scheduler.emplace(actual, iter_id);  // stale entry; re-schedule
      continue;
    }

    // Step the iterator: settle its nearest frontier node.
    auto [d, v] = it.frontier.top();
    it.frontier.pop();
    // Copy the hop count now: the reference into the flat reach map is
    // invalidated by the (*it.reach)[u] insertions below.
    BackwardReach& rv = *it.reach->Find(v);
    rv.settled = true;
    const uint32_t v_hops = rv.hops;
    result.metrics.nodes_explored++;
    steps++;

    // Record the visit and emit any completed combinations.
    uint32_t& vslot = visits[v];
    if (vslot == 0) {
      vslot = static_cast<uint32_t>(visit_covered.size()) + 1;
      visit_dist.insert(visit_dist.end(), n, kInf);
      visit_iter.insert(visit_iter.end(), n, UINT32_MAX);
      visit_covered.push_back(0);
    }
    const uint32_t vidx = vslot - 1;
    uint32_t kw = it.keyword;
    bool was_covered = visit_dist[vidx * n + kw] != kInf;
    if (d < visit_dist[vidx * n + kw]) {
      visit_dist[vidx * n + kw] = d;
      visit_iter[vidx * n + kw] = iter_id;
    }
    if (!was_covered) visit_covered[vidx]++;
    emit_for_visit(v, iter_id);

    // Expand backward unless depth-capped.
    if (v_hops < options_.dmax) {
      uint32_t next_hops = v_hops + 1;
      for (const Edge& e : graph_.InEdges(v)) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        BackwardReach& ru = (*it.reach)[u];
        if (ru.settled) continue;
        double nd = d + e.weight;
        if (nd < ru.dist - 1e-12) {
          if (ru.dist == kInf) result.metrics.nodes_touched++;
          ru.dist = nd;
          ru.next_hop = v;
          ru.hops = next_hops;
          it.frontier.emplace(nd, u);
        }
      }
    }
    double nxt = it.PeekDist();
    if (nxt != kInf) scheduler.emplace(nxt, iter_id);

    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    heap.Drain(options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  result.metrics.answers_output = result.answers.size();
  result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace banks
