#include "search/backward_mi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra state reached by one iterator at one node.
struct ReachInfo {
  double dist;
  NodeId next_hop;   // next node on the path toward the origin
  uint32_t hops;     // edge count to origin (depth for the dmax cutoff)
};

/// One single-source backward shortest-path iterator (§3).
struct Iterator {
  uint32_t keyword;
  NodeId origin;
  // Lazy-deletion min-heap of (dist, node).
  std::priority_queue<std::pair<double, NodeId>,
                      std::vector<std::pair<double, NodeId>>,
                      std::greater<>>
      frontier;
  std::unordered_map<NodeId, ReachInfo> reach;
  std::unordered_map<NodeId, bool> settled;

  /// Skips stale heap entries; returns the next true frontier distance
  /// or +inf when exhausted.
  double PeekDist() {
    while (!frontier.empty()) {
      auto [d, v] = frontier.top();
      auto it = settled.find(v);
      if (it != settled.end() && it->second) {
        frontier.pop();
        continue;
      }
      auto rit = reach.find(v);
      if (rit == reach.end() || d > rit->second.dist + 1e-12) {
        frontier.pop();
        continue;
      }
      return d;
    }
    return kInf;
  }
};

/// Per-node record of which iterators have visited it.
struct VisitRecord {
  // Best (minimum-distance) visit per keyword.
  std::vector<double> best_dist;
  std::vector<uint32_t> best_iter;
  uint32_t covered = 0;  // number of keywords with a finite best_dist

  explicit VisitRecord(size_t n)
      : best_dist(n, kInf), best_iter(n, UINT32_MAX) {}
};

}  // namespace

SearchResult BackwardMISearcher::Search(
    const std::vector<std::vector<NodeId>>& origins) {
  SearchResult result;
  Timer timer;
  const size_t n = origins.size();
  if (n == 0) return result;
  for (const auto& s : origins) {
    if (s.empty()) return result;  // AND semantics: some keyword matches 0
  }

  // Build one iterator per keyword node.
  std::vector<Iterator> iters;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<NodeId> uniq = origins[i];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (NodeId o : uniq) {
      Iterator it;
      it.keyword = i;
      it.origin = o;
      it.reach[o] = ReachInfo{0.0, kInvalidNode, 0};
      it.frontier.emplace(0.0, o);
      iters.push_back(std::move(it));
      result.metrics.nodes_touched++;
    }
  }

  // Global scheduler: iterator with the nearest next node steps first.
  using SchedEntry = std::pair<double, uint32_t>;  // (peek dist, iter idx)
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, std::greater<>>
      scheduler;
  for (uint32_t i = 0; i < iters.size(); ++i) scheduler.emplace(0.0, i);

  std::unordered_map<NodeId, VisitRecord> visits;
  OutputHeap heap;
  uint64_t steps = 0;
  uint64_t last_progress = 0;  // last step the best pending answer changed
  double last_top = -1;        // champion score being aged

  // Frontier minima per keyword for the §4.5 release bound.
  auto frontier_minima = [&](std::vector<double>* m) {
    m->assign(n, kInf);
    for (auto& it : iters) {
      double d = it.PeekDist();
      (*m)[it.keyword] = std::min((*m)[it.keyword], d);
    }
  };

  auto build_tree = [&](NodeId root, const std::vector<uint32_t>& iter_ids)
      -> std::optional<AnswerTree> {
    std::vector<NodeId> keyword_nodes(n);
    std::vector<AnswerEdge> union_edges;
    for (uint32_t i = 0; i < n; ++i) {
      const Iterator& it = iters[iter_ids[i]];
      keyword_nodes[i] = it.origin;
      NodeId cur = root;
      for (;;) {
        auto rit = it.reach.find(cur);
        assert(rit != it.reach.end());
        if (rit->second.next_hop == kInvalidNode) break;
        NodeId nxt = rit->second.next_hop;
        double w = rit->second.dist - it.reach.at(nxt).dist;
        union_edges.push_back(AnswerEdge{cur, nxt, static_cast<float>(w)});
        cur = nxt;
      }
    }
    auto tree = BuildAnswerFromPathUnion(root, keyword_nodes, union_edges);
    if (!tree) return std::nullopt;
    ScoreTree(&*tree, prestige_, options_.lambda);
    tree->generated_at = timer.ElapsedSeconds();
    tree->explored_at_generation = result.metrics.nodes_explored;
    tree->touched_at_generation = result.metrics.nodes_touched;
    return tree;
  };

  // Emits the combination of a fresh visit with the best other origins.
  auto emit_for_visit = [&](NodeId v, uint32_t iter_id) {
    auto vit = visits.find(v);
    if (vit == visits.end()) return;
    VisitRecord& rec = vit->second;
    if (rec.covered < n) return;
    uint32_t kw = iters[iter_id].keyword;
    std::vector<uint32_t> ids(n);
    for (uint32_t j = 0; j < n; ++j) {
      ids[j] = (j == kw) ? iter_id : rec.best_iter[j];
    }
    std::optional<AnswerTree> tree = build_tree(v, ids);
    if (!tree || !tree->IsMinimalRooted()) return;
    if (heap.Insert(std::move(*tree))) {
      result.metrics.answers_generated++;
      double top = heap.BestPendingScore();
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  std::vector<double> minima;
  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, visits.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    frontier_minima(&minima);
    double h = 0;
    for (double m : minima) h += m;
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      heap.Drain(options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      heap.ReleaseWithEdgeBound(h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k && heap.pending_count() > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        heap.ReleaseBest(std::max<size_t>(1, options_.k / 8), options_.k,
                         &result.answers);
      }
    } else {
      // NRA-style (§4.5): an unseen root costs at least h = Σ m_i; a
      // partially visited root may complete each missing keyword at
      // m_i.
      double best_potential = h;
      for (const auto& [node, rec] : visits) {
        double pot = 0;
        for (size_t i = 0; i < n; ++i) {
          pot += std::min(rec.best_dist[i], minima[i]);
        }
        best_potential = std::min(best_potential, pot);
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      heap.ReleaseWithScoreBound(ub - 1e-12, options_.k, &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = heap.BestPendingScore();
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  while (!scheduler.empty() && result.answers.size() < options_.k) {
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    auto [sched_dist, iter_id] = scheduler.top();
    scheduler.pop();
    Iterator& it = iters[iter_id];
    double actual = it.PeekDist();
    if (actual == kInf) continue;  // exhausted iterator
    if (actual > sched_dist + 1e-12) {
      scheduler.emplace(actual, iter_id);  // stale entry; re-schedule
      continue;
    }

    // Step the iterator: settle its nearest frontier node.
    auto [d, v] = it.frontier.top();
    it.frontier.pop();
    it.settled[v] = true;
    result.metrics.nodes_explored++;
    steps++;

    const ReachInfo& info = it.reach.at(v);
    // Record the visit and emit any completed combinations.
    auto [vit, created] = visits.try_emplace(v, n);
    VisitRecord& rec = vit->second;
    uint32_t kw = it.keyword;
    bool was_covered = rec.best_dist[kw] != kInf;
    if (d < rec.best_dist[kw]) {
      rec.best_dist[kw] = d;
      rec.best_iter[kw] = iter_id;
    }
    if (!was_covered) rec.covered++;
    emit_for_visit(v, iter_id);

    // Expand backward unless depth-capped.
    if (info.hops < options_.dmax) {
      uint32_t next_hops = info.hops + 1;
      for (const Edge& e : graph_.InEdges(v)) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        if (it.settled.count(u) && it.settled[u]) continue;
        double nd = d + e.weight;
        auto rit = it.reach.find(u);
        if (rit == it.reach.end() || nd < rit->second.dist - 1e-12) {
          if (rit == it.reach.end()) result.metrics.nodes_touched++;
          it.reach[u] = ReachInfo{nd, v, next_hops};
          it.frontier.emplace(nd, u);
        }
      }
    }
    double nxt = it.PeekDist();
    if (nxt != kInf) scheduler.emplace(nxt, iter_id);

    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    heap.Drain(options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  result.metrics.answers_output = result.answers.size();
  result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace banks
