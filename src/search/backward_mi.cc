#include "search/backward_mi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "storage/buffer_pool.h"

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/shard_team.h"
#include "search/sharding.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Engage the shard team for the per-release frontier-minima sweep /
// tight-bound scan only past this much work per shard (scheduling
// choice only; the reductions compute identical values either way).
constexpr size_t kMinItersPerShard = 64;
constexpr size_t kMinScanEntriesPerShard = 2048;

}  // namespace

SearchStatus BackwardMISearcher::Resume(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context,
    const StepLimits& limits) const {
  SearchContext::StreamState& ss = context->stream;
  const SliceStart start = BeginResumeSlice(origins, &ss);
  if (start == SliceStart::kAlreadyDone) return SearchStatus::kDone;
  const bool fresh = start == SliceStart::kFresh;

  // Control state persists in the stream state; the scheduler position,
  // iterator frontiers and visit tables persist in the context pools, so
  // a resumed slice re-binds references and continues exactly where the
  // previous slice paused.
  SearchResult& result = ss.result;
  SliceTimer timer(ss.elapsed);
  const size_t n = origins.size();

  // Scheduler/frontier structures are partitioned into one lane per
  // worker. Unlike the bidirectional BSP loop, the lane count here is
  // free to follow shard_count: the iterator schedule is the argmin
  // over lane heap fronts under the (dist, iter) *total* order, which
  // is a property of the heap contents alone — any partition (including
  // a single lane at shard_count 1, which keeps the sequential path
  // free of per-pop multi-lane scans) replays the identical schedule.
  const uint32_t num_workers =
      std::min(std::max<uint32_t>(1, options_.shard_count), kNumLanes);
  const uint32_t L = num_workers;
  const ShardPlan plan{L, graph_.num_nodes()};
  ShardRuntime runtime(num_workers, options_.shard_pool, options_.team_pool);

  SearchContext& ctx = *context;
  if (fresh) ctx.BeginQuery(n, num_workers);

  // One single-source backward shortest-path iterator per keyword node
  // (§3), structure-of-arrays on the context: iterator i owns reach map
  // ctx.reach_maps[i] and the lazy-deletion frontier heap segment
  // ctx.frontiers.Segment(i). Frequent-keyword queries build hundreds of
  // iterators; on a warm context none of this allocates. An iterator
  // belongs to the lane owning its origin NodeId — that lane's
  // scheduler heap carries it, and the worker executing that lane
  // sweeps it in the batched frontier-minima phase.
  std::vector<uint32_t>& iter_keyword = ctx.iter_keyword;
  std::vector<NodeId>& iter_origin = ctx.iter_origin;
  if (fresh) {
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<NodeId>& uniq = ctx.uniq_scratch;
      uniq.assign(origins[i].begin(), origins[i].end());
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      for (NodeId o : uniq) {
        iter_keyword.push_back(i);
        iter_origin.push_back(o);
      }
    }
    ctx.EnsureReachMaps(iter_origin.size());
  }
  const uint32_t num_iters = static_cast<uint32_t>(iter_origin.size());
  auto lane_of_iter = [&](uint32_t it_id) {
    return plan.ShardOf(iter_origin[it_id]);
  };

  // Per-iterator lazy-deletion min-heap of (dist, node) over the pooled
  // frontier segments, driven by push/pop_heap with the same comparator
  // the std::priority_queue it replaces used.
  using FrontierEntry = FrontierPool::Entry;
  auto frontier_push = [&](uint32_t it_id, double d, NodeId v) {
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(it_id);
    seg.emplace_back(d, v);
    std::push_heap(seg.begin(), seg.end(), std::greater<>());
  };
  /// Skips stale heap entries; returns the next true frontier distance
  /// or +inf when exhausted.
  auto peek_dist = [&](uint32_t it_id) -> double {
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(it_id);
    FlatHashMap<NodeId, BackwardReach>& reach = ctx.reach_maps[it_id];
    while (!seg.empty()) {
      auto [d, v] = seg.front();
      const BackwardReach* r = reach.Find(v);
      if (r == nullptr || r->settled || d > r->dist + 1e-12) {
        std::pop_heap(seg.begin(), seg.end(), std::greater<>());
        seg.pop_back();
        continue;
      }
      return d;
    }
    return kInf;
  };

  if (fresh) {
    for (uint32_t i = 0; i < num_iters; ++i) {
      ctx.reach_maps[i][iter_origin[i]] =
          BackwardReach{0.0, kInvalidNode, iter_origin[i], 0, false};
      frontier_push(i, 0.0, iter_origin[i]);
      result.metrics.nodes_touched++;
    }
  }

  // Scheduler: iterator with the nearest next node steps first. (peek
  // dist, iter idx) min-heaps over pooled storage, one per lane; the
  // pair order is already total, so the argmin over lane fronts is
  // exactly the entry one global heap would pop at any shard count.
  using SchedEntry = SearchContext::ScoredState;
  std::vector<std::vector<SchedEntry>>& scheduler = ctx.scheduler;
  auto sched_push = [&](double d, uint32_t it_id) {
    std::vector<SchedEntry>& lane = scheduler[lane_of_iter(it_id)];
    lane.emplace_back(d, it_id);
    std::push_heap(lane.begin(), lane.end(), std::greater<>());
  };
  // Mailbox discipline for scheduler updates: pushes produced while a
  // pop is in flight stage in ctx.sched_stage (element = target lane)
  // and apply at the end of the pop in lane order, mirroring the BSP
  // apply-at-barrier rule. (An iterator only ever re-schedules itself,
  // so every staged entry is lane-local today — the cross-lane counter
  // records that invariant as a measured zero.)
  std::vector<std::vector<SchedEntry>>& sched_stage = ctx.sched_stage;
  auto staged_sched_push = [&](uint32_t pop_lane, double d, uint32_t it_id) {
    const uint32_t tl = lane_of_iter(it_id);
    if (tl != pop_lane) result.metrics.cross_shard_messages++;
    sched_stage[tl].emplace_back(d, it_id);
  };
  auto apply_sched_staged = [&] {
    for (uint32_t tl = 0; tl < L; ++tl) {
      if (sched_stage[tl].empty()) continue;
      if (sched_stage[tl].size() > result.metrics.max_mailbox_depth) {
        result.metrics.max_mailbox_depth = sched_stage[tl].size();
      }
      for (const SchedEntry& e : sched_stage[tl]) sched_push(e.first, e.second);
      sched_stage[tl].clear();
    }
  };
  // Lane whose front is the global minimum entry, or -1 when empty.
  auto sched_best_shard = [&]() -> int {
    int best = -1;
    for (uint32_t p = 0; p < L; ++p) {
      if (scheduler[p].empty()) continue;
      if (best < 0 || scheduler[p].front() < scheduler[best].front()) {
        best = static_cast<int>(p);
      }
    }
    return best;
  };
  auto sched_pop = [&](uint32_t p) -> SchedEntry {
    std::vector<SchedEntry>& shard = scheduler[p];
    std::pop_heap(shard.begin(), shard.end(), std::greater<>());
    SchedEntry top = shard.back();
    shard.pop_back();
    return top;
  };
  if (fresh) {
    for (uint32_t i = 0; i < num_iters; ++i) sched_push(0.0, i);
  }

  // Per-node record of which iterators have visited it. node → dense
  // visit index (stored +1; 0 means absent); the per-keyword best
  // distance / iterator live at visit_index * n + keyword in the flat
  // pools, the covered-keyword count in visit_covered.
  FlatHashMap<NodeId, uint32_t>& visits = ctx.node_index;
  std::vector<double>& visit_dist = ctx.visit_dist;
  std::vector<uint32_t>& visit_iter = ctx.visit_iter;
  std::vector<uint32_t>& visit_covered = ctx.visit_covered;

  // Signature-sharded output buffers, merged at every release check.
  OutputHeap* heaps = ctx.output_heaps.data();
  uint64_t& steps = ss.steps;
  uint64_t& last_progress = ss.last_progress;  // last step best pending changed
  double& last_top = ss.last_top;              // champion score being aged

  // Frontier minima per keyword for the §4.5 release bound. Each worker
  // sweeps the iterators of the lanes it executes (peek_dist prunes
  // stale entries from segments those lanes own) into its slice of the
  // partial-minima table; the coordinator then min-reduces across
  // workers. The lazy pruning is per-iterator and deterministic, so who
  // performs it never shows in the results.
  auto frontier_minima = [&](std::vector<double>* m) {
    m->assign(n, kInf);
    if (runtime.Engage(num_iters, kMinItersPerShard)) {
      std::vector<double>& partial = ctx.shard_minima;
      partial.assign(static_cast<size_t>(num_workers) * n, kInf);
      runtime.Run([&](uint32_t w) {
        double* mine = partial.data() + static_cast<size_t>(w) * n;
        for (uint32_t i = 0; i < num_iters; ++i) {
          if (lane_of_iter(i) != w) continue;
          double d = peek_dist(i);
          uint32_t kw = iter_keyword[i];
          mine[kw] = std::min(mine[kw], d);
        }
      });
      for (uint32_t p = 0; p < num_workers; ++p) {
        for (uint32_t kw = 0; kw < n; ++kw) {
          (*m)[kw] =
              std::min((*m)[kw], partial[static_cast<size_t>(p) * n + kw]);
        }
      }
    } else {
      for (uint32_t i = 0; i < num_iters; ++i) {
        double d = peek_dist(i);
        uint32_t kw = iter_keyword[i];
        (*m)[kw] = std::min((*m)[kw], d);
      }
    }
  };

  // Builds the candidate into ctx.answer_scratch; returns false when
  // some keyword node is unreachable within the path union.
  auto build_tree = [&](NodeId root, const std::vector<uint32_t>& iter_ids)
      -> bool {
    std::vector<NodeId>& keyword_nodes = ctx.kw_scratch;
    std::vector<AnswerEdge>& union_edges = ctx.union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t it_id = iter_ids[i];
      FlatHashMap<NodeId, BackwardReach>& reach = ctx.reach_maps[it_id];
      keyword_nodes[i] = iter_origin[it_id];
      NodeId cur = root;
      for (;;) {
        const BackwardReach* rit = reach.Find(cur);
        assert(rit != nullptr);
        if (rit->next_hop == kInvalidNode) break;
        NodeId nxt = rit->next_hop;
        double w = rit->dist - reach.Find(nxt)->dist;
        union_edges.push_back(AnswerEdge{cur, nxt, static_cast<float>(w)});
        cur = nxt;
      }
    }
    AnswerTree& tree = ctx.answer_scratch;
    if (!BuildAnswerFromPathUnion(root, keyword_nodes, union_edges,
                                  &ctx.tree_scratch, &tree)) {
      return false;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = timer.ElapsedSeconds();
    tree.explored_at_generation = result.metrics.nodes_explored;
    tree.touched_at_generation = result.metrics.nodes_touched;
    return true;
  };

  // Emits the combination of a fresh visit with the best other origins.
  auto emit_for_visit = [&](NodeId v, uint32_t iter_id) {
    const uint32_t* slot = visits.Find(v);
    if (slot == nullptr || *slot == 0) return;
    const uint32_t vidx = *slot - 1;
    if (visit_covered[vidx] < n) return;
    uint32_t kw = iter_keyword[iter_id];
    std::vector<uint32_t>& ids = ctx.id_scratch;
    ids.assign(n, 0);
    for (uint32_t j = 0; j < n; ++j) {
      ids[j] = (j == kw) ? iter_id : visit_iter[vidx * n + j];
    }
    if (!build_tree(v, ids) || !ctx.answer_scratch.IsMinimalRooted()) return;
    uint64_t sig = ctx.answer_scratch.Signature(&ctx.sig_scratch);
    if (heaps[sig % L].InsertCopy(ctx.answer_scratch, sig)) {
      result.metrics.answers_generated++;
      double top = MergedBestPendingScore(heaps, L);
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  std::vector<double>& minima = ctx.bound_scratch;
  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, visits.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    frontier_minima(&minima);
    double h = 0;
    for (double m : minima) h += m;
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      MergedDrain(heaps, L, options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      MergedReleaseWithEdgeBound(heaps, L, h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k &&
          MergedPendingCount(heaps, L) > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        MergedReleaseBest(heaps, L, std::max<size_t>(1, options_.k / 8),
                          options_.k, &result.answers);
      }
    } else {
      // NRA-style (§4.5): an unseen root costs at least h = Σ m_i; a
      // partially visited root may complete each missing keyword at
      // m_i. Pure min-reduction over the dense visit entries: shard
      // workers scan contiguous slices.
      const size_t num_entries = visits.size();
      auto scan_slice = [&](size_t begin, size_t end) -> double {
        double best = kInf;
        for (size_t e = begin; e < end; ++e) {
          const uint32_t vidx = (visits.begin() + e)->value - 1;
          double pot = 0;
          for (size_t i = 0; i < n; ++i) {
            pot += std::min(visit_dist[vidx * n + i], minima[i]);
          }
          best = std::min(best, pot);
        }
        return best;
      };
      double best_potential = h;
      if (runtime.Engage(num_entries, kMinScanEntriesPerShard)) {
        ctx.nra_partial.assign(num_workers, kInf);
        runtime.Run([&](uint32_t w) {
          size_t begin = num_entries * w / num_workers;
          size_t end = num_entries * (w + 1) / num_workers;
          ctx.nra_partial[w] = scan_slice(begin, end);
        });
        for (double p : ctx.nra_partial) {
          best_potential = std::min(best_potential, p);
        }
      } else {
        best_potential = std::min(best_potential, scan_slice(0, num_entries));
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      MergedReleaseWithScoreBound(heaps, L, ub - 1e-12, options_.k,
                                  &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = MergedBestPendingScore(heaps, L);
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  // Slice bounds (streaming pauses): checked between loop iterations
  // only, so a pause never changes what the search computes.
  const SliceGuard slice(limits, &ss, &timer);

  for (;;) {
    int p = sched_best_shard();
    if (p < 0 || result.answers.size() >= options_.k) break;
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (slice.PauseDue()) return slice.Pause();
    if (ctx.page_listener != nullptr && graph_.paged()) {
      // Page-wait protocol (docs/STORAGE.md): before committing to the
      // pop, check that the node it would settle has its adjacency page
      // pooled; on a miss, queue the fetch and detach the quantum
      // instead of blocking the worker. peek_dist's lazy stale-entry
      // pruning is deterministic and result-neutral, so a retried slice
      // replays this decision identically. Past the retry cap (e.g.
      // concurrent tasks keep evicting our fetched page) the probe is
      // skipped for one pop and its pins block synchronously —
      // guaranteed progress, identical results.
      if (ctx.stream.page_fault_retries >=
          SearchContext::StreamState::kMaxPageFaultRetries) {
        ctx.stream.page_fault_retries = 0;
      } else {
        const auto [head_dist, head_iter] = scheduler[p].front();
        const double head_actual = peek_dist(head_iter);
        if (head_actual != kInf && head_actual <= head_dist + 1e-12) {
          const NodeId head_node =
              ctx.frontiers.Segment(head_iter).front().second;
          const BackwardReach* hr = ctx.reach_maps[head_iter].Find(head_node);
          if (hr != nullptr && hr->hops < options_.dmax &&
              !graph_.ProbeInEdges(head_node, ctx.page_listener)) {
            return slice.PageWait();
          }
        }
        ctx.stream.page_fault_retries = 0;
      }
    }
    auto [sched_dist, iter_id] = sched_pop(static_cast<uint32_t>(p));
    const uint32_t pop_lane = static_cast<uint32_t>(p);
    double actual = peek_dist(iter_id);
    if (actual == kInf) continue;  // exhausted iterator
    if (actual > sched_dist + 1e-12) {
      // Stale entry; re-schedule through the staging discipline.
      staged_sched_push(pop_lane, actual, iter_id);
      apply_sched_staged();
      continue;
    }

    // Step the iterator: settle its nearest frontier node.
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(iter_id);
    auto [d, v] = seg.front();
    std::pop_heap(seg.begin(), seg.end(), std::greater<>());
    seg.pop_back();
    FlatHashMap<NodeId, BackwardReach>& it_reach = ctx.reach_maps[iter_id];
    // Copy the hop count now: the reference into the flat reach map is
    // invalidated by the it_reach[u] insertions below.
    BackwardReach& rv = *it_reach.Find(v);
    rv.settled = true;
    const uint32_t v_hops = rv.hops;
    result.metrics.nodes_explored++;
    result.metrics.bsp_rounds++;  // one settled step per round (§3 argmin)
    steps++;

    // Record the visit and emit any completed combinations.
    uint32_t& vslot = visits[v];
    if (vslot == 0) {
      vslot = static_cast<uint32_t>(visit_covered.size()) + 1;
      visit_dist.insert(visit_dist.end(), n, kInf);
      visit_iter.insert(visit_iter.end(), n, UINT32_MAX);
      visit_covered.push_back(0);
    }
    const uint32_t vidx = vslot - 1;
    uint32_t kw = iter_keyword[iter_id];
    bool was_covered = visit_dist[vidx * n + kw] != kInf;
    if (d < visit_dist[vidx * n + kw]) {
      visit_dist[vidx * n + kw] = d;
      visit_iter[vidx * n + kw] = iter_id;
    }
    if (!was_covered) visit_covered[vidx]++;
    emit_for_visit(v, iter_id);

    // Expand backward unless depth-capped.
    if (v_hops < options_.dmax) {
      uint32_t next_hops = v_hops + 1;
      PagePin pin;
      std::span<const Edge> in_edges = graph_.InEdges(v, &pin);
      if (pin.failed()) {
        ++result.metrics.io_errors;
        return slice.IoError();
      }
      if (!pin.empty()) {
        ++(pin.hit() ? result.metrics.page_hits : result.metrics.page_misses);
      }
      for (const Edge& e : in_edges) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        BackwardReach& ru = it_reach[u];
        if (ru.settled) continue;
        double nd = d + e.weight;
        if (nd < ru.dist - 1e-12) {
          if (ru.dist == kInf) result.metrics.nodes_touched++;
          ru.dist = nd;
          ru.next_hop = v;
          ru.hops = next_hops;
          frontier_push(iter_id, nd, u);
        }
      }
    }
    double nxt = peek_dist(iter_id);
    if (nxt != kInf) staged_sched_push(pop_lane, nxt, iter_id);
    apply_sched_staged();

    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    MergedDrain(heaps, L, options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  return FinishResume(&ss, timer);
}

}  // namespace banks
