#include "search/backward_mi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "search/search_context.h"
#include "search/tree_builder.h"
#include "util/timer.h"

namespace banks {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SearchResult BackwardMISearcher::Search(
    const std::vector<std::vector<NodeId>>& origins, SearchContext* context) const {
  SearchResult result;
  Timer timer;
  const size_t n = origins.size();
  if (n == 0) return result;
  for (const auto& s : origins) {
    if (s.empty()) return result;  // AND semantics: some keyword matches 0
  }

  SearchContext& ctx = *context;
  ctx.BeginQuery(n);

  // One single-source backward shortest-path iterator per keyword node
  // (§3), structure-of-arrays on the context: iterator i owns reach map
  // ctx.reach_maps[i] and the lazy-deletion frontier heap segment
  // ctx.frontiers.Segment(i). Frequent-keyword queries build hundreds of
  // iterators; on a warm context none of this allocates.
  std::vector<uint32_t>& iter_keyword = ctx.iter_keyword;
  std::vector<NodeId>& iter_origin = ctx.iter_origin;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<NodeId>& uniq = ctx.uniq_scratch;
    uniq.assign(origins[i].begin(), origins[i].end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (NodeId o : uniq) {
      iter_keyword.push_back(i);
      iter_origin.push_back(o);
    }
  }
  const uint32_t num_iters = static_cast<uint32_t>(iter_origin.size());
  ctx.EnsureReachMaps(num_iters);

  // Per-iterator lazy-deletion min-heap of (dist, node) over the pooled
  // frontier segments, driven by push/pop_heap with the same comparator
  // the std::priority_queue it replaces used.
  using FrontierEntry = FrontierPool::Entry;
  auto frontier_push = [&](uint32_t it_id, double d, NodeId v) {
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(it_id);
    seg.emplace_back(d, v);
    std::push_heap(seg.begin(), seg.end(), std::greater<>());
  };
  /// Skips stale heap entries; returns the next true frontier distance
  /// or +inf when exhausted.
  auto peek_dist = [&](uint32_t it_id) -> double {
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(it_id);
    FlatHashMap<NodeId, BackwardReach>& reach = ctx.reach_maps[it_id];
    while (!seg.empty()) {
      auto [d, v] = seg.front();
      const BackwardReach* r = reach.Find(v);
      if (r == nullptr || r->settled || d > r->dist + 1e-12) {
        std::pop_heap(seg.begin(), seg.end(), std::greater<>());
        seg.pop_back();
        continue;
      }
      return d;
    }
    return kInf;
  };

  for (uint32_t i = 0; i < num_iters; ++i) {
    ctx.reach_maps[i][iter_origin[i]] =
        BackwardReach{0.0, kInvalidNode, iter_origin[i], 0, false};
    frontier_push(i, 0.0, iter_origin[i]);
    result.metrics.nodes_touched++;
  }

  // Global scheduler: iterator with the nearest next node steps first.
  // (peek dist, iter idx) min-heap over pooled storage.
  using SchedEntry = SearchContext::ScoredState;
  std::vector<SchedEntry>& scheduler = ctx.scheduler;
  auto sched_push = [&](double d, uint32_t it_id) {
    scheduler.emplace_back(d, it_id);
    std::push_heap(scheduler.begin(), scheduler.end(), std::greater<>());
  };
  auto sched_pop = [&]() -> SchedEntry {
    std::pop_heap(scheduler.begin(), scheduler.end(), std::greater<>());
    SchedEntry top = scheduler.back();
    scheduler.pop_back();
    return top;
  };
  for (uint32_t i = 0; i < num_iters; ++i) sched_push(0.0, i);

  // Per-node record of which iterators have visited it. node → dense
  // visit index (stored +1; 0 means absent); the per-keyword best
  // distance / iterator live at visit_index * n + keyword in the flat
  // pools, the covered-keyword count in visit_covered.
  FlatHashMap<NodeId, uint32_t>& visits = ctx.node_index;
  std::vector<double>& visit_dist = ctx.visit_dist;
  std::vector<uint32_t>& visit_iter = ctx.visit_iter;
  std::vector<uint32_t>& visit_covered = ctx.visit_covered;

  OutputHeap& heap = ctx.output_heap;
  uint64_t steps = 0;
  uint64_t last_progress = 0;  // last step the best pending answer changed
  double last_top = -1;        // champion score being aged

  // Frontier minima per keyword for the §4.5 release bound.
  auto frontier_minima = [&](std::vector<double>* m) {
    m->assign(n, kInf);
    for (uint32_t i = 0; i < num_iters; ++i) {
      double d = peek_dist(i);
      uint32_t kw = iter_keyword[i];
      (*m)[kw] = std::min((*m)[kw], d);
    }
  };

  // Builds the candidate into ctx.answer_scratch; returns false when
  // some keyword node is unreachable within the path union.
  auto build_tree = [&](NodeId root, const std::vector<uint32_t>& iter_ids)
      -> bool {
    std::vector<NodeId>& keyword_nodes = ctx.kw_scratch;
    std::vector<AnswerEdge>& union_edges = ctx.union_edge_scratch;
    keyword_nodes.assign(n, kInvalidNode);
    union_edges.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t it_id = iter_ids[i];
      FlatHashMap<NodeId, BackwardReach>& reach = ctx.reach_maps[it_id];
      keyword_nodes[i] = iter_origin[it_id];
      NodeId cur = root;
      for (;;) {
        const BackwardReach* rit = reach.Find(cur);
        assert(rit != nullptr);
        if (rit->next_hop == kInvalidNode) break;
        NodeId nxt = rit->next_hop;
        double w = rit->dist - reach.Find(nxt)->dist;
        union_edges.push_back(AnswerEdge{cur, nxt, static_cast<float>(w)});
        cur = nxt;
      }
    }
    AnswerTree& tree = ctx.answer_scratch;
    if (!BuildAnswerFromPathUnion(root, keyword_nodes, union_edges,
                                  &ctx.tree_scratch, &tree)) {
      return false;
    }
    ScoreTree(&tree, prestige_, options_.lambda);
    tree.generated_at = timer.ElapsedSeconds();
    tree.explored_at_generation = result.metrics.nodes_explored;
    tree.touched_at_generation = result.metrics.nodes_touched;
    return true;
  };

  // Emits the combination of a fresh visit with the best other origins.
  auto emit_for_visit = [&](NodeId v, uint32_t iter_id) {
    const uint32_t* slot = visits.Find(v);
    if (slot == nullptr || *slot == 0) return;
    const uint32_t vidx = *slot - 1;
    if (visit_covered[vidx] < n) return;
    uint32_t kw = iter_keyword[iter_id];
    std::vector<uint32_t>& ids = ctx.id_scratch;
    ids.assign(n, 0);
    for (uint32_t j = 0; j < n; ++j) {
      ids[j] = (j == kw) ? iter_id : visit_iter[vidx * n + j];
    }
    if (!build_tree(v, ids) || !ctx.answer_scratch.IsMinimalRooted()) return;
    if (heap.InsertCopy(ctx.answer_scratch)) {
      result.metrics.answers_generated++;
      double top = heap.BestPendingScore();
      if (top > last_top + 1e-15) {
        last_top = top;
        last_progress = steps;
      }
    }
  };

  std::vector<double>& minima = ctx.bound_scratch;
  auto maybe_release = [&](bool force) {
    uint64_t interval = options_.bound_check_interval;
    if (options_.bound == BoundMode::kTight) {
      interval = std::max<uint64_t>(interval, visits.size() / 8);
    }
    if (!force && (steps % interval) != 0) return;
    frontier_minima(&minima);
    double h = 0;
    for (double m : minima) h += m;
    size_t before = result.answers.size();
    if (options_.bound == BoundMode::kImmediate) {
      heap.Drain(options_.k, &result.answers);
    } else if (options_.bound == BoundMode::kLoose) {
      heap.ReleaseWithEdgeBound(h, options_.k, &result.answers);
      if (options_.release_patience &&
          steps - last_progress >= options_.release_patience &&
          result.answers.size() < options_.k && heap.pending_count() > 0) {
        // Staleness drip: the champion has been unbeaten for a while;
        // release a batch of the best pending answers.
        heap.ReleaseBest(std::max<size_t>(1, options_.k / 8), options_.k,
                         &result.answers);
      }
    } else {
      // NRA-style (§4.5): an unseen root costs at least h = Σ m_i; a
      // partially visited root may complete each missing keyword at
      // m_i.
      double best_potential = h;
      for (const auto& entry : visits) {
        const uint32_t vidx = entry.value - 1;
        double pot = 0;
        for (size_t i = 0; i < n; ++i) {
          pot += std::min(visit_dist[vidx * n + i], minima[i]);
        }
        best_potential = std::min(best_potential, pot);
      }
      double ub = ScoreUpperBound(best_potential, 1.0, options_.lambda);
      heap.ReleaseWithScoreBound(ub - 1e-12, options_.k, &result.answers);
    }
    if (result.answers.size() != before) {
      last_progress = steps;
      last_top = heap.BestPendingScore();
    }
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  };

  while (!scheduler.empty() && result.answers.size() < options_.k) {
    if (options_.max_nodes_explored &&
        result.metrics.nodes_explored >= options_.max_nodes_explored) {
      result.metrics.budget_exhausted = true;
      break;
    }
    if (options_.max_answers_generated &&
        result.metrics.answers_generated >= options_.max_answers_generated) {
      result.metrics.budget_exhausted = true;
      break;
    }
    auto [sched_dist, iter_id] = sched_pop();
    double actual = peek_dist(iter_id);
    if (actual == kInf) continue;  // exhausted iterator
    if (actual > sched_dist + 1e-12) {
      sched_push(actual, iter_id);  // stale entry; re-schedule
      continue;
    }

    // Step the iterator: settle its nearest frontier node.
    std::vector<FrontierEntry>& seg = ctx.frontiers.Segment(iter_id);
    auto [d, v] = seg.front();
    std::pop_heap(seg.begin(), seg.end(), std::greater<>());
    seg.pop_back();
    FlatHashMap<NodeId, BackwardReach>& it_reach = ctx.reach_maps[iter_id];
    // Copy the hop count now: the reference into the flat reach map is
    // invalidated by the it_reach[u] insertions below.
    BackwardReach& rv = *it_reach.Find(v);
    rv.settled = true;
    const uint32_t v_hops = rv.hops;
    result.metrics.nodes_explored++;
    steps++;

    // Record the visit and emit any completed combinations.
    uint32_t& vslot = visits[v];
    if (vslot == 0) {
      vslot = static_cast<uint32_t>(visit_covered.size()) + 1;
      visit_dist.insert(visit_dist.end(), n, kInf);
      visit_iter.insert(visit_iter.end(), n, UINT32_MAX);
      visit_covered.push_back(0);
    }
    const uint32_t vidx = vslot - 1;
    uint32_t kw = iter_keyword[iter_id];
    bool was_covered = visit_dist[vidx * n + kw] != kInf;
    if (d < visit_dist[vidx * n + kw]) {
      visit_dist[vidx * n + kw] = d;
      visit_iter[vidx * n + kw] = iter_id;
    }
    if (!was_covered) visit_covered[vidx]++;
    emit_for_visit(v, iter_id);

    // Expand backward unless depth-capped.
    if (v_hops < options_.dmax) {
      uint32_t next_hops = v_hops + 1;
      for (const Edge& e : graph_.InEdges(v)) {
        if (!EdgeAllowed(e)) continue;
        result.metrics.edges_relaxed++;
        NodeId u = e.other;
        BackwardReach& ru = it_reach[u];
        if (ru.settled) continue;
        double nd = d + e.weight;
        if (nd < ru.dist - 1e-12) {
          if (ru.dist == kInf) result.metrics.nodes_touched++;
          ru.dist = nd;
          ru.next_hop = v;
          ru.hops = next_hops;
          frontier_push(iter_id, nd, u);
        }
      }
    }
    double nxt = peek_dist(iter_id);
    if (nxt != kInf) sched_push(nxt, iter_id);

    maybe_release(false);
  }

  maybe_release(true);
  if (result.answers.size() < options_.k) {
    size_t before = result.answers.size();
    heap.Drain(options_.k, &result.answers);
    for (size_t i = before; i < result.answers.size(); ++i) {
      result.metrics.generated_times.push_back(result.answers[i].generated_at);
      result.metrics.output_times.push_back(timer.ElapsedSeconds());
    }
  }
  result.metrics.answers_output = result.answers.size();
  result.metrics.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace banks
