#ifndef BANKS_SEARCH_ANSWER_STREAM_H_
#define BANKS_SEARCH_ANSWER_STREAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "search/context_pool.h"
#include "search/epoch.h"
#include "search/searcher.h"

namespace banks {

class Scheduler;  // serve/scheduler.h — the serving core

/// Per-stream knobs for Engine::OpenQuery / OpenQueryResolved.
struct StreamOptions {
  /// Wall-clock budget for each Next() call, in seconds. When it expires
  /// before the next answer is released, Next() returns nullopt with
  /// hit_limit() true and the search pauses — call Next() again to keep
  /// going, or abandon the stream. 0 = unbounded.
  double deadline_seconds = 0;

  /// Node-expansion budget per Next() call, same pause semantics as the
  /// deadline. 0 = unlimited.
  uint64_t step_budget = 0;

  /// Pool to lease the stream's SearchContext from when the caller does
  /// not pass an explicit context; the lease is returned by the stream's
  /// destructor (or an early Cancel), so pooled streams are RAII-clean.
  /// nullptr makes the stream own a private (cold) context instead.
  SearchContextPool* pool = nullptr;

  /// Serving-core handoff (docs/SERVING.md): when set, the search is
  /// submitted to this scheduler as a push subscription instead of
  /// running inline on the pulling thread, and the stream becomes a
  /// consumer of the subscription's QueueSink — Next() blocks until a
  /// worker pushes the next answer (deadline_seconds bounds the wait
  /// and reports hit_limit(); step_budget does not apply, the
  /// scheduler's quantum does). The pulled sequence is the same
  /// prefix-equivalent answer sequence as inline streaming; drained,
  /// streamed and subscribed queries share one state machine. Honored
  /// on Engine-opened streams (the task takes ownership of the
  /// searcher) with a worker-backed scheduler (num_workers > 0); the
  /// stream then holds NO SearchContext — `pool` and explicit contexts
  /// are ignored, the scheduler attaches/detaches pooled contexts
  /// itself. Mid-flight metrics() are unavailable in this mode (final
  /// metrics arrive with the terminal push).
  Scheduler* scheduler = nullptr;
};

/// Pull-based cursor over one running search — the paper's incremental
/// top-k output (§4.5's buffer exists so answers can be emitted while
/// the search runs; the BANKS web frontend displays them as they
/// arrive). Each Next() runs the underlying search just far enough to
/// release the next in-order answer.
///
/// The contract that keeps streaming honest: the sequence of answers
/// pulled from a stream is identical, prefix by prefix, to the drained
/// Engine::Query result for the same query — every algorithm, bound
/// mode and shard count. Pausing between pulls never changes what the
/// search computes (see StepLimits), so a consumer can stop after the
/// first answer having paid only the time-to-first-answer, not the full
/// search.
///
/// Lifecycle: obtained from Engine::OpenQuery/OpenQueryResolved;
/// move-only. The stream borrows or owns a SearchContext (explicit
/// caller context > StreamOptions::pool lease > private context) and
/// RAII-releases it on destruction. A stream abandoned after n pulls
/// leaves its context warm and fully reusable — the next query on it
/// resets the partial search.
///
/// With StreamOptions::scheduler set the same cursor rides the serving
/// core instead: the search runs as scheduler quanta pushing into a
/// QueueSink and Next() pulls from that sink (docs/SERVING.md). For the
/// push-native API — sinks, tenants, deadlines, credits — see
/// Engine::Subscribe (serve/answer_sink.h, serve/scheduler.h).
class AnswerStream {
 public:
  /// Open a stream directly over a searcher (the Engine front door
  /// composes this; tests and embedders may too). Resets `context`'s
  /// stream state; the searcher must outlive the stream.
  AnswerStream(const Searcher* searcher,
               std::vector<std::vector<NodeId>> origins,
               const StreamOptions& options, SearchContext* context);

  AnswerStream(AnswerStream&& other) noexcept;
  AnswerStream& operator=(AnswerStream&& other) noexcept;
  AnswerStream(const AnswerStream&) = delete;
  AnswerStream& operator=(const AnswerStream&) = delete;
  ~AnswerStream();

  /// Runs the search until the next in-order answer is released and
  /// returns it, or nullopt when the search is exhausted (done() true)
  /// or a per-call bound paused it first (hit_limit() true — the search
  /// is still resumable).
  std::optional<AnswerTree> Next();

  /// Runs the search to completion (ignoring the per-Next bounds) and
  /// returns every answer not yet pulled, plus the final metrics of the
  /// whole search. Engine::Query is OpenQuery(...).Drain() on a fresh
  /// stream, so a drain with no prior pulls is exactly the classic
  /// run-to-completion query.
  SearchResult Drain();

  /// Abandons the search: drops any buffered answers, releases the
  /// context (returning a pooled lease immediately), and makes every
  /// later Next() return nullopt. Metrics-so-far stay readable.
  void Cancel();

  /// True once no further answer can come: the search completed and all
  /// released answers were pulled (or the stream was cancelled).
  bool done() const;

  /// True when the last Next() returned nullopt because a
  /// StreamOptions bound (deadline/step budget) paused the search
  /// before it could release an answer.
  bool hit_limit() const { return hit_limit_; }

  /// Answers handed out by Next() so far.
  size_t answers_pulled() const { return pulled_; }

  /// Search counters so far (final once done()). After Drain(), prefer
  /// the returned result's metrics: the live copy's per-answer time
  /// vectors move out with it.
  const SearchMetrics& metrics() const;

 private:
  friend class Engine;

  /// Engine-internal form: `origins` may be borrowed (non-null
  /// `borrowed_origins` wins over the owned vector), which lets the
  /// drained Query path skip copying the caller's origin sets. `pool`
  /// (when non-null and `context` is null) supplies a leased context.
  /// `epoch_pin` keeps the engine snapshot the searcher reads alive
  /// until the stream's terminal transition (done, drained, cancelled,
  /// IO error); in scheduled mode it rides into the TaskSpec and the
  /// scheduler releases it instead.
  AnswerStream(const Searcher* searcher,
               std::vector<std::vector<NodeId>> owned_origins,
               const std::vector<std::vector<NodeId>>* borrowed_origins,
               const StreamOptions& options, SearchContext* context,
               std::unique_ptr<Searcher> owned_searcher,
               EpochPin epoch_pin = {});

  const std::vector<std::vector<NodeId>>& origins() const {
    return borrowed_origins_ != nullptr ? *borrowed_origins_ : owned_origins_;
  }
  SearchContext* context() const;
  std::optional<AnswerTree> TakeBuffered();

  const Searcher* searcher_ = nullptr;
  std::unique_ptr<Searcher> owned_searcher_;  // when opened via Engine
  std::vector<std::vector<NodeId>> owned_origins_;
  const std::vector<std::vector<NodeId>>* borrowed_origins_ = nullptr;
  StreamOptions options_;

  SearchContext* external_ = nullptr;         // caller-provided context
  SearchContextPool::Lease lease_;            // pooled context
  std::unique_ptr<SearchContext> owned_ctx_;  // private context

  /// Scheduled-mode state (StreamOptions::scheduler): the QueueSink the
  /// subscription pushes into plus the Subscription handle. Defined in
  /// the .cc to keep the serve/ headers out of this one.
  struct Served;
  /// Cancels the subscription and waits out its terminal push, so the
  /// sink inside served_ can be destroyed safely.
  void ReleaseServed();
  std::unique_ptr<Served> served_;

  size_t pulled_ = 0;
  bool finished_ = false;  // search ran to completion, failed (IO error)
                           // or was cancelled
  bool hit_limit_ = false;
  EpochPin epoch_pin_;  // released at the terminal transition
  SearchMetrics metrics_snapshot_;  // metrics() backing after Cancel()
};

}  // namespace banks

#endif  // BANKS_SEARCH_ANSWER_STREAM_H_
