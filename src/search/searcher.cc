#include "search/searcher.h"

#include "search/backward_mi.h"
#include "search/backward_si.h"
#include "search/bidirectional.h"

namespace banks {

SearchResult Searcher::Search(const std::vector<std::vector<NodeId>>& origins) {
  if (!owned_context_) owned_context_ = std::make_unique<SearchContext>();
  return Search(origins, owned_context_.get());
}

SearchResult Searcher::Search(const std::vector<std::vector<NodeId>>& origins,
                              SearchContext* context) const {
  context->stream.Reset();
  Resume(origins, context, StepLimits{});  // unbounded: must complete
  SearchResult result = std::move(context->stream.result);
  // Leave the stream state fresh: the moved-from result must not be
  // mistaken for a finished query by a later Resume on this context.
  context->stream.Reset();
  return result;
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBackwardMI:
      return "MI-Backward";
    case Algorithm::kBackwardSI:
      return "SI-Backward";
    case Algorithm::kBidirectional:
      return "Bidirectional";
  }
  return "Unknown";
}

std::unique_ptr<Searcher> CreateSearcher(Algorithm algorithm,
                                         const Graph& graph,
                                         const std::vector<double>& prestige,
                                         const SearchOptions& options) {
  switch (algorithm) {
    case Algorithm::kBackwardMI:
      return std::make_unique<BackwardMISearcher>(graph, prestige, options);
    case Algorithm::kBackwardSI:
      return std::make_unique<BackwardSISearcher>(graph, prestige, options);
    case Algorithm::kBidirectional:
      return std::make_unique<BidirectionalSearcher>(graph, prestige, options);
  }
  return nullptr;
}

}  // namespace banks
