#ifndef BANKS_SEARCH_BIDIRECTIONAL_H_
#define BANKS_SEARCH_BIDIRECTIONAL_H_

#include "search/searcher.h"

namespace banks {

/// Bidirectional expanding search — the paper's contribution (§4).
///
/// Two concurrent frontiers over one shared per-node state:
///  * the incoming iterator (Q_in) expands backward from keyword nodes,
///  * the outgoing iterator (Q_out) expands forward from potential
///    answer roots (every node the incoming iterator reaches).
///
/// Both queues are prioritized by spreading activation (§4.3): keyword
/// node u seeds a_{u,i} = prestige(u)/|S_i|; a node spreads fraction μ
/// of its per-keyword activation to neighbours, divided in inverse
/// proportion to edge weight over *all* competing neighbours, so bushy
/// subtrees and huge origin sets get low priority. Per-keyword
/// activations combine by max (or sum, for "near queries") and the queue
/// priority is their total.
///
/// Distance bookkeeping per Figure 3: each discovered node stores, per
/// keyword, the best known distance and the child to follow (sp);
/// improvements propagate to reached ancestors through the explored-
/// parents sets P_u (Attach), and activation increases propagate through
/// explored edges (Activate). Roots complete for all keywords emit into
/// the OutputHeap; §4.5's upper bound (tight NRA-style or the loose
/// edge-score heuristic) gates release.
///
/// Execution is a BSP round loop over kNumLanes fixed state lanes with
/// per-(sender, receiver) mailboxes; `SearchOptions::shard_count` picks
/// only how many workers execute the lanes, so every shard count —
/// including the sequential shard-1 path, which runs the same loop with
/// one worker — produces byte-identical answers and metrics (see
/// src/README.md, "Parallel expansion").
class BidirectionalSearcher : public Searcher {
 public:
  using Searcher::Searcher;

  SearchStatus Resume(const std::vector<std::vector<NodeId>>& origins,
                      SearchContext* context,
                      const StepLimits& limits) const override;
};

}  // namespace banks

#endif  // BANKS_SEARCH_BIDIRECTIONAL_H_
