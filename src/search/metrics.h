#ifndef BANKS_SEARCH_METRICS_H_
#define BANKS_SEARCH_METRICS_H_

#include <cstdint>
#include <vector>

namespace banks {

/// Counters for the paper's three performance measures (§5.2):
/// nodes explored (popped from a frontier queue and processed), nodes
/// touched (inserted into a frontier queue), and time taken — plus the
/// generation-vs-output split that Figure 5's "Gen time / Out time"
/// columns report.
struct SearchMetrics {
  /// Nodes popped from Q_in/Q_out (Bidirectional) or from iterator
  /// frontiers (Backward variants) and processed.
  uint64_t nodes_explored = 0;

  /// Nodes inserted into a frontier queue ("fringe nodes seen", §5.2).
  uint64_t nodes_touched = 0;

  /// Edge relaxations performed (ExploreEdge calls).
  uint64_t edges_relaxed = 0;

  /// Distance/activation propagation steps through reached ancestors
  /// (Attach/Activate recursion work; §4.2.1 notes this repeated
  /// propagation is the price of non-distance prioritization).
  uint64_t propagation_steps = 0;

  uint64_t answers_generated = 0;
  uint64_t answers_output = 0;

  /// Wall-clock seconds for the whole search.
  double elapsed_seconds = 0;

  /// Timestamp (seconds since search start) when the i-th *output*
  /// answer was generated and released, respectively. output_times is
  /// nondecreasing; generated_times typically is not (§4.5: answers are
  /// buffered until no better answer can appear).
  std::vector<double> generated_times;
  std::vector<double> output_times;

  /// True if the search ended due to a budget (node/answer cap) rather
  /// than queue exhaustion or top-k completion.
  bool budget_exhausted = false;
};

}  // namespace banks

#endif  // BANKS_SEARCH_METRICS_H_
