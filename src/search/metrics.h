#ifndef BANKS_SEARCH_METRICS_H_
#define BANKS_SEARCH_METRICS_H_

#include <cstdint>
#include <vector>

namespace banks {

/// Counters for the paper's three performance measures (§5.2):
/// nodes explored (popped from a frontier queue and processed), nodes
/// touched (inserted into a frontier queue), and time taken — plus the
/// generation-vs-output split that Figure 5's "Gen time / Out time"
/// columns report.
struct SearchMetrics {
  /// Nodes popped from Q_in/Q_out (Bidirectional) or from iterator
  /// frontiers (Backward variants) and processed.
  uint64_t nodes_explored = 0;

  /// Nodes inserted into a frontier queue ("fringe nodes seen", §5.2).
  uint64_t nodes_touched = 0;

  /// Edge relaxations performed (ExploreEdge calls).
  uint64_t edges_relaxed = 0;

  /// Distance/activation propagation steps through reached ancestors
  /// (Attach/Activate recursion work; §4.2.1 notes this repeated
  /// propagation is the price of non-distance prioritization).
  uint64_t propagation_steps = 0;

  uint64_t answers_generated = 0;
  uint64_t answers_output = 0;

  /// BSP rounds executed by the expansion loop. For the Bidirectional
  /// searcher a round is one pop phase + its cascade sub-rounds + the
  /// release check; for the Backward searchers, whose expansion order
  /// is a strict global argmin, a round is one settled pop. Identical
  /// for every shard_count — round boundaries are part of the defined
  /// search order, not an artifact of the thread count.
  uint64_t bsp_rounds = 0;

  /// Messages that crossed a lane boundary (appended to a mailbox whose
  /// receiver differs from its sender, or staged frontier pushes whose
  /// target lane differs from the popping lane). Deterministic given
  /// the options. The Bidirectional searcher partitions into a fixed
  /// lane count, so its value is also shard_count-invariant; the
  /// Backward searchers partition into one lane per worker, so their
  /// counts grow with shard_count (and are 0 at shard_count 1).
  uint64_t cross_shard_messages = 0;

  /// High-water mark of any single (sender, receiver) mailbox's message
  /// count within one sub-round (Backward searchers: largest staged
  /// push batch). Deterministic; gauges cascade burstiness.
  uint64_t max_mailbox_depth = 0;

  /// Buffer-pool outcomes of the paged-graph adjacency/posting reads
  /// this search performed, and the number of kPageWait pauses taken.
  /// Like elapsed_seconds these are *execution-dependent*, not part of
  /// the deterministic contract: whether a page is pooled when touched
  /// depends on pool size, eviction history and concurrent queries, so
  /// differential tests must exclude them (answers and the counters
  /// above stay byte-identical regardless). All zero on resident graphs.
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;
  uint64_t page_waits = 0;

  /// Failed page reads observed by this search (PagePin::failed); the
  /// slice that sees one ends with SearchStatus::kIoError. Execution-
  /// dependent like the page counters above.
  uint64_t io_errors = 0;

  /// Wall-clock seconds for the whole search.
  double elapsed_seconds = 0;

  /// Timestamp (seconds since search start) when the i-th *output*
  /// answer was generated and released, respectively. output_times is
  /// nondecreasing; generated_times typically is not (§4.5: answers are
  /// buffered until no better answer can appear).
  std::vector<double> generated_times;
  std::vector<double> output_times;

  /// True if the search ended due to a budget (node/answer cap) rather
  /// than queue exhaustion or top-k completion.
  bool budget_exhausted = false;
};

}  // namespace banks

#endif  // BANKS_SEARCH_METRICS_H_
