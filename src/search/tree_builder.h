#ifndef BANKS_SEARCH_TREE_BUILDER_H_
#define BANKS_SEARCH_TREE_BUILDER_H_

#include <optional>
#include <vector>

#include "search/answer.h"

namespace banks {

/// Assembles a minimal rooted answer tree from the union of per-keyword
/// best paths discovered by a search.
///
/// The union of shortest paths for different keywords is in general a
/// DAG, not a tree (two paths leaving the root can re-merge at a
/// "diamond"). This helper runs a Dijkstra over the tiny union subgraph
/// from `root`, takes the shortest-path tree, and keeps only the edges
/// on root→keyword-node paths — producing a genuine tree whose
/// per-keyword distances are at most the distances the search claimed.
///
/// Returns nullopt if some keyword node is unreachable from the root
/// within the union (callers treat this as "emit nothing"; it indicates
/// a stale path during propagation, which the algorithms tolerate).
std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges);

}  // namespace banks

#endif  // BANKS_SEARCH_TREE_BUILDER_H_
