#ifndef BANKS_SEARCH_TREE_BUILDER_H_
#define BANKS_SEARCH_TREE_BUILDER_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "search/answer.h"
#include "search/flat_hash.h"

namespace banks {

/// Pooled scratch of BuildAnswerFromPathUnion. Tree construction runs
/// once per released answer — inside the hot path of every searcher —
/// and used to build four `std::unordered_map`s per call. All of that
/// state now lives here: epoch-cleared flat maps plus retained-capacity
/// vectors, so a warm scratch builds trees allocation-free. Owned by
/// SearchContext; default-constructible for standalone use in tests.
struct TreeBuilderScratch {
  /// Per-node shortest-path record over the union subgraph.
  struct PathRec {
    double dist = 0;
    NodeId parent = kInvalidNode;
  };

  // (parent << 32 | child) → min weight over duplicate union edges.
  FlatHashMap<uint64_t, float> best_edge;
  // Deduplicated union edges in first-seen order. The subgraph is at
  // most a few dozen edges (n keyword paths of ≤ dmax hops), so the
  // Dijkstra below relaxes by linear scan instead of building adjacency.
  std::vector<AnswerEdge> edges;
  // Dijkstra over the union subgraph.
  FlatHashMap<NodeId, PathRec> reached;
  std::vector<std::pair<double, NodeId>> pq;  // min-heap storage
  std::vector<AnswerEdge> edge_scratch;       // tree edges pre-dedup
};

/// Assembles a minimal rooted answer tree from the union of per-keyword
/// best paths discovered by a search.
///
/// The union of shortest paths for different keywords is in general a
/// DAG, not a tree (two paths leaving the root can re-merge at a
/// "diamond"). This helper runs a Dijkstra over the tiny union subgraph
/// from `root`, takes the shortest-path tree, and keeps only the edges
/// on root→keyword-node paths — producing a genuine tree whose
/// per-keyword distances are at most the distances the search claimed.
///
/// Returns nullopt if some keyword node is unreachable from the root
/// within the union (callers treat this as "emit nothing"; it indicates
/// a stale path during propagation, which the algorithms tolerate).
/// Capacity-reusing form: assembles the tree into *out (every field is
/// overwritten; score/timing fields reset to zero) and returns false on
/// the unreachable-keyword case. Searchers pass a pooled scratch tree so
/// candidate materialization allocates nothing once warm.
bool BuildAnswerFromPathUnion(NodeId root,
                              const std::vector<NodeId>& keyword_nodes,
                              const std::vector<AnswerEdge>& union_edges,
                              TreeBuilderScratch* scratch, AnswerTree* out);

std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges, TreeBuilderScratch* scratch);

/// Convenience overload with private scratch (tests, one-off callers).
std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges);

}  // namespace banks

#endif  // BANKS_SEARCH_TREE_BUILDER_H_
