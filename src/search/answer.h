#ifndef BANKS_SEARCH_ANSWER_H_
#define BANKS_SEARCH_ANSWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "search/metrics.h"

namespace banks {

/// One edge of an answer tree, oriented root→leaf.
struct AnswerEdge {
  NodeId parent;
  NodeId child;
  float weight;

  bool operator==(const AnswerEdge&) const = default;
};

/// A response per §2.2: a minimal rooted directed tree embedded in the
/// data graph containing at least one node from each keyword's origin
/// set. keyword_nodes[i] is the matched node for keyword i (leaves carry
/// keywords; internal nodes may too).
struct AnswerTree {
  NodeId root = kInvalidNode;
  std::vector<AnswerEdge> edges;         // deduplicated union of paths
  std::vector<NodeId> keyword_nodes;     // one per query keyword
  std::vector<double> keyword_distances; // s(T, t_i) per keyword

  /// Score components per §2.3 (see scoring.h for the formulas).
  double edge_score_raw = 0;  // Eraw = Σ_i s(T, t_i); lower is better
  double node_prestige = 0;   // N ∈ (0, 1]
  double score = 0;           // Escore · N^λ; higher is better

  /// Seconds since search start when this tree was first generated.
  double generated_at = 0;

  /// Search-progress counters at generation time (§5.2 measures nodes
  /// explored/touched "at the last relevant result", which is a
  /// generation event — output can lag generation substantially, see
  /// the paper's DQ7 discussion).
  uint64_t explored_at_generation = 0;
  uint64_t touched_at_generation = 0;

  /// Pooled scratch for allocation-free Signature() on the hot path.
  struct SignatureScratch {
    std::vector<NodeId> nodes;
    std::vector<std::pair<NodeId, NodeId>> undirected;
  };

  /// Distinct nodes of the tree (root, internal, leaves), sorted.
  std::vector<NodeId> Nodes() const;

  /// Fills *out with the distinct sorted nodes (capacity-reusing form).
  void Nodes(std::vector<NodeId>* out) const;

  /// Number of distinct children of the root.
  size_t RootChildCount() const;

  /// True if some keyword is matched by the root node itself.
  bool RootMatchesAKeyword() const;

  /// §3's minimality rule: a tree whose root has exactly one child while
  /// every keyword is matched by a non-root node is non-minimal (its
  /// rotation without the root scores better) and must be discarded.
  bool IsMinimalRooted() const;

  /// Rotation-invariant identity (§4.6): sorted node set + undirected
  /// edge set hashed together. Two rotations of one tree collide, which
  /// is exactly what duplicate suppression wants.
  uint64_t Signature() const;

  /// Signature computed through caller-owned scratch buffers: the form
  /// the OutputHeap uses so duplicate suppression allocates nothing.
  uint64_t Signature(SignatureScratch* scratch) const;

  /// Structural validation against a graph: every edge exists with the
  /// stated weight, edges form a tree rooted at `root`, and every
  /// keyword node is reachable from the root. Used by tests and debug
  /// assertions, not by the hot path.
  bool Validate(const Graph& g, std::string* error = nullptr) const;
};

/// Equality over every deterministic field of two answers: structure
/// (root, edges, keyword nodes/distances), score components, and the
/// explored/touched generation counters. The wall-clock `generated_at`
/// stamp is ignored — it is the one field that differs between reruns of
/// the same search. Used to assert that batch / warm-context execution
/// reproduces sequential answers exactly.
bool SameAnswer(const AnswerTree& a, const AnswerTree& b);

/// Result of one keyword search: answers in output order plus the
/// paper's performance counters. (Lives here rather than in searcher.h
/// so the SearchContext's resumable stream state can hold one.)
struct SearchResult {
  std::vector<AnswerTree> answers;
  SearchMetrics metrics;
};

}  // namespace banks

#endif  // BANKS_SEARCH_ANSWER_H_
