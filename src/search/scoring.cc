#include "search/scoring.h"

#include <algorithm>
#include <cmath>

namespace banks {

double EdgeScoreFromRaw(double eraw) { return 1.0 / (1.0 + eraw); }

double TreePrestige(const AnswerTree& tree,
                    const std::vector<double>& prestige) {
  double sum = prestige.empty() ? 1.0 : prestige[tree.root];
  for (NodeId k : tree.keyword_nodes) {
    sum += prestige.empty() ? 1.0 : prestige[k];
  }
  return sum / static_cast<double>(tree.keyword_nodes.size() + 1);
}

double CombineScore(double escore, double prestige_n, double lambda) {
  return escore * std::pow(prestige_n, lambda);
}

void ScoreTree(AnswerTree* tree, const std::vector<double>& prestige,
               double lambda) {
  double eraw = 0;
  for (double d : tree->keyword_distances) eraw += d;
  tree->edge_score_raw = eraw;
  tree->node_prestige = TreePrestige(*tree, prestige);
  tree->score =
      CombineScore(EdgeScoreFromRaw(eraw), tree->node_prestige, lambda);
}

double ScoreUpperBound(double min_eraw, double max_prestige, double lambda) {
  double escore = EdgeScoreFromRaw(std::max(0.0, min_eraw));
  return CombineScore(escore, std::min(1.0, max_prestige), lambda);
}

}  // namespace banks
