#include "search/tree_builder.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace banks {

std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges) {
  // Deduplicated adjacency over the union subgraph (keep min weight per
  // directed pair).
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, float>>> adj;
  {
    std::unordered_map<uint64_t, float> best;
    for (const AnswerEdge& e : union_edges) {
      uint64_t key = (static_cast<uint64_t>(e.parent) << 32) | e.child;
      auto [it, inserted] = best.emplace(key, e.weight);
      if (!inserted && e.weight < it->second) it->second = e.weight;
    }
    for (const auto& [key, w] : best) {
      adj[static_cast<NodeId>(key >> 32)].emplace_back(
          static_cast<NodeId>(key & 0xFFFFFFFF), w);
    }
  }

  // Dijkstra from the root over the union subgraph.
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> parent;
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[root] = 0;
  pq.emplace(0, root);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    auto dit = dist.find(u);
    if (dit == dist.end() || d > dit->second + 1e-12) continue;
    auto ait = adj.find(u);
    if (ait == adj.end()) continue;
    for (auto [v, w] : ait->second) {
      double nd = d + w;
      auto vit = dist.find(v);
      if (vit == dist.end() || nd < vit->second - 1e-12) {
        dist[v] = nd;
        parent[v] = u;
        pq.emplace(nd, v);
      }
    }
  }

  AnswerTree tree;
  tree.root = root;
  tree.keyword_nodes = keyword_nodes;
  tree.keyword_distances.resize(keyword_nodes.size());
  std::vector<AnswerEdge> edges;
  for (size_t i = 0; i < keyword_nodes.size(); ++i) {
    NodeId target = keyword_nodes[i];
    auto dit = dist.find(target);
    if (dit == dist.end()) return std::nullopt;
    tree.keyword_distances[i] = dit->second;
    NodeId cur = target;
    while (cur != root) {
      NodeId p = parent.at(cur);
      float w = static_cast<float>(dist.at(cur) - dist.at(p));
      edges.push_back(AnswerEdge{p, cur, w});
      cur = p;
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const AnswerEdge& a, const AnswerEdge& b) {
              return std::tie(a.parent, a.child) < std::tie(b.parent, b.child);
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const AnswerEdge& a, const AnswerEdge& b) {
                            return a.parent == b.parent && a.child == b.child;
                          }),
              edges.end());
  tree.edges = std::move(edges);
  return tree;
}

}  // namespace banks
