#include "search/tree_builder.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

namespace banks {

bool BuildAnswerFromPathUnion(NodeId root,
                              const std::vector<NodeId>& keyword_nodes,
                              const std::vector<AnswerEdge>& union_edges,
                              TreeBuilderScratch* scratch, AnswerTree* out) {
  TreeBuilderScratch& s = *scratch;

  // Deduplicate the union subgraph (keep min weight per directed pair).
  s.best_edge.Clear();
  s.edges.clear();
  for (const AnswerEdge& e : union_edges) {
    uint64_t key = (static_cast<uint64_t>(e.parent) << 32) | e.child;
    const size_t before = s.best_edge.size();
    float& w = s.best_edge[key];
    if (s.best_edge.size() != before) {
      w = e.weight;
      s.edges.push_back(e);
    } else if (e.weight < w) {
      w = e.weight;
    }
  }
  for (AnswerEdge& e : s.edges) {
    uint64_t key = (static_cast<uint64_t>(e.parent) << 32) | e.child;
    e.weight = *s.best_edge.Find(key);
  }

  // Dijkstra from the root over the union subgraph. Relaxation scans the
  // whole (tiny) edge list per settled node; no adjacency index needed.
  s.reached.Clear();
  s.pq.clear();
  using QE = std::pair<double, NodeId>;
  auto heap_greater = std::greater<QE>();
  s.reached[root] = TreeBuilderScratch::PathRec{0, kInvalidNode};
  s.pq.emplace_back(0, root);
  while (!s.pq.empty()) {
    std::pop_heap(s.pq.begin(), s.pq.end(), heap_greater);
    auto [d, u] = s.pq.back();
    s.pq.pop_back();
    const TreeBuilderScratch::PathRec* urec = s.reached.Find(u);
    if (urec == nullptr || d > urec->dist + 1e-12) continue;
    for (const AnswerEdge& e : s.edges) {
      if (e.parent != u) continue;
      double nd = d + e.weight;
      TreeBuilderScratch::PathRec* vrec = s.reached.Find(e.child);
      if (vrec == nullptr || nd < vrec->dist - 1e-12) {
        s.reached[e.child] = TreeBuilderScratch::PathRec{nd, u};
        s.pq.emplace_back(nd, e.child);
        std::push_heap(s.pq.begin(), s.pq.end(), heap_greater);
      }
    }
  }

  AnswerTree& tree = *out;
  tree.root = root;
  tree.keyword_nodes.assign(keyword_nodes.begin(), keyword_nodes.end());
  tree.keyword_distances.assign(keyword_nodes.size(), 0.0);
  tree.edge_score_raw = 0;
  tree.node_prestige = 0;
  tree.score = 0;
  tree.generated_at = 0;
  tree.explored_at_generation = 0;
  tree.touched_at_generation = 0;
  std::vector<AnswerEdge>& edges = s.edge_scratch;
  edges.clear();
  for (size_t i = 0; i < keyword_nodes.size(); ++i) {
    NodeId target = keyword_nodes[i];
    const TreeBuilderScratch::PathRec* trec = s.reached.Find(target);
    if (trec == nullptr) return false;
    tree.keyword_distances[i] = trec->dist;
    NodeId cur = target;
    while (cur != root) {
      const TreeBuilderScratch::PathRec& rec = *s.reached.Find(cur);
      NodeId p = rec.parent;
      float w = static_cast<float>(rec.dist - s.reached.Find(p)->dist);
      edges.push_back(AnswerEdge{p, cur, w});
      cur = p;
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const AnswerEdge& a, const AnswerEdge& b) {
              return std::tie(a.parent, a.child) < std::tie(b.parent, b.child);
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const AnswerEdge& a, const AnswerEdge& b) {
                            return a.parent == b.parent && a.child == b.child;
                          }),
              edges.end());
  tree.edges.assign(edges.begin(), edges.end());
  return true;
}

std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges, TreeBuilderScratch* scratch) {
  AnswerTree tree;
  if (!BuildAnswerFromPathUnion(root, keyword_nodes, union_edges, scratch,
                                &tree)) {
    return std::nullopt;
  }
  return tree;
}

std::optional<AnswerTree> BuildAnswerFromPathUnion(
    NodeId root, const std::vector<NodeId>& keyword_nodes,
    const std::vector<AnswerEdge>& union_edges) {
  TreeBuilderScratch scratch;
  return BuildAnswerFromPathUnion(root, keyword_nodes, union_edges, &scratch);
}

}  // namespace banks
