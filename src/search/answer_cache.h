#ifndef BANKS_SEARCH_ANSWER_CACHE_H_
#define BANKS_SEARCH_ANSWER_CACHE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/answer.h"
#include "search/options.h"
#include "search/searcher.h"

namespace banks {

/// Construction knobs for AnswerCache.
struct AnswerCacheOptions {
  /// Seconds an entry stays servable after Store. Expired entries are
  /// treated as misses and reclaimed lazily.
  double ttl_seconds = 60.0;

  /// Capacity bound; storing past it evicts expired entries first, then
  /// the oldest live ones (FIFO). 0 = unbounded.
  size_t max_entries = 1024;

  /// Clock returning monotonic seconds; tests inject a fake to exercise
  /// TTL without sleeping. Default: std::chrono::steady_clock.
  std::function<double()> clock;
};

/// Signature-keyed, TTL'd cache of finished search results, shared
/// across query batches (the ROADMAP's batch-level result caching item).
///
/// The key is the full query signature — normalized keywords, algorithm
/// and the result-affecting options fingerprint (OptionsFingerprint) —
/// so a hit is a query that would have produced the identical result,
/// and serving it skips resolution *and* the whole search. Callers opt
/// in per batch (BatchOptions::answer_cache) because cached answers are
/// stale-tolerant by definition: anything up to ttl_seconds old.
///
/// Thread-safe: one mutex over the table; entries are copied in and out,
/// so a served result never aliases cache storage.
class AnswerCache {
 public:
  explicit AnswerCache(const AnswerCacheOptions& options = {});

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Copies the cached result for `key` into *out and returns true when
  /// a live (unexpired) entry exists; false otherwise. Counts toward
  /// hits()/misses().
  bool Lookup(const std::string& key, SearchResult* out);

  /// Stores a copy of `result` under `key`, refreshing the TTL (and the
  /// FIFO age) of an existing entry. Entries stored through this
  /// overload carry no keyword metadata, so InvalidateKeywords treats
  /// them conservatively (always dropped).
  void Store(const std::string& key, const SearchResult& result);

  /// Store with the query's folded keywords attached, which lets
  /// InvalidateKeywords drop exactly the entries an update's touched
  /// terms could have changed. Engine::QueryBatch uses this overload.
  void Store(const std::string& key, std::vector<std::string> keywords,
             const SearchResult& result);

  /// Drops every entry whose keyword set intersects `folded` (folded
  /// terms, as produced by Tokenizer::FoldKeyword) — plus any entry
  /// stored without keyword metadata, which cannot be proven untouched.
  /// Engine::ApplyUpdate calls this with the update's touched-term set,
  /// so posting-only updates (which do not bump the structure epoch in
  /// the key) still evict every result they could invalidate; entries
  /// for untouched keywords survive. Returns the number of entries
  /// dropped.
  size_t InvalidateKeywords(const std::vector<std::string>& folded);

  /// Drops every entry.
  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  double Now() const;
  /// Reclaims expired entries; then, if still above max_entries, evicts
  /// oldest-first. Caller holds mu_.
  void EvictLocked(double now);

  struct Entry {
    SearchResult result;
    std::vector<std::string> keywords;  // folded; for InvalidateKeywords
    double expires_at = 0;
    uint64_t stored_seq = 0;  // FIFO age: bumped on every Store (refresh too)
  };

  AnswerCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t next_seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Canonical cache key for a keyword query: the graph epoch, algorithm,
/// the result-affecting options fingerprint, and the keywords
/// length-prefixed (keywords may contain any byte; the prefix keeps the
/// join injective). Keywords must already be normalized the way the
/// caller's index folds them (Engine passes Tokenizer::FoldKeyword
/// output), and their *order* is preserved — keyword order permutes the
/// per-keyword arrays of every answer, so reordering is not
/// result-neutral.
///
/// `graph_epoch` folds the engine's STRUCTURE epoch (docs/UPDATES.md)
/// into the key: an update that adds nodes or edges can change any
/// query's answer trees, so results cached against the old structure
/// become unreachable (and age out). Posting-only updates deliberately
/// do NOT bump it — they are result-neutral for untouched keywords —
/// and rely on AnswerCache::InvalidateKeywords instead.
std::string AnswerCacheKey(Algorithm algorithm, const SearchOptions& options,
                           const std::vector<std::string>& keywords,
                           uint64_t graph_epoch = 0);

}  // namespace banks

#endif  // BANKS_SEARCH_ANSWER_CACHE_H_
