#ifndef BANKS_SEARCH_BACKWARD_MI_H_
#define BANKS_SEARCH_BACKWARD_MI_H_

#include "search/searcher.h"

namespace banks {

/// Multiple-iterator Backward expanding search — the original BANKS
/// algorithm (§3).
///
/// One single-source shortest-path iterator is created per keyword
/// *node* (|S| iterators). Each traverses edges in reverse (in-edges of
/// the combined graph) from its origin. Scheduling is globally best-
/// first: the iterator whose next frontier node is nearest its origin
/// steps next. A node visited by iterators covering every keyword roots
/// answer trees; per §4.6 MI-Backward can emit multiple trees with the
/// same root (different origin combinations) — we materialize, for each
/// new visit, the combination of the new origin with the best known
/// origin of every other keyword.
///
/// This algorithm is the paper's strawman: it degrades when a keyword
/// matches many nodes (many iterators) or a hub has large fan-in (§4.1).
class BackwardMISearcher : public Searcher {
 public:
  using Searcher::Searcher;

  SearchStatus Resume(const std::vector<std::vector<NodeId>>& origins,
                      SearchContext* context,
                      const StepLimits& limits) const override;
};

}  // namespace banks

#endif  // BANKS_SEARCH_BACKWARD_MI_H_
