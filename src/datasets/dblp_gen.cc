#include "datasets/dblp_gen.h"

#include <algorithm>
#include <unordered_set>

#include "datasets/vocab.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace banks {

Database GenerateDblp(const DblpConfig& config) {
  Rng rng(config.seed);
  Vocabulary vocab(config.vocab_size, config.zipf_theta);
  NameGenerator names(config.surname_pool, config.zipf_theta);

  Database db;
  Table& conference = db.AddTable(TableSpec{
      "conference", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& author = db.AddTable(TableSpec{
      "author", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& paper = db.AddTable(TableSpec{
      "paper",
      {ColumnSpec{"title", ColumnKind::kText, "", 1.0},
       ColumnSpec{"conf", ColumnKind::kForeignKey, "conference", 1.0}}});
  Table& writes = db.AddTable(TableSpec{
      "writes",
      {ColumnSpec{"aid", ColumnKind::kForeignKey, "author", 1.0},
       ColumnSpec{"pid", ColumnKind::kForeignKey, "paper", 1.0}}});
  Table& cites = db.AddTable(TableSpec{
      "cites",
      {ColumnSpec{"citing", ColumnKind::kForeignKey, "paper", 1.0},
       ColumnSpec{"cited", ColumnKind::kForeignKey, "paper", 1.0}}});

  for (size_t c = 0; c < config.num_conferences; ++c) {
    conference.AddRow({"conf " + Vocabulary::Syllables(c, 2)}, {});
  }
  for (size_t a = 0; a < config.num_authors; ++a) {
    author.AddRow({names.SampleName(&rng)}, {});
  }

  // Popular conferences attract more papers (hub effect).
  ZipfSampler conf_zipf(config.num_conferences, config.attachment_theta);
  for (size_t p = 0; p < config.num_papers; ++p) {
    RowId conf = static_cast<RowId>(conf_zipf.Sample(&rng));
    paper.AddRow({vocab.SampleTitle(&rng, config.title_words)}, {conf});
  }

  // Authorship: per paper, 1 + Poisson-ish(mean-1) authors, drawn with
  // productivity skew so some authors have very large fan-in.
  ZipfSampler author_zipf(config.num_authors, config.attachment_theta);
  for (size_t p = 0; p < config.num_papers; ++p) {
    size_t count = 1;
    double extra = config.mean_authors_per_paper - 1.0;
    while (extra > 0 && rng.Chance(std::min(1.0, extra))) {
      count++;
      extra -= 1.0;
    }
    std::unordered_set<RowId> used;
    for (size_t i = 0; i < count; ++i) {
      RowId a = static_cast<RowId>(author_zipf.Sample(&rng));
      if (!used.insert(a).second) continue;
      writes.AddRow({}, {a, static_cast<RowId>(p)});
    }
  }

  // Citations: papers cite earlier papers, famous targets preferred.
  for (size_t p = 1; p < config.num_papers; ++p) {
    double remaining = config.mean_citations_per_paper;
    std::unordered_set<RowId> used;
    while (remaining > 0 && rng.Chance(std::min(1.0, remaining))) {
      remaining -= 1.0;
      // Preferential attachment: rank-skewed choice among predecessors.
      double u = rng.NextDouble();
      double skew = u * u;  // quadratic bias toward low (famous) ids
      RowId target = static_cast<RowId>(skew * static_cast<double>(p));
      if (target >= static_cast<RowId>(p)) target = static_cast<RowId>(p) - 1;
      if (!used.insert(target).second) continue;
      cites.AddRow({}, {static_cast<RowId>(p), target});
    }
  }

  db.BuildIndexes();
  return db;
}

}  // namespace banks
