#ifndef BANKS_DATASETS_TSV_LOADER_H_
#define BANKS_DATASETS_TSV_LOADER_H_

#include <optional>
#include <string>

#include "graph/graph.h"
#include "relational/graph_builder.h"

namespace banks {

/// Parse/load counters reported by LoadTsvGraph.
struct TsvLoadStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t comment_lines = 0;  // '#'-prefixed and blank lines skipped
};

/// Real-data ingestion: builds a queryable DataGraph from two
/// tab-separated files — the `banks_server --tsv` input path next to
/// the synthetic generators (ROADMAP "real TSV ingestion").
///
/// nodes file, one row per node:
///   id \t type \t label [\t text]
///  * `id` must be a dense 0..N-1 assignment (any row order); duplicates
///    and gaps are load errors.
///  * `type` is the node's relation name ("" = untyped). It is also
///    folded into the node's indexed text, so a keyword equal to a type
///    name matches every node of that type — the same semantics the
///    relational path gets from contiguous-range relation registration,
///    without requiring TSV ids to be grouped by type.
///  * `label` is the display string (Engine::NodeLabel shows
///    "type#id [label]"); `text`, when present, is additionally indexed.
///
/// edges file, one forward edge per row:
///   src \t dst [\t weight]
/// Weight defaults to 1; backward edges are derived per `options` like
/// every other graph in the system (§2.1 log-indegree weighting).
///
/// Blank lines and lines starting with '#' are skipped in both files.
/// Returns nullopt with a "file:line: what" message in *error on any
/// malformed row, unknown node id, or non-positive weight.
std::optional<DataGraph> LoadTsvGraph(const std::string& nodes_path,
                                      const std::string& edges_path,
                                      const GraphBuildOptions& options = {},
                                      std::string* error = nullptr,
                                      TsvLoadStats* stats = nullptr);

}  // namespace banks

#endif  // BANKS_DATASETS_TSV_LOADER_H_
