#include "datasets/patents_gen.h"

#include <algorithm>
#include <unordered_set>

#include "datasets/vocab.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace banks {

Database GeneratePatents(const PatentsConfig& config) {
  Rng rng(config.seed);
  Vocabulary vocab(config.vocab_size, config.zipf_theta);
  NameGenerator names(config.surname_pool, config.zipf_theta);

  Database db;
  Table& assignee = db.AddTable(
      TableSpec{"assignee", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& category = db.AddTable(
      TableSpec{"category", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& inventor = db.AddTable(
      TableSpec{"inventor", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& patent = db.AddTable(TableSpec{
      "patent",
      {ColumnSpec{"title", ColumnKind::kText, "", 1.0},
       ColumnSpec{"assignee", ColumnKind::kForeignKey, "assignee", 1.0},
       ColumnSpec{"category", ColumnKind::kForeignKey, "category", 1.0}}});
  Table& invents = db.AddTable(TableSpec{
      "invents",
      {ColumnSpec{"iid", ColumnKind::kForeignKey, "inventor", 1.0},
       ColumnSpec{"pid", ColumnKind::kForeignKey, "patent", 1.0}}});
  Table& pcites = db.AddTable(TableSpec{
      "pcites",
      {ColumnSpec{"citing", ColumnKind::kForeignKey, "patent", 1.0},
       ColumnSpec{"cited", ColumnKind::kForeignKey, "patent", 1.0}}});

  // A few recognizable assignees for Figure-5-style queries, the rest
  // synthetic.
  const char* kCompanies[] = {"microsoft", "ibm", "intel", "xerox",
                              "motorola", "kodak", "siemens", "hitachi"};
  for (size_t a = 0; a < config.num_assignees; ++a) {
    assignee.AddRow(
        {a < 8 ? kCompanies[a] : "corp " + Vocabulary::Syllables(a, 3)}, {});
  }
  for (size_t c = 0; c < config.num_categories; ++c) {
    category.AddRow({"class " + Vocabulary::Syllables(c, 2)}, {});
  }
  for (size_t i = 0; i < config.num_inventors; ++i) {
    inventor.AddRow({names.SampleName(&rng)}, {});
  }

  ZipfSampler assignee_zipf(config.num_assignees, config.attachment_theta);
  ZipfSampler category_zipf(config.num_categories, config.attachment_theta);
  for (size_t p = 0; p < config.num_patents; ++p) {
    RowId a = static_cast<RowId>(assignee_zipf.Sample(&rng));
    RowId c = static_cast<RowId>(category_zipf.Sample(&rng));
    patent.AddRow({vocab.SampleTitle(&rng, config.title_words)}, {a, c});
  }

  ZipfSampler inventor_zipf(config.num_inventors, config.attachment_theta);
  for (size_t p = 0; p < config.num_patents; ++p) {
    std::unordered_set<RowId> used;
    size_t count = 1;
    double extra = config.mean_inventors_per_patent - 1.0;
    while (extra > 0 && rng.Chance(std::min(1.0, extra))) {
      count++;
      extra -= 1.0;
    }
    for (size_t i = 0; i < count; ++i) {
      RowId inv = static_cast<RowId>(inventor_zipf.Sample(&rng));
      if (!used.insert(inv).second) continue;
      invents.AddRow({}, {inv, static_cast<RowId>(p)});
    }
  }

  for (size_t p = 1; p < config.num_patents; ++p) {
    double remaining = config.mean_citations_per_patent;
    std::unordered_set<RowId> used;
    while (remaining > 0 && rng.Chance(std::min(1.0, remaining))) {
      remaining -= 1.0;
      double u = rng.NextDouble();
      RowId target = static_cast<RowId>(u * u * static_cast<double>(p));
      if (target >= static_cast<RowId>(p)) target = static_cast<RowId>(p) - 1;
      if (!used.insert(target).second) continue;
      pcites.AddRow({}, {static_cast<RowId>(p), target});
    }
  }

  db.BuildIndexes();
  return db;
}

}  // namespace banks
