#ifndef BANKS_DATASETS_PATENTS_GEN_H_
#define BANKS_DATASETS_PATENTS_GEN_H_

#include <cstdint>

#include "relational/database.h"

namespace banks {

/// Synthetic US-Patents-like database (§5's largest dataset). Schema:
///
///   assignee(name)                 — companies; heavy-tailed portfolio
///   category(name)
///   inventor(name)
///   patent(title, →assignee, →category)
///   invents(→inventor, →patent)
///   pcites(→patent citing, →patent cited)
///
/// Assignees like "Microsoft" own thousands of patents, reproducing the
/// paper's UQ1 ("Microsoft recovery") shape: one singleton keyword and
/// one keyword with a thousand-node origin set.
struct PatentsConfig {
  size_t num_inventors = 3000;
  size_t num_patents = 6000;
  size_t num_assignees = 120;
  size_t num_categories = 40;
  double mean_inventors_per_patent = 2.0;
  double mean_citations_per_patent = 3.0;
  size_t title_words = 7;
  size_t vocab_size = 5000;
  double zipf_theta = 0.85;
  double attachment_theta = 0.9;
  size_t surname_pool = 900;
  uint64_t seed = 77;
};

Database GeneratePatents(const PatentsConfig& config);

}  // namespace banks

#endif  // BANKS_DATASETS_PATENTS_GEN_H_
