#include "datasets/imdb_gen.h"

#include <algorithm>
#include <unordered_set>

#include "datasets/vocab.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace banks {

Database GenerateImdb(const ImdbConfig& config) {
  Rng rng(config.seed);
  Vocabulary vocab(config.vocab_size, config.zipf_theta);
  NameGenerator names(config.surname_pool, config.zipf_theta);

  Database db;
  Table& genre = db.AddTable(
      TableSpec{"genre", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& person = db.AddTable(
      TableSpec{"person", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& movie = db.AddTable(TableSpec{
      "movie",
      {ColumnSpec{"title", ColumnKind::kText, "", 1.0},
       ColumnSpec{"genre", ColumnKind::kForeignKey, "genre", 1.0}}});
  Table& acts_in = db.AddTable(TableSpec{
      "acts_in",
      {ColumnSpec{"pid", ColumnKind::kForeignKey, "person", 1.0},
       ColumnSpec{"mid", ColumnKind::kForeignKey, "movie", 1.0}}});
  Table& directs = db.AddTable(TableSpec{
      "directs",
      {ColumnSpec{"pid", ColumnKind::kForeignKey, "person", 1.0},
       ColumnSpec{"mid", ColumnKind::kForeignKey, "movie", 1.0}}});

  const char* kGenres[] = {"drama",    "comedy",   "action",  "thriller",
                           "romance",  "horror",   "scifi",   "fantasy",
                           "western",  "musical",  "crime",   "mystery",
                           "animation", "documentary", "war", "sport",
                           "noir",     "family",   "biography", "history",
                           "adventure", "short",   "adult",   "news"};
  for (size_t g = 0; g < config.num_genres; ++g) {
    genre.AddRow({g < 24 ? kGenres[g] : Vocabulary::Syllables(g, 2)}, {});
  }
  for (size_t p = 0; p < config.num_people; ++p) {
    person.AddRow({names.SampleName(&rng)}, {});
  }

  ZipfSampler genre_zipf(config.num_genres, config.attachment_theta);
  for (size_t m = 0; m < config.num_movies; ++m) {
    RowId g = static_cast<RowId>(genre_zipf.Sample(&rng));
    movie.AddRow({vocab.SampleTitle(&rng, config.title_words)}, {g});
  }

  // Star system: skewed casting, one director per movie (also skewed).
  ZipfSampler person_zipf(config.num_people, config.attachment_theta);
  for (size_t m = 0; m < config.num_movies; ++m) {
    std::unordered_set<RowId> used;
    size_t cast = 1;
    double extra = config.mean_cast_size - 1.0;
    while (extra > 0 && rng.Chance(std::min(1.0, extra))) {
      cast++;
      extra -= 1.0;
    }
    for (size_t i = 0; i < cast; ++i) {
      RowId a = static_cast<RowId>(person_zipf.Sample(&rng));
      if (!used.insert(a).second) continue;
      acts_in.AddRow({}, {a, static_cast<RowId>(m)});
    }
    RowId d = static_cast<RowId>(person_zipf.Sample(&rng));
    directs.AddRow({}, {d, static_cast<RowId>(m)});
  }

  db.BuildIndexes();
  return db;
}

}  // namespace banks
