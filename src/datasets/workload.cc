#include "datasets/workload.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"

namespace banks {

char FreqCategoryLetter(FreqCategory c) {
  switch (c) {
    case FreqCategory::kTiny:
      return 'T';
    case FreqCategory::kSmall:
      return 'S';
    case FreqCategory::kMedium:
      return 'M';
    case FreqCategory::kLarge:
      return 'L';
    case FreqCategory::kAny:
      return '*';
  }
  return '?';
}

FreqCategory FreqThresholds::Categorize(size_t origin_size) const {
  if (origin_size <= tiny_max) return FreqCategory::kTiny;
  if (origin_size >= small_min && origin_size <= small_max) {
    return FreqCategory::kSmall;
  }
  if (origin_size >= medium_min && origin_size <= medium_max) {
    return FreqCategory::kMedium;
  }
  if (origin_size >= large_min) return FreqCategory::kLarge;
  return FreqCategory::kAny;  // falls between bands
}

bool FreqThresholds::Matches(FreqCategory c, size_t origin_size) const {
  switch (c) {
    case FreqCategory::kTiny:
      return origin_size >= 1 && origin_size <= tiny_max;
    case FreqCategory::kSmall:
      return origin_size >= small_min && origin_size <= small_max;
    case FreqCategory::kMedium:
      return origin_size >= medium_min && origin_size <= medium_max;
    case FreqCategory::kLarge:
      return origin_size >= large_min;
    case FreqCategory::kAny:
      return origin_size >= 1;
  }
  return false;
}

WorkloadGenerator::WorkloadGenerator(Database* db, const DataGraph* data_graph)
    : db_(db), dg_(data_graph), matcher_(*db) {
  if (!db_->indexes_built()) db_->BuildIndexes();
  size_t acc = 0;
  for (uint32_t t = 0; t < db_->num_tables(); ++t) {
    table_row_offsets_.push_back(acc);
    acc += db_->table(t).num_rows();
  }
  table_row_offsets_.push_back(acc);
}

bool WorkloadGenerator::SampleTree(size_t size, Rng* rng,
                                   std::vector<TreeTuple>* tuples,
                                   std::vector<TreeEdge>* edges) {
  tuples->clear();
  edges->clear();
  const size_t total = table_row_offsets_.back();
  if (total == 0) return false;

  // Uniform random starting tuple.
  size_t global = rng->Below(total);
  auto it = std::upper_bound(table_row_offsets_.begin(),
                             table_row_offsets_.end(), global);
  uint32_t t0 = static_cast<uint32_t>(it - table_row_offsets_.begin() - 1);
  tuples->push_back(
      TreeTuple{t0, static_cast<RowId>(global - table_row_offsets_[t0])});

  auto in_tree = [&](uint32_t table, RowId row) {
    for (const TreeTuple& tt : *tuples) {
      if (tt.table == table && tt.row == row) return true;
    }
    return false;
  };

  std::vector<SchemaEdge> schema_edges = db_->SchemaEdges();
  size_t stuck = 0;
  while (tuples->size() < size && stuck < 40) {
    size_t pick = rng->Below(tuples->size());
    const TreeTuple& base = (*tuples)[pick];
    const Table& table = db_->table(base.table);

    // Candidate expansions from `base`: forward FKs + one random
    // referencing row per incoming schema edge.
    struct Candidate {
      uint32_t table;
      RowId row;
      uint32_t fk_table, fk_col, referencing_is_new;
    };
    std::vector<Candidate> candidates;
    for (size_t c = 0; c < table.num_fk_columns(); ++c) {
      RowId target = table.FkAt(base.row, c);
      if (target == kNullRow) continue;
      uint32_t target_table = db_->TableIndex(table.FkSpec(c).ref_table);
      candidates.push_back(Candidate{target_table, target, base.table,
                                     static_cast<uint32_t>(c), 0});
    }
    for (const SchemaEdge& e : schema_edges) {
      if (e.to_table != base.table) continue;
      const auto& refs = db_->ReferencingRows(e.from_table, e.column, base.row);
      if (refs.empty()) continue;
      RowId r = refs[rng->Below(refs.size())];
      candidates.push_back(
          Candidate{e.from_table, r, e.from_table, e.column, 1});
    }
    if (candidates.empty()) {
      stuck++;
      continue;
    }
    const Candidate& cand = candidates[rng->Below(candidates.size())];
    if (in_tree(cand.table, cand.row)) {
      stuck++;
      continue;
    }
    uint32_t new_idx = static_cast<uint32_t>(tuples->size());
    tuples->push_back(TreeTuple{cand.table, cand.row});
    edges->push_back(TreeEdge{static_cast<uint32_t>(pick), new_idx,
                              cand.fk_table, cand.fk_col,
                              cand.referencing_is_new ? new_idx
                                                      : static_cast<uint32_t>(pick)});
    stuck = 0;
  }
  return tuples->size() == size;
}

bool WorkloadGenerator::AssignKeywords(const std::vector<TreeTuple>& tuples,
                                       const WorkloadOptions& options,
                                       size_t num_keywords, Rng* rng,
                                       std::vector<std::string>* keywords,
                                       std::vector<size_t>* keyword_tuple) {
  keywords->clear();
  keyword_tuple->clear();
  Tokenizer tokenizer;

  // Tuple order for keyword slots: a permutation covering each tuple
  // once before reuse ("keywords were selected at random from each
  // tuple in the result set").
  std::vector<size_t> slots;
  while (slots.size() < num_keywords) {
    std::vector<size_t> perm(tuples.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    rng->Shuffle(&perm);
    for (size_t p : perm) {
      if (slots.size() < num_keywords) slots.push_back(p);
    }
  }

  std::unordered_set<std::string> used;
  for (size_t j = 0; j < num_keywords; ++j) {
    FreqCategory want = options.categories.empty() ? FreqCategory::kAny
                                                   : options.categories[j];
    bool assigned = false;
    // Try the designated tuple first, then any other tuple.
    for (size_t attempt = 0; attempt < tuples.size() && !assigned; ++attempt) {
      size_t ti = (attempt == 0) ? slots[j]
                                 : rng->Below(tuples.size());
      const TreeTuple& tt = tuples[ti];
      std::string text = db_->table(tt.table).RowText(tt.row);
      std::vector<std::string> tokens = tokenizer.Tokenize(text);
      rng->Shuffle(&tokens);
      for (const std::string& tok : tokens) {
        if (used.count(tok)) continue;
        size_t df = dg_->index.MatchCount(tok);
        if (!options.thresholds.Matches(want, df)) continue;
        keywords->push_back(tok);
        keyword_tuple->push_back(ti);
        used.insert(tok);
        assigned = true;
        break;
      }
    }
    if (!assigned) return false;
  }
  return true;
}

std::vector<WorkloadQuery> WorkloadGenerator::Generate(
    const WorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<WorkloadQuery> out;
  size_t attempts = 0;
  const size_t max_attempts =
      options.max_attempts_per_query * std::max<size_t>(1, options.num_queries);

  while (out.size() < options.num_queries && attempts < max_attempts) {
    attempts++;
    std::vector<TreeTuple> tuples;
    std::vector<TreeEdge> edges;
    if (!SampleTree(options.answer_size, &rng, &tuples, &edges)) continue;

    size_t num_keywords =
        options.categories.empty()
            ? static_cast<size_t>(rng.Range(
                  static_cast<int64_t>(options.min_keywords),
                  static_cast<int64_t>(options.max_keywords)))
            : options.categories.size();

    std::vector<std::string> keywords;
    std::vector<size_t> keyword_tuple;
    if (!AssignKeywords(tuples, options, num_keywords, &rng, &keywords,
                        &keyword_tuple)) {
      continue;
    }

    // Ground truth: evaluate the generating join network exhaustively.
    CandidateNetwork cn;
    for (const TreeTuple& tt : tuples) {
      cn.nodes.push_back(CNNode{tt.table, 0});
    }
    for (size_t j = 0; j < keywords.size(); ++j) {
      cn.nodes[keyword_tuple[j]].keyword_mask |= 1u << j;
    }
    for (const TreeEdge& e : edges) {
      cn.edges.push_back(CNEdge{e.a, e.b, e.fk_table, e.fk_col,
                                e.referencing});
    }
    SparseSearcher::Options eval_options;
    eval_options.k_per_network = options.max_relevant_per_query;
    eval_options.max_results_per_network = options.max_relevant_per_query;
    std::vector<SparseSearcher::JoinResult> results;
    EvaluateCandidateNetwork(*db_, matcher_, cn, 0, keywords, eval_options,
                             &results);
    if (results.empty()) continue;  // should not happen; defensive

    WorkloadQuery q;
    q.keywords = keywords;
    q.answer_size = options.answer_size;
    for (const std::string& kw : keywords) {
      q.origin_sizes.push_back(dg_->index.MatchCount(kw));
    }
    for (const TreeTuple& tt : tuples) {
      q.generating_tree_nodes.push_back(dg_->NodeFor(tt.table, tt.row));
    }
    std::sort(q.generating_tree_nodes.begin(), q.generating_tree_nodes.end());
    for (const auto& jr : results) {
      std::vector<NodeId> nodes;
      nodes.reserve(jr.tuples.size());
      for (auto [t, r] : jr.tuples) nodes.push_back(dg_->NodeFor(t, r));
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      q.relevant.push_back(std::move(nodes));
    }
    std::sort(q.relevant.begin(), q.relevant.end());
    q.relevant.erase(std::unique(q.relevant.begin(), q.relevant.end()),
                     q.relevant.end());
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace banks
