#include "datasets/vocab.h"

namespace banks {
namespace {

constexpr const char* kConsonants = "bcdfgklmnprstvz";  // 15
constexpr const char* kVowels = "aeiou";                // 5

const char* const kFirstNames[] = {
    "john",   "james",  "david",  "michael", "robert", "mary",
    "william", "linda",  "richard", "susan",  "joseph", "karen",
    "thomas", "nancy",  "charles", "betty",  "daniel", "helen",
    "matthew", "sandra", "george", "donna",  "kenneth", "carol",
    "steven", "ruth",   "edward", "sharon", "brian",  "michelle",
    "kevin",  "laura",  "ronald", "sarah",  "anthony", "kimberly",
    "jason",  "deborah", "jeffrey", "jessica"};
constexpr size_t kNumFirstNames = sizeof(kFirstNames) / sizeof(char*);

}  // namespace

std::string Vocabulary::Syllables(size_t value, size_t min_syllables) {
  // Zero-padded base-75 encoding (15 consonants × 5 vowels), most
  // significant syllable first. Injective: equal lengths imply equal
  // digits, and lengths only grow beyond min_syllables when the value
  // requires it.
  size_t digits[16];
  size_t count = 0;
  size_t v = value;
  do {
    digits[count++] = v % 75;
    v /= 75;
  } while (v > 0 && count < 16);
  while (count < min_syllables) digits[count++] = 0;
  std::string out;
  out.reserve(2 * count);
  for (size_t i = count; i > 0; --i) {
    out.push_back(kConsonants[digits[i - 1] / 5]);
    out.push_back(kVowels[digits[i - 1] % 5]);
  }
  return out;
}

Vocabulary::Vocabulary(size_t size, double zipf_theta)
    : zipf_(size, zipf_theta) {
  words_.reserve(size);
  for (size_t r = 0; r < size; ++r) {
    words_.push_back(Syllables(r, 3));
  }
}

std::string Vocabulary::SampleTitle(Rng* rng, size_t num_words) const {
  std::string title;
  for (size_t i = 0; i < num_words; ++i) {
    if (i > 0) title.push_back(' ');
    title += Word(zipf_.Sample(rng));
  }
  return title;
}

NameGenerator::NameGenerator(size_t surname_pool, double zipf_theta)
    : first_zipf_(kNumFirstNames, zipf_theta),
      surname_zipf_(surname_pool, zipf_theta) {
  surnames_.reserve(surname_pool);
  for (size_t r = 0; r < surname_pool; ++r) {
    // Offset so surnames never collide with vocabulary words of small
    // rank (different min length).
    surnames_.push_back(Vocabulary::Syllables(r, 4));
  }
}

std::string NameGenerator::SampleName(Rng* rng) const {
  std::string name = kFirstNames[first_zipf_.Sample(rng)];
  name.push_back(' ');
  name += surnames_[surname_zipf_.Sample(rng)];
  return name;
}

}  // namespace banks
