#ifndef BANKS_DATASETS_WORKLOAD_H_
#define BANKS_DATASETS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/graph_builder.h"
#include "relational/sparse.h"
#include "relational/tuple_matcher.h"
#include "util/rng.h"

namespace banks {

/// Keyword-frequency categories of §5.6 (Figure 6(c)): tiny, small,
/// medium, large origin sets.
enum class FreqCategory : uint8_t { kTiny, kSmall, kMedium, kLarge, kAny };

char FreqCategoryLetter(FreqCategory c);

/// Origin-size boundaries for the categories. The paper's absolute
/// numbers (T:1–500, S:1000–2000, M:2500–5000, L:>7000 on a 2M-node
/// graph) are scaled to the synthetic datasets' size by the benches;
/// defaults suit the default generator configs (~20–40k nodes).
struct FreqThresholds {
  size_t tiny_max = 40;
  size_t small_min = 60, small_max = 250;
  size_t medium_min = 300, medium_max = 900;
  size_t large_min = 1100;

  FreqCategory Categorize(size_t origin_size) const;
  bool Matches(FreqCategory c, size_t origin_size) const;
};

/// One generated query with ground truth (§5.4): the query was built
/// from a known join network, so the relevant answers are exactly the
/// results of that join network — the paper's "we executed SQL queries
/// to find relevant answers".
struct WorkloadQuery {
  std::vector<std::string> keywords;
  std::vector<size_t> origin_sizes;           // |S_i| per keyword
  std::vector<NodeId> generating_tree_nodes;  // sorted node set
  /// All relevant answers as sorted node sets (generating network
  /// evaluated exhaustively, capped).
  std::vector<std::vector<NodeId>> relevant;
  size_t answer_size = 0;
};

struct WorkloadOptions {
  size_t num_queries = 50;
  /// Keyword count sampled uniformly in [min,max] unless `categories`
  /// is non-empty (then its size fixes the count).
  size_t min_keywords = 2;
  size_t max_keywords = 7;
  /// Tuples in the generating join network ("size of the most relevant
  /// result"; §5.4 uses 5, §5.6 uses 3).
  size_t answer_size = 5;
  /// Per-keyword frequency constraints (Figure 6(c) query types).
  std::vector<FreqCategory> categories;
  FreqThresholds thresholds;
  size_t max_relevant_per_query = 200;
  size_t max_attempts_per_query = 4000;
  uint64_t seed = 1;
};

/// Generates §5.4/§5.6-style workloads over a relational database and
/// its extracted data graph.
class WorkloadGenerator {
 public:
  /// Both referents must outlive the generator. The database must have
  /// indexes built (generators do this).
  WorkloadGenerator(Database* db, const DataGraph* data_graph);

  /// Produces up to options.num_queries queries (fewer if sampling
  /// keeps failing, e.g. impossible category constraints).
  std::vector<WorkloadQuery> Generate(const WorkloadOptions& options);

  const TupleMatcher& matcher() const { return matcher_; }

 private:
  struct TreeTuple {
    uint32_t table;
    RowId row;
  };
  struct TreeEdge {
    uint32_t a, b;  // indices into the tuple vector
    uint32_t fk_table, fk_col;
    uint32_t referencing;  // tuple index holding the FK
  };

  bool SampleTree(size_t size, Rng* rng, std::vector<TreeTuple>* tuples,
                  std::vector<TreeEdge>* edges);
  bool AssignKeywords(const std::vector<TreeTuple>& tuples,
                      const WorkloadOptions& options, size_t num_keywords,
                      Rng* rng, std::vector<std::string>* keywords,
                      std::vector<size_t>* keyword_tuple);

  Database* db_;
  const DataGraph* dg_;
  TupleMatcher matcher_;
  std::vector<size_t> table_row_offsets_;  // for uniform global row pick
};

}  // namespace banks

#endif  // BANKS_DATASETS_WORKLOAD_H_
