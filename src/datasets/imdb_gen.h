#ifndef BANKS_DATASETS_IMDB_GEN_H_
#define BANKS_DATASETS_IMDB_GEN_H_

#include <cstdint>

#include "relational/database.h"

namespace banks {

/// Synthetic IMDB-like movie database (§5's second dataset). Schema:
///
///   genre(name)
///   person(name)                    — actors and directors share a pool
///   movie(title, →genre)
///   acts_in(→person, →movie)
///   directs(→person, →movie)
///
/// Star actors appear in many movies (the paper's "John in IMDB"
/// frequent-keyword case plays out both as a common first name and as
/// large fan-in at star nodes).
struct ImdbConfig {
  size_t num_people = 2500;
  size_t num_movies = 4000;
  size_t num_genres = 24;
  double mean_cast_size = 4.0;
  size_t title_words = 4;
  size_t vocab_size = 3000;
  double zipf_theta = 0.85;
  double attachment_theta = 0.8;
  size_t surname_pool = 700;
  uint64_t seed = 4242;
};

Database GenerateImdb(const ImdbConfig& config);

}  // namespace banks

#endif  // BANKS_DATASETS_IMDB_GEN_H_
