#include "datasets/tsv_loader.h"

#include <charconv>
#include <fstream>
#include <vector>

namespace banks {

namespace {

/// Splits one line on tabs (no escaping — TSV in the strict sense).
std::vector<std::string_view> SplitTabs(const std::string& line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (;;) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(std::string_view(line).substr(start));
      return fields;
    }
    fields.push_back(std::string_view(line).substr(start, tab - start));
    start = tab + 1;
  }
}

bool ParseU32(std::string_view s, uint32_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParseWeight(std::string_view s, double* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool Skippable(const std::string& line) {
  return line.empty() || line[0] == '#' ||
         (line.size() == 1 && line[0] == '\r');
}

std::string Where(const std::string& path, size_t lineno,
                  const std::string& what) {
  return path + ":" + std::to_string(lineno) + ": " + what;
}

}  // namespace

std::optional<DataGraph> LoadTsvGraph(const std::string& nodes_path,
                                      const std::string& edges_path,
                                      const GraphBuildOptions& options,
                                      std::string* error,
                                      TsvLoadStats* stats) {
  auto fail = [&](const std::string& what) -> std::optional<DataGraph> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  TsvLoadStats local;
  TsvLoadStats& st = stats != nullptr ? *stats : local;
  st = TsvLoadStats{};

  struct NodeRow {
    std::string type;
    std::string label;
    std::string text;
    bool seen = false;
  };
  std::vector<NodeRow> rows;

  std::ifstream nodes_in(nodes_path);
  if (!nodes_in) return fail("cannot open nodes file " + nodes_path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(nodes_in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Skippable(line)) {
      ++st.comment_lines;
      continue;
    }
    std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() < 3 || fields.size() > 4) {
      return fail(Where(nodes_path, lineno,
                        "expected 'id\\ttype\\tlabel[\\ttext]', got " +
                            std::to_string(fields.size()) + " fields"));
    }
    uint32_t id;
    if (!ParseU32(fields[0], &id)) {
      return fail(Where(nodes_path, lineno, "bad node id"));
    }
    if (id >= rows.size()) rows.resize(id + 1);
    NodeRow& row = rows[id];
    if (row.seen) {
      return fail(Where(nodes_path, lineno,
                        "duplicate node id " + std::to_string(id)));
    }
    row.seen = true;
    row.type = std::string(fields[1]);
    row.label = std::string(fields[2]);
    if (fields.size() == 4) row.text = std::string(fields[3]);
  }
  if (rows.empty()) return fail(nodes_path + ": no nodes");
  for (size_t id = 0; id < rows.size(); ++id) {
    if (!rows[id].seen) {
      return fail(nodes_path + ": node ids not dense, missing " +
                  std::to_string(id));
    }
  }

  GraphBuilder builder;
  DataGraph data;
  data.node_labels.reserve(rows.size());
  for (size_t id = 0; id < rows.size(); ++id) {
    NodeRow& row = rows[id];
    NodeType type =
        row.type.empty() ? kUntypedNode : builder.InternType(row.type);
    builder.AddNode(type);
    // Type token rides in the indexed text (see header) alongside the
    // label and the optional text column.
    std::string doc = row.type;
    if (!row.label.empty()) (doc += ' ') += row.label;
    if (!row.text.empty()) (doc += ' ') += row.text;
    data.index.AddDocument(static_cast<NodeId>(id), doc);
    std::string display = row.type.empty() ? "node" : row.type;
    ((display += '#') += std::to_string(id));
    if (!row.label.empty()) ((display += " [") += row.label) += ']';
    data.node_labels.push_back(std::move(display));
  }
  st.nodes = rows.size();

  std::ifstream edges_in(edges_path);
  if (!edges_in) return fail("cannot open edges file " + edges_path);
  lineno = 0;
  while (std::getline(edges_in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Skippable(line)) {
      ++st.comment_lines;
      continue;
    }
    std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() < 2 || fields.size() > 3) {
      return fail(Where(edges_path, lineno,
                        "expected 'src\\tdst[\\tweight]', got " +
                            std::to_string(fields.size()) + " fields"));
    }
    uint32_t u, v;
    if (!ParseU32(fields[0], &u) || !ParseU32(fields[1], &v)) {
      return fail(Where(edges_path, lineno, "bad edge endpoint"));
    }
    if (u >= rows.size() || v >= rows.size()) {
      return fail(Where(edges_path, lineno, "edge endpoint out of range"));
    }
    double weight = 1.0;
    if (fields.size() == 3 && !ParseWeight(fields[2], &weight)) {
      return fail(Where(edges_path, lineno, "bad edge weight"));
    }
    if (weight <= 0) {
      return fail(Where(edges_path, lineno, "edge weight must be positive"));
    }
    builder.AddEdge(u, v, weight);
    ++st.edges;
  }

  data.graph = builder.Build(options);
  data.index.Freeze();
  // One logical table: TupleFor maps node n to (0, n).
  data.table_first_node = {0, static_cast<NodeId>(rows.size())};
  return data;
}

}  // namespace banks
