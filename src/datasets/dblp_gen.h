#ifndef BANKS_DATASETS_DBLP_GEN_H_
#define BANKS_DATASETS_DBLP_GEN_H_

#include <cstdint>

#include "relational/database.h"

namespace banks {

/// Synthetic DBLP-like bibliographic database (the paper's primary
/// dataset; see DESIGN.md substitutions). Schema:
///
///   conference(name)
///   author(name)
///   paper(title, →conference)
///   writes(→author, →paper)        — link tuples are nodes, as in Fig. 4
///   cites(→paper citing, →paper cited)
///
/// The generator plants the pathologies the paper's motivation relies
/// on: Zipf title vocabulary (frequent terms match thousands of
/// papers), Zipf author productivity (prolific "C. Mohan"-style authors
/// with huge fan-in), popular conferences (hub nodes), and preferential
/// citation (famous papers with high prestige).
struct DblpConfig {
  size_t num_authors = 2000;
  size_t num_papers = 5000;
  size_t num_conferences = 50;
  double mean_authors_per_paper = 2.2;
  double mean_citations_per_paper = 4.0;
  size_t title_words = 6;
  size_t vocab_size = 4000;
  double zipf_theta = 0.85;
  /// Skew of author-productivity / citation-popularity sampling.
  double attachment_theta = 0.8;
  size_t surname_pool = 800;
  uint64_t seed = 42;
};

Database GenerateDblp(const DblpConfig& config);

}  // namespace banks

#endif  // BANKS_DATASETS_DBLP_GEN_H_
