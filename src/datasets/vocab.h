#ifndef BANKS_DATASETS_VOCAB_H_
#define BANKS_DATASETS_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace banks {

/// Synthetic Zipf-distributed vocabulary.
///
/// Words are deterministic, pronounceable, and unique per rank
/// (syllable encoding of the rank), so a dataset regenerated from the
/// same seed yields identical text. Low ranks are sampled often —
/// these become the paper's "frequently occurring terms" (database,
/// john) that break Backward search; high ranks are the rare terms.
class Vocabulary {
 public:
  Vocabulary(size_t size, double zipf_theta);

  /// The word at a given frequency rank (0 = most frequent).
  const std::string& Word(size_t rank) const { return words_[rank]; }

  /// Zipf-samples a word rank.
  size_t SampleRank(Rng* rng) const { return zipf_.Sample(rng); }

  /// Space-joined title of `num_words` Zipf-sampled words.
  std::string SampleTitle(Rng* rng, size_t num_words) const;

  size_t size() const { return words_.size(); }

  /// Deterministic pronounceable encoding of an integer (shared with the
  /// name generators).
  static std::string Syllables(size_t value, size_t min_syllables);

 private:
  std::vector<std::string> words_;
  ZipfSampler zipf_;
};

/// Person-name generator: a small pool of common first names (the
/// "John" effect — thousands of matches) plus syllable surnames drawn
/// from a Zipf pool (some surnames common, most rare).
class NameGenerator {
 public:
  NameGenerator(size_t surname_pool, double zipf_theta);

  /// "First Surname" sample.
  std::string SampleName(Rng* rng) const;

 private:
  std::vector<std::string> surnames_;
  ZipfSampler first_zipf_;
  ZipfSampler surname_zipf_;
};

}  // namespace banks

#endif  // BANKS_DATASETS_VOCAB_H_
