// banks_server: the network front door (docs/NETWORK.md) as a binary.
// Serves one Engine over TCP; every connection is a fair-queueing tenant
// on the serving core's Scheduler.
//
// Data source (pick one):
//   --scale=F           synthetic DBLP at generator scale F (default 0.25)
//   --store=PATH        paged store file (storage/paged_store.h)
//   --tsv=BASE          BASE.nodes.tsv + BASE.edges.tsv (datasets/tsv_loader.h)
//   --tsv-nodes=F --tsv-edges=F   explicit TSV paths
//
// Serving knobs:
//   --port=N            TCP port (default 7411; 0 = ephemeral)
//   --bind=ADDR         bind address (default 127.0.0.1)
//   --port-file=PATH    write the bound port to PATH once listening
//                       (CI smoke tests wait on this file)
//   --workers=N         scheduler worker threads (default: hw concurrency)
//   --max-running=N     concurrent run slots (contexts)     [default 64]
//   --max-queued=N      admission queue depth               [default 1024]
//   --quantum-steps=N   node expansions per quantum         [default 256]
//   --window=N          per-request delivery-credit window  [default 8]
//
// SIGINT/SIGTERM drain in-flight tasks (terminal OnComplete + flush)
// before exiting 0 — the clean drain-and-exit CI asserts.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "datasets/tsv_loader.h"
#include "net/server.h"
#include "storage/paged_store.h"

using namespace banks;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  std::string store_path, tsv_nodes, tsv_edges, port_file;
  net::ServerOptions options;
  options.port = 7411;
  SchedulerOptions& sched = options.scheduler_options;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--scale", &v)) scale = std::stod(v);
    else if (FlagValue(argv[i], "--store", &v)) store_path = v;
    else if (FlagValue(argv[i], "--tsv", &v)) {
      tsv_nodes = v + ".nodes.tsv";
      tsv_edges = v + ".edges.tsv";
    }
    else if (FlagValue(argv[i], "--tsv-nodes", &v)) tsv_nodes = v;
    else if (FlagValue(argv[i], "--tsv-edges", &v)) tsv_edges = v;
    else if (FlagValue(argv[i], "--port", &v))
      options.port = static_cast<uint16_t>(std::stoul(v));
    else if (FlagValue(argv[i], "--bind", &v)) options.bind_address = v;
    else if (FlagValue(argv[i], "--port-file", &v)) port_file = v;
    else if (FlagValue(argv[i], "--workers", &v)) sched.num_workers = std::stoul(v);
    else if (FlagValue(argv[i], "--max-running", &v)) sched.max_running = std::stoul(v);
    else if (FlagValue(argv[i], "--max-queued", &v)) sched.max_queued = std::stoul(v);
    else if (FlagValue(argv[i], "--quantum-steps", &v)) sched.quantum_steps = std::stoull(v);
    else if (FlagValue(argv[i], "--window", &v)) options.credit_window = std::stoull(v);
    else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", argv[i]);
      return 2;
    }
  }

  // Build the engine from whichever source was selected.
  Engine engine = [&] {
    if (!store_path.empty()) {
      std::printf("opening paged store %s...\n", store_path.c_str());
      std::optional<PagedData> pd = PagedStore::Open(store_path);
      if (!pd.has_value()) {
        std::fprintf(stderr, "cannot open paged store %s\n", store_path.c_str());
        std::exit(1);
      }
      return Engine(std::move(pd->data));
    }
    if (!tsv_nodes.empty() || !tsv_edges.empty()) {
      std::printf("loading TSV graph (%s, %s)...\n", tsv_nodes.c_str(),
                  tsv_edges.c_str());
      std::string error;
      std::optional<DataGraph> dg = LoadTsvGraph(tsv_nodes, tsv_edges, {}, &error);
      if (!dg.has_value()) {
        std::fprintf(stderr, "TSV load failed: %s\n", error.c_str());
        std::exit(1);
      }
      return Engine(std::move(*dg));
    }
    std::printf("building synthetic DBLP (scale %.2f)...\n", scale);
    DblpConfig config;
    config.num_authors = static_cast<size_t>(8000 * scale);
    config.num_papers = static_cast<size_t>(16000 * scale);
    config.num_conferences = static_cast<size_t>(150 * scale) + 10;
    config.vocab_size = static_cast<size_t>(12000 * scale) + 500;
    config.surname_pool = static_cast<size_t>(2500 * scale) + 100;
    return Engine::FromDatabase(GenerateDblp(config));
  }();

  net::Server server(&engine, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%zu nodes, %zu edges)\n",
              options.bind_address.c_str(), server.port(),
              engine.graph().num_nodes(), engine.graph().num_edges());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.port() << "\n";
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100'000'000};
    nanosleep(&ts, nullptr);
  }

  std::printf("draining...\n");
  server.Shutdown();
  net::Server::Stats stats = server.stats();
  std::printf("served %llu requests over %llu connections, %llu answers\n",
              static_cast<unsigned long long>(stats.requests_opened),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.answers_sent));
  return 0;
}
