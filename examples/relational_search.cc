// relational_search: shows the two evaluation styles over one relational
// database — graph search (BANKS) versus candidate networks (Sparse) —
// and that they surface the same connections.
//
//   $ ./relational_search

#include <cstdio>
#include <iostream>

#include "banks/engine.h"
#include "datasets/imdb_gen.h"
#include "relational/sparse.h"
#include "text/tokenizer.h"

using namespace banks;

int main() {
  ImdbConfig config;
  config.num_people = 2000;
  config.num_movies = 3000;
  config.seed = 33;
  std::printf("generating synthetic IMDB (people=%zu movies=%zu)...\n",
              config.num_people, config.num_movies);
  Database db = GenerateImdb(config);
  Engine engine = Engine::FromDatabase(db);

  // Two actor surnames that co-star somewhere: walk acts_in to find a
  // movie with two cast members and take their surnames.
  Tokenizer tok;
  const Table& acts = *db.FindTable("acts_in");
  const Table& person = *db.FindTable("person");
  std::vector<std::string> keywords;
  {
    std::vector<std::vector<RowId>> cast(db.FindTable("movie")->num_rows());
    for (RowId r = 0; r < static_cast<RowId>(acts.num_rows()); ++r) {
      cast[static_cast<size_t>(acts.FkAt(r, 1))].push_back(acts.FkAt(r, 0));
    }
    for (const auto& members : cast) {
      if (members.size() < 2) continue;
      std::string a = tok.Tokenize(person.RowText(members[0])).back();
      std::string b = tok.Tokenize(person.RowText(members[1])).back();
      if (a == b) continue;
      keywords = {a, b};
      break;
    }
  }
  std::printf("query: %s %s\n\n", keywords[0].c_str(), keywords[1].c_str());

  // --- Graph search (this paper) ---
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  SearchResult r =
      engine.Query(keywords, Algorithm::kBidirectional, options);
  std::printf("== Bidirectional graph search: %zu answers, %llu nodes explored\n",
              r.answers.size(),
              static_cast<unsigned long long>(r.metrics.nodes_explored));
  for (size_t i = 0; i < std::min<size_t>(2, r.answers.size()); ++i) {
    std::cout << engine.DescribeAnswer(r.answers[i]) << "\n";
  }

  // --- Candidate networks (Discover/Sparse baseline) ---
  SparseSearcher sparse(&db);
  SparseSearcher::Options sparse_options;
  sparse_options.max_cn_size = 5;
  sparse_options.k_per_network = 5;
  auto sr = sparse.Search(keywords, sparse_options);
  std::printf("== Sparse: %zu candidate networks, %zu joined results "
              "(enum %.1f ms, eval %.1f ms)\n",
              sr.networks.size(), sr.results.size(),
              sr.enumeration_seconds * 1e3, sr.evaluation_seconds * 1e3);
  for (size_t i = 0; i < std::min<size_t>(3, sr.results.size()); ++i) {
    std::printf("  result %zu:", i);
    for (auto [t, row] : sr.results[i].tuples) {
      std::printf(" %s#%lld", db.table(t).name().c_str(),
                  static_cast<long long>(row));
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how the graph search needs no schema reasoning at query time\n"
      "and produces ranked trees, while Sparse enumerates join shapes.\n");
  return 0;
}
