// near_queries: the footnote-6 extension. With ActivationCombine::kSum,
// activation received over multiple paths adds up instead of taking the
// max, rewarding nodes *near many* keyword matches — the BANKS website's
// "near queries".
//
// Demo: find patents "near" a company — patents whose neighborhoods
// mention the company many times rank higher under kSum.
//
//   $ ./near_queries

#include <cstdio>
#include <iostream>

#include "banks/engine.h"
#include "datasets/patents_gen.h"
#include "text/tokenizer.h"

using namespace banks;

int main() {
  PatentsConfig config;
  config.num_patents = 4000;
  config.num_inventors = 2500;
  config.seed = 5;
  std::printf("generating synthetic patents db (patents=%zu)...\n",
              config.num_patents);
  Database db = GeneratePatents(config);
  Engine engine = Engine::FromDatabase(db);

  // A company name (assignee) plus a prolific inventor's surname.
  Tokenizer tok;
  std::string company = "microsoft";
  std::string inventor =
      tok.Tokenize(db.FindTable("inventor")->RowText(0)).back();
  std::vector<std::string> keywords = {company, inventor};
  std::printf("query: %s(|S|=%zu) %s(|S|=%zu)\n\n", company.c_str(),
              engine.index().MatchCount(company), inventor.c_str(),
              engine.index().MatchCount(inventor));

  for (ActivationCombine combine :
       {ActivationCombine::kMax, ActivationCombine::kSum}) {
    SearchOptions options;
    options.k = 5;
    options.combine = combine;
    options.bound = BoundMode::kLoose;
    SearchResult r =
        engine.Query(keywords, Algorithm::kBidirectional, options);
    std::printf("== combine=%s: %zu answers, explored %llu\n",
                combine == ActivationCombine::kMax ? "max (paper default)"
                                                   : "sum (near queries)",
                r.answers.size(),
                static_cast<unsigned long long>(r.metrics.nodes_explored));
    if (!r.answers.empty()) {
      std::cout << engine.DescribeAnswer(r.answers[0]);
    }
    std::printf("\n");
  }
  std::printf(
      "Both modes find the same answer model; sum mode changes frontier\n"
      "priorities (confluence of many paths raises activation), which is\n"
      "the building block for near-queries ranking.\n");
  return 0;
}
