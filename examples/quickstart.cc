// Quickstart: build a tiny bibliographic database, extract the data
// graph, and answer a keyword query with Bidirectional search.
//
// This reproduces the paper's running example (§1): the query
// "gray transaction" on a bibliographic graph finds the author Gray,
// a paper about transactions, and the connecting writes tuple.
//
//   $ ./quickstart

#include <cstdio>
#include <iostream>

#include "banks/engine.h"
#include "util/string_util.h"

using namespace banks;

int main() {
  // 1. Define a relational schema: author, paper, and the writes link
  //    table whose tuples become connecting nodes in the graph.
  Database db;
  Table& author = db.AddTable(
      TableSpec{"author", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& paper = db.AddTable(
      TableSpec{"paper", {ColumnSpec{"title", ColumnKind::kText, "", 1.0}}});
  Table& writes = db.AddTable(TableSpec{
      "writes",
      {ColumnSpec{"aid", ColumnKind::kForeignKey, "author", 1.0},
       ColumnSpec{"pid", ColumnKind::kForeignKey, "paper", 1.0}}});

  // 2. Load a few rows.
  RowId gray = author.AddRow({"jim gray"}, {});
  RowId mohan = author.AddRow({"c mohan"}, {});
  RowId reuter = author.AddRow({"andreas reuter"}, {});
  RowId tp_book =
      paper.AddRow({"transaction processing concepts and techniques"}, {});
  RowId aries = paper.AddRow({"aries a transaction recovery method"}, {});
  RowId puzzle = paper.AddRow({"the transaction concept virtues"}, {});
  writes.AddRow({}, {gray, tp_book});
  writes.AddRow({}, {reuter, tp_book});
  writes.AddRow({}, {mohan, aries});
  writes.AddRow({}, {gray, puzzle});
  db.BuildIndexes();

  // 3. Build the engine: data graph + inverted index + node prestige.
  Engine engine = Engine::FromDatabase(db);
  std::printf("graph: %zu nodes, %zu directed edges (incl. backward)\n\n",
              engine.graph().num_nodes(), engine.graph().num_edges());

  // 4. Ask a keyword query. Each answer is a rooted tree connecting
  //    nodes that match every keyword.
  for (const char* query : {"gray transaction", "gray reuter", "mohan aries"}) {
    std::printf("== query: \"%s\"\n", query);
    std::vector<std::string> keywords;
    for (const std::string& k : SplitAndTrim(query, " ")) keywords.push_back(k);

    SearchOptions options;
    options.k = 3;
    SearchResult result =
        engine.Query(keywords, Algorithm::kBidirectional, options);
    std::printf("explored %llu nodes, generated %llu answers\n",
                static_cast<unsigned long long>(result.metrics.nodes_explored),
                static_cast<unsigned long long>(
                    result.metrics.answers_generated));
    for (const AnswerTree& answer : result.answers) {
      std::cout << engine.DescribeAnswer(answer) << "\n";
    }
  }
  return 0;
}
