// dblp_search: generate a synthetic DBLP-scale database, then run the
// same keyword query through all three algorithms and compare the
// paper's §5.2 metrics side by side.
//
//   $ ./dblp_search [keyword ...]
//
// Without arguments, picks an interesting rare-author + frequent-word
// query automatically (the shape that motivates Bidirectional search).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "text/tokenizer.h"
#include "util/table_printer.h"

using namespace banks;

int main(int argc, char** argv) {
  DblpConfig config;
  config.num_authors = 4000;
  config.num_papers = 8000;
  config.seed = 7;
  std::printf("generating synthetic DBLP (authors=%zu papers=%zu)...\n",
              config.num_authors, config.num_papers);
  Database db = GenerateDblp(config);
  Engine engine = Engine::FromDatabase(db);
  std::printf("graph: %zu nodes, %zu edges\n", engine.graph().num_nodes(),
              engine.graph().num_edges());

  std::vector<std::string> keywords;
  for (int i = 1; i < argc; ++i) keywords.push_back(argv[i]);
  if (keywords.empty()) {
    // Rare author surname + the most frequent word of the first titles.
    Tokenizer tok;
    keywords.push_back(
        tok.Tokenize(db.FindTable("author")->RowText(1234)).back());
    std::string frequent;
    size_t best = 0;
    for (RowId r = 0; r < 40; ++r) {
      for (const auto& w :
           tok.Tokenize(db.FindTable("paper")->RowText(r))) {
        size_t df = engine.index().MatchCount(w);
        if (df > best) {
          best = df;
          frequent = w;
        }
      }
    }
    keywords.push_back(frequent);
  }

  std::printf("\nquery:");
  for (const auto& k : keywords) {
    std::printf(" %s(|S|=%zu)", k.c_str(), engine.index().MatchCount(k));
  }
  std::printf("\n\n");

  auto origins = engine.Resolve(keywords);
  TablePrinter table({"Algorithm", "answers", "explored", "touched",
                      "time ms", "best score"});
  for (Algorithm algorithm :
       {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
        Algorithm::kBidirectional}) {
    SearchOptions options;
    options.k = 10;
    options.bound = BoundMode::kLoose;
    options.max_nodes_explored = 2'000'000;
    SearchResult r = engine.QueryResolved(origins, algorithm, options);
    table.AddRow(
        {AlgorithmName(algorithm), std::to_string(r.answers.size()),
         std::to_string(r.metrics.nodes_explored),
         std::to_string(r.metrics.nodes_touched),
         TablePrinter::Fmt(r.metrics.elapsed_seconds * 1e3, 1),
         r.answers.empty() ? "-" : TablePrinter::Fmt(r.answers[0].score, 4)});
    if (algorithm == Algorithm::kBidirectional && !r.answers.empty()) {
      std::printf("top answer (Bidirectional):\n%s\n",
                  engine.DescribeAnswer(r.answers[0]).c_str());
    }
  }
  table.Print(std::cout);
  return 0;
}
