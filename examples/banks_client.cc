// banks_client: CLI over banks::net::Client (docs/NETWORK.md).
//
//   banks_client [--host=H] [--port=N] [flags] ping
//   banks_client [--host=H] [--port=N] [flags] query KEYWORD...
//   banks_client [--host=H] [--port=N] [flags] stream KEYWORD...
//
// `query` drains one push-mode query; `stream` pulls answers one credit
// at a time (kOpenStream/kNext), printing each as it lands. Flags:
//   --algo=mi|si|bidir    algorithm           [default bidir]
//   --k=N                 answers             [default 5]
//   --bound=tight|loose   release policy      [default loose]
//   --shards=N            intra-query shards  [default 1]
//   --deadline=SECONDS    scheduler deadline  [default none]
//
// Exit code: 0 on a kCompleted terminal status, 1 otherwise.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "util/timer.h"

using namespace banks;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void PrintAnswer(size_t index, const AnswerTree& answer, double ms) {
  std::printf("-- answer %zu  score %.4f  (+%.1f ms) --\n", index,
              answer.score, ms);
  std::printf("   root %u", answer.root);
  for (const AnswerEdge& e : answer.edges) {
    std::printf("  %u->%u(%.2f)", e.parent, e.child, e.weight);
  }
  std::printf("\n   keywords at:");
  for (NodeId n : answer.keyword_nodes) std::printf(" %u", n);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7411;
  Algorithm algorithm = Algorithm::kBidirectional;
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 2'000'000;
  double deadline = 0;
  std::string mode;
  std::vector<std::string> keywords;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--host", &v)) host = v;
    else if (FlagValue(argv[i], "--port", &v))
      port = static_cast<uint16_t>(std::stoul(v));
    else if (FlagValue(argv[i], "--algo", &v))
      algorithm = v == "mi"   ? Algorithm::kBackwardMI
                  : v == "si" ? Algorithm::kBackwardSI
                              : Algorithm::kBidirectional;
    else if (FlagValue(argv[i], "--k", &v)) options.k = std::stoul(v);
    else if (FlagValue(argv[i], "--bound", &v))
      options.bound = v == "tight" ? BoundMode::kTight : BoundMode::kLoose;
    else if (FlagValue(argv[i], "--shards", &v))
      options.shard_count = static_cast<uint32_t>(std::stoul(v));
    else if (FlagValue(argv[i], "--deadline", &v)) deadline = std::stod(v);
    else if (mode.empty()) mode = argv[i];
    else keywords.push_back(argv[i]);
  }
  if (mode.empty() || (mode != "ping" && keywords.empty())) {
    std::fprintf(stderr,
                 "usage: banks_client [flags] ping|query|stream KEYWORD...\n");
    return 2;
  }

  std::string error;
  auto client = net::Client::Connect(host, port, {}, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }
  const net::HelloReply& info = client->server_info();
  std::printf("connected to %s (%llu nodes, %llu edges, epoch %llu)\n",
              info.server_name.c_str(),
              static_cast<unsigned long long>(info.nodes),
              static_cast<unsigned long long>(info.edges),
              static_cast<unsigned long long>(info.epoch));

  if (mode == "ping") {
    Timer timer;
    if (!client->Ping()) {
      std::fprintf(stderr, "ping failed: %s\n", client->last_error().c_str());
      return 1;
    }
    std::printf("pong in %.2f ms\n", timer.ElapsedMillis());
    return 0;
  }

  Timer timer;
  net::NetResult result;
  if (mode == "stream") {
    net::ClientStream stream =
        client->OpenStream(keywords, algorithm, options, deadline);
    size_t count = 0;
    while (auto answer = stream.Next()) {
      PrintAnswer(++count, *answer, timer.ElapsedMillis());
      result.answers.push_back(std::move(*answer));
    }
    net::NetResult tail = stream.Drain();
    result.status = tail.status;
    result.metrics = std::move(tail.metrics);
  } else {
    result = client->Query(keywords, algorithm, options, deadline);
    for (size_t i = 0; i < result.answers.size(); ++i) {
      PrintAnswer(i + 1, result.answers[i], timer.ElapsedMillis());
    }
  }

  std::printf("%zu answers in %.1f ms, terminal %s "
              "(%llu nodes explored server-side)\n",
              result.answers.size(), timer.ElapsedMillis(),
              SubscribeStatusName(result.status),
              static_cast<unsigned long long>(result.metrics.nodes_explored));
  if (result.status != SubscribeStatus::kCompleted) {
    std::fprintf(stderr, "terminal status: %s%s%s\n",
                 SubscribeStatusName(result.status),
                 client->last_error().empty() ? "" : " — ",
                 client->last_error().c_str());
    return 1;
  }
  return 0;
}
