// banks_shell: interactive keyword-search shell over a synthetic DBLP
// database — the closest thing to the BANKS web demo the paper mentions.
//
//   $ ./banks_shell [seed]
//   query> gray transaction        — search with Bidirectional (default)
//   query> /algo si                — switch algorithm (mi | si | bidir)
//   query> /k 5                    — answers per query
//   query> /near on                — activation combine = sum (footnote 6)
//   query> /stats                  — dataset statistics
//   query> /quit
//
// Remote mode — same loop, but queries go over the wire to a running
// banks_server (docs/NETWORK.md) instead of a local engine:
//   $ ./banks_shell --connect=127.0.0.1:7411
//
// Reads queries from stdin; non-interactive use:
//   echo "database search" | ./banks_shell

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "net/client.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace banks;

namespace {

// Command loop against a remote banks_server; answers stream back as
// wire frames and print with per-answer latency, mirroring the local
// loop below (modulo DescribeAnswer, which needs the local labels).
int RemoteShell(const std::string& endpoint) {
  size_t colon = endpoint.rfind(':');
  std::string host = colon == std::string::npos
                         ? endpoint
                         : endpoint.substr(0, colon);
  uint16_t port = colon == std::string::npos
                      ? 7411
                      : static_cast<uint16_t>(
                            std::stoul(endpoint.substr(colon + 1)));
  std::string error;
  auto client = net::Client::Connect(host, port, {}, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }
  const net::HelloReply& info = client->server_info();
  std::printf("connected to %s: %llu nodes, %llu edges. /quit to exit.\n",
              info.server_name.c_str(),
              static_cast<unsigned long long>(info.nodes),
              static_cast<unsigned long long>(info.edges));

  Algorithm algorithm = Algorithm::kBidirectional;
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 2'000'000;

  std::string line;
  while (std::printf("query> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::vector<std::string> words = SplitAndTrim(line, " \t");
    if (words.empty()) continue;
    if (words[0] == "/quit" || words[0] == "/exit") break;
    if (words[0] == "/algo" && words.size() > 1) {
      if (words[1] == "mi") algorithm = Algorithm::kBackwardMI;
      else if (words[1] == "si") algorithm = Algorithm::kBackwardSI;
      else algorithm = Algorithm::kBidirectional;
      std::printf("algorithm = %s\n", AlgorithmName(algorithm));
      continue;
    }
    if (words[0] == "/k" && words.size() > 1) {
      options.k = std::stoul(words[1]);
      std::printf("k = %zu\n", options.k);
      continue;
    }
    if (words[0] == "/near" && words.size() > 1) {
      options.combine = words[1] == "on" ? ActivationCombine::kSum
                                         : ActivationCombine::kMax;
      std::printf("near queries %s\n", words[1] == "on" ? "on" : "off");
      continue;
    }
    if (words[0] == "/stats") {
      std::printf("  server %s, graph epoch %llu, ping %s\n",
                  info.server_name.c_str(),
                  static_cast<unsigned long long>(info.epoch),
                  client->Ping() ? "ok" : "FAILED");
      continue;
    }
    if (words[0][0] == '/') {
      std::printf("commands: /algo mi|si|bidir, /k N, /near on|off, "
                  "/stats, /quit\n");
      continue;
    }

    Timer timer;
    net::ClientStream stream = client->Subscribe(words, algorithm, options);
    size_t count = 0;
    while (auto answer = stream.Next()) {
      std::printf("-- answer %zu  score %.4f  (+%.1f ms) --\n   root %u;",
                  ++count, answer->score, timer.ElapsedMillis(),
                  answer->root);
      for (const AnswerEdge& e : answer->edges) {
        std::printf(" %u->%u", e.parent, e.child);
      }
      std::printf("; keywords at:");
      for (NodeId n : answer->keyword_nodes) std::printf(" %u", n);
      std::printf("\n");
    }
    net::NetResult tail = stream.Drain();
    std::printf("  %zu answers in %.1f ms total, terminal %s "
                "(%llu nodes explored)\n\n",
                count, timer.ElapsedMillis(),
                SubscribeStatusName(tail.status),
                static_cast<unsigned long long>(
                    tail.metrics.nodes_explored));
    if (!client->ok()) {
      std::fprintf(stderr, "connection lost: %s\n",
                   client->last_error().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      return RemoteShell(argv[i] + 10);
    }
  }
  DblpConfig config;
  config.num_authors = 3000;
  config.num_papers = 6000;
  config.seed = argc > 1 ? std::stoull(argv[1]) : 42;
  std::printf("building synthetic DBLP (seed %llu)...\n",
              static_cast<unsigned long long>(config.seed));
  Database db = GenerateDblp(config);
  Engine engine = Engine::FromDatabase(db);
  std::printf("ready: %zu nodes, %zu edges. /quit to exit.\n",
              engine.graph().num_nodes(), engine.graph().num_edges());

  Algorithm algorithm = Algorithm::kBidirectional;
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 2'000'000;
  SearchContext context;  // warm scratch shared across the session

  std::string line;
  while (std::printf("query> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::vector<std::string> words = SplitAndTrim(line, " \t");
    if (words.empty()) continue;

    if (words[0] == "/quit" || words[0] == "/exit") break;
    if (words[0] == "/algo" && words.size() > 1) {
      if (words[1] == "mi") algorithm = Algorithm::kBackwardMI;
      else if (words[1] == "si") algorithm = Algorithm::kBackwardSI;
      else algorithm = Algorithm::kBidirectional;
      std::printf("algorithm = %s\n", AlgorithmName(algorithm));
      continue;
    }
    if (words[0] == "/k" && words.size() > 1) {
      options.k = std::stoul(words[1]);
      std::printf("k = %zu\n", options.k);
      continue;
    }
    if (words[0] == "/near" && words.size() > 1) {
      options.combine = words[1] == "on" ? ActivationCombine::kSum
                                         : ActivationCombine::kMax;
      std::printf("near queries %s\n", words[1] == "on" ? "on" : "off");
      continue;
    }
    if (words[0] == "/stats") {
      for (uint32_t t = 0; t < db.num_tables(); ++t) {
        std::printf("  %-12s %zu rows\n", db.table(t).name().c_str(),
                    db.table(t).num_rows());
      }
      continue;
    }
    if (words[0][0] == '/') {
      std::printf("commands: /algo mi|si|bidir, /k N, /near on|off, "
                  "/stats, /quit\n");
      continue;
    }

    // Keyword query.
    auto origins = engine.Resolve(words);
    bool any_empty = false;
    for (size_t i = 0; i < words.size(); ++i) {
      std::printf("  %s: %zu matches\n", words[i].c_str(),
                  origins[i].size());
      if (origins[i].empty()) any_empty = true;
    }
    if (any_empty) {
      // The synthetic vocabulary is not English; suggest real tokens.
      std::printf("  hint: titles use synthetic words, e.g. \"%s\"; table"
                  " names (paper, author, writes, cites, conference) and"
                  " first names (john, mary, ...) also match\n",
                  db.FindTable("paper")->RowText(0).c_str());
      continue;
    }
    // Stream answers as the search releases them — the incremental UX
    // the paper's web frontend describes (§4.5's buffer exists so
    // answers can be emitted while the search is still running). Each
    // answer prints with its own latency; the first one typically lands
    // well before the search finishes. The shared context keeps every
    // query after the first allocation-free.
    Timer timer;
    AnswerStream stream = engine.OpenQueryResolved(
        std::move(origins), algorithm, options, StreamOptions{}, &context);
    size_t count = 0;
    while (auto answer = stream.Next()) {
      std::printf("-- answer %zu  (+%.1f ms) --\n%s", ++count,
                  timer.ElapsedMillis(),
                  engine.DescribeAnswer(*answer).c_str());
    }
    std::printf("  %zu answers in %.1f ms total (%llu nodes explored)\n\n",
                count, timer.ElapsedMillis(),
                static_cast<unsigned long long>(
                    stream.metrics().nodes_explored));
  }
  return 0;
}
