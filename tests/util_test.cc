#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace banks {
namespace {

// ---------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------- Zipf --

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 0.9);
  double sum = 0;
  for (size_t r = 0; r < z.n(); ++r) sum += z.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostLikely) {
  ZipfSampler z(50, 1.0);
  for (size_t r = 1; r < z.n(); ++r) {
    EXPECT_GE(z.Probability(0), z.Probability(r));
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchTheory) {
  ZipfSampler z(10, 1.0);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[z.Sample(&rng)]++;
  for (size_t r = 0; r < 10; ++r) {
    double expected = z.Probability(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << r;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(4, 0.0);
  for (size_t r = 0; r < 4; ++r) EXPECT_NEAR(z.Probability(r), 0.25, 1e-9);
}

TEST(Zipf, SingleElement) {
  ZipfSampler z(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_NEAR(z.Probability(0), 1.0, 1e-12);
}

// -------------------------------------------------------------- Stats --

TEST(Stats, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Median({}), 0);
}

TEST(Stats, GeoMean) {
  EXPECT_NEAR(GeoMean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({2, 2, 2}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0);
}

TEST(Stats, StdDev) {
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0);
  EXPECT_NEAR(StdDev({1, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({7}), 0);
}

// ------------------------------------------------------------ Strings --

TEST(StringUtil, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World 42"), "hello world 42");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtil, SplitAndTrim) {
  auto parts = SplitAndTrim("a,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitAndTrim(",,,", ",").empty());
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("conference", "conf"));
  EXPECT_FALSE(StartsWith("conf", "conference"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace banks
