#include "search/tree_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace banks {
namespace {

TEST(TreeBuilder, SingleNodeTree) {
  auto tree = BuildAnswerFromPathUnion(5, {5, 5}, {});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->root, 5u);
  EXPECT_TRUE(tree->edges.empty());
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 0);
  EXPECT_DOUBLE_EQ(tree->keyword_distances[1], 0);
}

TEST(TreeBuilder, SimplePath) {
  std::vector<AnswerEdge> union_edges = {{0, 1, 1.0f}, {1, 2, 2.0f}};
  auto tree = BuildAnswerFromPathUnion(0, {2}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 3.0);
}

TEST(TreeBuilder, DiamondResolvedToTree) {
  // Two root→keyword paths re-merge at node 3: the union is a DAG; the
  // builder must return a tree using the cheaper branch.
  std::vector<AnswerEdge> union_edges = {
      {0, 1, 1.0f}, {1, 3, 1.0f},   // cheap branch: cost 2
      {0, 2, 2.0f}, {2, 3, 2.0f},   // expensive branch: cost 4
  };
  auto tree = BuildAnswerFromPathUnion(0, {3}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 2.0);
  // No node may have two parents.
  std::map<NodeId, int> parents;
  for (const AnswerEdge& e : tree->edges) parents[e.child]++;
  for (auto [child, count] : parents) EXPECT_EQ(count, 1) << child;
  // The expensive branch must be pruned entirely.
  EXPECT_EQ(tree->edges.size(), 2u);
}

TEST(TreeBuilder, UnreachableTargetIsNullopt) {
  std::vector<AnswerEdge> union_edges = {{0, 1, 1.0f}};
  EXPECT_FALSE(BuildAnswerFromPathUnion(0, {2}, union_edges).has_value());
  EXPECT_FALSE(BuildAnswerFromPathUnion(3, {1}, union_edges).has_value());
}

TEST(TreeBuilder, ParallelEdgesKeepMinWeight) {
  std::vector<AnswerEdge> union_edges = {{0, 1, 5.0f}, {0, 1, 1.5f}};
  auto tree = BuildAnswerFromPathUnion(0, {1}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->keyword_distances[0], 1.5, 1e-6);
}

TEST(TreeBuilder, SharedPrefixCountedPerKeyword) {
  // root→a shared by both keyword paths, then a→k1, a→k2.
  std::vector<AnswerEdge> union_edges = {
      {0, 1, 1.0f}, {1, 2, 1.0f}, {1, 3, 2.0f}};
  auto tree = BuildAnswerFromPathUnion(0, {2, 3}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 2.0);
  EXPECT_DOUBLE_EQ(tree->keyword_distances[1], 3.0);
  // Shared edge appears once in the tree.
  EXPECT_EQ(tree->edges.size(), 3u);
}

TEST(TreeBuilder, PrunesBranchesToNoKeyword) {
  // Union contains a stray edge not on any root→keyword path.
  std::vector<AnswerEdge> union_edges = {
      {0, 1, 1.0f}, {0, 9, 1.0f}};
  auto tree = BuildAnswerFromPathUnion(0, {1}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->edges.size(), 1u);
  EXPECT_EQ(tree->edges[0].child, 1u);
}

TEST(TreeBuilder, CycleInUnionHandled) {
  // Union with a cycle (possible from stale sp chains): Dijkstra is
  // immune; result is still a tree.
  std::vector<AnswerEdge> union_edges = {
      {0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}};
  auto tree = BuildAnswerFromPathUnion(0, {2}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 2.0);
  EXPECT_EQ(tree->edges.size(), 2u);
}

TEST(TreeBuilder, KeywordAtRootPlusDistantKeyword) {
  std::vector<AnswerEdge> union_edges = {{0, 1, 1.5f}};
  auto tree = BuildAnswerFromPathUnion(0, {0, 1}, union_edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->keyword_distances[0], 0.0);
  EXPECT_DOUBLE_EQ(tree->keyword_distances[1], 1.5);
  EXPECT_TRUE(tree->RootMatchesAKeyword());
}

}  // namespace
}  // namespace banks
