#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "relational/candidate_network.h"
#include "relational/database.h"
#include "relational/graph_builder.h"
#include "relational/sparse.h"
#include "relational/tuple_matcher.h"

namespace banks {
namespace {

/// Mini bibliographic database:
///   author: 0 "jim gray", 1 "mohan"
///   paper : 0 "transaction recovery", 1 "query optimization"
///   writes: (gray, transaction), (mohan, transaction), (mohan, query)
Database MakeMiniDb() {
  Database db;
  Table& author = db.AddTable(
      TableSpec{"author", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& paper = db.AddTable(
      TableSpec{"paper", {ColumnSpec{"title", ColumnKind::kText, "", 1.0}}});
  Table& writes = db.AddTable(TableSpec{
      "writes",
      {ColumnSpec{"aid", ColumnKind::kForeignKey, "author", 1.0},
       ColumnSpec{"pid", ColumnKind::kForeignKey, "paper", 1.0}}});
  author.AddRow({"jim gray"}, {});
  author.AddRow({"mohan"}, {});
  paper.AddRow({"transaction recovery"}, {});
  paper.AddRow({"query optimization"}, {});
  writes.AddRow({}, {0, 0});
  writes.AddRow({}, {1, 0});
  writes.AddRow({}, {1, 1});
  db.BuildIndexes();
  return db;
}

// ----------------------------------------------------------- Database --

TEST(Database, TableAccessors) {
  Database db = MakeMiniDb();
  EXPECT_EQ(db.num_tables(), 3u);
  EXPECT_EQ(db.TotalRows(), 7u);
  EXPECT_EQ(db.TableIndex("paper"), 1u);
  EXPECT_NE(db.FindTable("writes"), nullptr);
  EXPECT_EQ(db.FindTable("movies"), nullptr);
  EXPECT_EQ(db.table(2).num_fk_columns(), 2u);
  EXPECT_EQ(db.table(0).num_text_columns(), 1u);
}

TEST(Database, RowAccess) {
  Database db = MakeMiniDb();
  const Table& writes = *db.FindTable("writes");
  EXPECT_EQ(writes.FkAt(0, 0), 0);  // gray
  EXPECT_EQ(writes.FkAt(2, 1), 1);  // query paper
  EXPECT_EQ(db.table(0).TextAt(0, 0), "jim gray");
  EXPECT_EQ(db.table(1).RowText(1), "query optimization");
}

TEST(Database, ReverseIndexFindsReferencingRows) {
  Database db = MakeMiniDb();
  uint32_t writes = db.TableIndex("writes");
  // Rows of writes referencing author 1 (mohan) through fk slot 0.
  const auto& rows = db.ReferencingRows(writes, 0, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 1);
  EXPECT_EQ(rows[1], 2);
  EXPECT_TRUE(db.ReferencingRows(writes, 1, 5).empty());
}

TEST(Database, SchemaEdges) {
  Database db = MakeMiniDb();
  auto edges = db.SchemaEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].from_table, db.TableIndex("writes"));
  EXPECT_EQ(edges[0].to_table, db.TableIndex("author"));
  EXPECT_EQ(edges[1].to_table, db.TableIndex("paper"));
}

// ------------------------------------------------------- TupleMatcher --

TEST(TupleMatcher, FindsRowsByKeyword) {
  Database db = MakeMiniDb();
  TupleMatcher m(db);
  EXPECT_EQ(m.Rows(0, "gray").size(), 1u);
  EXPECT_EQ(m.Rows(1, "transaction").size(), 1u);
  EXPECT_TRUE(m.Rows(1, "gray").empty());
  EXPECT_TRUE(m.Contains(0, "mohan", 1));
  EXPECT_FALSE(m.Contains(0, "mohan", 0));
  EXPECT_TRUE(m.TableHasKeyword(1, "query"));
  EXPECT_FALSE(m.TableHasKeyword(2, "query"));  // link table has no text
}

TEST(TupleMatcher, CaseInsensitive) {
  Database db = MakeMiniDb();
  TupleMatcher m(db);
  EXPECT_EQ(m.Rows(0, "GRAY").size(), 1u);
}

// ----------------------------------------------------- Data graph -----

TEST(DataGraph, NodesAndEdges) {
  Database db = MakeMiniDb();
  DataGraph dg = BuildDataGraph(db);
  EXPECT_EQ(dg.graph.num_nodes(), 7u);
  // 6 forward FK edges + 6 derived backward = 12 directed edges.
  EXPECT_EQ(dg.graph.num_edges(), 12u);
  // writes#0 → author#0 (gray).
  NodeId w0 = dg.NodeFor(db.TableIndex("writes"), 0);
  NodeId gray = dg.NodeFor(db.TableIndex("author"), 0);
  EXPECT_TRUE(dg.graph.HasEdge(w0, gray));
}

TEST(DataGraph, TupleForInvertsNodeFor) {
  Database db = MakeMiniDb();
  DataGraph dg = BuildDataGraph(db);
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    for (RowId r = 0; r < static_cast<RowId>(db.table(t).num_rows()); ++r) {
      auto [tt, rr] = dg.TupleFor(dg.NodeFor(t, r));
      EXPECT_EQ(tt, t);
      EXPECT_EQ(rr, r);
    }
  }
}

TEST(DataGraph, IndexMatchesTextAndRelationNames) {
  Database db = MakeMiniDb();
  DataGraph dg = BuildDataGraph(db);
  EXPECT_EQ(dg.index.MatchCount("transaction"), 1u);
  // "paper" as relation name matches both paper tuples.
  EXPECT_EQ(dg.index.MatchCount("paper"), 2u);
  // "author" relation: both authors.
  auto m = dg.index.Match("author");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], dg.NodeFor(db.TableIndex("author"), 0));
}

TEST(DataGraph, NodeTypesMatchTables) {
  Database db = MakeMiniDb();
  DataGraph dg = BuildDataGraph(db);
  NodeId paper0 = dg.NodeFor(db.TableIndex("paper"), 0);
  EXPECT_EQ(dg.graph.type_names()[dg.graph.Type(paper0)], "paper");
}

TEST(DataGraph, NodeLabelsAreInformative) {
  Database db = MakeMiniDb();
  DataGraph dg = BuildDataGraph(db);
  NodeId gray = dg.NodeFor(db.TableIndex("author"), 0);
  EXPECT_NE(dg.node_labels[gray].find("jim gray"), std::string::npos);
}

// ------------------------------------------------ Candidate networks --

TEST(CandidateNetwork, CoveredMaskAndLeaves) {
  CandidateNetwork cn;
  cn.nodes.push_back(CNNode{0, 1});
  cn.nodes.push_back(CNNode{2, 0});
  cn.nodes.push_back(CNNode{1, 2});
  cn.edges.push_back(CNEdge{0, 1, 2, 0, 1});
  cn.edges.push_back(CNEdge{1, 2, 2, 1, 1});
  EXPECT_EQ(cn.CoveredMask(), 3u);
  EXPECT_TRUE(cn.LeavesAreKeywordBearing());  // middle free node is internal
  cn.nodes[2].keyword_mask = 0;
  EXPECT_FALSE(cn.LeavesAreKeywordBearing());
}

TEST(CandidateNetwork, CanonicalKeyInvariantUnderRelabeling) {
  // Same network built with nodes in different order.
  CandidateNetwork a;
  a.nodes = {CNNode{0, 1}, CNNode{2, 0}, CNNode{1, 2}};
  a.edges = {CNEdge{0, 1, 2, 0, 1}, CNEdge{1, 2, 2, 1, 1}};
  CandidateNetwork b;
  b.nodes = {CNNode{1, 2}, CNNode{2, 0}, CNNode{0, 1}};
  b.edges = {CNEdge{0, 1, 2, 1, 1}, CNEdge{1, 2, 2, 0, 1}};
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(CandidateNetwork, GenerationFindsAuthorPaperJoin) {
  Database db = MakeMiniDb();
  TupleMatcher m(db);
  std::vector<std::string> keywords = {"gray", "transaction"};
  std::vector<std::vector<bool>> has(db.num_tables());
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    has[t] = {m.TableHasKeyword(t, keywords[0]),
              m.TableHasKeyword(t, keywords[1])};
  }
  CNGenerationOptions options;
  options.max_size = 3;
  auto cns = GenerateCandidateNetworks(db, 2, has, options);
  ASSERT_FALSE(cns.empty());
  // The classic author—writes—paper network of size 3 must be present.
  bool found = false;
  for (const auto& cn : cns) {
    if (cn.size() != 3) continue;
    std::multiset<uint32_t> tables;
    for (const auto& node : cn.nodes) tables.insert(node.table);
    if (tables == std::multiset<uint32_t>{0, 1, 2}) found = true;
  }
  EXPECT_TRUE(found);
  // Sorted by size.
  for (size_t i = 1; i < cns.size(); ++i) {
    EXPECT_LE(cns[i - 1].size(), cns[i].size());
  }
  // No duplicates.
  std::set<std::string> keys;
  for (const auto& cn : cns) {
    EXPECT_TRUE(keys.insert(cn.CanonicalKey()).second);
  }
  // Every accepted CN covers all keywords with keyword-bearing leaves.
  for (const auto& cn : cns) {
    EXPECT_EQ(cn.CoveredMask(), 3u);
    EXPECT_TRUE(cn.LeavesAreKeywordBearing());
  }
}

TEST(CandidateNetwork, RespectsMaxSize) {
  Database db = MakeMiniDb();
  TupleMatcher m(db);
  std::vector<std::vector<bool>> has(db.num_tables());
  for (uint32_t t = 0; t < db.num_tables(); ++t) {
    has[t] = {m.TableHasKeyword(t, "gray"),
              m.TableHasKeyword(t, "query")};
  }
  CNGenerationOptions options;
  options.max_size = 2;
  auto cns = GenerateCandidateNetworks(db, 2, has, options);
  for (const auto& cn : cns) EXPECT_LE(cn.size(), 2u);
}

TEST(CandidateNetwork, CitesStyleDoubleFkDistinguished) {
  // A cites-like table with two FKs into the same target: the two join
  // directions through different FK columns are distinct networks and
  // evaluation must follow the right column.
  Database db;
  Table& paper = db.AddTable(
      TableSpec{"paper", {ColumnSpec{"title", ColumnKind::kText, "", 1.0}}});
  Table& cites = db.AddTable(TableSpec{
      "cites",
      {ColumnSpec{"citing", ColumnKind::kForeignKey, "paper", 1.0},
       ColumnSpec{"cited", ColumnKind::kForeignKey, "paper", 1.0}}});
  paper.AddRow({"alpha work"}, {});
  paper.AddRow({"beta work"}, {});
  paper.AddRow({"gamma work"}, {});
  cites.AddRow({}, {0, 1});  // alpha cites beta
  cites.AddRow({}, {2, 1});  // gamma cites beta
  db.BuildIndexes();

  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 3;
  // alpha and beta connect through cites#0: paper—cites—paper.
  auto r = sparse.Search({"alpha", "beta"}, options);
  bool direct = false;
  for (const auto& jr : r.results) {
    std::set<std::pair<uint32_t, RowId>> tuples(jr.tuples.begin(),
                                                jr.tuples.end());
    if (tuples.count({0, 0}) && tuples.count({0, 1}) && tuples.count({1, 0})) {
      direct = true;
    }
  }
  EXPECT_TRUE(direct) << "citing->cited join not found";

  // alpha and gamma co-cite beta: needs 5 tuples
  // (alpha—cites#0—beta—cites#1—gamma).
  options.max_cn_size = 5;
  r = sparse.Search({"alpha", "gamma"}, options);
  bool cocite = false;
  for (const auto& jr : r.results) {
    std::set<std::pair<uint32_t, RowId>> tuples(jr.tuples.begin(),
                                                jr.tuples.end());
    if (tuples.count({0, 0}) && tuples.count({0, 2}) && tuples.count({1, 0}) &&
        tuples.count({1, 1})) {
      cocite = true;
    }
  }
  EXPECT_TRUE(cocite) << "co-citation join not found";
}

// -------------------------------------------------------------- Sparse --

TEST(Sparse, FindsGrayTransactionJoin) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 3;
  auto result = sparse.Search({"gray", "transaction"}, options);
  ASSERT_FALSE(result.results.empty());
  // Expect the tree {author gray, writes#0, paper transaction}.
  bool found = false;
  for (const auto& jr : result.results) {
    std::set<std::pair<uint32_t, RowId>> tuples(jr.tuples.begin(),
                                                jr.tuples.end());
    if (tuples.count({0, 0}) && tuples.count({1, 0}) && tuples.count({2, 0})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sparse, AndSemanticsRejectsPartialMatches) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 3;
  // "gray" and "optimization" are not connected within 3 tuples:
  // gray—writes#0—paper#0 does not contain optimization.
  auto result = sparse.Search({"gray", "optimization"}, options);
  EXPECT_TRUE(result.results.empty());
  // With 5 tuples, gray—writes—paper? No path: gray wrote only paper 0.
  options.max_cn_size = 5;
  result = sparse.Search({"gray", "optimization"}, options);
  EXPECT_TRUE(result.results.empty());
}

TEST(Sparse, MohanQueryJoinsThroughSharedPaper) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 5;
  // gray & mohan co-authored paper 0: path author—writes—paper—writes—author.
  auto result = sparse.Search({"gray", "mohan"}, options);
  ASSERT_FALSE(result.results.empty());
  bool found = false;
  for (const auto& jr : result.results) {
    std::set<std::pair<uint32_t, RowId>> tuples(jr.tuples.begin(),
                                                jr.tuples.end());
    if (tuples.count({0, 0}) && tuples.count({0, 1}) && tuples.count({1, 0})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sparse, SingleKeywordSingleTupleNetworks) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 1;
  auto result = sparse.Search({"mohan"}, options);
  ASSERT_EQ(result.results.size(), 1u);
  EXPECT_EQ(result.results[0].tuples[0],
            (std::pair<uint32_t, RowId>{0, 1}));
}

TEST(Sparse, PerNetworkTopKRespected) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 3;
  options.k_per_network = 1;
  auto result = sparse.Search({"mohan"}, options);
  // mohan wrote two papers; k_per_network=1 caps each CN's results.
  std::set<size_t> per_cn_counts;
  std::vector<size_t> counts(result.networks.size(), 0);
  for (const auto& jr : result.results) counts[jr.network_index]++;
  for (size_t c : counts) EXPECT_LE(c, 1u);
}

TEST(Sparse, DistinctTuplesWithinResult) {
  Database db = MakeMiniDb();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 5;
  auto result = sparse.Search({"gray", "mohan"}, options);
  for (const auto& jr : result.results) {
    std::set<std::pair<uint32_t, RowId>> tuples(jr.tuples.begin(),
                                                jr.tuples.end());
    EXPECT_EQ(tuples.size(), jr.tuples.size())
        << "a tuple appears twice in one joined result";
  }
}

}  // namespace
}  // namespace banks
