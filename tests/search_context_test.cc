#include "search/search_context.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "search/flat_hash.h"
#include "search/searcher.h"
#include "test_util.h"

namespace banks {
namespace {

using testing::MakeFig4Graph;
using testing::MakeRandomGraph;
using testing::ValidateAnswers;

// ---- FlatHashMap ------------------------------------------------------------

TEST(FlatHashMap, InsertFindAndDefaultConstruct) {
  FlatHashMap<NodeId, uint32_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  map[7] = 42;
  map[9];  // default-inserted
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42u);
  ASSERT_NE(map.Find(9), nullptr);
  EXPECT_EQ(*map.Find(9), 0u);
  EXPECT_EQ(map.Find(8), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMap, GrowthPreservesEntries) {
  FlatHashMap<uint64_t, uint64_t> map;
  constexpr uint64_t kCount = 10'000;
  for (uint64_t i = 0; i < kCount; ++i) map[i * 2654435761u] = i;
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    const uint64_t* v = map.Find(i * 2654435761u);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatHashMap, ClearIsEpochBasedAndReusable) {
  FlatHashMap<NodeId, uint32_t> map;
  for (NodeId v = 0; v < 1000; ++v) map[v] = v + 1;
  map.Clear();
  EXPECT_TRUE(map.empty());
  // Every old key reads as absent after the epoch bump.
  for (NodeId v = 0; v < 1000; ++v) EXPECT_EQ(map.Find(v), nullptr);
  // Reuse with overlapping and fresh keys.
  map[500] = 7;
  map[2000] = 8;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.Find(500), 7u);
  EXPECT_EQ(*map.Find(2000), 8u);
  EXPECT_EQ(map.Find(499), nullptr);
}

TEST(FlatHashMap, DenseIterationInInsertionOrder) {
  FlatHashMap<NodeId, uint32_t> map;
  map[30] = 1;
  map[10] = 2;
  map[20] = 3;
  std::vector<NodeId> keys;
  for (const auto& e : map) keys.push_back(e.key);
  EXPECT_EQ(keys, (std::vector<NodeId>{30, 10, 20}));
}

TEST(FlatHashMap, ManyEpochsStayConsistent) {
  FlatHashMap<NodeId, uint32_t> map;
  for (int epoch = 0; epoch < 100; ++epoch) {
    for (NodeId v = 0; v < 64; ++v) map[v] = static_cast<uint32_t>(epoch);
    EXPECT_EQ(map.size(), 64u);
    EXPECT_EQ(*map.Find(63), static_cast<uint32_t>(epoch));
    map.Clear();
  }
}

// ---- EdgeListPool -----------------------------------------------------------

TEST(EdgeListPool, AppendAndIterateInsertionOrder) {
  EdgeListPool pool;
  EdgeListPool::Ref a, b;
  // Interleave appends to two lists to cross chunk boundaries.
  for (uint32_t i = 0; i < 20; ++i) {
    pool.Append(&a, i, static_cast<float>(i));
    pool.Append(&b, 100 + i, 1.0f);
    pool.Append(&b, 200 + i, 2.0f);
  }
  std::vector<uint32_t> got_a;
  pool.ForEach(a, [&](uint32_t s, float w) {
    EXPECT_EQ(w, static_cast<float>(s));
    got_a.push_back(s);
  });
  ASSERT_EQ(got_a.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(got_a[i], i);

  std::vector<uint32_t> got_b;
  pool.ForEach(b, [&](uint32_t s, float) { got_b.push_back(s); });
  ASSERT_EQ(got_b.size(), 40u);
  // b alternates 100+i, 200+i in insertion order.
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got_b[2 * i], 100 + i);
    EXPECT_EQ(got_b[2 * i + 1], 200 + i);
  }
}

TEST(EdgeListPool, ClearRecyclesArena) {
  EdgeListPool pool;
  EdgeListPool::Ref a;
  for (uint32_t i = 0; i < 100; ++i) pool.Append(&a, i, 1.0f);
  EXPECT_GT(pool.chunk_count(), 0u);
  pool.Clear();
  EXPECT_EQ(pool.chunk_count(), 0u);
  EdgeListPool::Ref fresh;
  pool.Append(&fresh, 5, 2.0f);
  size_t seen = 0;
  pool.ForEach(fresh, [&](uint32_t s, float w) {
    EXPECT_EQ(s, 5u);
    EXPECT_EQ(w, 2.0f);
    seen++;
  });
  EXPECT_EQ(seen, 1u);
}

// ---- Context reuse ----------------------------------------------------------

class ContextReuse : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, ContextReuse,
                         ::testing::Values(Algorithm::kBackwardMI,
                                           Algorithm::kBackwardSI,
                                           Algorithm::kBidirectional),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param)) ==
                                          "MI-Backward"
                                      ? "MIBackward"
                                  : std::string(AlgorithmName(info.param)) ==
                                          "SI-Backward"
                                      ? "SIBackward"
                                      : "Bidirectional";
                         });

void ExpectIdenticalResults(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    const AnswerTree& x = a.answers[i];
    const AnswerTree& y = b.answers[i];
    EXPECT_EQ(x.root, y.root) << "answer " << i;
    EXPECT_EQ(x.edges, y.edges) << "answer " << i;
    EXPECT_EQ(x.keyword_nodes, y.keyword_nodes) << "answer " << i;
    EXPECT_EQ(x.keyword_distances, y.keyword_distances) << "answer " << i;
    EXPECT_EQ(x.edge_score_raw, y.edge_score_raw) << "answer " << i;
    EXPECT_EQ(x.node_prestige, y.node_prestige) << "answer " << i;
    EXPECT_EQ(x.score, y.score) << "answer " << i;
  }
  // Deterministic (non-wall-clock) metrics must match exactly.
  EXPECT_EQ(a.metrics.nodes_explored, b.metrics.nodes_explored);
  EXPECT_EQ(a.metrics.nodes_touched, b.metrics.nodes_touched);
  EXPECT_EQ(a.metrics.edges_relaxed, b.metrics.edges_relaxed);
  EXPECT_EQ(a.metrics.propagation_steps, b.metrics.propagation_steps);
  EXPECT_EQ(a.metrics.answers_generated, b.metrics.answers_generated);
  EXPECT_EQ(a.metrics.answers_output, b.metrics.answers_output);
  EXPECT_EQ(a.metrics.budget_exhausted, b.metrics.budget_exhausted);
}

TEST_P(ContextReuse, SameQueryTwiceThroughOneContextIsIdentical) {
  testing::Fig4Graph fig = MakeFig4Graph();
  std::vector<double> prestige(fig.graph.num_nodes(), 1.0);
  SearchOptions options;
  options.k = 10;
  std::vector<std::vector<NodeId>> origins = {
      fig.database_papers, {fig.james}, {fig.john}};

  auto searcher = CreateSearcher(GetParam(), fig.graph, prestige, options);
  SearchContext ctx;
  SearchResult first = searcher->Search(origins, &ctx);
  SearchResult second = searcher->Search(origins, &ctx);
  EXPECT_EQ(ctx.queries_started(), 2u);
  EXPECT_FALSE(first.answers.empty());
  ExpectIdenticalResults(first, second);
  EXPECT_EQ(ValidateAnswers(fig.graph, second), "");
}

TEST_P(ContextReuse, WarmContextMatchesFreshContext) {
  // Run a *different* (larger) query first so the warm context's pools
  // carry stale capacity, then compare against a cold context.
  Graph g = MakeRandomGraph(400, 1200, /*seed=*/7);
  std::vector<double> prestige(g.num_nodes(), 1.0);
  SearchOptions options;
  options.k = 5;
  auto searcher = CreateSearcher(GetParam(), g, prestige, options);

  std::vector<std::vector<NodeId>> big = {{1, 2, 3, 4, 5}, {10, 20, 30}, {7}};
  std::vector<std::vector<NodeId>> small = {{2, 9}, {17}};

  SearchContext warm;
  (void)searcher->Search(big, &warm);
  SearchResult warm_result = searcher->Search(small, &warm);

  SearchContext cold;
  SearchResult cold_result = searcher->Search(small, &cold);
  ExpectIdenticalResults(warm_result, cold_result);
}

TEST_P(ContextReuse, InterleavedQueriesDoNotLeakState) {
  testing::Fig4Graph fig = MakeFig4Graph();
  std::vector<double> prestige(fig.graph.num_nodes(), 1.0);
  SearchOptions options;
  options.k = 6;
  auto searcher = CreateSearcher(GetParam(), fig.graph, prestige, options);

  std::vector<std::vector<NodeId>> q1 = {fig.database_papers, {fig.john}};
  std::vector<std::vector<NodeId>> q2 = {{fig.james}, {fig.john}};

  SearchContext ctx;
  SearchResult a1 = searcher->Search(q1, &ctx);
  SearchResult a2 = searcher->Search(q2, &ctx);
  SearchResult b1 = searcher->Search(q1, &ctx);
  SearchResult b2 = searcher->Search(q2, &ctx);
  ExpectIdenticalResults(a1, b1);
  ExpectIdenticalResults(a2, b2);
}

TEST(SearchContext, OwnedContextOverloadMatchesExplicitContext) {
  testing::Fig4Graph fig = MakeFig4Graph();
  std::vector<double> prestige(fig.graph.num_nodes(), 1.0);
  SearchOptions options;
  std::vector<std::vector<NodeId>> origins = {{fig.james}, {fig.john}};

  auto with_owned =
      CreateSearcher(Algorithm::kBidirectional, fig.graph, prestige, options);
  auto with_explicit =
      CreateSearcher(Algorithm::kBidirectional, fig.graph, prestige, options);
  SearchContext ctx;
  ExpectIdenticalResults(with_owned->Search(origins),
                         with_explicit->Search(origins, &ctx));
  // The owned context is reused across calls on the same searcher.
  ExpectIdenticalResults(with_owned->Search(origins),
                         with_explicit->Search(origins, &ctx));
}

TEST(SearchContext, BeginQueryResetsPoolsButKeepsCapacity) {
  SearchContext ctx;
  ctx.BeginQuery(3);
  ctx.node_index[5] = 1;
  ctx.node.resize(4);
  ctx.state_flags.assign(4, kStateDirty);
  ctx.dist.assign(12, 0.5);
  EdgeListPool::Ref r;
  ctx.edge_lists.Append(&r, 0, 1.0f);
  ctx.EnsureReachMaps(2);
  ctx.reach_maps[0][9].dist = 3.0;

  ctx.BeginQuery(2);
  EXPECT_EQ(ctx.queries_started(), 2u);
  EXPECT_TRUE(ctx.node_index.empty());
  EXPECT_TRUE(ctx.node.empty());
  EXPECT_TRUE(ctx.state_flags.empty());
  EXPECT_TRUE(ctx.dist.empty());
  EXPECT_EQ(ctx.edge_lists.chunk_count(), 0u);
  EXPECT_EQ(ctx.reach_maps[0].Find(9), nullptr);
  EXPECT_GE(ctx.min_dist.size(), 2u);
}

}  // namespace
}  // namespace banks
