// End-to-end integration: dataset generator → data graph → workload with
// ground truth → all three algorithms, checking the §5.7-style claims at
// unit-test scale: algorithms find the model-best relevant answers and
// agree with each other.

#include <gtest/gtest.h>

#include <algorithm>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "datasets/imdb_gen.h"
#include "datasets/workload.h"

namespace banks {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 400;
    config.num_papers = 800;
    config.num_conferences = 25;
    config.seed = 2005;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
    gen_ = new WorkloadGenerator(db_, &engine_->data());

    WorkloadOptions options;
    options.num_queries = 8;
    options.answer_size = 3;
    options.min_keywords = 2;
    options.max_keywords = 3;
    options.seed = 99;
    queries_ = new std::vector<WorkloadQuery>(gen_->Generate(options));
  }
  static void TearDownTestSuite() {
    delete queries_;
    delete gen_;
    delete engine_;
    delete db_;
  }

  // Runs one algorithm; returns how many ground-truth relevant answers
  // appear in the top-k outputs and whether the top answer is relevant.
  static std::pair<size_t, bool> RunOne(const WorkloadQuery& q,
                                        Algorithm algorithm, size_t k) {
    SearchOptions options;
    options.k = k;
    options.bound = BoundMode::kLoose;
    options.max_nodes_explored = 500'000;
    SearchResult r = engine_->Query(q.keywords, algorithm, options);
    size_t found = 0;
    bool top_relevant = false;
    for (size_t i = 0; i < r.answers.size(); ++i) {
      auto nodes = r.answers[i].Nodes();
      bool relevant = std::find(q.relevant.begin(), q.relevant.end(),
                                nodes) != q.relevant.end();
      if (relevant) {
        found++;
        if (i == 0) top_relevant = true;
      }
    }
    return {found, top_relevant};
  }

  static Database* db_;
  static Engine* engine_;
  static WorkloadGenerator* gen_;
  static std::vector<WorkloadQuery>* queries_;
};

Database* IntegrationTest::db_ = nullptr;
Engine* IntegrationTest::engine_ = nullptr;
WorkloadGenerator* IntegrationTest::gen_ = nullptr;
std::vector<WorkloadQuery>* IntegrationTest::queries_ = nullptr;

TEST_F(IntegrationTest, WorkloadGenerated) {
  ASSERT_FALSE(queries_->empty());
}

TEST_F(IntegrationTest, EveryAlgorithmFindsSomeRelevantAnswers) {
  for (Algorithm algorithm :
       {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
        Algorithm::kBidirectional}) {
    size_t queries_with_hit = 0;
    for (const WorkloadQuery& q : *queries_) {
      auto [found, top] = RunOne(q, algorithm, 30);
      if (found > 0) queries_with_hit++;
    }
    // The generating tree exists in the graph but competes with every
    // other tree connecting the same keywords, so it only sometimes
    // ranks inside the top-30 — what matters (and what §5.4 reports) is
    // that all algorithms surface the same relevant answers, asserted in
    // AlgorithmsAgreeOnRelevantCounts. Here: at least one query's ground
    // truth must surface.
    EXPECT_GE(queries_with_hit, 1u) << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, AlgorithmsAgreeOnRelevantCounts) {
  // "In all cases we found that Bidirectional, SI-Backward and
  // MI-Backward return the same sets of relevant answers" (§5.4). At
  // unit scale we assert hit counts within a tolerance of 2 (loose
  // release order can swap the tail across the k boundary).
  for (const WorkloadQuery& q : *queries_) {
    auto [mi, t1] = RunOne(q, Algorithm::kBackwardMI, 30);
    auto [si, t2] = RunOne(q, Algorithm::kBackwardSI, 30);
    auto [bi, t3] = RunOne(q, Algorithm::kBidirectional, 30);
    EXPECT_LE(std::max({mi, si, bi}) - std::min({mi, si, bi}), 2u)
        << "relevant-hit counts diverge: MI=" << mi << " SI=" << si
        << " Bidir=" << bi;
  }
}

TEST_F(IntegrationTest, RelationNameQueriesWork) {
  // "conference <rare author surname>": relation-name channel + postings.
  const Table& author = *db_->FindTable("author");
  std::string surname =
      engine_->index().tokenizer().Tokenize(author.RowText(7)).back();
  SearchOptions options;
  options.k = 3;
  options.bound = BoundMode::kLoose;
  SearchResult r = engine_->Query({"conference", surname},
                                  Algorithm::kBidirectional, options);
  for (const AnswerTree& t : r.answers) {
    std::string error;
    EXPECT_TRUE(t.Validate(engine_->graph(), &error)) << error;
  }
}

TEST_F(IntegrationTest, ImdbEndToEnd) {
  ImdbConfig config;
  config.num_people = 300;
  config.num_movies = 400;
  config.seed = 11;
  Database db = GenerateImdb(config);
  Engine engine = Engine::FromDatabase(db);
  // Genre name + relation name: both special match channels at once.
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  SearchResult r =
      engine.Query({"drama", "person"}, Algorithm::kBidirectional, options);
  EXPECT_FALSE(r.answers.empty());
  for (const AnswerTree& t : r.answers) {
    std::string error;
    EXPECT_TRUE(t.Validate(engine.graph(), &error)) << error;
  }
}

TEST_F(IntegrationTest, MetricsMonotoneAcrossK) {
  const WorkloadQuery& q = (*queries_)[0];
  SearchOptions small;
  small.k = 2;
  small.bound = BoundMode::kLoose;
  SearchOptions large = small;
  large.k = 20;
  SearchResult rs = engine_->Query(q.keywords, Algorithm::kBidirectional,
                                   small);
  SearchResult rl = engine_->Query(q.keywords, Algorithm::kBidirectional,
                                   large);
  EXPECT_LE(rs.metrics.nodes_explored, rl.metrics.nodes_explored);
  EXPECT_LE(rs.answers.size(), rl.answers.size());
}

}  // namespace
}  // namespace banks
