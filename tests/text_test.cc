#include <gtest/gtest.h>

#include <algorithm>

#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace banks {
namespace {

// ---------------------------------------------------------- Tokenizer --

TEST(Tokenizer, LowercasesAndSplits) {
  Tokenizer t;
  auto tokens = t.Tokenize("Bidirectional Expansion, For KEYWORD-Search!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "bidirectional");
  EXPECT_EQ(tokens[1], "expansion");
  EXPECT_EQ(tokens[2], "keyword");
  EXPECT_EQ(tokens[3], "search");
}

TEST(Tokenizer, RemovesStopwords) {
  Tokenizer t;
  auto tokens = t.Tokenize("the quick and the dead");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "quick");
  EXPECT_EQ(tokens[1], "dead");
}

TEST(Tokenizer, KeepsStopwordsWhenDisabled) {
  TokenizerOptions options;
  options.remove_stopwords = false;
  options.min_token_length = 1;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("the a x").size(), 3u);
}

TEST(Tokenizer, MinTokenLength) {
  Tokenizer t;  // default min length 2
  auto tokens = t.Tokenize("j smith q database");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "smith");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... --- !!!").empty());
}

TEST(Tokenizer, FoldKeywordLowercasesOnly) {
  EXPECT_EQ(Tokenizer::FoldKeyword("The"), "the");  // stopwords kept
  EXPECT_EQ(Tokenizer::FoldKeyword("GRAY"), "gray");
}

TEST(Tokenizer, AlphanumericTokens) {
  Tokenizer t;
  auto tokens = t.Tokenize("vldb2005 paper");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "vldb2005");
}

// ------------------------------------------------------ InvertedIndex --

TEST(InvertedIndex, BasicPostings) {
  InvertedIndex idx;
  idx.AddDocument(1, "keyword search on graphs");
  idx.AddDocument(2, "graph keyword search");
  idx.Freeze();
  auto p = idx.Postings("keyword");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], 2u);
  EXPECT_TRUE(idx.Postings("missing").empty());
}

TEST(InvertedIndex, PostingsAreSortedAndUnique) {
  InvertedIndex idx;
  idx.AddDocument(5, "alpha alpha alpha");
  idx.AddDocument(3, "alpha");
  idx.AddDocument(9, "alpha beta alpha");
  idx.Freeze();
  auto p = idx.Postings("alpha");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
}

TEST(InvertedIndex, QueryIsCaseInsensitive) {
  InvertedIndex idx;
  idx.AddDocument(1, "Gray Transaction");
  idx.Freeze();
  EXPECT_EQ(idx.Postings("GRAY").size(), 1u);
  EXPECT_EQ(idx.Postings("gray").size(), 1u);
}

TEST(InvertedIndex, RelationNameMatchesWholeTable) {
  // §2.2: "if a term matches a relation name, all tuples in the
  // relation are assumed to match the term."
  InvertedIndex idx;
  idx.AddDocument(0, "something");
  idx.RegisterRelation("paper", 10, 5);
  idx.Freeze();
  auto m = idx.Match("paper");
  ASSERT_EQ(m.size(), 5u);
  EXPECT_EQ(m.front(), 10u);
  EXPECT_EQ(m.back(), 14u);
  EXPECT_EQ(idx.MatchCount("paper"), 5u);
}

TEST(InvertedIndex, RelationAndTokenMatchesMerge) {
  InvertedIndex idx;
  idx.AddDocument(3, "paper about paper folding");
  idx.RegisterRelation("paper", 10, 2);
  idx.Freeze();
  auto m = idx.Match("paper");
  // Node 3 (token) plus nodes 10, 11 (relation range).
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 3u);
  EXPECT_EQ(m[1], 10u);
  EXPECT_EQ(m[2], 11u);
}

TEST(InvertedIndex, RelationTokenOverlapDeduplicates) {
  InvertedIndex idx;
  idx.AddDocument(10, "paper");  // node 10 also inside the relation range
  idx.RegisterRelation("paper", 10, 2);
  idx.Freeze();
  EXPECT_EQ(idx.Match("paper").size(), 2u);
}

TEST(InvertedIndex, MatchUnknownTermIsEmpty) {
  InvertedIndex idx;
  idx.Freeze();
  EXPECT_TRUE(idx.Match("nothing").empty());
  EXPECT_EQ(idx.MatchCount("nothing"), 0u);
}

TEST(InvertedIndex, NumTermsCountsDistinctTokens) {
  InvertedIndex idx;
  idx.AddDocument(1, "alpha beta");
  idx.AddDocument(2, "beta gamma");
  idx.Freeze();
  EXPECT_EQ(idx.num_terms(), 3u);
}

}  // namespace
}  // namespace banks
